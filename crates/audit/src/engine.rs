//! Rule engine: scans lexed files, applies rules, matches waivers.
//!
//! ## Scope
//!
//! The audit covers *shipped* code: every `.rs` file under a `src/` tree of
//! the workspace. Directories named `tests`, `benches`, `examples`,
//! `fixtures`, `target` and `.git` are skipped, and `#[cfg(test)]` modules
//! and `#[test]` functions inside scanned files are masked out — test code
//! is where bit-exactness is *asserted*, and asserting means panicking on
//! mismatch, so the no-panic and float-eq rules must not see it.
//!
//! ## Waiver grammar
//!
//! ```text
//! // sqpr::allow(<rule-name>): <reason>
//! ```
//!
//! A waiver is a *plain* comment (doc comments are exempt, so docs can
//! describe the grammar without enacting it) that either shares the line
//! with the violating code or sits on its own line directly above it
//! (several own-line waivers may stack). The reason is mandatory — a waiver
//! without one is itself an audit error, as is a waiver naming an unknown
//! rule or a waiver that matches no violation (unused waivers rot into
//! false documentation and are treated as errors, so deleting the violation
//! forces deleting its excuse).

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, TokKind, Token};
use crate::rules::{registry, Rule};

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: &'static str,
    pub file: String,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A parsed `sqpr::allow` waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    pub rule: String,
    pub reason: String,
    /// Line the comment sits on.
    pub line: usize,
    /// Line of code the waiver covers.
    pub target_line: usize,
}

/// Result of auditing one file or a whole tree.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Unwaived violations. Empty on a clean pass.
    pub violations: Vec<Violation>,
    /// Waiver-grammar errors: missing reason, unknown rule, unused waiver.
    pub errors: Vec<String>,
    /// Violations that were covered by a waiver (for reporting).
    pub waived: Vec<(Violation, String)>,
    pub files_scanned: usize,
}

impl AuditReport {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.errors.is_empty()
    }

    fn merge(&mut self, other: AuditReport) {
        let AuditReport {
            mut violations,
            mut errors,
            mut waived,
            files_scanned,
        } = other;
        self.violations.append(&mut violations);
        self.errors.append(&mut errors);
        self.waived.append(&mut waived);
        self.files_scanned += files_scanned;
    }
}

/// A lexed source file plus the derived views rules consume.
pub struct SourceFile {
    /// Repo-relative path label (rules scope on it).
    pub path: String,
    /// All tokens, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens (what rules scan).
    pub code: Vec<usize>,
    /// Inclusive line ranges of `#[cfg(test)]` modules and `#[test]` fns.
    pub test_spans: Vec<(usize, usize)>,
}

impl SourceFile {
    pub fn new(path: &str, src: &str) -> Self {
        let tokens = lex(src);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let test_spans = find_test_spans(&tokens, &code);
        SourceFile {
            path: path.to_string(),
            tokens,
            code,
            test_spans,
        }
    }

    /// Whether a line is inside test-only code.
    pub fn in_test_code(&self, line: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// The code token at code-index `ci`, if any.
    pub fn ct(&self, ci: usize) -> Option<&Token> {
        self.code.get(ci).map(|&i| &self.tokens[i])
    }

    /// Text of the code token at code-index `ci` ("" past the end).
    pub fn ctext(&self, ci: usize) -> &str {
        self.ct(ci).map_or("", |t| t.text.as_str())
    }
}

/// Finds `#[cfg(test)] mod ... { }` and `#[test] fn ... { }` line spans.
/// Operates on code-token indices so comments between the attribute and the
/// item cannot break the match.
fn find_test_spans(tokens: &[Token], code: &[usize]) -> Vec<(usize, usize)> {
    let text = |ci: usize| -> &str { code.get(ci).map_or("", |&i| tokens[i].text.as_str()) };
    let mut spans = Vec::new();
    let mut ci = 0usize;
    while ci < code.len() {
        // `#` `[` ...
        if text(ci) == "#" && text(ci + 1) == "[" {
            let is_cfg_test =
                text(ci + 2) == "cfg" && text(ci + 3) == "(" && text(ci + 4) == "test";
            let is_test_attr = text(ci + 2) == "test" && text(ci + 3) == "]";
            if is_cfg_test || is_test_attr {
                // Scan forward past any further attributes to the item's
                // opening brace, then to its matching close.
                let mut j = ci;
                while j < code.len() && text(j) != "{" {
                    j += 1;
                }
                let open = j;
                let mut depth = 0usize;
                while j < code.len() {
                    match text(j) {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if open < code.len() && j < code.len() {
                    spans.push((tokens[code[ci]].line, tokens[code[j]].line));
                    ci = j + 1;
                    continue;
                }
            }
        }
        ci += 1;
    }
    spans
}

/// Parses every waiver comment in the file. Grammar errors are returned as
/// strings; well-formed waivers get a target line (see module docs).
fn collect_waivers(file: &SourceFile, known_rules: &[&'static str]) -> (Vec<Waiver>, Vec<String>) {
    let mut waivers = Vec::new();
    let mut errors = Vec::new();
    for (idx, tok) in file.tokens.iter().enumerate() {
        if !matches!(tok.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        // Doc comments (`///`, `//!`, `/**`, `/*!`) describe the waiver
        // grammar without *being* waivers — only plain comments count.
        if tok.text.starts_with("///")
            || tok.text.starts_with("//!")
            || tok.text.starts_with("/**")
            || tok.text.starts_with("/*!")
        {
            continue;
        }
        let Some(pos) = tok.text.find("sqpr::allow") else {
            continue;
        };
        let at = format!("{}:{}", file.path, tok.line);
        let rest = &tok.text[pos + "sqpr::allow".len()..];
        let Some(rest) = rest.strip_prefix('(') else {
            errors.push(format!(
                "{at}: malformed waiver: expected `sqpr::allow(<rule>): <reason>`"
            ));
            continue;
        };
        let Some(close) = rest.find(')') else {
            errors.push(format!("{at}: malformed waiver: missing `)`"));
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !known_rules.contains(&rule.as_str()) {
            errors.push(format!("{at}: waiver names unknown rule `{rule}`"));
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let Some(reason) = after.strip_prefix(':') else {
            errors.push(format!("{at}: waiver for `{rule}` missing `: <reason>`"));
            continue;
        };
        let reason = reason.trim().trim_end_matches("*/").trim().to_string();
        if reason.is_empty() {
            errors.push(format!(
                "{at}: waiver for `{rule}` has an empty reason — the reason is mandatory"
            ));
            continue;
        }
        // Target: the comment's own line when it shares it with code,
        // otherwise the next line that carries code (own-line waivers may
        // stack above the violating line).
        let own_line_code = file
            .code
            .iter()
            .any(|&i| i != idx && file.tokens[i].line == tok.line);
        let target_line = if own_line_code {
            tok.line
        } else {
            file.code
                .iter()
                .map(|&i| file.tokens[i].line)
                .find(|&l| l > tok.line)
                .unwrap_or(tok.line)
        };
        waivers.push(Waiver {
            rule,
            reason,
            line: tok.line,
            target_line,
        });
    }
    (waivers, errors)
}

/// Audits one source text under a path label, with the default rule set.
pub fn audit_source(path: &str, src: &str) -> AuditReport {
    audit_source_with(path, src, &registry())
}

/// Audits one source text with an explicit rule set (fixture tests use
/// this to isolate a single rule).
pub fn audit_source_with(path: &str, src: &str, rules: &[Box<dyn Rule>]) -> AuditReport {
    let file = SourceFile::new(path, src);
    let known: Vec<&'static str> = registry().iter().map(|r| r.name()).collect();
    let (mut waivers, mut errors) = collect_waivers(&file, &known);

    let mut raw: Vec<Violation> = Vec::new();
    for rule in rules {
        if !rule.applies_to(path) {
            continue;
        }
        let mut vs = rule.check(&file);
        vs.retain(|v| !file.in_test_code(v.line));
        raw.append(&mut vs);
    }
    raw.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));

    let mut used = vec![false; waivers.len()];
    let mut violations = Vec::new();
    let mut waived = Vec::new();
    for v in raw {
        let w = waivers
            .iter()
            .position(|w| w.rule == v.rule && w.target_line == v.line);
        match w {
            Some(i) => {
                used[i] = true;
                waived.push((v, waivers[i].reason.clone()));
            }
            None => violations.push(v),
        }
    }
    for (i, w) in waivers.iter_mut().enumerate() {
        if !used[i] {
            errors.push(format!(
                "{}:{}: unused waiver for `{}` — no matching violation on line {}; delete it",
                file.path, w.line, w.rule, w.target_line
            ));
        }
    }

    AuditReport {
        violations,
        errors,
        waived,
        files_scanned: 1,
    }
}

/// Directories never descended into: generated output, test-only trees.
const SKIP_DIRS: &[&str] = &["target", "tests", "benches", "examples", "fixtures", ".git"];

/// Recursively collects `.rs` files under `root`, skipping [`SKIP_DIRS`].
fn collect_rs_files(root: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(root)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Audits a workspace tree rooted at `root` with the full rule registry.
/// Path labels in the report are relative to `root`.
pub fn audit_workspace(root: &Path) -> io::Result<AuditReport> {
    let rules = registry();
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    let mut report = AuditReport::default();
    for path in files {
        let src = fs::read_to_string(&path)?;
        let label = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        report.merge(audit_source_with(&label, &src, &rules));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_spans_mask_cfg_test_modules_and_test_fns() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n    fn helper() { y.unwrap(); }\n}\n\
                   #[test]\nfn t() { z.unwrap(); }\n";
        let f = SourceFile::new("crates/core/src/x.rs", src);
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(4));
        assert!(f.in_test_code(7));
    }

    #[test]
    fn waiver_requires_reason_and_known_rule() {
        let src = "// sqpr::allow(hash-iter)\nlet x = 1;\n\
                   // sqpr::allow(no-such-rule): whatever\nlet y = 2;\n";
        let r = audit_source("crates/core/src/x.rs", src);
        assert_eq!(r.errors.len(), 2, "{:?}", r.errors);
        assert!(r.errors[0].contains("missing `: <reason>`"));
        assert!(r.errors[1].contains("unknown rule"));
    }

    #[test]
    fn unused_waiver_is_an_error() {
        let src = "// sqpr::allow(float-eq): stale excuse\nlet x = 1;\n";
        let r = audit_source("crates/core/src/x.rs", src);
        assert_eq!(r.errors.len(), 1);
        assert!(r.errors[0].contains("unused waiver"));
    }

    #[test]
    fn stacked_own_line_waivers_cover_the_next_code_line() {
        let src = "\
// sqpr::allow(hot-path-panic): demo reason one
// sqpr::allow(ambient-nondeterminism): demo reason two
let t = Instant::now().elapsed().as_secs_f64();\nx.unwrap();\n";
        // Both waivers target line 3 (the first code line below them); the
        // unwrap on line 4 is NOT covered.
        let r = audit_source("crates/core/src/x.rs", src);
        assert!(
            r.errors.iter().any(|e| e.contains("unused waiver")),
            "unwrap waiver targets line 3, not 4: {:?}",
            r.errors
        );
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].rule, "hot-path-panic");
        assert_eq!(r.violations[0].line, 4);
    }
}
