//! A small Rust lexer for the audit pass.
//!
//! The sanctioned dependency set has no `syn`/`proc-macro2`, so — exactly
//! like the scenario crate's TOML-subset reader — the audit defines its own
//! restricted tokenizer: just enough Rust lexical structure that a rule can
//! never be fooled by a keyword inside a string literal, a `HashMap` inside
//! a doc comment, or an `unwrap()` inside a nested `/* /* */ */` block.
//!
//! Tokens carry their source text and byte span; every non-whitespace byte
//! of the input belongs to exactly one token (the round-trip property the
//! test suite pins for nested raw strings and block comments). The lexer is
//! deliberately *lossy about semantics* — no keywords, no type resolution —
//! and strict about lexical class: strings (plain, raw, byte), char
//! literals vs lifetimes, nested block comments, and float vs integer
//! literals are all distinguished, because the rules depend on those
//! boundaries being right.

use std::fmt;

/// Lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `unwrap`, `HashMap`, ...).
    Ident,
    /// A lifetime such as `'a` or `'static` (not a char literal).
    Lifetime,
    /// Integer literal, including hex/octal/binary and suffixed forms.
    Int,
    /// Float literal (`1.0`, `2e-9`, `1.`, `3.5f64`).
    Float,
    /// Plain `"..."` or byte `b"..."` string literal.
    Str,
    /// Raw string literal `r"..."`, `r#"..."#`, `br##"..."##`.
    RawStr,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// `// ...` line comment (including doc comments).
    LineComment,
    /// `/* ... */` block comment, nesting handled.
    BlockComment,
    /// Punctuation / operator, longest-match (`==`, `::`, `..=`, `->`, ...).
    Punct,
}

/// One lexed token: class, exact source text, 1-based line, byte span.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
    pub start: usize,
    pub end: usize,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}({})@{}", self.kind, self.text, self.line)
    }
}

/// Multi-character operators, longest first so greedy matching is correct.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "::", "->", "=>", "..", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Tokenizes `src`. Unterminated strings/comments produce a token running
/// to end of input rather than an error: the audit must keep scanning a
/// file a human is mid-edit on, and the compiler will reject it anyway.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;

    let push = |toks: &mut Vec<Token>, kind, start: usize, end: usize, line: usize| {
        toks.push(Token {
            kind,
            text: src[start..end].to_string(),
            line,
            start,
            end,
        });
    };

    while i < b.len() {
        let c = b[i];
        // Whitespace (line tracking).
        if c.is_ascii_whitespace() {
            if c == b'\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        let start = i;
        let start_line = line;

        // Comments.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            push(&mut toks, TokKind::LineComment, start, i, start_line);
            continue;
        }
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            i += 2;
            let mut depth = 1usize;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            push(&mut toks, TokKind::BlockComment, start, i, start_line);
            continue;
        }

        // Raw / byte strings: r"..."  r#"..."#  b"..."  br##"..."##  b'x'.
        if c == b'r' || c == b'b' {
            if let Some((end, nl, kind)) = try_string_like(b, i) {
                line += nl;
                i = end;
                push(&mut toks, kind, start, i, start_line);
                continue;
            }
        }

        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == b'_' {
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            push(&mut toks, TokKind::Ident, start, i, start_line);
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let (end, is_float) = lex_number(b, i);
            i = end;
            push(
                &mut toks,
                if is_float {
                    TokKind::Float
                } else {
                    TokKind::Int
                },
                start,
                i,
                start_line,
            );
            continue;
        }

        // Plain strings.
        if c == b'"' {
            let (end, nl) = skip_plain_string(b, i + 1);
            line += nl;
            i = end;
            push(&mut toks, TokKind::Str, start, i, start_line);
            continue;
        }

        // Char literal vs lifetime.
        if c == b'\'' {
            if is_lifetime(b, i) {
                i += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                push(&mut toks, TokKind::Lifetime, start, i, start_line);
            } else {
                i = skip_char_literal(b, i + 1);
                push(&mut toks, TokKind::Char, start, i, start_line);
            }
            continue;
        }

        // Punctuation, longest match first.
        let rest = &src[i..];
        let mut matched = false;
        for p in PUNCTS {
            if rest.starts_with(p) {
                i += p.len();
                push(&mut toks, TokKind::Punct, start, i, start_line);
                matched = true;
                break;
            }
        }
        if !matched {
            // Single byte of punctuation (or any unrecognised byte — UTF-8
            // continuation bytes only ever appear inside strings/comments in
            // this codebase, but consume defensively).
            i += 1;
            while i < b.len() && (b[i] & 0xC0) == 0x80 {
                i += 1; // finish a multi-byte scalar so text stays valid UTF-8
            }
            push(&mut toks, TokKind::Punct, start, i, start_line);
        }
    }
    toks
}

/// After an opening `'`: lifetime iff the next char starts an identifier
/// and the char after that identifier char is not a closing quote
/// (`'a'` is a char literal, `'a>` / `'a,` / `'static` are lifetimes).
fn is_lifetime(b: &[u8], i: usize) -> bool {
    let Some(&c1) = b.get(i + 1) else {
        return false;
    };
    if !(c1.is_ascii_alphabetic() || c1 == b'_') {
        return false;
    }
    b.get(i + 2) != Some(&b'\'')
}

/// Consumes a char literal body starting after the opening quote; returns
/// the index one past the closing quote.
fn skip_char_literal(b: &[u8], mut i: usize) -> usize {
    if i < b.len() && b[i] == b'\\' {
        i += 1;
        if i < b.len() {
            if b[i] == b'u' {
                // \u{...}
                i += 1;
                if i < b.len() && b[i] == b'{' {
                    while i < b.len() && b[i] != b'}' {
                        i += 1;
                    }
                }
            }
            i += 1;
        }
    } else if i < b.len() {
        i += 1;
        while i < b.len() && (b[i] & 0xC0) == 0x80 {
            i += 1;
        }
    }
    if i < b.len() && b[i] == b'\'' {
        i += 1;
    }
    i
}

/// Consumes a plain string body starting after the opening quote; returns
/// `(index past closing quote, newlines crossed)`.
fn skip_plain_string(b: &[u8], mut i: usize) -> (usize, usize) {
    let mut nl = 0usize;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return (i + 1, nl),
            b'\n' => {
                nl += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, nl)
}

/// At `r`/`b`: tries to lex a raw string, byte string, or byte char.
/// Returns `(end, newlines, kind)` or `None` when this is a plain ident.
fn try_string_like(b: &[u8], i: usize) -> Option<(usize, usize, TokKind)> {
    let mut j = i;
    let mut byte = false;
    if b[j] == b'b' {
        byte = true;
        j += 1;
    }
    if j < b.len() && b[j] == b'\'' && byte {
        // b'x'
        let end = skip_char_literal(b, j + 1);
        return Some((end, 0, TokKind::Char));
    }
    if j < b.len() && b[j] == b'"' && byte {
        let (end, nl) = skip_plain_string(b, j + 1);
        return Some((end, nl, TokKind::Str));
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
        let mut hashes = 0usize;
        while j < b.len() && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j < b.len() && b[j] == b'"' {
            j += 1;
            let mut nl = 0usize;
            // Scan for `"` followed by `hashes` hash marks.
            while j < b.len() {
                if b[j] == b'\n' {
                    nl += 1;
                }
                if b[j] == b'"' {
                    let mut k = j + 1;
                    let mut h = 0usize;
                    while k < b.len() && b[k] == b'#' && h < hashes {
                        h += 1;
                        k += 1;
                    }
                    if h == hashes {
                        return Some((k, nl, TokKind::RawStr));
                    }
                }
                j += 1;
            }
            return Some((j, nl, TokKind::RawStr)); // unterminated: to EOF
        }
        return None; // `r` / `br` followed by something else: identifier
    }
    None
}

/// Lexes a number starting at a digit; returns `(end, is_float)`.
fn lex_number(b: &[u8], mut i: usize) -> (usize, bool) {
    // Hex / octal / binary: always integers.
    if b[i] == b'0' && i + 1 < b.len() && matches!(b[i + 1], b'x' | b'o' | b'b') {
        i += 2;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        return (i, false);
    }
    let mut is_float = false;
    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
        i += 1;
    }
    // Fractional part: `1.5` and trailing-dot `1.` are floats, but `1.max`
    // (method call) and `1..n` (range) keep the integer.
    if i < b.len() && b[i] == b'.' {
        let next = b.get(i + 1);
        let method_or_range =
            matches!(next, Some(&c) if c.is_ascii_alphabetic() || c == b'_' || c == b'.');
        if !method_or_range {
            is_float = true;
            i += 1;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                i += 1;
            }
        }
    }
    // Exponent.
    if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
        let mut j = i + 1;
        if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
            j += 1;
        }
        if j < b.len() && b[j].is_ascii_digit() {
            is_float = true;
            i = j;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                i += 1;
            }
        }
    }
    // Suffix (`u32`, `f64`, ...): `f32`/`f64` force float.
    let sfx = i;
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
        i += 1;
    }
    if b[sfx..i].starts_with(b"f32") || b[sfx..i].starts_with(b"f64") {
        is_float = true;
    }
    (i, is_float)
}

/// Whether a float-literal token is textually exactly zero (`0.0`, `0.`,
/// `0e5`, `0_000.0f64`): every mantissa digit is `0`. Zero comparisons are
/// exact sparsity/structure tests and are exempt from the float-eq rule.
/// (Textual, so the audit itself needs no float arithmetic.)
pub fn float_literal_is_zero(text: &str) -> bool {
    let mantissa = text.split(['e', 'E', 'f']).next().unwrap_or("");
    mantissa.chars().all(|c| matches!(c, '0' | '.' | '_'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        let toks = kinds("for x in &mut m { x == 1 }");
        assert_eq!(toks[0], (TokKind::Ident, "for".into()));
        assert!(toks.contains(&(TokKind::Punct, "==".into())));
        assert!(toks.contains(&(TokKind::Punct, "&".into())));
    }

    #[test]
    fn floats_vs_ints_vs_method_calls() {
        assert_eq!(kinds("1.5")[0].0, TokKind::Float);
        assert_eq!(kinds("2e-9")[0].0, TokKind::Float);
        assert_eq!(kinds("3f64")[0].0, TokKind::Float);
        assert_eq!(kinds("0x1f")[0].0, TokKind::Int);
        assert_eq!(kinds("7u32")[0].0, TokKind::Int);
        // `1.max(2)` is an integer method call, `1..3` a range.
        let m = kinds("1.max(2)");
        assert_eq!(m[0], (TokKind::Int, "1".into()));
        assert_eq!(m[1], (TokKind::Punct, ".".into()));
        let r = kinds("1..3");
        assert_eq!(r[0].0, TokKind::Int);
        assert_eq!(r[1], (TokKind::Punct, "..".into()));
    }

    #[test]
    fn strings_hide_code() {
        let toks = kinds(r#"let s = "for x in map.iter() /* not a comment";"#);
        assert!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count() == 1);
        assert!(!toks.iter().any(|(_, t)| t == "iter"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"r#"inner "quoted" text"# x"###;
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokKind::RawStr);
        assert_eq!(toks[1], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still outer */ y");
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert_eq!(toks[1], (TokKind::Ident, "y".into()));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = kinds(
            "'a' 'x

 fn f<'b>(x: &'static str)",
        );
        assert_eq!(toks[0].0, TokKind::Char);
        assert_eq!(toks[1], (TokKind::Lifetime, "'x".into()));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "'static"));
    }

    #[test]
    fn line_numbers_track_all_multiline_tokens() {
        let src = "a\n\"two\nlines\"\nb /* c\nd */ e";
        let toks = lex(src);
        let find = |name: &str| toks.iter().find(|t| t.text == name).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("e"), 5);
    }

    #[test]
    fn zero_float_detection_is_textual() {
        for z in ["0.0", "0.", "0_0.0", "0e9", "0.000f64"] {
            assert!(float_literal_is_zero(z), "{z}");
        }
        for nz in ["1.0", "0.5", "1e-9", "2.", "0.01"] {
            assert!(!float_literal_is_zero(nz), "{nz}");
        }
    }

    #[test]
    fn every_non_whitespace_byte_is_covered() {
        let src = r##"fn main() { let r = r#"raw "str" here"#; /* a /* b */ c */ }"##;
        let toks = lex(src);
        let mut covered = vec![false; src.len()];
        for t in &toks {
            for c in covered.iter_mut().take(t.end).skip(t.start) {
                assert!(!*c, "overlapping tokens");
                *c = true;
            }
        }
        for (i, ch) in src.char_indices() {
            if !ch.is_whitespace() {
                assert!(covered[i], "byte {i} ({ch:?}) not covered");
            }
        }
    }
}
