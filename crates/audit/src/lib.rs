//! `sqpr-audit` — an in-repo determinism & no-panic lint pass.
//!
//! The SQPR reproduction's headline claims rest on invariants no ordinary
//! test can pin forever: bit-for-bit determinism (warm≡cold, threads N≡1,
//! preempted≡uninterrupted), a panic-free admission path, and accumulator
//! structs whose merges never silently drop a counter. This crate audits
//! the *source* for the coding patterns that historically broke those
//! invariants, using a dependency-free comment/string-aware Rust lexer and
//! a small rule engine with per-site waivers:
//!
//! ```text
//! // sqpr::allow(<rule>): <reason>
//! ```
//!
//! A waiver's reason is mandatory, it attaches to the same line or the next
//! code line (stacked waivers share the next code line), and an unused or
//! malformed waiver is itself an error — waivers cannot rot silently.
//!
//! Run it as a binary (`cargo run -p sqpr-audit -- --check .`) or through
//! the root `tests/audit_gate.rs` integration test, which makes a dirty
//! workspace fail `cargo test`.

pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{audit_source, audit_workspace, AuditReport, SourceFile, Violation, Waiver};
pub use lexer::{lex, TokKind, Token};
pub use rules::{registry, Rule};
