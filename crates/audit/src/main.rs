//! CLI for the audit: `sqpr-audit --check <root> [--verbose]`.
//!
//! Exit codes: 0 clean, 1 violations or waiver errors, 2 usage / IO error.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<String> = None;
    let mut verbose = false;
    let mut list_rules = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => {
                i += 1;
                root = args.get(i).cloned();
                if root.is_none() {
                    eprintln!("error: --check requires a path");
                    return ExitCode::from(2);
                }
            }
            "--verbose" | "-v" => verbose = true,
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                print_usage();
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    if list_rules {
        for rule in sqpr_audit::registry() {
            println!("{:<24} {}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }

    let Some(root) = root else {
        print_usage();
        return ExitCode::from(2);
    };

    let report = match sqpr_audit::audit_workspace(std::path::Path::new(&root)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: failed to scan `{root}`: {e}");
            return ExitCode::from(2);
        }
    };

    for err in &report.errors {
        println!("{err}");
    }
    for v in &report.violations {
        println!("{v}");
    }
    if verbose {
        for (v, reason) in &report.waived {
            println!("waived: {v} ({reason})");
        }
    }
    println!(
        "sqpr-audit: {} files, {} violation(s), {} waived, {} waiver error(s)",
        report.files_scanned,
        report.violations.len(),
        report.waived.len(),
        report.errors.len()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn print_usage() {
    eprintln!("usage: sqpr-audit --check <root> [--verbose] | --list-rules");
}
