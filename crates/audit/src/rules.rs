//! The rule set, grounded in this repo's bug history.
//!
//! | rule | hazard | history |
//! |------|--------|---------|
//! | `hash-iter` | hash-ordered iteration feeding row layout / float sums | PR 6's ±4% run-to-run noise |
//! | `hot-path-panic` | `unwrap`/`expect`/`panic!` on the admission path | PR 7's `PlannerError` contract |
//! | `ambient-nondeterminism` | wall clocks, random hash state, env reads | warm≡cold & thread-invariance suites |
//! | `float-eq` | `==`/`!=` against nonzero float constants | tolerance-ladder discipline (PR 3/7) |
//! | `exhaustive-merge` | field-wise accumulators silently dropping new counters | `PivotCounts`/`CacheStats` growth every PR |
//!
//! Every rule is a *lexical* approximation — no type inference — tuned to
//! have near-zero false positives on this codebase and documented false
//! negatives (e.g. `float-eq` cannot see `a == b` between two float
//! variables). The fixture corpus under `tests/fixtures/` pins each rule's
//! positive, negative and waived behaviour.

use crate::engine::{SourceFile, Violation};
use crate::lexer::{float_literal_is_zero, TokKind};

/// A single audit rule.
pub trait Rule {
    /// Stable kebab-case name (what waivers reference).
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules` and the docs table.
    fn description(&self) -> &'static str;
    /// Whether the rule audits the file at this repo-relative path.
    fn applies_to(&self, path: &str) -> bool;
    /// Scans a file; returned violations are waiver- and test-filtered by
    /// the engine.
    fn check(&self, file: &SourceFile) -> Vec<Violation>;
}

/// The full registered rule set.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(HashIter),
        Box::new(HotPathPanic),
        Box::new(AmbientNondeterminism),
        Box::new(FloatEq),
        Box::new(ExhaustiveMerge),
    ]
}

fn violation(rule: &'static str, file: &SourceFile, line: usize, message: String) -> Violation {
    Violation {
        rule,
        file: file.path.clone(),
        line,
        message,
    }
}

/// The planner stack: everything reachable from submit/replan/recovery.
fn planner_stack(path: &str) -> bool {
    [
        "crates/core/src",
        "crates/milp/src",
        "crates/lp/src",
        "crates/dsps/src",
    ]
    .iter()
    .any(|p| path.starts_with(p))
}

// ---------------------------------------------------------------------------
// hash-iter
// ---------------------------------------------------------------------------

/// Order-observing iteration over `HashMap`/`HashSet` bindings in the
/// numeric / model-building crates, where iteration order can reach LP row
/// layout or float accumulation (the PR 6 noise bug). Detection: collect
/// names bound or typed as hash containers in this file, then flag
/// `.iter()`-family calls and `for … in` loops over those names.
pub struct HashIter;

const ORDER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

impl Rule for HashIter {
    fn name(&self) -> &'static str {
        "hash-iter"
    }
    fn description(&self) -> &'static str {
        "no order-observing iteration over HashMap/HashSet in numeric/model-building crates"
    }
    fn applies_to(&self, path: &str) -> bool {
        planner_stack(path)
    }

    fn check(&self, f: &SourceFile) -> Vec<Violation> {
        // Pass 1: names bound to hash containers, from `name: HashMap<…>`
        // annotations (lets, fields, params) and `name = HashMap::new()`.
        let mut hash_bound: Vec<String> = Vec::new();
        for ci in 0..f.code.len() {
            let t = f.ctext(ci);
            if t != "HashMap" && t != "HashSet" {
                continue;
            }
            let mut j = ci;
            while j > 0 {
                j -= 1;
                match f.ctext(j) {
                    "::" | "std" | "collections" | "&" | "mut" => continue,
                    _ => break,
                }
            }
            let anchor = f.ctext(j);
            if anchor == ":" || anchor == "=" {
                if let Some(tok) = f.ct(j.wrapping_sub(1)) {
                    if tok.kind == TokKind::Ident && !hash_bound.contains(&tok.text) {
                        hash_bound.push(tok.text.clone());
                    }
                }
            }
        }
        if hash_bound.is_empty() {
            return Vec::new();
        }

        // Pass 2: order-observing uses.
        let mut out = Vec::new();
        for ci in 0..f.code.len() {
            let t = f.ct(ci).unwrap_or_else(|| unreachable!());
            if t.kind != TokKind::Ident {
                continue;
            }
            // `name.iter()` / `name.keys()` / …
            if hash_bound.contains(&t.text)
                && f.ctext(ci + 1) == "."
                && ORDER_METHODS.contains(&f.ctext(ci + 2))
                && f.ctext(ci + 3) == "("
            {
                out.push(violation(
                    self.name(),
                    f,
                    t.line,
                    format!(
                        "order-observing `.{}()` on hash-keyed `{}` — use BTreeMap/BTreeSet or sort before iterating",
                        f.ctext(ci + 2),
                        t.text
                    ),
                ));
            }
            // `for pat in [&[mut]] name {`
            if t.text == "for" {
                let mut j = ci + 1;
                let mut paren = 0i32;
                while j < f.code.len() && j < ci + 24 {
                    match f.ctext(j) {
                        "(" | "[" => paren += 1,
                        ")" | "]" => paren -= 1,
                        "in" if paren == 0 => break,
                        "{" => {
                            j = f.code.len();
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if j >= f.code.len() || f.ctext(j) != "in" {
                    continue;
                }
                let mut k = j + 1;
                while matches!(f.ctext(k), "&" | "mut") {
                    k += 1;
                }
                let Some(name) = f.ct(k) else { continue };
                if name.kind == TokKind::Ident
                    && hash_bound.contains(&name.text)
                    && f.ctext(k + 1) == "{"
                {
                    out.push(violation(
                        self.name(),
                        f,
                        name.line,
                        format!(
                            "for-loop over hash-keyed `{}` observes nondeterministic order",
                            name.text
                        ),
                    ));
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// hot-path-panic
// ---------------------------------------------------------------------------

/// No `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`
/// in the planner stack's shipped code — the submit/replan/recovery/
/// admission call graph must surface typed `PlannerError`s (PR 7 contract).
/// `assert!` is deliberately *not* flagged: asserts state caller-contract
/// preconditions (documented `# Panics` sections), not recoverable
/// planning failures.
pub struct HotPathPanic;

impl Rule for HotPathPanic {
    fn name(&self) -> &'static str {
        "hot-path-panic"
    }
    fn description(&self) -> &'static str {
        "no unwrap/expect/panic!/unreachable! in the submit/replan/recovery/admission stack"
    }
    fn applies_to(&self, path: &str) -> bool {
        planner_stack(path)
    }

    fn check(&self, f: &SourceFile) -> Vec<Violation> {
        let mut out = Vec::new();
        for ci in 0..f.code.len() {
            let Some(t) = f.ct(ci) else { break };
            if t.kind != TokKind::Ident {
                continue;
            }
            match t.text.as_str() {
                "unwrap" | "expect"
                    if ci > 0 && f.ctext(ci - 1) == "." && f.ctext(ci + 1) == "(" =>
                {
                    out.push(violation(
                        self.name(),
                        f,
                        t.line,
                        format!(
                            "`.{}()` on the planner stack — propagate a typed error instead",
                            t.text
                        ),
                    ));
                }
                "panic" | "unreachable" | "todo" | "unimplemented" if f.ctext(ci + 1) == "!" => {
                    out.push(violation(
                        self.name(),
                        f,
                        t.line,
                        format!(
                            "`{}!` on the planner stack — return a typed error instead",
                            t.text
                        ),
                    ));
                }
                _ => {}
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// ambient-nondeterminism
// ---------------------------------------------------------------------------

/// No ambient inputs — `Instant::now`, `SystemTime::now`, `RandomState`,
/// `env::var` — outside the sanctioned modules (bench timing, the env-read
/// config constructor, the seeded in-repo PRNG). Everything the planner
/// decides must be a function of its inputs; wall-clock deadlines that are
/// part of the documented SLO surface carry explicit waivers at each site.
pub struct AmbientNondeterminism;

/// Modules allowed to read ambient state, by path prefix.
const AMBIENT_SANCTIONED: &[&str] = &[
    "crates/bench/src",           // timing harness: measuring wall time is the point
    "crates/core/src/config.rs",  // env-driven PlannerConfig defaults (SQPR_LP_THREADS, …)
    "crates/workload/src/rng.rs", // the seeded PRNG module itself
];

impl Rule for AmbientNondeterminism {
    fn name(&self) -> &'static str {
        "ambient-nondeterminism"
    }
    fn description(&self) -> &'static str {
        "no Instant::now/SystemTime::now/RandomState/env::var outside sanctioned modules"
    }
    fn applies_to(&self, path: &str) -> bool {
        !AMBIENT_SANCTIONED.iter().any(|p| path.starts_with(p))
    }

    fn check(&self, f: &SourceFile) -> Vec<Violation> {
        let mut out = Vec::new();
        for ci in 0..f.code.len() {
            let Some(t) = f.ct(ci) else { break };
            if t.kind != TokKind::Ident {
                continue;
            }
            let hit = match t.text.as_str() {
                "Instant" | "SystemTime" if f.ctext(ci + 1) == "::" && f.ctext(ci + 2) == "now" => {
                    Some(format!("{}::now()", t.text))
                }
                "RandomState" => Some("RandomState".to_string()),
                "env"
                    if f.ctext(ci + 1) == "::"
                        && matches!(f.ctext(ci + 2), "var" | "var_os" | "vars") =>
                {
                    Some(format!("env::{}", f.ctext(ci + 2)))
                }
                _ => None,
            };
            if let Some(what) = hit {
                out.push(violation(
                    self.name(),
                    f,
                    t.line,
                    format!("ambient input `{what}` outside sanctioned modules"),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// float-eq
// ---------------------------------------------------------------------------

/// No `==`/`!=` against nonzero float constants (literals, `INFINITY`,
/// `NAN`). Exact-zero comparisons are exempt: `x != 0.0` is a sparsity /
/// structure test on exactly-represented values, which the LP kernels use
/// deliberately and deterministically. A lexical rule cannot see
/// `a == b` between two float *variables*; the bit-exactness suites and
/// clippy's `float_cmp` remain the backstop there.
pub struct FloatEq;

impl Rule for FloatEq {
    fn name(&self) -> &'static str {
        "float-eq"
    }
    fn description(&self) -> &'static str {
        "no ==/!= against nonzero float constants (use tolerances or bit comparisons)"
    }
    fn applies_to(&self, _path: &str) -> bool {
        true
    }

    fn check(&self, f: &SourceFile) -> Vec<Violation> {
        let mut out = Vec::new();
        for ci in 0..f.code.len() {
            let Some(op) = f.ct(ci) else { break };
            if op.kind != TokKind::Punct || (op.text != "==" && op.text != "!=") {
                continue;
            }
            // Left operand: the token just before the operator.
            let lhs_hit = f.ct(ci.wrapping_sub(1)).is_some_and(|t| {
                (t.kind == TokKind::Float && !float_literal_is_zero(&t.text))
                    || (t.kind == TokKind::Ident
                        && matches!(t.text.as_str(), "INFINITY" | "NEG_INFINITY" | "NAN"))
            });
            // Right operand: skip one unary minus / a `f64::` path prefix.
            let mut j = ci + 1;
            if f.ctext(j) == "-" {
                j += 1;
            }
            if f.ctext(j + 1) == "::" {
                j += 2; // `f64::INFINITY`, `std::f64::NAN`, …
            }
            let rhs_hit = f.ct(j).is_some_and(|t| {
                (t.kind == TokKind::Float && !float_literal_is_zero(&t.text))
                    || (t.kind == TokKind::Ident
                        && matches!(t.text.as_str(), "INFINITY" | "NEG_INFINITY" | "NAN"))
            });
            if lhs_hit || rhs_hit {
                out.push(violation(
                    self.name(),
                    f,
                    op.line,
                    format!(
                        "`{}` against a nonzero float constant — compare within a tolerance or on bits",
                        op.text
                    ),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// exhaustive-merge
// ---------------------------------------------------------------------------

/// Accumulator merge functions — `fn merge(&mut self, other: &T)` /
/// `fn add(&mut self, other: &T)` with no return value — must either
/// exhaustively destructure the counter struct (`let T { a, b, c } = …`
/// with **no** `..` rest pattern, so a newly added field is a compile
/// error, not a silently dropped stat) or be a pure one-line delegation to
/// such a method (`self.merge(other)`).
pub struct ExhaustiveMerge;

impl Rule for ExhaustiveMerge {
    fn name(&self) -> &'static str {
        "exhaustive-merge"
    }
    fn description(&self) -> &'static str {
        "accumulator merge fns must exhaustively destructure (new field => compile error)"
    }
    fn applies_to(&self, _path: &str) -> bool {
        true
    }

    fn check(&self, f: &SourceFile) -> Vec<Violation> {
        let mut out = Vec::new();
        let mut ci = 0usize;
        while ci < f.code.len() {
            ci += 1;
            let i = ci - 1;
            if f.ctext(i) != "fn" || !matches!(f.ctext(i + 1), "merge" | "add") {
                continue;
            }
            let fn_name = f.ctext(i + 1).to_string();
            let fn_line = f.ct(i).map_or(0, |t| t.line);
            // Signature shape: ( & mut self , <param> : & [path::]Type )
            if f.ctext(i + 2) != "("
                || f.ctext(i + 3) != "&"
                || f.ctext(i + 4) != "mut"
                || f.ctext(i + 5) != "self"
                || f.ctext(i + 6) != ","
            {
                continue;
            }
            let param = f.ctext(i + 7).to_string();
            if f.ctext(i + 8) != ":" || f.ctext(i + 9) != "&" {
                continue;
            }
            // Walk the type path to its last segment and the closing paren.
            let mut j = i + 10;
            let mut type_last = String::new();
            while j < f.code.len() && f.ctext(j) != ")" {
                if f.ct(j).is_some_and(|t| t.kind == TokKind::Ident) {
                    type_last = f.ctext(j).to_string();
                }
                j += 1;
            }
            // Only unit-returning accumulators: `) {`.
            if f.ctext(j) != ")" || f.ctext(j + 1) != "{" {
                continue;
            }
            let body_start = j + 1;
            let mut depth = 0usize;
            let mut body_end = body_start;
            while body_end < f.code.len() {
                match f.ctext(body_end) {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                body_end += 1;
            }
            let body = body_start + 1..body_end;

            // Compliance 1: exhaustive destructure `let [&]Self|Type { … }`
            // containing no `..` before its closing brace.
            let mut compliant = false;
            for k in body.clone() {
                if f.ctext(k) != "let" {
                    continue;
                }
                let mut m = k + 1;
                if f.ctext(m) == "&" {
                    m += 1;
                }
                let head = f.ctext(m);
                if (head == "Self" || head == type_last) && f.ctext(m + 1) == "{" {
                    let mut d = 0usize;
                    let mut has_rest = false;
                    let mut p = m + 1;
                    while p < body_end {
                        match f.ctext(p) {
                            "{" => d += 1,
                            "}" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            ".." | "..=" => has_rest = true,
                            _ => {}
                        }
                        p += 1;
                    }
                    if !has_rest {
                        compliant = true;
                        break;
                    }
                }
            }
            // Compliance 2: pure delegation `self.m(<param>);`.
            if !compliant {
                let toks: Vec<&str> = body.clone().map(|k| f.ctext(k)).collect();
                if let ["self", ".", m, "(", p, ")", ";"] = toks.as_slice() {
                    if matches!(*m, "merge" | "add") && *m != fn_name && *p == param {
                        compliant = true;
                    }
                }
            }
            if !compliant {
                out.push(violation(
                    self.name(),
                    f,
                    fn_line,
                    format!(
                        "`fn {fn_name}(&mut self, {param}: &{type_last})` must exhaustively destructure \
                         `{type_last}` (no `..`) so a new field is a compile error, not a dropped stat"
                    ),
                ));
            }
            ci = body_end.max(ci);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::audit_source;

    const LABEL: &str = "crates/core/src/demo.rs";

    fn rules_fired(src: &str) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = audit_source(LABEL, src)
            .violations
            .into_iter()
            .map(|v| v.rule)
            .collect();
        v.dedup();
        v
    }

    #[test]
    fn hash_iter_flags_iteration_not_lookup() {
        let src = "use std::collections::HashMap;\n\
             fn f(m: &HashMap<u32, f64>) -> f64 {\n\
                 let mut s = 0.0;\n\
                 for (_, v) in m { s += v; }\n\
                 s + m.get(&1).copied().unwrap_or(0.0)\n\
             }\n";
        assert_eq!(rules_fired(src), vec!["hash-iter"]);
        let ok = src.replace("HashMap", "BTreeMap");
        assert!(rules_fired(&ok).is_empty());
    }

    #[test]
    fn hash_iter_sees_through_field_and_let_bindings() {
        let src = "struct S { memo: std::collections::HashMap<u64, f64> }\n\
             impl S { fn g(&self) -> usize { self.memo.keys().count() } }\n";
        assert_eq!(rules_fired(src), vec!["hash-iter"]);
    }

    #[test]
    fn hot_path_panic_catches_all_forms() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                 if x.is_none() { panic!(\"no\"); }\n\
                 x.unwrap()\n\
             }\n";
        let r = audit_source(LABEL, src);
        assert_eq!(r.violations.len(), 2);
        // unwrap_or_else is not flagged.
        assert!(audit_source(
            LABEL,
            "fn f(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) }\n"
        )
        .violations
        .is_empty());
    }

    #[test]
    fn ambient_rule_respects_sanctioned_modules() {
        let src = "fn t() -> std::time::Instant { Instant::now() }\n";
        assert_eq!(rules_fired(src), vec!["ambient-nondeterminism"]);
        assert!(
            audit_source("crates/bench/src/timing.rs", src)
                .violations
                .is_empty(),
            "bench timing is sanctioned"
        );
    }

    #[test]
    fn float_eq_exempts_exact_zero() {
        assert!(rules_fired("fn f(x: f64) -> bool { x != 0.0 }\n").is_empty());
        assert_eq!(
            rules_fired("fn f(x: f64) -> bool { x == 1.5 }\n"),
            vec!["float-eq"]
        );
        assert_eq!(
            rules_fired("fn f(x: f64) -> bool { x == f64::INFINITY }\n"),
            vec!["float-eq"]
        );
    }

    #[test]
    fn exhaustive_merge_accepts_destructure_and_delegation() {
        let bad = "struct C { a: usize, b: usize }\n\
             impl C { fn merge(&mut self, other: &C) { self.a += other.a; self.b += other.b; } }\n";
        assert_eq!(rules_fired(bad), vec!["exhaustive-merge"]);
        let good = "struct C { a: usize, b: usize }\n\
             impl C {\n\
                 fn merge(&mut self, other: &C) { let C { a, b } = *other; self.a += a; self.b += b; }\n\
                 fn add(&mut self, other: &C) { self.merge(other); }\n\
             }\n";
        assert!(rules_fired(good).is_empty());
        let rest = "struct C { a: usize, b: usize }\n\
             impl C { fn merge(&mut self, other: &C) { let C { a, .. } = *other; self.a += a; } }\n";
        assert_eq!(rules_fired(rest), vec!["exhaustive-merge"]);
    }
}
