//! Meta-tests over the fixture corpus in `tests/fixtures/<rule>/`.
//!
//! Every registered rule must (a) fire on its `positive.rs` fixture,
//! (b) stay silent on its `negative.rs` near-misses, and (c) come out
//! clean-but-recorded on its `waived.rs` fixture. The loop runs over
//! [`sqpr_audit::registry`], so adding a rule without fixtures fails here —
//! the corpus can't fall behind the rule set.

use std::fs;
use std::path::PathBuf;

use sqpr_audit::{audit_source, registry};

/// A path every rule's `applies_to` accepts (the planner stack is the
/// narrowest scope in the registry).
const LABEL: &str = "crates/core/src/fixture.rs";

fn fixture(rule: &str, kind: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule)
        .join(format!("{kind}.rs"));
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn every_rule_fires_on_its_positive_fixture() {
    for rule in registry() {
        let report = audit_source(LABEL, &fixture(rule.name(), "positive"));
        assert!(
            report.violations.iter().any(|v| v.rule == rule.name()),
            "rule `{}` did not fire on its positive fixture; got: {:?}",
            rule.name(),
            report.violations
        );
        assert!(
            report.violations.iter().all(|v| v.rule == rule.name()),
            "positive fixture for `{}` trips other rules: {:?}",
            rule.name(),
            report.violations
        );
        assert!(report.errors.is_empty(), "{:?}", report.errors);
    }
}

#[test]
fn every_rule_is_silent_on_its_negative_fixture() {
    for rule in registry() {
        let report = audit_source(LABEL, &fixture(rule.name(), "negative"));
        assert!(
            report.violations.is_empty() && report.errors.is_empty(),
            "negative fixture for `{}` is not clean: {:?} {:?}",
            rule.name(),
            report.violations,
            report.errors
        );
    }
}

#[test]
fn every_rule_is_cleanly_waived_in_its_waived_fixture() {
    for rule in registry() {
        let report = audit_source(LABEL, &fixture(rule.name(), "waived"));
        assert!(
            report.is_clean(),
            "waived fixture for `{}` is not clean: {:?} {:?}",
            rule.name(),
            report.violations,
            report.errors
        );
        assert!(
            report.waived.iter().any(|(v, _)| v.rule == rule.name()),
            "waived fixture for `{}` recorded no waived violation of it: {:?}",
            rule.name(),
            report.waived
        );
        assert!(
            report.waived.iter().all(|(_, reason)| !reason.is_empty()),
            "a waiver without a reason slipped through"
        );
    }
}

#[test]
fn positive_violations_survive_an_unrelated_waiver() {
    // A waiver for rule A must not silence rule B on the same line.
    let src = "use std::collections::HashMap;\n\
         pub fn f(m: &HashMap<u32, f64>) -> f64 {\n\
             let mut s = 0.0;\n\
             // sqpr::allow(float-eq): wrong rule on purpose\n\
             for (_, v) in m { s += v; }\n\
             s\n\
         }\n";
    let report = audit_source(LABEL, src);
    assert!(report.violations.iter().any(|v| v.rule == "hash-iter"));
    // ... and the unrelated waiver is flagged as unused.
    assert!(
        report.errors.iter().any(|e| e.contains("unused waiver")),
        "{:?}",
        report.errors
    );
}
