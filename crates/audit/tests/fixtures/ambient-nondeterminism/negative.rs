// Fixture: deadlines and budgets passed in by the caller (must stay
// silent) — the planner is a pure function of its inputs; test modules may
// read clocks freely.
use std::time::{Duration, Instant};

pub fn expired(deadline: Option<Instant>, now: Instant) -> bool {
    deadline.is_some_and(|d| now >= d)
}

pub fn remaining(budget: Duration, used: Duration) -> Duration {
    budget.saturating_sub(used)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expiry() {
        let now = Instant::now();
        assert!(expired(Some(now), now));
    }
}
