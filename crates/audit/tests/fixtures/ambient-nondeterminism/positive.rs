// Fixture: ambient inputs outside the sanctioned modules (must fire).
use std::collections::hash_map::RandomState;
use std::time::{Instant, SystemTime};

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn wall() -> SystemTime {
    SystemTime::now()
}

pub fn hasher() -> RandomState {
    RandomState::new()
}

pub fn tuning() -> Option<String> {
    std::env::var("SQPR_SECRET_TUNING").ok()
}
