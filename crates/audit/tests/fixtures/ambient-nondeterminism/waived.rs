// Fixture: an SLO wall-clock read carrying a waiver (must be clean, with
// the violation recorded as waived).
use std::time::Instant;

pub fn deadline_from_slo(slo_millis: u64) -> Instant {
    // sqpr::allow(ambient-nondeterminism): caller-facing SLO deadline; timing affects only when we stop, never what we compute
    Instant::now() + std::time::Duration::from_millis(slo_millis)
}
