// Fixture: exhaustive destructure and pure delegation (must stay silent).
pub struct Counters {
    pub hits: usize,
    pub misses: usize,
}

impl Counters {
    pub fn merge(&mut self, other: &Counters) {
        let Counters { hits, misses } = *other;
        self.hits += hits;
        self.misses += misses;
    }

    pub fn add(&mut self, other: &Counters) {
        self.merge(other);
    }
}

// Non-accumulator shapes the rule must not match: `&self` deltas and
// value-returning combiners construct a fresh struct exhaustively anyway.
impl Counters {
    pub fn since(&self, earlier: &Counters) -> Counters {
        Counters {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }
}
