// Fixture: field-wise accumulator merges without a destructure (must fire
// on both; a newly added counter would be silently dropped).
pub struct Counters {
    pub hits: usize,
    pub misses: usize,
}

impl Counters {
    pub fn merge(&mut self, other: &Counters) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

pub struct Totals {
    pub rows: usize,
}

impl Totals {
    pub fn add(&mut self, other: &Totals) {
        // A rest pattern defeats the point: new fields no longer error.
        let Totals { rows, .. } = *other;
        self.rows += rows;
    }
}
