// Fixture: a field-wise merge carrying a waiver (must be clean, with the
// violation recorded as waived).
pub struct Window {
    pub lo: f64,
    pub hi: f64,
}

impl Window {
    // sqpr::allow(exhaustive-merge): interval hull, not an accumulator; a new field here changes the type's meaning and is caught by construction sites
    pub fn merge(&mut self, other: &Window) {
        self.lo = self.lo.min(other.lo);
        self.hi = self.hi.max(other.hi);
    }
}
