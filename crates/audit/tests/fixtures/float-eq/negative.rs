// Fixture: exact-zero structure tests and tolerance comparisons (must stay
// silent) — `!= 0.0` on exactly-represented values is the LP kernels'
// sparsity test, and tolerances are the sanctioned way to compare
// computed floats.
pub fn is_structural_zero(x: f64) -> bool {
    x == 0.0
}

pub fn nonzero_entry(x: f64) -> bool {
    x != 0.0
}

pub fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

pub fn same_bits(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

pub fn int_compare(n: usize) -> bool {
    n == 10
}
