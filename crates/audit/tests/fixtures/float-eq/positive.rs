// Fixture: equality against nonzero float constants (must fire).
pub fn is_unit(x: f64) -> bool {
    x == 1.0
}

pub fn not_half(x: f64) -> bool {
    x != 0.5
}

pub fn is_negative_one(x: f64) -> bool {
    x == -1.0
}

pub fn unbounded(ub: f64) -> bool {
    ub == f64::INFINITY
}
