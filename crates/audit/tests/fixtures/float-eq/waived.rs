// Fixture: an exactly-represented sentinel comparison carrying a waiver
// (must be clean, with the violation recorded as waived).
pub fn is_unset(slot: f64) -> bool {
    // sqpr::allow(float-eq): -1.0 is an exactly-represented sentinel written verbatim, never computed; bit-exact equality is intended
    slot == -1.0
}
