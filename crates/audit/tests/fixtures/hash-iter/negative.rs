// Fixture: ordered iteration and pure point lookups (must stay silent).
use std::collections::{BTreeMap, HashMap};

pub fn sum_rates(rates: &BTreeMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    for (_, r) in rates {
        total += r;
    }
    total
}

pub fn lookup(memo: &HashMap<u64, f64>, key: u64) -> f64 {
    memo.get(&key).copied().unwrap_or(0.0)
}

pub fn sorted_keys(memo: &HashMap<u64, f64>) -> Vec<u64> {
    // Materialise-and-sort is the sanctioned escape hatch when a hash map
    // must be walked: collect first, sort, then iterate the Vec.
    let mut keys: Vec<u64> = Vec::new();
    let mut k = 0u64;
    while (k as usize) < memo.len() {
        keys.push(k);
        k += 1;
    }
    keys.sort_unstable();
    keys
}
