// Fixture: order-observing iteration over hash containers (must fire).
use std::collections::{HashMap, HashSet};

pub fn sum_rates(rates: &HashMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    for (_, r) in rates {
        total += r;
    }
    total
}

pub struct Index {
    seen: HashSet<u64>,
}

impl Index {
    pub fn first_key(&self) -> Option<u64> {
        self.seen.iter().next().copied()
    }

    pub fn drop_even(&mut self) {
        self.seen.retain(|k| k % 2 == 1);
    }
}
