// Fixture: the same iteration, carrying a written waiver (must be clean,
// with the violation recorded as waived).
use std::collections::HashMap;

pub fn count_entries(rates: &HashMap<u32, f64>) -> usize {
    let mut n = 0;
    // sqpr::allow(hash-iter): order-insensitive count; no float accumulation or layout depends on visit order
    for (_, _r) in rates {
        n += 1;
    }
    n
}
