// Fixture: typed errors and defaulting combinators (must stay silent);
// asserts state caller contracts and are deliberately out of scope, and
// test modules may panic freely.
#[derive(Debug)]
pub enum PlanError {
    Empty,
    OutOfRange(usize),
}

pub fn pick(v: &[f64]) -> Result<f64, PlanError> {
    v.first().copied().ok_or(PlanError::Empty)
}

pub fn lookup(table: &[u32], i: usize) -> Result<u32, PlanError> {
    assert!(!table.is_empty(), "caller contract: non-empty table");
    table.get(i).copied().ok_or(PlanError::OutOfRange(i))
}

pub fn rate_or_zero(r: Option<f64>) -> f64 {
    r.unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_first() {
        assert_eq!(pick(&[2.0]).unwrap(), 2.0);
    }
}
