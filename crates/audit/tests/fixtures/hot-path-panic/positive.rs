// Fixture: panics on the planner stack (must fire on every form).
pub fn pick(v: &[f64]) -> f64 {
    if v.is_empty() {
        panic!("empty");
    }
    v.first().copied().unwrap()
}

pub fn route(kind: u8) -> &'static str {
    match kind {
        0 => "greedy",
        1 => "solver",
        _ => unreachable!("unknown planner kind"),
    }
}

pub fn lookup(table: &[u32], i: usize) -> u32 {
    *table.get(i).expect("index in range")
}
