// Fixture: a by-construction-impossible branch carrying a waiver (must be
// clean, with the violation recorded as waived).
pub fn halve(n: u32) -> u32 {
    let doubled = n.checked_mul(2);
    // sqpr::allow(hot-path-panic): checked_mul(2) on a u32 halved below cannot overflow here; no caller to surface the impossible case to
    doubled.expect("no overflow") / 4
}
