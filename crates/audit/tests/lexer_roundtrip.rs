//! Round-trip property of the lexer on pathological input: every token's
//! span reproduces its text verbatim, every non-whitespace byte belongs to
//! exactly one token, and nested raw strings / block comments neither leak
//! code into comments nor comments into code.

use sqpr_audit::{lex, TokKind};

const GNARLY: &str = r####"
// line comment with /* an unclosed opener and "a quote
/* block /* nested /* deeply */ still */ comment with "quotes" and r#"raw"# */
fn main() {
    let s = r##"raw with "# inside, a fake */ closer and // slashes"##;
    let t = "escaped \" quote and \\ backslash";
    let b = b"bytes" ;
    let rb = br#"raw bytes "with quotes""#;
    let c = '"';
    let nl = '\n';
    let lt: &'static str = s;
    let f = 1.5e-3_f64;
    let i = 0x_ff_u32;
    let range = 1..3;
    let m = 1.max(2);
}
"####;

#[test]
fn spans_reproduce_text_exactly() {
    for tok in lex(GNARLY) {
        assert_eq!(
            &GNARLY[tok.start..tok.end],
            tok.text,
            "span/text mismatch for {:?} at line {}",
            tok.kind,
            tok.line
        );
    }
}

#[test]
fn every_non_whitespace_byte_in_exactly_one_token() {
    let mut covered = vec![false; GNARLY.len()];
    for tok in lex(GNARLY) {
        for slot in covered.iter_mut().take(tok.end).skip(tok.start) {
            assert!(!*slot, "byte covered twice in {:?}", tok.text);
            *slot = true;
        }
    }
    // Whitespace *inside* tokens (comments, strings) is covered; whitespace
    // between tokens is not. Non-whitespace must always be covered.
    for (i, (&c, byte)) in covered.iter().zip(GNARLY.bytes()).enumerate() {
        if !byte.is_ascii_whitespace() {
            assert!(c, "non-whitespace byte {i} ({:?}) uncovered", byte as char);
        }
    }
}

#[test]
fn nested_constructs_classified_correctly() {
    let toks = lex(GNARLY);
    // The nested block comment is ONE comment token containing the fake
    // closers; the raw string is ONE string token containing `*/` and `//`.
    assert_eq!(
        toks.iter()
            .filter(|t| t.kind == TokKind::BlockComment)
            .count(),
        1
    );
    let raws: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::RawStr).collect();
    assert!(raws.iter().any(|t| t.text.contains("fake */ closer")));
    assert!(raws.iter().any(|t| t.text.contains("raw bytes")));
    // `'"'` and `'\n'` are chars; `'static` is a lifetime.
    assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    assert!(toks
        .iter()
        .any(|t| t.kind == TokKind::Lifetime && t.text == "'static"));
    // `1.5e-3_f64` is a float; `1` in `1..3` and `1.max(2)` are ints.
    assert!(toks
        .iter()
        .any(|t| t.kind == TokKind::Float && t.text == "1.5e-3_f64"));
    assert!(!toks
        .iter()
        .any(|t| t.kind == TokKind::Float && (t.text == "1." || t.text == "1")));
}
