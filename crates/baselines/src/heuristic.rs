//! The hand-crafted heuristic planner of the evaluation (paper §V-A),
//! "inspired by existing approaches" (ref. 15 of the paper: Ahmad et al.,
//! source-placement strategies).
//!
//! For each new query it enumerates all abstract plans; for each abstract
//! plan and each host `h`, it tries to implement the plan *entirely at* `h`,
//! aggressively reusing existing streams: any sub-query result that already
//! exists in the system is transferred instead of recomputed, and complete
//! sub-queries are preferred over base streams. Every feasible candidate is
//! scored with the same weighted objective as SQPR and the best one is
//! deployed. The heuristic never revisits previous allocation decisions and
//! never spreads a query's new operators over multiple hosts — the two
//! deficiencies the paper attributes to it.

use std::collections::BTreeSet;

use sqpr_core::ObjectiveWeights;
use sqpr_dsps::{Catalog, DeploymentState, HostId, OperatorId, QueryId, StreamId};

use crate::trees::{enumerate_trees, JoinTree};

/// A feasible single-host implementation of one abstract plan.
#[derive(Debug, Clone)]
struct Candidate {
    host: HostId,
    /// Operators to instantiate at `host` (topological order).
    ops: Vec<OperatorId>,
    /// Streams to transfer in: `(from, stream)`.
    transfers: Vec<(HostId, StreamId)>,
    score: f64,
}

/// The heuristic planner.
pub struct HeuristicPlanner {
    catalog: Catalog,
    state: DeploymentState,
    weights: ObjectiveWeights,
    next_query: u32,
}

impl HeuristicPlanner {
    pub fn new(catalog: Catalog) -> Self {
        let weights = ObjectiveWeights::paper_defaults(&catalog);
        HeuristicPlanner {
            catalog,
            state: DeploymentState::new(),
            weights,
            next_query: 0,
        }
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn state(&self) -> &DeploymentState {
        &self.state
    }

    pub fn num_admitted(&self) -> usize {
        self.state.num_admitted()
    }

    /// Submits a k-way join; returns whether it was admitted.
    pub fn submit(&mut self, bases: &[StreamId]) -> bool {
        let q = QueryId(self.next_query);
        self.next_query += 1;

        // Intern the full plan space (same vocabulary as SQPR).
        let trees = enumerate_trees(bases);
        let interned: Vec<_> = trees
            .iter()
            .map(|t| (t.clone(), t.intern(&mut self.catalog, 0)))
            .collect();
        let result = interned[0].1.root;

        // Result already provided: free admission (same rule as SQPR).
        if self.state.provider_of(result).is_some() {
            self.state.admit_query(q, result);
            return true;
        }

        let mut best: Option<Candidate> = None;
        for (tree, it) in &interned {
            for h in self.catalog.hosts() {
                if let Some(c) = self.try_implement(tree, it.root, h) {
                    if best.as_ref().is_none_or(|b| c.score > b.score) {
                        best = Some(c);
                    }
                }
            }
        }
        let Some(c) = best else {
            return false;
        };

        // Deploy.
        for &(from, s) in &c.transfers {
            self.state.add_flow(from, c.host, s);
            self.state.add_available(c.host, s);
        }
        for &o in &c.ops {
            self.state.add_placement(c.host, o);
            self.state
                .add_available(c.host, self.catalog.operator(o).output);
        }
        self.state.set_provided(result, c.host);
        self.state.admit_query(q, result);
        debug_assert!(
            self.state.is_valid(&self.catalog),
            "{:?}",
            self.state.validate(&self.catalog)
        );
        true
    }

    /// Attempts to implement `tree` at host `h` with aggressive reuse.
    fn try_implement(&self, tree: &JoinTree, result: StreamId, h: HostId) -> Option<Candidate> {
        let mut ops = Vec::new();
        let mut transfers: Vec<(HostId, StreamId)> = Vec::new();
        let mut local: BTreeSet<StreamId> = BTreeSet::new();
        if !self.cover(tree, h, &mut ops, &mut transfers, &mut local) {
            return None;
        }
        // Deduplicate transfers (a stream may feed several operators).
        transfers.sort();
        transfers.dedup();

        // Feasibility against residual resources.
        let cpu = self.state.cpu_usage(&self.catalog);
        let net = self.state.net_usage(&self.catalog);
        let links = self.state.link_usage(&self.catalog);
        let added_cpu: f64 = ops.iter().map(|&o| self.catalog.operator(o).cpu_cost).sum();
        if cpu[h.index()] + added_cpu > self.catalog.host(h).cpu_capacity + 1e-9 {
            return None;
        }
        let mut in_add = 0.0;
        let mut out_add = vec![0.0; self.catalog.num_hosts()];
        for &(from, s) in &transfers {
            let rate = self.catalog.stream(s).rate;
            in_add += rate;
            out_add[from.index()] += rate;
            let used = links.get(&(from, h)).copied().unwrap_or(0.0);
            if used + rate > self.catalog.topology().link(from, h) + 1e-9 {
                return None;
            }
        }
        // Client delivery of the result stream leaves from h.
        out_add[h.index()] += self.catalog.stream(result).rate;
        if net[h.index()].1 + in_add > self.catalog.host(h).bandwidth_in + 1e-9 {
            return None;
        }
        for g in self.catalog.hosts() {
            if out_add[g.index()] > 0.0
                && net[g.index()].0 + out_add[g.index()] > self.catalog.host(g).bandwidth_out + 1e-9
            {
                return None;
            }
        }

        // Score with the SQPR weighted objective (delta form).
        let transfer_rate: f64 = transfers
            .iter()
            .map(|&(_, s)| self.catalog.stream(s).rate)
            .sum();
        let new_max_cpu = self
            .catalog
            .hosts()
            .map(|g| cpu[g.index()] + if g == h { added_cpu } else { 0.0 })
            .fold(0.0f64, f64::max);
        let w = self.weights;
        let score =
            w.lambda1 - w.lambda2 * transfer_rate - w.lambda3 * added_cpu - w.lambda4 * new_max_cpu;
        Some(Candidate {
            host: h,
            ops,
            transfers,
            score,
        })
    }

    /// Ensures the output of `tree` exists at `h`, preferring (in order):
    /// already local; transfer of the complete sub-query result; local
    /// recursive computation. Returns false when impossible.
    fn cover(
        &self,
        tree: &JoinTree,
        h: HostId,
        ops: &mut Vec<OperatorId>,
        transfers: &mut Vec<(HostId, StreamId)>,
        local: &mut BTreeSet<StreamId>,
    ) -> bool {
        let out = self.tree_output(tree);
        if local.contains(&out) {
            return true;
        }
        // Already available at h in the current deployment?
        if self.state.is_available(h, out) || self.catalog.is_base_at(out, h) {
            local.insert(out);
            return true;
        }
        // Aggressive reuse: transfer the complete sub-query if it exists
        // anywhere (paper: "favouring the transfer of complete sub-queries
        // over base streams").
        if let Some(from) = self.pick_sender(out, h) {
            transfers.push((from, out));
            local.insert(out);
            return true;
        }
        match tree {
            JoinTree::Leaf(_) => false, // base stream unavailable anywhere
            JoinTree::Node(l, r) => {
                if !self.cover(l, h, ops, transfers, local) {
                    return false;
                }
                if !self.cover(r, h, ops, transfers, local) {
                    return false;
                }
                let ls = self.tree_output(l);
                let rs = self.tree_output(r);
                let Some(op) = self.find_operator(out, ls, rs) else {
                    return false;
                };
                ops.push(op);
                local.insert(out);
                true
            }
        }
    }

    fn tree_output(&self, tree: &JoinTree) -> StreamId {
        match tree {
            JoinTree::Leaf(s) => *s,
            JoinTree::Node(l, r) => {
                let ls = self.tree_output(l);
                let rs = self.tree_output(r);
                let lb = self.catalog.base_set(ls);
                let rb = self.catalog.base_set(rs);
                let union: BTreeSet<StreamId> = lb.union(&rb).copied().collect();
                self.catalog
                    .find_stream(&sqpr_dsps::StreamSignature::Join {
                        bases: union,
                        tag: 0,
                    })
                    .expect("plan space interned before cover()")
            }
        }
    }

    fn find_operator(&self, out: StreamId, left: StreamId, right: StreamId) -> Option<OperatorId> {
        let mut inputs = [left, right];
        inputs.sort();
        self.catalog
            .producers_of(out)
            .iter()
            .copied()
            .find(|&o| self.catalog.operator(o).inputs == inputs)
    }

    /// Chooses a sender for `s` to `h`: any host that has it, preferring
    /// most spare outgoing bandwidth (base sources count as having it).
    fn pick_sender(&self, s: StreamId, h: HostId) -> Option<HostId> {
        let net = self.state.net_usage(&self.catalog);
        let mut best: Option<(HostId, f64)> = None;
        let mut consider = |g: HostId| {
            if g == h {
                return;
            }
            let spare = self.catalog.host(g).bandwidth_out - net[g.index()].0;
            if best.is_none_or(|(_, b)| spare > b) {
                best = Some((g, spare));
            }
        };
        for g in self.state.hosts_with(s) {
            consider(g);
        }
        if let Some(src) = self.catalog.source_host(s) {
            consider(src);
        }
        best.map(|(g, _)| g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqpr_dsps::{CostModel, HostSpec};

    fn setup() -> (Catalog, Vec<StreamId>) {
        let mut c = Catalog::uniform(3, HostSpec::new(50.0, 100.0), 1000.0, CostModel::default());
        let b = (0..6)
            .map(|i| c.add_base_stream(HostId((i % 3) as u32), 10.0, i as u64))
            .collect();
        (c, b)
    }

    #[test]
    fn admits_and_validates() {
        let (c, b) = setup();
        let mut hp = HeuristicPlanner::new(c);
        assert!(hp.submit(&[b[0], b[1]]));
        assert_eq!(hp.num_admitted(), 1);
        assert!(
            hp.state().is_valid(hp.catalog()),
            "{:?}",
            hp.state().validate(hp.catalog())
        );
    }

    #[test]
    fn reuses_existing_subqueries() {
        let (c, b) = setup();
        let mut hp = HeuristicPlanner::new(c);
        assert!(hp.submit(&[b[0], b[1]]));
        let ops = hp.state().placements().len();
        // The 3-way over {b0,b1,b2} should transfer the existing b0⋈b1
        // result rather than recompute: exactly one new operator.
        assert!(hp.submit(&[b[0], b[1], b[2]]));
        assert_eq!(hp.state().placements().len(), ops + 1);
        assert!(hp.state().is_valid(hp.catalog()));
    }

    #[test]
    fn identical_query_free() {
        let (c, b) = setup();
        let mut hp = HeuristicPlanner::new(c);
        assert!(hp.submit(&[b[0], b[1]]));
        let ops = hp.state().placements().len();
        assert!(hp.submit(&[b[1], b[0]]));
        assert_eq!(hp.state().placements().len(), ops);
        assert_eq!(hp.num_admitted(), 2);
    }

    #[test]
    fn rejects_oversized_query() {
        let mut c = Catalog::uniform(2, HostSpec::new(10.0, 100.0), 1000.0, CostModel::default());
        let b0 = c.add_base_stream(HostId(0), 10.0, 0);
        let b1 = c.add_base_stream(HostId(1), 10.0, 1);
        let mut hp = HeuristicPlanner::new(c);
        assert!(!hp.submit(&[b0, b1])); // join cost 20 > 10 per host
        assert_eq!(hp.num_admitted(), 0);
    }

    #[test]
    fn single_host_limitation_blocks_split_plans() {
        // CPU per host fits one join but the 3-way needs two joins (cost
        // 20 + ~10.3) at ONE host; 25 CPU cannot host both, so the
        // heuristic rejects even though a distributed plan would fit.
        let mut c = Catalog::uniform(
            3,
            HostSpec::new(25.0, 1000.0),
            10_000.0,
            CostModel::default(),
        );
        let b0 = c.add_base_stream(HostId(0), 10.0, 0);
        let b1 = c.add_base_stream(HostId(1), 10.0, 1);
        let b2 = c.add_base_stream(HostId(2), 10.0, 2);
        let mut hp = HeuristicPlanner::new(c);
        assert!(!hp.submit(&[b0, b1, b2]));
    }
}
