//! # sqpr-baselines
//!
//! The three comparison planners of the SQPR evaluation (paper §V):
//!
//! - [`heuristic::HeuristicPlanner`] — the hand-crafted single-host planner
//!   with aggressive reuse and no re-planning;
//! - [`optimistic::OptimisticBound`] — the aggregate-host upper bound used
//!   to estimate SQPR's optimality gap;
//! - [`soda::SodaPlanner`] — SODA's macroQ/macroW/miniW pipeline with fixed
//!   user templates and gluing-based reuse.
//!
//! [`Planner`] unifies the submission interface across all planners
//! (including [`sqpr_core::SqprPlanner`]) so the experiment harnesses can
//! drive them interchangeably.

pub mod heuristic;
pub mod optimistic;
pub mod soda;
pub mod trees;

pub use heuristic::HeuristicPlanner;
pub use optimistic::OptimisticBound;
pub use soda::SodaPlanner;
pub use trees::{enumerate_trees, InternedTree, JoinTree};

use sqpr_dsps::StreamId;

/// Common submission interface for experiment harnesses.
pub trait Planner {
    /// Submits one k-way join query; returns whether it was admitted.
    fn submit_query(&mut self, bases: &[StreamId]) -> bool;
    /// Number of queries admitted so far.
    fn admitted(&self) -> usize;
    /// Planner name for report tables.
    fn name(&self) -> &'static str;
}

impl Planner for HeuristicPlanner {
    fn submit_query(&mut self, bases: &[StreamId]) -> bool {
        self.submit(bases)
    }
    fn admitted(&self) -> usize {
        self.num_admitted()
    }
    fn name(&self) -> &'static str {
        "heuristic"
    }
}

impl Planner for OptimisticBound {
    fn submit_query(&mut self, bases: &[StreamId]) -> bool {
        self.submit(bases)
    }
    fn admitted(&self) -> usize {
        self.num_admitted()
    }
    fn name(&self) -> &'static str {
        "optimistic"
    }
}

impl Planner for SodaPlanner {
    fn submit_query(&mut self, bases: &[StreamId]) -> bool {
        self.submit(bases)
    }
    fn admitted(&self) -> usize {
        self.num_admitted()
    }
    fn name(&self) -> &'static str {
        "soda"
    }
}

impl Planner for sqpr_core::SqprPlanner {
    fn submit_query(&mut self, bases: &[StreamId]) -> bool {
        self.submit(bases).map(|o| o.admitted).unwrap_or(false)
    }
    fn admitted(&self) -> usize {
        self.num_admitted()
    }
    fn name(&self) -> &'static str {
        "sqpr"
    }
}
