//! The optimistic upper bound of the evaluation (paper §V-A).
//!
//! All hosts are collapsed into one "aggregate host" holding every base
//! stream, with CPU capacity `Σ ζ_h` and *no* network constraints. Queries
//! are processed in arrival order with maximal sharing (every equivalent
//! sub-query is computed once). A query is admitted iff its *marginal* CPU
//! cost — the cheapest abstract plan counting only operators not already
//! running — fits the remaining aggregate capacity.
//!
//! This upper-bounds any real planner processing the same arrival sequence:
//! a real admission implies a CPU-feasible execution whose sharing can only
//! be worse than the aggregate host's (everything co-located), and network
//! constraints only remove options.

use std::collections::BTreeSet;

use sqpr_dsps::{Catalog, OperatorId, StreamId};

use crate::trees::enumerate_trees;

/// Arrival-order aggregate-host admission bound.
pub struct OptimisticBound {
    catalog: Catalog,
    capacity: f64,
    used: f64,
    running: BTreeSet<OperatorId>,
    produced: BTreeSet<StreamId>,
    admitted: usize,
}

impl OptimisticBound {
    pub fn new(catalog: Catalog) -> Self {
        let capacity = catalog.total_cpu();
        OptimisticBound {
            catalog,
            capacity,
            used: 0.0,
            running: BTreeSet::new(),
            produced: BTreeSet::new(),
            admitted: 0,
        }
    }

    pub fn num_admitted(&self) -> usize {
        self.admitted
    }

    pub fn cpu_used(&self) -> f64 {
        self.used
    }

    pub fn cpu_capacity(&self) -> f64 {
        self.capacity
    }

    /// Submits a query; returns whether the aggregate host admits it.
    pub fn submit(&mut self, bases: &[StreamId]) -> bool {
        let trees = enumerate_trees(bases);
        // Cheapest marginal plan: operators not already running are paid.
        let mut best: Option<(f64, Vec<OperatorId>, StreamId)> = None;
        for t in &trees {
            let it = t.intern(&mut self.catalog, 0);
            if self.produced.contains(&it.root) {
                // The whole result is already computed: zero marginal cost.
                best = Some((0.0, Vec::new(), it.root));
                break;
            }
            let mut cost = 0.0;
            let mut fresh = Vec::new();
            for &o in &it.operators {
                if !self.running.contains(&o) && !self.produced_by_other(o) {
                    cost += self.catalog.operator(o).cpu_cost;
                    fresh.push(o);
                }
            }
            if best.as_ref().is_none_or(|(c, _, _)| cost < *c) {
                best = Some((cost, fresh, it.root));
            }
        }
        let (cost, fresh, root) = best.expect("at least one tree");
        if self.used + cost > self.capacity + 1e-9 {
            return false;
        }
        self.used += cost;
        for o in fresh {
            self.running.insert(o);
            self.produced.insert(self.catalog.operator(o).output);
        }
        self.produced.insert(root);
        self.admitted += 1;
        true
    }

    /// Whether some running operator already produces `o`'s output (an
    /// equivalent operator from a different join order).
    fn produced_by_other(&self, o: OperatorId) -> bool {
        self.produced.contains(&self.catalog.operator(o).output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqpr_dsps::{CostModel, HostId, HostSpec};

    fn setup(cpu_per_host: f64) -> (Catalog, Vec<StreamId>) {
        let mut c = Catalog::uniform(
            2,
            HostSpec::new(cpu_per_host, 1e9),
            1e9,
            CostModel::default(),
        );
        let b = (0..4)
            .map(|i| c.add_base_stream(HostId((i % 2) as u32), 10.0, i as u64))
            .collect();
        (c, b)
    }

    #[test]
    fn admits_until_cpu_exhausted() {
        // Each 2-way join costs 20; aggregate capacity 2 * 25 = 50.
        let (c, b) = setup(25.0);
        let mut ob = OptimisticBound::new(c);
        assert!(ob.submit(&[b[0], b[1]])); // 20
        assert!(ob.submit(&[b[2], b[3]])); // 40
        assert!(!ob.submit(&[b[0], b[2]])); // would need 60
        assert_eq!(ob.num_admitted(), 2);
    }

    #[test]
    fn shared_subqueries_are_free() {
        let (c, b) = setup(25.0);
        let mut ob = OptimisticBound::new(c);
        assert!(ob.submit(&[b[0], b[1]]));
        let used = ob.cpu_used();
        // The same query again costs nothing.
        assert!(ob.submit(&[b[1], b[0]]));
        assert_eq!(ob.cpu_used(), used);
        assert_eq!(ob.num_admitted(), 2);
    }

    #[test]
    fn marginal_cost_reuses_subjoins() {
        let (c, b) = setup(1000.0);
        let mut ob = OptimisticBound::new(c);
        assert!(ob.submit(&[b[0], b[1]]));
        let after_two_way = ob.cpu_used();
        // A 3-way join over {b0, b1, b2} should only pay the top join
        // (inputs: the existing b0⋈b1 stream at its tiny rate, plus b2).
        assert!(ob.submit(&[b[0], b[1], b[2]]));
        let marginal = ob.cpu_used() - after_two_way;
        // Full recomputation would cost >= 20 (bottom) + top; reuse pays
        // only the top join: (rate(b0⋈b1)=0.3) + 10 -> 10.3.
        assert!(marginal < 11.0, "marginal {marginal}");
    }
}
