//! Re-implementation of SODA's initial query planning (paper §V-B).
//!
//! SODA (Wolf et al., Middleware'08) is the scheduler of IBM System S. The
//! paper re-implements its "basic functionality": the **macroQ** admission
//! stage, operator placement via optimisation (**macroW**) and the
//! **miniW** local-improvement heuristic, with reuse obtained by *gluing*
//! user-supplied query templates ("each stream is generated once and used
//! by all other queries when needed"). The key contrasts with SQPR, which
//! the experiments exercise:
//!
//! - one *fixed* template per query (a left-deep join tree in submission
//!   order) — no plan-shape flexibility;
//! - no relaying: operator inputs are received once from the original
//!   producing host and then only propagated host-locally;
//! - no re-planning of already admitted queries;
//! - admission (macroQ) checks aggregate resource availability before
//!   placement; placement failure then rejects outright.

use std::collections::BTreeSet;

use sqpr_core::ObjectiveWeights;
use sqpr_dsps::{Catalog, DeploymentState, HostId, OperatorId, QueryId, StreamId};

use crate::trees::JoinTree;

/// SODA-style planner.
pub struct SodaPlanner {
    catalog: Catalog,
    state: DeploymentState,
    weights: ObjectiveWeights,
    next_query: u32,
    /// miniW improvement passes per admitted query.
    pub miniw_passes: usize,
}

impl SodaPlanner {
    pub fn new(catalog: Catalog) -> Self {
        let weights = ObjectiveWeights::load_balance(&catalog);
        SodaPlanner {
            catalog,
            state: DeploymentState::new(),
            weights,
            next_query: 0,
            miniw_passes: 2,
        }
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn state(&self) -> &DeploymentState {
        &self.state
    }

    pub fn num_admitted(&self) -> usize {
        self.state.num_admitted()
    }

    /// Submits a query with its fixed user template (left-deep tree in the
    /// given order). Returns whether it was admitted.
    pub fn submit(&mut self, bases: &[StreamId]) -> bool {
        let q = QueryId(self.next_query);
        self.next_query += 1;

        let template = JoinTree::left_deep(bases);
        let interned = template.intern(&mut self.catalog, 0);
        let result = interned.root;

        if self.state.provider_of(result).is_some() {
            self.state.admit_query(q, result);
            return true;
        }

        // Gluing: template operators whose output already exists somewhere
        // are not instantiated; their outputs are consumed from the
        // producing host.
        let fresh: Vec<OperatorId> = interned
            .operators
            .iter()
            .copied()
            .filter(|&o| {
                let out = self.catalog.operator(o).output;
                self.state.hosts_with(out).next().is_none()
            })
            .collect();

        // macroQ: aggregate admission check before placement.
        let cpu_needed: f64 = fresh
            .iter()
            .map(|&o| self.catalog.operator(o).cpu_cost)
            .sum();
        let cpu = self.state.cpu_usage(&self.catalog);
        let spare: f64 = self
            .catalog
            .hosts()
            .map(|h| (self.catalog.host(h).cpu_capacity - cpu[h.index()]).max(0.0))
            .sum();
        if cpu_needed > spare + 1e-9 {
            return false;
        }

        // macroW: place fresh operators in topological order on the host
        // minimising incoming transfer rate, load-balance tie-break.
        let mut candidate = self.state.clone();
        let mut placed: Vec<(HostId, OperatorId)> = Vec::new();
        for &o in &fresh {
            match self.place_operator(&candidate, o) {
                Some(h) => {
                    install_operator(&mut candidate, &self.catalog, h, o);
                    placed.push((h, o));
                }
                None => return false, // no feasible host: reject outright
            }
        }

        // Client delivery feasibility from the result's host.
        let Some(result_host) = candidate.hosts_with(result).next() else {
            return false;
        };
        let net = candidate.net_usage(&self.catalog);
        if net[result_host.index()].0 + self.catalog.stream(result).rate
            > self.catalog.host(result_host).bandwidth_out + 1e-9
        {
            return false;
        }

        // miniW: local improvement by moving newly placed operators.
        for _ in 0..self.miniw_passes {
            let mut improved = false;
            #[allow(clippy::needless_range_loop)] // `i` also writes back into `placed`
            for i in 0..placed.len() {
                let (h, o) = placed[i];
                if let Some(better) = self.try_move(&candidate, h, o) {
                    let mut next = candidate.clone();
                    remove_operator(&mut next, &self.catalog, h, o);
                    install_operator(&mut next, &self.catalog, better, o);
                    if next.is_valid(&self.catalog) && self.score(&next) > self.score(&candidate) {
                        candidate = next;
                        placed[i] = (better, o);
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }

        candidate.set_provided(result, result_host);
        if !candidate.is_valid(&self.catalog) {
            return false;
        }
        self.state = candidate;
        self.state.admit_query(q, result);
        true
    }

    /// Host choice for one operator: feasible host minimising added
    /// transfer rate, breaking ties by lowest CPU utilisation.
    fn place_operator(&self, state: &DeploymentState, o: OperatorId) -> Option<HostId> {
        let op = self.catalog.operator(o);
        let cpu = state.cpu_usage(&self.catalog);
        let net = state.net_usage(&self.catalog);
        let links = state.link_usage(&self.catalog);
        let mut best: Option<(HostId, f64, f64)> = None;
        'host: for h in self.catalog.hosts() {
            if cpu[h.index()] + op.cpu_cost > self.catalog.host(h).cpu_capacity + 1e-9 {
                continue;
            }
            // Each input must be local, a local base, or fetched directly
            // from a host that generates/holds it (no relaying).
            let mut transfer = 0.0;
            let mut in_used = net[h.index()].1;
            for &s in &op.inputs {
                if state.is_available(h, s) || self.catalog.is_base_at(s, h) {
                    continue;
                }
                let Some(g) = self.direct_source(state, s, h) else {
                    continue 'host;
                };
                let rate = self.catalog.stream(s).rate;
                let lu = links.get(&(g, h)).copied().unwrap_or(0.0);
                if lu + rate > self.catalog.topology().link(g, h) + 1e-9
                    || net[g.index()].0 + rate > self.catalog.host(g).bandwidth_out + 1e-9
                    || in_used + rate > self.catalog.host(h).bandwidth_in + 1e-9
                {
                    continue 'host;
                }
                transfer += rate;
                in_used += rate;
            }
            let util = cpu[h.index()] / self.catalog.host(h).cpu_capacity.max(1e-9);
            let better = match &best {
                None => true,
                Some((_, t, u)) => transfer < *t - 1e-12 || (transfer <= *t + 1e-12 && util < *u),
            };
            if better {
                best = Some((h, transfer, util));
            }
        }
        best.map(|(h, _, _)| h)
    }

    /// A host that can send `s` directly (producer or source; SODA does not
    /// relay through third hosts).
    fn direct_source(&self, state: &DeploymentState, s: StreamId, to: HostId) -> Option<HostId> {
        if let Some(src) = self.catalog.source_host(s) {
            if src != to {
                return Some(src);
            }
        }
        // A host where an operator produces s.
        for &(h, o) in state.placements() {
            if h != to && self.catalog.operator(o).output == s {
                return Some(h);
            }
        }
        None
    }

    /// A candidate better host for a placed operator (miniW move).
    fn try_move(&self, state: &DeploymentState, current: HostId, o: OperatorId) -> Option<HostId> {
        let cpu = state.cpu_usage(&self.catalog);
        let op = self.catalog.operator(o);
        let mut best: Option<(HostId, f64)> = None;
        for h in self.catalog.hosts() {
            if h == current {
                continue;
            }
            let cap = self.catalog.host(h).cpu_capacity;
            if cpu[h.index()] + op.cpu_cost > cap + 1e-9 {
                continue;
            }
            let util = cpu[h.index()] / cap.max(1e-9);
            if best.is_none_or(|(_, u)| util < u) {
                best = Some((h, util));
            }
        }
        best.map(|(h, _)| h)
    }

    /// Load-balance score (higher is better): the negated weighted
    /// objective terms SODA optimises (network + max CPU).
    fn score(&self, state: &DeploymentState) -> f64 {
        let cpu = state.cpu_usage(&self.catalog);
        let max_cpu = cpu.iter().copied().fold(0.0f64, f64::max);
        let net: f64 = state
            .flows()
            .iter()
            .map(|&(_, _, s)| self.catalog.stream(s).rate)
            .sum();
        -(self.weights.lambda2 * net + self.weights.lambda4 * max_cpu)
    }
}

/// Adds operator `o` at `h`, wiring direct input transfers.
fn install_operator(state: &mut DeploymentState, catalog: &Catalog, h: HostId, o: OperatorId) {
    let inputs: Vec<StreamId> = catalog.operator(o).inputs.clone();
    for s in inputs {
        if state.is_available(h, s) || catalog.is_base_at(s, h) {
            continue;
        }
        // Find the producing/source host (mirrors `direct_source`).
        let from = catalog.source_host(s).filter(|&src| src != h).or_else(|| {
            state
                .placements()
                .iter()
                .find(|&&(g, op)| g != h && catalog.operator(op).output == s)
                .map(|&(g, _)| g)
        });
        if let Some(g) = from {
            state.add_flow(g, h, s);
            state.add_available(h, s);
        }
    }
    state.add_placement(h, o);
    state.add_available(h, catalog.operator(o).output);
}

/// Removes operator `o` from `h` along with its exclusive input flows.
fn remove_operator(state: &mut DeploymentState, catalog: &Catalog, h: HostId, o: OperatorId) {
    state.remove_placement(h, o);
    // Drop input flows no longer needed by any remaining operator at h.
    let still_needed: BTreeSet<StreamId> = state
        .placements()
        .iter()
        .filter(|&&(g, _)| g == h)
        .flat_map(|&(_, op)| catalog.operator(op).inputs.clone())
        .collect();
    let inputs = catalog.operator(o).inputs.clone();
    for s in inputs {
        if !still_needed.contains(&s) {
            let flows: Vec<_> = state
                .flows()
                .iter()
                .copied()
                .filter(|&(_, to, fs)| to == h && fs == s)
                .collect();
            for (g, to, fs) in flows {
                state.remove_flow(g, to, fs);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqpr_dsps::{CostModel, HostSpec};

    fn setup() -> (Catalog, Vec<StreamId>) {
        let mut c = Catalog::uniform(3, HostSpec::new(50.0, 100.0), 1000.0, CostModel::default());
        let b = (0..6)
            .map(|i| c.add_base_stream(HostId((i % 3) as u32), 10.0, i as u64))
            .collect();
        (c, b)
    }

    #[test]
    fn admits_simple_queries() {
        let (c, b) = setup();
        let mut soda = SodaPlanner::new(c);
        assert!(soda.submit(&[b[0], b[1]]));
        assert!(
            soda.state().is_valid(soda.catalog()),
            "{:?}",
            soda.state().validate(soda.catalog())
        );
        assert_eq!(soda.num_admitted(), 1);
    }

    #[test]
    fn glues_shared_subqueries() {
        let (c, b) = setup();
        let mut soda = SodaPlanner::new(c);
        assert!(soda.submit(&[b[0], b[1]]));
        let ops_before = soda.state().placements().len();
        assert!(soda.submit(&[b[0], b[1], b[2]]));
        // The (b0 ⋈ b1) prefix is glued: only one new operator.
        assert_eq!(soda.state().placements().len(), ops_before + 1);
        assert!(soda.state().is_valid(soda.catalog()));
    }

    #[test]
    fn rejects_when_no_host_fits() {
        let mut c = Catalog::uniform(2, HostSpec::new(10.0, 100.0), 1000.0, CostModel::default());
        let b0 = c.add_base_stream(HostId(0), 10.0, 0);
        let b1 = c.add_base_stream(HostId(1), 10.0, 1);
        let mut soda = SodaPlanner::new(c);
        // Join cost 20 > any host's 10.
        assert!(!soda.submit(&[b0, b1]));
        assert_eq!(soda.num_admitted(), 0);
    }

    #[test]
    fn identical_query_reuses_provision() {
        let (c, b) = setup();
        let mut soda = SodaPlanner::new(c);
        assert!(soda.submit(&[b[0], b[1]]));
        let ops = soda.state().placements().len();
        assert!(soda.submit(&[b[0], b[1]]));
        assert_eq!(soda.state().placements().len(), ops);
        assert_eq!(soda.num_admitted(), 2);
    }
}
