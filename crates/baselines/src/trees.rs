//! Abstract query plans: binary join trees over a base-stream set.
//!
//! The heuristic planner enumerates *all* abstract plans (the paper notes
//! this is exponential in query size but feasible for the 2- to 5-way joins
//! of the evaluation); SODA uses one fixed template per query.

use sqpr_dsps::{Catalog, OperatorId, StreamId};

/// A binary join tree; leaves are base streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinTree {
    Leaf(StreamId),
    Node(Box<JoinTree>, Box<JoinTree>),
}

impl JoinTree {
    /// Left-deep tree in the given order (SODA's user template).
    pub fn left_deep(bases: &[StreamId]) -> JoinTree {
        assert!(bases.len() >= 2);
        let mut t = JoinTree::Node(
            Box::new(JoinTree::Leaf(bases[0])),
            Box::new(JoinTree::Leaf(bases[1])),
        );
        for &b in &bases[2..] {
            t = JoinTree::Node(Box::new(t), Box::new(JoinTree::Leaf(b)));
        }
        t
    }

    /// Number of internal (join) nodes.
    pub fn num_joins(&self) -> usize {
        match self {
            JoinTree::Leaf(_) => 0,
            JoinTree::Node(l, r) => 1 + l.num_joins() + r.num_joins(),
        }
    }

    /// Interns this tree's operators bottom-up; returns `(operators in
    /// topological order, output stream per operator, root stream)`.
    pub fn intern(&self, catalog: &mut Catalog, tag: u64) -> InternedTree {
        fn rec(
            t: &JoinTree,
            catalog: &mut Catalog,
            tag: u64,
            ops: &mut Vec<OperatorId>,
        ) -> StreamId {
            match t {
                JoinTree::Leaf(s) => *s,
                JoinTree::Node(l, r) => {
                    let ls = rec(l, catalog, tag, ops);
                    let rs = rec(r, catalog, tag, ops);
                    let op = catalog.intern_join_operator_tagged(ls, rs, tag);
                    ops.push(op);
                    catalog.operator(op).output
                }
            }
        }
        let mut ops = Vec::new();
        let root = rec(self, catalog, tag, &mut ops);
        InternedTree {
            operators: ops,
            root,
        }
    }
}

/// An interned abstract plan: operators in bottom-up (topological) order.
#[derive(Debug, Clone)]
pub struct InternedTree {
    pub operators: Vec<OperatorId>,
    pub root: StreamId,
}

/// Enumerates every distinct binary join tree over `bases` (unordered
/// children are not deduplicated — commutations intern to the same
/// operators, so duplicates cost only enumeration time).
///
/// Count grows as (2k-3)!! — 1, 3, 15, 105 for k = 2..5 ordered pairs
/// halved by the canonical split; fine for the paper's 2- to 5-way joins.
pub fn enumerate_trees(bases: &[StreamId]) -> Vec<JoinTree> {
    assert!(bases.len() >= 2, "need at least two streams to join");
    let k = bases.len();
    assert!(
        k <= 8,
        "tree enumeration is exponential; {k}-way is too large"
    );
    fn rec(mask: u32, bases: &[StreamId]) -> Vec<JoinTree> {
        if mask.count_ones() == 1 {
            let i = mask.trailing_zeros() as usize;
            return vec![JoinTree::Leaf(bases[i])];
        }
        let mut out = Vec::new();
        // Canonical split: the submask containing the lowest set bit.
        let low = mask & mask.wrapping_neg();
        let mut sub = (mask - 1) & mask;
        while sub != 0 {
            if sub & low != 0 && sub != mask {
                let left = rec(sub, bases);
                let right = rec(mask ^ sub, bases);
                for l in &left {
                    for r in &right {
                        out.push(JoinTree::Node(Box::new(l.clone()), Box::new(r.clone())));
                    }
                }
            }
            sub = (sub - 1) & mask;
        }
        out
    }
    rec((1u32 << k) - 1, bases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqpr_dsps::{CostModel, HostId, HostSpec};

    fn bases(n: usize) -> (Catalog, Vec<StreamId>) {
        let mut c = Catalog::uniform(2, HostSpec::new(1e6, 1e6), 1e6, CostModel::default());
        let b = (0..n)
            .map(|i| c.add_base_stream(HostId((i % 2) as u32), 10.0, i as u64))
            .collect();
        (c, b)
    }

    #[test]
    fn tree_counts_match_double_factorial() {
        for (k, expect) in [(2usize, 1usize), (3, 3), (4, 15), (5, 105)] {
            let (_, b) = bases(k);
            assert_eq!(enumerate_trees(&b[..k]).len(), expect, "k={k}");
        }
    }

    #[test]
    fn all_trees_intern_to_same_root() {
        let (mut c, b) = bases(4);
        let roots: Vec<StreamId> = enumerate_trees(&b)
            .iter()
            .map(|t| t.intern(&mut c, 0).root)
            .collect();
        assert!(roots.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn left_deep_shape() {
        let (_, b) = bases(4);
        let t = JoinTree::left_deep(&b);
        assert_eq!(t.num_joins(), 3);
        match &t {
            JoinTree::Node(_, r) => assert_eq!(**r, JoinTree::Leaf(b[3])),
            _ => panic!("expected node"),
        }
    }

    #[test]
    fn interned_tree_topological_order() {
        let (mut c, b) = bases(3);
        let t = JoinTree::left_deep(&b);
        let it = t.intern(&mut c, 0);
        assert_eq!(it.operators.len(), 2);
        // The first operator's output feeds the second.
        let first_out = c.operator(it.operators[0]).output;
        assert!(c.operator(it.operators[1]).inputs.contains(&first_out));
        assert_eq!(c.operator(it.operators[1]).output, it.root);
    }
}
