//! Failure-storm recovery on the paper workload.
//!
//! Submits the 50-query §V-A workload, then fails 20% of the hosts from a
//! seeded [`FaultPlan`] (override the seed with `SQPR_FAULT_SEED`; CI runs
//! a 3-seed matrix) and drives the re-admission storm
//! ([`recover_from_failures`]) under a node-only budget. Asserts the PR's
//! robustness contract:
//!
//! - **zero silent drops** — every displaced query is re-admitted by the
//!   solver or explicitly degraded (greedy baseline or best-effort pin);
//!   `Dropped` never appears while hosts survive;
//! - **warm storm** — at least 60% of the storm's solver rounds are served
//!   as compressed-LP cache patches (no fresh lowering);
//! - **determinism** — recovery modes, deployment placements/flows, node
//!   spend and the deployment objective are bit-identical across
//!   `lp_threads` 1 (sequential) and 0 (all cores), per seed.
//!
//! Emits `BENCH_failure_storm.json` (recovery latency, degraded fraction,
//! patch rate) for cross-run tracking. Wall-clock numbers are informative
//! only — determinism asserts never depend on them.

use sqpr_bench::harness::{emit_json, ms, Json};
use sqpr_core::{
    recover_from_failures, PlannerConfig, RecoveryMode, SolveBudget, SqprPlanner, StormBudget,
    StormReport,
};
use sqpr_workload::{generate, FaultPlan, FaultSpec, WorkloadSpec};

const QUERIES: usize = 50;
const SCALE: f64 = 0.07;
const FAIL_FRACTION: f64 = 0.20;
/// Storm-wide node budget: enough for most displaced queries to get a
/// solver round on this workload, small enough that the budget-dry
/// degradation path stays reachable on slow seeds.
const STORM_NODES: usize = 2000;
const MIN_STORM_PATCH_ROUND_RATE: f64 = 0.60;

struct StormRun {
    report: StormReport,
    admitted_before: usize,
    admitted_after: usize,
    placements: Vec<(sqpr_dsps::HostId, sqpr_dsps::OperatorId)>,
    flows: Vec<(sqpr_dsps::HostId, sqpr_dsps::HostId, sqpr_dsps::StreamId)>,
    objective_bits: u64,
}

fn run(w: &sqpr_workload::Workload, plan: &FaultPlan, lp_threads: usize) -> StormRun {
    let mut cfg = PlannerConfig::new(&w.catalog);
    cfg.budget = SolveBudget::nodes(200);
    cfg.lp_threads = lp_threads;
    let mut planner = SqprPlanner::new(w.catalog.clone(), cfg);
    for q in &w.queries {
        planner.submit(q).expect("valid bases");
    }
    let admitted_before = planner.num_admitted();

    for &h in &plan.failed_hosts {
        assert!(planner.fail_host(h), "fault plan failed {h} twice");
    }
    for &(a, b, factor) in &plan.degraded_links {
        let cap = planner.catalog().topology().nominal_link(a, b) * factor;
        planner.degrade_link(a, b, cap);
    }

    let report = recover_from_failures(&mut planner, &StormBudget::nodes(STORM_NODES));
    assert!(planner.state().is_valid(planner.catalog()));
    StormRun {
        admitted_before,
        admitted_after: planner.num_admitted(),
        placements: planner.state().placements().iter().copied().collect(),
        flows: planner.state().flows().iter().copied().collect(),
        objective_bits: planner.deployment_objective().to_bits(),
        report,
    }
}

fn main() {
    let seed: u64 = std::env::var("SQPR_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let mut spec = WorkloadSpec::paper_sim(SCALE);
    spec.queries = QUERIES;
    let w = generate(&spec);
    let plan = FaultPlan::generate(&FaultSpec::host_storm(
        w.catalog.num_hosts(),
        FAIL_FRACTION,
        seed,
    ));
    println!(
        "failure_storm: seed {seed}, failing {} of {} hosts: {:?}",
        plan.failed_hosts.len(),
        w.catalog.num_hosts(),
        plan.failed_hosts
    );

    let seq = run(&w, &plan, 1);
    let par = run(&w, &plan, 0);

    // ---- determinism: sequential vs all-cores, bit for bit ----
    let modes = |r: &StormRun| -> Vec<(u32, RecoveryMode)> {
        r.report
            .recoveries
            .iter()
            .map(|x| (x.query.0, x.mode))
            .collect()
    };
    assert_eq!(modes(&seq), modes(&par), "recovery modes diverged");
    assert_eq!(
        seq.report.nodes_spent, par.report.nodes_spent,
        "node spend diverged"
    );
    assert_eq!(seq.placements, par.placements, "placements diverged");
    assert_eq!(seq.flows, par.flows, "flows diverged");
    assert_eq!(
        seq.objective_bits, par.objective_bits,
        "objective not bit-identical"
    );

    // ---- zero silent drops ----
    let r = &seq.report;
    assert!(
        !r.recoveries.is_empty(),
        "the fault displaced no queries; the storm is vacuous"
    );
    assert_eq!(
        r.dropped(),
        0,
        "survivors exist: every displaced query must be served"
    );
    assert_eq!(r.replanned() + r.degraded(), r.recoveries.len());

    // ---- warm storm: solver rounds served as cache patches ----
    let solver_rounds: Vec<_> = r
        .recoveries
        .iter()
        .filter_map(|x| x.outcome.as_ref())
        .filter(|o| !o.reused_existing)
        .collect();
    // A round is "warm" when it extended the surviving skeleton (no cold
    // lowering) and its LP solves were served by patching the cached
    // compressed LP in place. One rebuild per round is expected: each
    // re-admission is a fresh fixed class, and the class's first
    // compressed-LP build cannot be a hit (see the fixed-class keying in
    // `sqpr_milp::cache`); everything after it must patch.
    let patch_rounds = solver_rounds
        .iter()
        .filter(|o| o.incremental && o.lp_cache.patches > 0)
        .count();
    let cache_total = solver_rounds
        .iter()
        .fold(sqpr_core::CacheStats::default(), |mut acc, o| {
            acc.add(&o.lp_cache);
            acc
        });
    let patch_round_rate = if solver_rounds.is_empty() {
        1.0
    } else {
        patch_rounds as f64 / solver_rounds.len() as f64
    };
    if std::env::var("SQPR_BENCH_DEBUG").is_ok() {
        for x in &r.recoveries {
            if let Some(o) = &x.outcome {
                println!(
                    "  {:?} {:?} reused={} inc={} rebuilds={} patches={} refix={} rows={} nodes={}",
                    x.query,
                    x.mode,
                    o.reused_existing,
                    o.incremental,
                    o.lp_cache.rebuilds,
                    o.lp_cache.patches,
                    o.lp_cache.refix_patches,
                    o.lp_cache.appended_rows,
                    o.nodes
                );
            } else {
                println!("  {:?} {:?} (no solver round)", x.query, x.mode);
            }
        }
    }
    let lenient = std::env::var("SQPR_BENCH_LENIENT").is_ok();
    println!(
        "storm: {} displaced -> {} replanned / {} degraded ({} pinned), \
         {}/{} solver rounds patched ({:.0}%, cache patch rate {:.0}%), \
         {} nodes, {:.2} ms",
        r.recoveries.len(),
        r.replanned(),
        r.degraded(),
        r.recoveries
            .iter()
            .filter(|x| x.degraded_host.is_some())
            .count(),
        patch_rounds,
        solver_rounds.len(),
        patch_round_rate * 100.0,
        cache_total.patch_rate() * 100.0,
        r.nodes_spent,
        ms(r.elapsed)
    );
    if !lenient || patch_round_rate < MIN_STORM_PATCH_ROUND_RATE {
        assert!(
            patch_round_rate >= MIN_STORM_PATCH_ROUND_RATE,
            "only {:.0}% of storm rounds were cache patches (need >= {:.0}%)",
            patch_round_rate * 100.0,
            MIN_STORM_PATCH_ROUND_RATE * 100.0
        );
    }

    // ---- emit ----
    let payload = Json::obj(vec![
        ("bench", Json::Str("failure_storm".into())),
        ("seed", Json::Num(seed as f64)),
        ("hosts", Json::Num(w.catalog.num_hosts() as f64)),
        ("failed_hosts", Json::Num(r.failed_hosts.len() as f64)),
        ("queries", Json::Num(QUERIES as f64)),
        ("admitted_before", Json::Num(seq.admitted_before as f64)),
        ("admitted_after", Json::Num(seq.admitted_after as f64)),
        ("displaced", Json::Num(r.recoveries.len() as f64)),
        ("rehomed_feeds", Json::Num(r.rehomed.len() as f64)),
        ("replanned", Json::Num(r.replanned() as f64)),
        ("degraded", Json::Num(r.degraded() as f64)),
        (
            "pinned",
            Json::Num(
                r.recoveries
                    .iter()
                    .filter(|x| x.degraded_host.is_some())
                    .count() as f64,
            ),
        ),
        ("dropped", Json::Num(r.dropped() as f64)),
        ("degraded_fraction", Json::Num(r.degraded_fraction())),
        ("storm_nodes_budget", Json::Num(STORM_NODES as f64)),
        ("nodes_spent", Json::Num(r.nodes_spent as f64)),
        ("recovery_ms", Json::Num(ms(r.elapsed))),
        ("solver_rounds", Json::Num(solver_rounds.len() as f64)),
        ("patch_rounds", Json::Num(patch_rounds as f64)),
        ("patch_round_rate", Json::Num(patch_round_rate)),
        ("cache_patches", Json::Num(cache_total.patches as f64)),
        ("cache_rebuilds", Json::Num(cache_total.rebuilds as f64)),
        ("cache_patch_rate", Json::Num(cache_total.patch_rate())),
        (
            "deterministic_across_threads",
            Json::Bool(seq.objective_bits == par.objective_bits),
        ),
    ]);
    emit_json("failure_storm", &payload);
}
