//! Warm-started incremental re-planning vs. the cold-start path.
//!
//! Sequentially submits a 50-query paper-style workload twice with
//! identical budgets:
//!
//! - **cold**: the paper's behaviour — a fresh MILP is built for every
//!   submission and every LP relaxation cold-starts from the slack
//!   identity basis (`reuse_solver_context = false`);
//! - **warm**: this repo's incremental path — one persistent model
//!   skeleton extended per query, a compressed-LP cache patched in place
//!   across B&B constructions, root LPs warm-started from the previous
//!   submission's basis, child nodes re-solved by *dual simplex* from
//!   their parent's basis (`reuse_solver_context = true`, the default).
//!
//! The workload is the §V-A simulation at a saturating scale, so later
//! submissions hit the admission wall — the regime where the paper's own
//! scalability limit (Fig. 7: solver latency) appears. Asserts that the
//! two paths take byte-identical admit/reject decisions, that the warm
//! path is at least 2x faster on total solve time, and that warm
//! bound-change re-solves actually run as dual pivots instead of phase-I
//! recovery (the per-phase counters make that checkable), then emits
//! `BENCH_incremental.json` for cross-run tracking.

use std::time::Duration;

use sqpr_bench::harness::{emit_json, Json};
use sqpr_core::{PivotCounts, PlannerConfig, SolveBudget, SqprPlanner};
use sqpr_workload::{generate, WorkloadSpec};

const QUERIES: usize = 50;
const SCALE: f64 = 0.07;

/// Warm-path hyper-sparse hit-rate floor: the warm path's solves are
/// dominated by dual re-solves whose unit-seed BTRANs and short-support
/// FTRANs are exactly what the sparse kernels exist for. Measured ~0.95;
/// asserted well below to absorb workload drift without hiding a
/// dispatch regression.
const MIN_WARM_SPARSE_HIT_RATE: f64 = 0.60;

/// Allowed warm LP-iteration regression vs. the committed baseline.
const WARM_ITER_REGRESSION: f64 = 1.05;

/// Reads `warm_lp_iterations` out of the committed baseline JSON, if one
/// is reachable (repo root when cargo runs benches from the package root;
/// override with `SQPR_BENCH_BASELINE`, skip when absent).
fn baseline_warm_iters() -> Option<f64> {
    let path = std::env::var("SQPR_BENCH_BASELINE")
        .unwrap_or_else(|_| "../../BENCH_incremental.json".into());
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"warm_lp_iterations\":";
    let at = text.find(key)? + key.len();
    let tail = &text[at..];
    let end = tail.find([',', '}'])?;
    tail[..end].trim().parse().ok()
}

struct Run {
    total_solve: Duration,
    admitted: Vec<bool>,
    objective: f64,
    lp_iterations: usize,
    pivots: PivotCounts,
    nodes: usize,
}

fn run(w: &sqpr_workload::Workload, reuse_solver_context: bool) -> Run {
    let mut cfg = PlannerConfig::new(&w.catalog);
    cfg.budget = SolveBudget::nodes(200);
    cfg.reuse_solver_context = reuse_solver_context;
    let mut planner = SqprPlanner::new(w.catalog.clone(), cfg);
    let mut admitted = Vec::with_capacity(w.queries.len());
    for q in &w.queries {
        admitted.push(planner.submit(q).admitted);
    }
    assert!(planner.state().is_valid(planner.catalog()));
    let mut pivots = PivotCounts::default();
    for o in planner.outcomes() {
        pivots.add(&o.lp_pivots);
    }
    Run {
        total_solve: planner.outcomes().iter().map(|o| o.solve_time).sum(),
        admitted,
        objective: planner.deployment_objective(),
        lp_iterations: planner.outcomes().iter().map(|o| o.lp_iterations).sum(),
        pivots,
        nodes: planner.outcomes().iter().map(|o| o.nodes).sum(),
    }
}

fn main() {
    let mut spec = WorkloadSpec::paper_sim(SCALE);
    spec.queries = QUERIES;
    let w = generate(&spec);

    // Warm-up pass so the first measured run does not pay one-time costs
    // (page faults, lazy allocation).
    let _ = run(&w, false);

    let cold = run(&w, false);
    let warm = run(&w, true);

    let speedup = cold.total_solve.as_secs_f64() / warm.total_solve.as_secs_f64();
    let admitted = warm.admitted.iter().filter(|&&b| b).count();
    println!("\n== bench group: incremental ({QUERIES} queries, scale {SCALE}) ==");
    println!(
        "{:<28} {:>12} {:>10} {:>10} {:>10} {:>10} {:>7} {:>9} {:>8} {:>9}",
        "path",
        "total solve",
        "lp iters",
        "phase-I",
        "primal",
        "dual",
        "flips",
        "h-saved",
        "nodes",
        "admitted"
    );
    for (label, r) in [
        ("cold (fresh MILP per query)", &cold),
        ("warm (incremental)", &warm),
    ] {
        println!(
            "{:<28} {:>12} {:>10} {:>10} {:>10} {:>10} {:>7} {:>9} {:>8} {:>9}",
            label,
            format!("{:.1?}", r.total_solve),
            r.lp_iterations,
            r.pivots.phase1,
            r.pivots.primal,
            r.pivots.dual,
            r.pivots.bound_flips,
            r.pivots.harris_degenerate_saved,
            r.nodes,
            r.admitted.iter().filter(|&&b| b).count(),
        );
    }
    println!("speedup: {speedup:.2}x");
    println!(
        "{:<28} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "sparsity", "sparse hit", "mean dens", "sparse", "dense", "FT upd", "refactor"
    );
    for (label, r) in [
        ("cold (fresh MILP per query)", &cold),
        ("warm (incremental)", &warm),
    ] {
        println!(
            "{:<28} {:>11.1}% {:>11.1}% {:>10} {:>10} {:>10} {:>10}",
            label,
            100.0 * r.pivots.sparse_hit_rate(),
            100.0 * r.pivots.mean_solve_density(),
            r.pivots.sparse_solves,
            r.pivots.dense_solves,
            r.pivots.ft_updates,
            r.pivots.refactorizations,
        );
    }

    // The identity verdict is *recorded before asserting*, so a divergence
    // leaves a `false` in the artifact for postmortem while still failing
    // the CI bench smoke (the assert below aborts with nonzero status).
    let outcomes_identical = warm.admitted == cold.admitted;
    emit_json(
        "incremental",
        &Json::obj(vec![
            ("bench", Json::Str("incremental".into())),
            ("queries", Json::Num(QUERIES as f64)),
            ("scale", Json::Num(SCALE)),
            ("cold_solve_s", Json::Num(cold.total_solve.as_secs_f64())),
            ("warm_solve_s", Json::Num(warm.total_solve.as_secs_f64())),
            ("speedup", Json::Num(speedup)),
            ("cold_lp_iterations", Json::Num(cold.lp_iterations as f64)),
            ("warm_lp_iterations", Json::Num(warm.lp_iterations as f64)),
            ("cold_pivots_phase1", Json::Num(cold.pivots.phase1 as f64)),
            ("cold_pivots_primal", Json::Num(cold.pivots.primal as f64)),
            ("cold_pivots_dual", Json::Num(cold.pivots.dual as f64)),
            ("warm_pivots_phase1", Json::Num(warm.pivots.phase1 as f64)),
            ("warm_pivots_primal", Json::Num(warm.pivots.primal as f64)),
            ("warm_pivots_dual", Json::Num(warm.pivots.dual as f64)),
            (
                "cold_bound_flips",
                Json::Num(cold.pivots.bound_flips as f64),
            ),
            (
                "warm_bound_flips",
                Json::Num(warm.pivots.bound_flips as f64),
            ),
            (
                "cold_harris_degenerate_saved",
                Json::Num(cold.pivots.harris_degenerate_saved as f64),
            ),
            (
                "warm_harris_degenerate_saved",
                Json::Num(warm.pivots.harris_degenerate_saved as f64),
            ),
            (
                "cold_sparse_solves",
                Json::Num(cold.pivots.sparse_solves as f64),
            ),
            (
                "cold_dense_solves",
                Json::Num(cold.pivots.dense_solves as f64),
            ),
            (
                "cold_sparse_hit_rate",
                Json::Num(cold.pivots.sparse_hit_rate()),
            ),
            (
                "cold_mean_solve_density",
                Json::Num(cold.pivots.mean_solve_density()),
            ),
            ("cold_ft_updates", Json::Num(cold.pivots.ft_updates as f64)),
            (
                "cold_pfi_updates",
                Json::Num(cold.pivots.pfi_updates as f64),
            ),
            (
                "cold_refactorizations",
                Json::Num(cold.pivots.refactorizations as f64),
            ),
            (
                "warm_sparse_solves",
                Json::Num(warm.pivots.sparse_solves as f64),
            ),
            (
                "warm_dense_solves",
                Json::Num(warm.pivots.dense_solves as f64),
            ),
            (
                "warm_sparse_hit_rate",
                Json::Num(warm.pivots.sparse_hit_rate()),
            ),
            (
                "warm_mean_solve_density",
                Json::Num(warm.pivots.mean_solve_density()),
            ),
            ("warm_ft_updates", Json::Num(warm.pivots.ft_updates as f64)),
            (
                "warm_pfi_updates",
                Json::Num(warm.pivots.pfi_updates as f64),
            ),
            (
                "warm_refactorizations",
                Json::Num(warm.pivots.refactorizations as f64),
            ),
            ("cold_nodes", Json::Num(cold.nodes as f64)),
            ("warm_nodes", Json::Num(warm.nodes as f64)),
            ("admitted", Json::Num(admitted as f64)),
            ("outcomes_identical", Json::Bool(outcomes_identical)),
            ("cold_objective", Json::Num(cold.objective)),
            ("warm_objective", Json::Num(warm.objective)),
        ]),
    );

    // Acceptance: identical admit/reject decisions, comparable deployment
    // quality, >= 2x on total solve time.
    assert!(
        outcomes_identical,
        "warm and cold paths must take identical admit/reject decisions"
    );
    assert!(
        (warm.objective - cold.objective).abs() <= 0.02 * (1.0 + cold.objective.abs()),
        "deployment objectives diverged: warm {} vs cold {}",
        warm.objective,
        cold.objective
    );
    // The dual simplex must carry the warm path's bound-change re-solves:
    // dual pivots present, phase-I demoted to a small minority (stale-root
    // repairs), and the cold path untouched by the dual machinery.
    assert!(
        warm.pivots.dual > 0,
        "warm path took no dual pivots — bound-change re-solves regressed to phase-I"
    );
    assert!(
        warm.pivots.dual > warm.pivots.phase1,
        "dual pivots ({}) must carry the warm path, not phase-I ({})",
        warm.pivots.dual,
        warm.pivots.phase1
    );
    assert!(
        warm.pivots.phase1 * 4 < cold.pivots.phase1,
        "warm phase-I did not shrink: warm {} vs cold {}",
        warm.pivots.phase1,
        cold.pivots.phase1
    );
    // The tentpole acceptance floor is a 30% warm-iteration reduction vs
    // the pre-dual-simplex baseline; this asserts the stronger invariant
    // the current implementation actually delivers (warm < cold / 2,
    // measured ~cold / 14) so a partial regression still trips CI. Relax
    // deliberately if a future change trades iterations for wall clock.
    assert!(
        warm.lp_iterations * 2 < cold.lp_iterations,
        "warm path should need far fewer LP iterations: warm {} vs cold {}",
        warm.lp_iterations,
        cold.lp_iterations
    );
    // Hyper-sparsity must actually carry the warm path (the dispatch
    // falling back to dense everywhere would silently lose the tentpole),
    // and the Forrest–Tomlin default must be doing the updates.
    assert!(
        warm.pivots.sparse_hit_rate() >= MIN_WARM_SPARSE_HIT_RATE,
        "warm sparse-path hit rate too low: {:.1}% < {:.0}%",
        100.0 * warm.pivots.sparse_hit_rate(),
        100.0 * MIN_WARM_SPARSE_HIT_RATE
    );
    assert!(
        warm.pivots.ft_updates > warm.pivots.pfi_updates,
        "Forrest–Tomlin updates ({}) must dominate PFI fallbacks ({})",
        warm.pivots.ft_updates,
        warm.pivots.pfi_updates
    );
    // Warm LP iterations vs. the committed baseline: a >5% regression
    // fails the smoke (refresh the committed BENCH_incremental.json when
    // the regression is intentional).
    if let Some(baseline) = baseline_warm_iters() {
        assert!(
            (warm.lp_iterations as f64) <= WARM_ITER_REGRESSION * baseline,
            "warm LP iterations regressed >5% vs committed baseline: {} vs {baseline}",
            warm.lp_iterations
        );
    } else {
        println!("(no committed baseline found; warm-iteration regression check skipped)");
    }
    // The wall-clock assertion is skippable for noisy shared runners
    // (SQPR_BENCH_LENIENT=1): timing jitter there must not fail CI, while
    // the deterministic assertions above always hold.
    if std::env::var("SQPR_BENCH_LENIENT").is_err() {
        assert!(
            speedup >= 2.0,
            "warm path must be >= 2x faster (got {speedup:.2}x)"
        );
    }
}
