//! Warm-started incremental re-planning vs. the cold-start path.
//!
//! Sequentially submits a 50-query paper-style workload twice with
//! identical budgets:
//!
//! - **cold**: the paper's behaviour — a fresh MILP is built for every
//!   submission and every LP relaxation cold-starts from the slack
//!   identity basis (`reuse_solver_context = false`);
//! - **warm**: this repo's incremental path — one persistent model
//!   skeleton extended per query, root LPs warm-started from the previous
//!   submission's basis, child nodes from their parent's
//!   (`reuse_solver_context = true`, the default).
//!
//! The workload is the §V-A simulation at a saturating scale, so later
//! submissions hit the admission wall — the regime where the paper's own
//! scalability limit (Fig. 7: solver latency) appears. Asserts that the
//! two paths take byte-identical admit/reject decisions and that the warm
//! path is at least 2x faster on total solve time, then emits
//! `BENCH_incremental.json` for cross-run tracking.

use std::time::Duration;

use sqpr_bench::harness::{emit_json, Json};
use sqpr_core::{PlannerConfig, SolveBudget, SqprPlanner};
use sqpr_workload::{generate, WorkloadSpec};

const QUERIES: usize = 50;
const SCALE: f64 = 0.07;

struct Run {
    total_solve: Duration,
    admitted: Vec<bool>,
    objective: f64,
    lp_iterations: usize,
    nodes: usize,
}

fn run(w: &sqpr_workload::Workload, reuse_solver_context: bool) -> Run {
    let mut cfg = PlannerConfig::new(&w.catalog);
    cfg.budget = SolveBudget::nodes(200);
    cfg.reuse_solver_context = reuse_solver_context;
    let mut planner = SqprPlanner::new(w.catalog.clone(), cfg);
    let mut admitted = Vec::with_capacity(w.queries.len());
    for q in &w.queries {
        admitted.push(planner.submit(q).admitted);
    }
    assert!(planner.state().is_valid(planner.catalog()));
    Run {
        total_solve: planner.outcomes().iter().map(|o| o.solve_time).sum(),
        admitted,
        objective: planner.deployment_objective(),
        lp_iterations: planner.outcomes().iter().map(|o| o.lp_iterations).sum(),
        nodes: planner.outcomes().iter().map(|o| o.nodes).sum(),
    }
}

fn main() {
    let mut spec = WorkloadSpec::paper_sim(SCALE);
    spec.queries = QUERIES;
    let w = generate(&spec);

    // Warm-up pass so the first measured run does not pay one-time costs
    // (page faults, lazy allocation).
    let _ = run(&w, false);

    let cold = run(&w, false);
    let warm = run(&w, true);

    let speedup = cold.total_solve.as_secs_f64() / warm.total_solve.as_secs_f64();
    let admitted = warm.admitted.iter().filter(|&&b| b).count();
    println!("\n== bench group: incremental ({QUERIES} queries, scale {SCALE}) ==");
    println!(
        "{:<28} {:>14} {:>12} {:>10} {:>12}",
        "path", "total solve", "lp iters", "nodes", "admitted"
    );
    for (label, r) in [
        ("cold (fresh MILP per query)", &cold),
        ("warm (incremental)", &warm),
    ] {
        println!(
            "{:<28} {:>14} {:>12} {:>10} {:>12}",
            label,
            format!("{:.1?}", r.total_solve),
            r.lp_iterations,
            r.nodes,
            r.admitted.iter().filter(|&&b| b).count(),
        );
    }
    println!("speedup: {speedup:.2}x");

    // Acceptance: identical admit/reject decisions, comparable deployment
    // quality, >= 2x on total solve time.
    assert_eq!(
        warm.admitted, cold.admitted,
        "warm and cold paths must take identical admit/reject decisions"
    );
    assert!(
        (warm.objective - cold.objective).abs() <= 0.02 * (1.0 + cold.objective.abs()),
        "deployment objectives diverged: warm {} vs cold {}",
        warm.objective,
        cold.objective
    );
    // The wall-clock assertion is skippable for noisy shared runners
    // (SQPR_BENCH_LENIENT=1): timing jitter there must not fail CI, while
    // the deterministic assertions above always hold.
    if std::env::var("SQPR_BENCH_LENIENT").is_err() {
        assert!(
            speedup >= 2.0,
            "warm path must be >= 2x faster (got {speedup:.2}x)"
        );
    }

    emit_json(
        "incremental",
        &Json::obj(vec![
            ("bench", Json::Str("incremental".into())),
            ("queries", Json::Num(QUERIES as f64)),
            ("scale", Json::Num(SCALE)),
            ("cold_solve_s", Json::Num(cold.total_solve.as_secs_f64())),
            ("warm_solve_s", Json::Num(warm.total_solve.as_secs_f64())),
            ("speedup", Json::Num(speedup)),
            ("cold_lp_iterations", Json::Num(cold.lp_iterations as f64)),
            ("warm_lp_iterations", Json::Num(warm.lp_iterations as f64)),
            ("cold_nodes", Json::Num(cold.nodes as f64)),
            ("warm_nodes", Json::Num(warm.nodes as f64)),
            ("admitted", Json::Num(admitted as f64)),
            ("outcomes_identical", Json::Bool(true)),
            ("cold_objective", Json::Num(cold.objective)),
            ("warm_objective", Json::Num(warm.objective)),
        ]),
    );
}
