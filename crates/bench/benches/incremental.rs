//! Warm-started incremental re-planning vs. the cold-start path.
//!
//! Sequentially submits a 50-query paper-style workload twice with
//! identical budgets:
//!
//! - **cold**: the paper's behaviour — a fresh MILP is built for every
//!   submission and every LP relaxation cold-starts from the slack
//!   identity basis (`reuse_solver_context = false`);
//! - **warm**: this repo's incremental path — one persistent model
//!   skeleton extended per query, a compressed-LP cache patched in place
//!   across B&B constructions, root LPs warm-started from the previous
//!   submission's basis, child nodes re-solved by *dual simplex* from
//!   their parent's basis (`reuse_solver_context = true`, the default).
//!
//! The workload is the §V-A simulation at a saturating scale, so later
//! submissions hit the admission wall — the regime where the paper's own
//! scalability limit (Fig. 7: solver latency) appears. After the 50-query
//! pass, every rejected query is re-submitted once (the admission-retry
//! wave): those rounds revisit plan spaces the skeleton already covers, so
//! they isolate the *cross-submission* warm path — compressed-LP bound
//! patches (fixed-class keying plus the keep-rejected-free fold
//! exemptions) and re-attached root factorisations, versus a full fresh
//! build per retry on the cold path. Asserts that the two paths take
//! byte-identical admit/reject decisions across the whole sequence, that
//! the warm path is at least 2x faster on total solve time, that warm
//! bound-change re-solves actually run as dual pivots instead of phase-I
//! recovery, and that the retry wave is served entirely by cache patches
//! with factor re-attachment (the per-phase counters make all of that
//! checkable), then emits `BENCH_incremental.json` for cross-run tracking.

use std::time::Duration;

use sqpr_bench::harness::{emit_json, Json};
use sqpr_core::{CacheStats, PivotCounts, PlannerConfig, SolveBudget, SqprPlanner};
use sqpr_workload::{generate, WorkloadSpec};

const QUERIES: usize = 50;
const SCALE: f64 = 0.07;

/// Warm-path hyper-sparse hit-rate floor: the warm path's solves are
/// dominated by dual re-solves whose unit-seed BTRANs and short-support
/// FTRANs are exactly what the sparse kernels exist for. Measured ~0.95;
/// asserted well below to absorb workload drift without hiding a
/// dispatch regression.
const MIN_WARM_SPARSE_HIT_RATE: f64 = 0.60;

/// Allowed warm LP-iteration regression vs. the committed baseline. The
/// band used to be ±15% because model build iterated hash maps — LP row
/// order, and with it pivot tie-breaks, varied per process. The model's
/// maps are ordered (`BTreeMap`) now, so identical inputs build
/// byte-identical LPs and the sequence is deterministic; the remaining
/// band only absorbs cross-platform float-rounding differences.
const WARM_ITER_REGRESSION: f64 = 1.05;

/// Allowed warm refactorisation regression vs. the committed baseline:
/// root solves re-attach the previous construction's factors across cut
/// rounds and bound-patch submissions, so a refactorisation climb-back
/// means the lifted token (or the reattach path) regressed. Same band as
/// the iteration guard, tight for the same reason.
const WARM_REFACTOR_REGRESSION: f64 = 1.05;

/// Warm-path compressed-LP cache patch-rate floor: with fixed-class
/// keying, rebuilds happen only on structural-change rounds (skeleton
/// growth) — cut rounds, re-fixing rounds and the whole admission-retry
/// wave patch. Measured ~0.74 on this workload; asserted well below to
/// absorb drift while catching a return to set-identity keying (which
/// only same-set cut rounds survived).
const MIN_WARM_CACHE_PATCH_RATE: f64 = 0.55;

/// Reads a numeric field out of the committed baseline JSON, if one is
/// reachable (repo root when cargo runs benches from the package root;
/// override with `SQPR_BENCH_BASELINE`, skip when absent).
fn baseline_num(key: &str) -> Option<f64> {
    let path = std::env::var("SQPR_BENCH_BASELINE")
        .unwrap_or_else(|_| "../../BENCH_incremental.json".into());
    let text = std::fs::read_to_string(path).ok()?;
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let tail = &text[at..];
    let end = tail.find([',', '}'])?;
    tail[..end].trim().parse().ok()
}

struct Run {
    total_solve: Duration,
    /// Admit/reject decisions across the whole sequence: the 50-query
    /// first pass, then the interleaved admission retries in retry order.
    admitted: Vec<bool>,
    /// Admissions of the first pass alone (the paper-workload figure).
    first_pass_admitted: usize,
    objective: f64,
    lp_iterations: usize,
    pivots: PivotCounts,
    cache: CacheStats,
    /// Retry-wave deltas (the cross-submission warm path in isolation).
    wave_pivots: PivotCounts,
    wave_cache: CacheStats,
    wave_solve: Duration,
    nodes: usize,
}

fn run(w: &sqpr_workload::Workload, reuse_solver_context: bool, lp_threads: usize) -> Run {
    let mut cfg = PlannerConfig::new(&w.catalog);
    cfg.budget = SolveBudget::nodes(200);
    cfg.reuse_solver_context = reuse_solver_context;
    cfg.lp_threads = lp_threads;
    let mut planner = SqprPlanner::new(w.catalog.clone(), cfg);
    let mut first_admitted = Vec::with_capacity(w.queries.len());
    let mut retry_admitted = Vec::new();
    let mut retry_outcomes: Vec<usize> = Vec::new();

    // The 50-query pass, with an admission-retry round per rejection: a
    // rejected query is re-submitted once, right after the next arrival
    // (the paper's short-patience admission retry — maybe the newcomer's
    // re-planning freed what the rejected query needed). The retried plan
    // space is already covered by the skeleton and still inside the warm
    // path's keep-rejected-free window, so retries isolate the
    // *cross-submission* reuse path: compressed-LP bound patches over a
    // re-fixed class plus re-attached factors, versus a full fresh build
    // per retry on the cold path.
    let mut pending_retry: Option<usize> = None;
    for (i, q) in w.queries.iter().enumerate() {
        let adm = planner.submit(q).expect("valid bases").admitted;
        first_admitted.push(adm);
        if let Some(r) = pending_retry.take() {
            retry_admitted.push(planner.submit(&w.queries[r]).expect("valid bases").admitted);
            retry_outcomes.push(planner.outcomes().len() - 1);
        }
        if !adm {
            pending_retry = Some(i);
        }
    }
    if let Some(r) = pending_retry.take() {
        retry_admitted.push(planner.submit(&w.queries[r]).expect("valid bases").admitted);
        retry_outcomes.push(planner.outcomes().len() - 1);
    }
    assert!(planner.state().is_valid(planner.catalog()));
    let first_pass_admitted = first_admitted.iter().filter(|&&b| b).count();

    let mut pivots = PivotCounts::default();
    let mut cache = CacheStats::default();
    let mut wave_pivots = PivotCounts::default();
    let mut wave_cache = CacheStats::default();
    for (k, o) in planner.outcomes().iter().enumerate() {
        pivots.merge(&o.lp_pivots);
        cache.add(&o.lp_cache);
        if retry_outcomes.contains(&k) {
            wave_pivots.merge(&o.lp_pivots);
            wave_cache.add(&o.lp_cache);
        }
    }
    let mut admitted = first_admitted;
    admitted.extend_from_slice(&retry_admitted);
    Run {
        total_solve: planner.outcomes().iter().map(|o| o.solve_time).sum(),
        admitted,
        first_pass_admitted,
        objective: planner.deployment_objective(),
        lp_iterations: planner.outcomes().iter().map(|o| o.lp_iterations).sum(),
        pivots,
        cache,
        wave_pivots,
        wave_cache,
        wave_solve: retry_outcomes
            .iter()
            .map(|&k| planner.outcomes()[k].solve_time)
            .sum(),
        nodes: planner.outcomes().iter().map(|o| o.nodes).sum(),
    }
}

fn main() {
    let mut spec = WorkloadSpec::paper_sim(SCALE);
    spec.queries = QUERIES;
    let w = generate(&spec);

    // Warm-up pass so the first measured run does not pay one-time costs
    // (page faults, lazy allocation). The measured cold/warm comparison is
    // pinned to one LP worker so the headline incremental-vs-cold numbers
    // stay comparable with the history; the thread-scaling table below
    // owns the parallel axis.
    let _ = run(&w, false, 1);

    let cold = run(&w, false, 1);
    let warm = run(&w, true, 1);

    // Thread-scaling table: the cold pass (the deepest trees, so the most
    // speculative work) at 2/4/8 LP workers against the 1-worker `cold`
    // run above. Determinism first — every observable of every run must be
    // identical to the sequential reference — then wall clock.
    let scaling: Vec<(usize, Run)> = [2usize, 4, 8]
        .iter()
        .map(|&t| (t, run(&w, false, t)))
        .collect();
    println!("\n== thread scaling (cold pass, {QUERIES} queries + retries) ==");
    println!(
        "{:<12} {:>12} {:>10} {:>10} {:>10} {:>9}",
        "lp_threads", "total solve", "speedup", "lp iters", "nodes", "admitted"
    );
    let t1_solve = cold.total_solve.as_secs_f64();
    println!(
        "{:<12} {:>12} {:>9.2}x {:>10} {:>10} {:>9}",
        1,
        format!("{:.1?}", cold.total_solve),
        1.0,
        cold.lp_iterations,
        cold.nodes,
        cold.first_pass_admitted
    );
    for (t, r) in &scaling {
        println!(
            "{:<12} {:>12} {:>9.2}x {:>10} {:>10} {:>9}",
            t,
            format!("{:.1?}", r.total_solve),
            t1_solve / r.total_solve.as_secs_f64(),
            r.lp_iterations,
            r.nodes,
            r.first_pass_admitted
        );
        // Bit-identical, not "close": speculative evaluation memoizes
        // exactly what the node-id-ordered replay would compute itself.
        assert_eq!(
            r.admitted, cold.admitted,
            "lp_threads = {t}: admit/reject decisions diverged from sequential"
        );
        assert_eq!(
            r.objective.to_bits(),
            cold.objective.to_bits(),
            "lp_threads = {t}: deployment objective bits diverged \
             ({} vs {})",
            r.objective,
            cold.objective
        );
        assert_eq!(
            r.nodes, cold.nodes,
            "lp_threads = {t}: search-tree size diverged"
        );
        assert_eq!(
            r.lp_iterations, cold.lp_iterations,
            "lp_threads = {t}: simplex work diverged"
        );
        assert_eq!(
            r.pivots, cold.pivots,
            "lp_threads = {t}: pivot breakdown diverged"
        );
    }

    let speedup = cold.total_solve.as_secs_f64() / warm.total_solve.as_secs_f64();
    let first_pass_speedup = (cold.total_solve - cold.wave_solve).as_secs_f64()
        / (warm.total_solve - warm.wave_solve).as_secs_f64();
    // Neutral 1.0 when a tuning admits everything and no retries ran.
    let wave_speedup = if warm.wave_solve.is_zero() {
        1.0
    } else {
        cold.wave_solve.as_secs_f64() / warm.wave_solve.as_secs_f64()
    };
    let admitted = warm.first_pass_admitted;
    let retries = warm.admitted.len() - QUERIES;
    println!(
        "\n== bench group: incremental ({QUERIES} queries + {retries} retries, scale {SCALE}) =="
    );
    println!(
        "{:<28} {:>12} {:>10} {:>10} {:>10} {:>10} {:>7} {:>9} {:>8} {:>9}",
        "path",
        "total solve",
        "lp iters",
        "phase-I",
        "primal",
        "dual",
        "flips",
        "h-saved",
        "nodes",
        "admitted"
    );
    for (label, r) in [
        ("cold (fresh MILP per query)", &cold),
        ("warm (incremental)", &warm),
    ] {
        println!(
            "{:<28} {:>12} {:>10} {:>10} {:>10} {:>10} {:>7} {:>9} {:>8} {:>9}",
            label,
            format!("{:.1?}", r.total_solve),
            r.lp_iterations,
            r.pivots.phase1,
            r.pivots.primal,
            r.pivots.dual,
            r.pivots.bound_flips,
            r.pivots.harris_degenerate_saved,
            r.nodes,
            r.first_pass_admitted,
        );
    }
    println!(
        "speedup: {speedup:.2}x total ({first_pass_speedup:.2}x first pass, \
         {wave_speedup:.2}x retry wave)"
    );
    println!(
        "{:<28} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "sparsity", "sparse hit", "mean dens", "sparse", "dense", "FT upd", "refactor", "reattach"
    );
    for (label, r) in [
        ("cold (fresh MILP per query)", &cold),
        ("warm (incremental)", &warm),
    ] {
        println!(
            "{:<28} {:>11.1}% {:>11.1}% {:>10} {:>10} {:>10} {:>10} {:>10}",
            label,
            100.0 * r.pivots.sparse_hit_rate(),
            100.0 * r.pivots.mean_solve_density(),
            r.pivots.sparse_solves,
            r.pivots.dense_solves,
            r.pivots.ft_updates,
            r.pivots.refactorizations,
            r.pivots.factor_reattaches,
        );
    }
    println!(
        "{:<28} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "lp cache", "patch rate", "patches", "refix", "rebuilds", "rows appd"
    );
    for (label, r) in [
        ("cold (fresh MILP per query)", &cold),
        ("warm (incremental)", &warm),
    ] {
        println!(
            "{:<28} {:>11.1}% {:>10} {:>10} {:>10} {:>10}",
            label,
            100.0 * r.cache.patch_rate(),
            r.cache.patches,
            r.cache.refix_patches,
            r.cache.rebuilds,
            r.cache.appended_rows,
        );
    }
    println!(
        "retry wave (warm): cache {:?}, refactor {} ({} re-attached)",
        warm.wave_cache, warm.wave_pivots.refactorizations, warm.wave_pivots.factor_reattaches
    );

    // The identity verdict is *recorded before asserting*, so a divergence
    // leaves a `false` in the artifact for postmortem while still failing
    // the CI bench smoke (the assert below aborts with nonzero status).
    let outcomes_identical = warm.admitted == cold.admitted;
    emit_json(
        "incremental",
        &Json::obj(vec![
            ("bench", Json::Str("incremental".into())),
            ("queries", Json::Num(QUERIES as f64)),
            ("scale", Json::Num(SCALE)),
            ("cold_solve_s", Json::Num(cold.total_solve.as_secs_f64())),
            ("warm_solve_s", Json::Num(warm.total_solve.as_secs_f64())),
            (
                "cold_wave_solve_s",
                Json::Num(cold.wave_solve.as_secs_f64()),
            ),
            (
                "warm_wave_solve_s",
                Json::Num(warm.wave_solve.as_secs_f64()),
            ),
            ("speedup", Json::Num(speedup)),
            ("first_pass_speedup", Json::Num(first_pass_speedup)),
            ("wave_speedup", Json::Num(wave_speedup)),
            ("cold_lp_iterations", Json::Num(cold.lp_iterations as f64)),
            ("warm_lp_iterations", Json::Num(warm.lp_iterations as f64)),
            ("cold_pivots_phase1", Json::Num(cold.pivots.phase1 as f64)),
            ("cold_pivots_primal", Json::Num(cold.pivots.primal as f64)),
            ("cold_pivots_dual", Json::Num(cold.pivots.dual as f64)),
            ("warm_pivots_phase1", Json::Num(warm.pivots.phase1 as f64)),
            ("warm_pivots_primal", Json::Num(warm.pivots.primal as f64)),
            ("warm_pivots_dual", Json::Num(warm.pivots.dual as f64)),
            (
                "cold_bound_flips",
                Json::Num(cold.pivots.bound_flips as f64),
            ),
            (
                "warm_bound_flips",
                Json::Num(warm.pivots.bound_flips as f64),
            ),
            (
                "cold_harris_degenerate_saved",
                Json::Num(cold.pivots.harris_degenerate_saved as f64),
            ),
            (
                "warm_harris_degenerate_saved",
                Json::Num(warm.pivots.harris_degenerate_saved as f64),
            ),
            (
                "cold_sparse_solves",
                Json::Num(cold.pivots.sparse_solves as f64),
            ),
            (
                "cold_dense_solves",
                Json::Num(cold.pivots.dense_solves as f64),
            ),
            (
                "cold_sparse_hit_rate",
                Json::Num(cold.pivots.sparse_hit_rate()),
            ),
            (
                "cold_mean_solve_density",
                Json::Num(cold.pivots.mean_solve_density()),
            ),
            ("cold_ft_updates", Json::Num(cold.pivots.ft_updates as f64)),
            (
                "cold_pfi_updates",
                Json::Num(cold.pivots.pfi_updates as f64),
            ),
            (
                "cold_refactorizations",
                Json::Num(cold.pivots.refactorizations as f64),
            ),
            (
                "warm_sparse_solves",
                Json::Num(warm.pivots.sparse_solves as f64),
            ),
            (
                "warm_dense_solves",
                Json::Num(warm.pivots.dense_solves as f64),
            ),
            (
                "warm_sparse_hit_rate",
                Json::Num(warm.pivots.sparse_hit_rate()),
            ),
            (
                "warm_mean_solve_density",
                Json::Num(warm.pivots.mean_solve_density()),
            ),
            ("warm_ft_updates", Json::Num(warm.pivots.ft_updates as f64)),
            (
                "warm_pfi_updates",
                Json::Num(warm.pivots.pfi_updates as f64),
            ),
            (
                "warm_refactorizations",
                Json::Num(warm.pivots.refactorizations as f64),
            ),
            (
                "cold_factor_reattaches",
                Json::Num(cold.pivots.factor_reattaches as f64),
            ),
            (
                "warm_factor_reattaches",
                Json::Num(warm.pivots.factor_reattaches as f64),
            ),
            ("warm_cache_rebuilds", Json::Num(warm.cache.rebuilds as f64)),
            ("warm_cache_patches", Json::Num(warm.cache.patches as f64)),
            (
                "warm_cache_refix_patches",
                Json::Num(warm.cache.refix_patches as f64),
            ),
            (
                "warm_cache_appended_rows",
                Json::Num(warm.cache.appended_rows as f64),
            ),
            ("warm_cache_patch_rate", Json::Num(warm.cache.patch_rate())),
            ("retries", Json::Num(retries as f64)),
            (
                "warm_wave_cache_rebuilds",
                Json::Num(warm.wave_cache.rebuilds as f64),
            ),
            (
                "warm_wave_cache_patches",
                Json::Num(warm.wave_cache.patches as f64),
            ),
            (
                "warm_wave_cache_refix_patches",
                Json::Num(warm.wave_cache.refix_patches as f64),
            ),
            (
                "warm_wave_refactorizations",
                Json::Num(warm.wave_pivots.refactorizations as f64),
            ),
            (
                "warm_wave_factor_reattaches",
                Json::Num(warm.wave_pivots.factor_reattaches as f64),
            ),
            (
                "warm_wave_lp_iterations",
                Json::Num(warm.wave_pivots.total() as f64),
            ),
            (
                "cold_wave_lp_iterations",
                Json::Num(cold.wave_pivots.total() as f64),
            ),
            (
                "warm_first_pass_lp_iterations",
                Json::Num((warm.pivots.total() - warm.wave_pivots.total()) as f64),
            ),
            (
                "warm_first_pass_refactorizations",
                Json::Num(
                    (warm.pivots.refactorizations - warm.wave_pivots.refactorizations) as f64,
                ),
            ),
            ("cold_nodes", Json::Num(cold.nodes as f64)),
            ("warm_nodes", Json::Num(warm.nodes as f64)),
            ("admitted", Json::Num(admitted as f64)),
            ("outcomes_identical", Json::Bool(outcomes_identical)),
            ("cold_objective", Json::Num(cold.objective)),
            ("warm_objective", Json::Num(warm.objective)),
            ("cold_solve_s_t1", Json::Num(t1_solve)),
            (
                "cold_solve_s_t2",
                Json::Num(scaling[0].1.total_solve.as_secs_f64()),
            ),
            (
                "cold_solve_s_t4",
                Json::Num(scaling[1].1.total_solve.as_secs_f64()),
            ),
            (
                "cold_solve_s_t8",
                Json::Num(scaling[2].1.total_solve.as_secs_f64()),
            ),
            (
                "thread_speedup_t2",
                Json::Num(t1_solve / scaling[0].1.total_solve.as_secs_f64()),
            ),
            (
                "thread_speedup_t4",
                Json::Num(t1_solve / scaling[1].1.total_solve.as_secs_f64()),
            ),
            (
                "thread_speedup_t8",
                Json::Num(t1_solve / scaling[2].1.total_solve.as_secs_f64()),
            ),
        ]),
    );

    // Acceptance: identical admit/reject decisions, comparable deployment
    // quality, >= 2x on total solve time.
    assert!(
        outcomes_identical,
        "warm and cold paths must take identical admit/reject decisions"
    );
    assert!(
        (warm.objective - cold.objective).abs() <= 0.02 * (1.0 + cold.objective.abs()),
        "deployment objectives diverged: warm {} vs cold {}",
        warm.objective,
        cold.objective
    );
    // The dual simplex must carry the warm path's bound-change re-solves:
    // dual pivots present, phase-I demoted to a small minority (stale-root
    // repairs), and the cold path untouched by the dual machinery.
    assert!(
        warm.pivots.dual > 0,
        "warm path took no dual pivots — bound-change re-solves regressed to phase-I"
    );
    assert!(
        warm.pivots.dual > warm.pivots.phase1,
        "dual pivots ({}) must carry the warm path, not phase-I ({})",
        warm.pivots.dual,
        warm.pivots.phase1
    );
    assert!(
        warm.pivots.phase1 * 4 < cold.pivots.phase1,
        "warm phase-I did not shrink: warm {} vs cold {}",
        warm.pivots.phase1,
        cold.pivots.phase1
    );
    // The tentpole acceptance floor is a 30% warm-iteration reduction vs
    // the pre-dual-simplex baseline; this asserts the stronger invariant
    // the current implementation actually delivers (warm < cold / 2,
    // measured ~cold / 14) so a partial regression still trips CI. Relax
    // deliberately if a future change trades iterations for wall clock.
    assert!(
        warm.lp_iterations * 2 < cold.lp_iterations,
        "warm path should need far fewer LP iterations: warm {} vs cold {}",
        warm.lp_iterations,
        cold.lp_iterations
    );
    // Hyper-sparsity must actually carry the warm path (the dispatch
    // falling back to dense everywhere would silently lose the tentpole),
    // and the Forrest–Tomlin default must be doing the updates.
    assert!(
        warm.pivots.sparse_hit_rate() >= MIN_WARM_SPARSE_HIT_RATE,
        "warm sparse-path hit rate too low: {:.1}% < {:.0}%",
        100.0 * warm.pivots.sparse_hit_rate(),
        100.0 * MIN_WARM_SPARSE_HIT_RATE
    );
    assert!(
        warm.pivots.ft_updates > warm.pivots.pfi_updates,
        "Forrest–Tomlin updates ({}) must dominate PFI fallbacks ({})",
        warm.pivots.ft_updates,
        warm.pivots.pfi_updates
    );
    // The cross-submission LP cache must carry the warm path: a healthy
    // patch rate overall, and the retry wave — re-submissions over an
    // unchanged skeleton, the cross-submission case in isolation — must be
    // served *entirely* by patches: rebuilds happen on structural-change
    // rounds only, and the wave has none.
    assert!(
        warm.cache.patch_rate() >= MIN_WARM_CACHE_PATCH_RATE,
        "warm LP-cache patch rate too low: {:.1}% < {:.0}% ({:?})",
        100.0 * warm.cache.patch_rate(),
        100.0 * MIN_WARM_CACHE_PATCH_RATE,
        warm.cache
    );
    // Lifted factor generations must re-attach factorisations across the
    // cache's consecutive constructions.
    assert!(
        warm.pivots.factor_reattaches > 0,
        "warm path re-attached no basis factorisations"
    );
    // The wave-specific invariants only exist when the workload saturates
    // (a tuning that admits all 50 queries schedules no retries).
    if retries > 0 {
        assert_eq!(
            warm.wave_cache.rebuilds, 0,
            "retry-wave rounds are not structural changes and must all patch: {:?}",
            warm.wave_cache
        );
        assert!(
            warm.wave_cache.patches >= retries,
            "every retry must be served by the cache: {:?}",
            warm.wave_cache
        );
        assert!(
            warm.cache.refix_patches > 0,
            "no cross-submission fixed-class hits: every patch kept the exact \
             fixed set, the class keying is not engaging ({:?})",
            warm.cache
        );
        assert!(
            warm.wave_pivots.factor_reattaches > 0,
            "retry wave re-attached no factors: the lifted generation token \
             is not surviving bound-patch refreshes"
        );
    }
    // Warm LP iterations / refactorisations vs. the committed baseline: a
    // regression beyond the noise band fails the smoke (refresh the
    // committed BENCH_incremental.json when the regression is intentional).
    if let Some(baseline) = baseline_num("warm_lp_iterations") {
        assert!(
            (warm.lp_iterations as f64) <= WARM_ITER_REGRESSION * baseline,
            "warm LP iterations regressed >{:.0}% vs committed baseline: {} vs {baseline}",
            100.0 * (WARM_ITER_REGRESSION - 1.0),
            warm.lp_iterations
        );
    } else {
        println!("(no committed baseline found; warm-iteration regression check skipped)");
    }
    if let Some(baseline) = baseline_num("warm_refactorizations") {
        assert!(
            (warm.pivots.refactorizations as f64) <= WARM_REFACTOR_REGRESSION * baseline,
            "warm refactorisations regressed >{:.0}% vs committed baseline: {} vs {baseline}",
            100.0 * (WARM_REFACTOR_REGRESSION - 1.0),
            warm.pivots.refactorizations
        );
    }
    // The wall-clock assertions are skippable for noisy shared runners
    // (SQPR_BENCH_LENIENT=1): timing jitter there must not fail CI, while
    // the deterministic assertions above always hold. The first pass keeps
    // the historical 2x floor; the total is softer because the retry wave
    // deliberately adds rejection rounds — full-budget bound proofs on
    // *both* paths (the ROADMAP's budget-burn item), where the warm path's
    // structural savings are diluted by per-node solve work.
    if std::env::var("SQPR_BENCH_LENIENT").is_err() {
        assert!(
            first_pass_speedup >= 2.0,
            "warm first pass must be >= 2x faster (got {first_pass_speedup:.2}x)"
        );
        assert!(
            speedup >= 1.5,
            "warm path must be >= 1.5x faster overall (got {speedup:.2}x)"
        );
        // Parallel scaling is only measurable when the machine actually
        // has the cores: on <4-core runners the 4-thread pool time-slices
        // one core and the floor is meaningless.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores >= 4 {
            let t4 = t1_solve / scaling[1].1.total_solve.as_secs_f64();
            assert!(
                t4 >= 2.0,
                "cold pass at 4 LP workers must be >= 2x faster than sequential (got {t4:.2}x)"
            );
        } else {
            println!("({cores} cores available; thread-scaling floor skipped)");
        }
    }
}
