//! Micro-benchmarks for the LP solver: dense-ish and sparse problems of the
//! shapes the planner produces.

use sqpr_bench::timing::BenchGroup;
use sqpr_lp::{solve, ProblemBuilder, SimplexOptions, INF};

/// Transportation-style LP: `n` sources, `n` sinks.
fn transport_lp(n: usize) -> sqpr_lp::Problem {
    let mut b = ProblemBuilder::new();
    let mut vars = vec![vec![0usize; n]; n];
    for (i, row) in vars.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            *v = b.add_col(((i * 7 + j * 13) % 10 + 1) as f64, 0.0, INF);
        }
    }
    for (i, row) in vars.iter().enumerate() {
        let r = b.add_row(-(INF), 8.0 + (i % 3) as f64);
        for &v in row {
            b.set_coeff(r, v, 1.0);
        }
    }
    for j in 0..n {
        let r = b.add_row(5.0, INF);
        for row in &vars {
            b.set_coeff(r, row[j], 1.0);
        }
    }
    b.build()
}

fn main() {
    let mut g = BenchGroup::new("lp_simplex");
    for n in [8usize, 16] {
        let p = transport_lp(n);
        g.bench(format!("transport_{n}x{n}"), || {
            solve(&p, &SimplexOptions::default())
        });
    }
    g.finish();
}
