//! Micro-benchmarks for branch & bound on knapsack/assignment MILPs.

use criterion::{criterion_group, criterion_main, Criterion};
use sqpr_milp::{solve, MilpOptions, Model, Sense};

fn knapsack(n: usize) -> Model {
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_binary(((i * 17) % 23 + 3) as f64))
        .collect();
    m.add_le(
        vars.iter()
            .enumerate()
            .map(|(i, &v)| (v, ((i * 11) % 13 + 2) as f64))
            .collect(),
        (3 * n) as f64 / 2.0,
    );
    m
}

fn assignment(n: usize) -> Model {
    let mut m = Model::new(Sense::Minimize);
    let mut vars = vec![vec![]; n];
    for (i, row) in vars.iter_mut().enumerate() {
        for j in 0..n {
            row.push(m.add_binary(((i * 7 + j * 5) % 11 + 1) as f64));
        }
    }
    for row in &vars {
        m.add_eq(row.iter().map(|&v| (v, 1.0)).collect(), 1.0);
    }
    for j in 0..n {
        m.add_eq(vars.iter().map(|row| (row[j], 1.0)).collect(), 1.0);
    }
    m
}

fn bench_milp(c: &mut Criterion) {
    let mut g = c.benchmark_group("milp_bnb");
    g.bench_function("knapsack_20", |b| {
        let m = knapsack(20);
        b.iter(|| solve(&m, &MilpOptions::default()))
    });
    g.bench_function("assignment_6x6", |b| {
        let m = assignment(6);
        b.iter(|| solve(&m, &MilpOptions::default()))
    });
    g.finish();
}

criterion_group!(benches, bench_milp);
criterion_main!(benches);
