//! Micro-benchmarks for branch & bound on knapsack/assignment MILPs.

use sqpr_bench::timing::BenchGroup;
use sqpr_milp::{solve, MilpOptions, Model, Sense};

fn knapsack(n: usize) -> Model {
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_binary(((i * 17) % 23 + 3) as f64))
        .collect();
    m.add_le(
        vars.iter()
            .enumerate()
            .map(|(i, &v)| (v, ((i * 11) % 13 + 2) as f64))
            .collect(),
        (3 * n) as f64 / 2.0,
    );
    m
}

fn assignment(n: usize) -> Model {
    let mut m = Model::new(Sense::Minimize);
    let mut vars = vec![vec![]; n];
    for (i, row) in vars.iter_mut().enumerate() {
        for j in 0..n {
            row.push(m.add_binary(((i * 7 + j * 5) % 11 + 1) as f64));
        }
    }
    for row in &vars {
        m.add_eq(row.iter().map(|&v| (v, 1.0)).collect(), 1.0);
    }
    for j in 0..n {
        m.add_eq(vars.iter().map(|row| (row[j], 1.0)).collect(), 1.0);
    }
    m
}

fn main() {
    let mut g = BenchGroup::new("milp_bnb");
    let k = knapsack(20);
    g.bench("knapsack_20", || solve(&k, &MilpOptions::default()));
    let a = assignment(6);
    g.bench("assignment_6x6", || solve(&a, &MilpOptions::default()));
    g.finish();
}
