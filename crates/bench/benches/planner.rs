//! End-to-end planner benchmarks: model build and single-query submission
//! on a small system (larger scales are exercised by the figure binaries).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sqpr_core::{register_join_query, AcyclicityMode, RelayPolicy};
use sqpr_core::{ModelInputs, PlannerConfig, PlanningModel, SolveBudget, SqprPlanner};
use sqpr_dsps::{DeploymentState, QueryId};
use sqpr_workload::{generate, WorkloadSpec};

fn bench_planner(c: &mut Criterion) {
    let mut spec = WorkloadSpec::paper_sim(0.1);
    spec.queries = 40;
    let w = generate(&spec);

    let mut g = c.benchmark_group("planner");
    g.sample_size(10);

    g.bench_function("model_build_3way", |b| {
        let mut catalog = w.catalog.clone();
        let bases: Vec<_> = w.queries.iter().find(|q| q.len() == 3).unwrap().clone();
        let (_, space) = register_join_query(&mut catalog, QueryId(0), &bases, 0);
        let state = DeploymentState::new();
        let cfg = PlannerConfig::new(&catalog);
        b.iter(|| {
            PlanningModel::build(&ModelInputs {
                catalog: &catalog,
                state: &state,
                space: &space,
                new_streams: &[],
                weights: cfg.weights,
                relay_policy: RelayPolicy::All,
                acyclicity: AcyclicityMode::Lazy,
                replan: true,
                cuts: &[],
            })
        })
    });

    g.bench_function("submit_first_query", |b| {
        b.iter_batched(
            || {
                let mut cfg = PlannerConfig::new(&w.catalog);
                cfg.budget = SolveBudget::nodes(20);
                SqprPlanner::new(w.catalog.clone(), cfg)
            },
            |mut planner| planner.submit(&w.queries[0]),
            BatchSize::SmallInput,
        )
    });

    g.bench_function("submit_20_queries", |b| {
        b.iter_batched(
            || {
                let mut cfg = PlannerConfig::new(&w.catalog);
                cfg.budget = SolveBudget::nodes(20);
                SqprPlanner::new(w.catalog.clone(), cfg)
            },
            |mut planner| {
                for q in w.queries.iter().take(20) {
                    planner.submit(q);
                }
                planner.num_admitted()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);
