//! End-to-end planner benchmarks: model build and single-query submission
//! on a small system (larger scales are exercised by the figure binaries).

use sqpr_bench::timing::BenchGroup;
use sqpr_core::{register_join_query, AcyclicityMode, RelayPolicy};
use sqpr_core::{ModelInputs, PlannerConfig, PlanningModel, SolveBudget, SqprPlanner};
use sqpr_dsps::{DeploymentState, QueryId};
use sqpr_workload::{generate, WorkloadSpec};

fn main() {
    let mut spec = WorkloadSpec::paper_sim(0.1);
    spec.queries = 40;
    let w = generate(&spec);

    let mut g = BenchGroup::new("planner");

    {
        let mut catalog = w.catalog.clone();
        let bases: Vec<_> = w.queries.iter().find(|q| q.len() == 3).unwrap().clone();
        let (_, space) = register_join_query(&mut catalog, QueryId(0), &bases, 0);
        let state = DeploymentState::new();
        let cfg = PlannerConfig::new(&catalog);
        g.bench("model_build_3way", || {
            PlanningModel::build(&ModelInputs {
                catalog: &catalog,
                state: &state,
                space: &space,
                new_streams: &[],
                weights: cfg.weights,
                relay_policy: RelayPolicy::All,
                acyclicity: AcyclicityMode::Lazy,
                replan: true,
                cuts: &[],
            })
        });
    }

    g.bench("submit_first_query", || {
        let mut cfg = PlannerConfig::new(&w.catalog);
        cfg.budget = SolveBudget::nodes(20);
        let mut planner = SqprPlanner::new(w.catalog.clone(), cfg);
        planner.submit(&w.queries[0]).expect("valid bases")
    });

    g.bench("submit_20_queries", || {
        let mut cfg = PlannerConfig::new(&w.catalog);
        cfg.budget = SolveBudget::nodes(20);
        let mut planner = SqprPlanner::new(w.catalog.clone(), cfg);
        for q in w.queries.iter().take(20) {
            planner.submit(q).expect("valid bases");
        }
        planner.num_admitted()
    });
    g.finish();
}
