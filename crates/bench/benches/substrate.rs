//! Substrate benchmarks: catalog interning, deployment validation, the
//! execution engine, and workload generation.

use criterion::{criterion_group, criterion_main, Criterion};
use sqpr_baselines::HeuristicPlanner;
use sqpr_dsps::{run_engine, EngineConfig};
use sqpr_workload::{generate, WorkloadSpec};

fn bench_substrate(c: &mut Criterion) {
    let spec = WorkloadSpec::paper_sim(0.1);
    let w = generate(&spec);

    let mut g = c.benchmark_group("substrate");
    g.bench_function("workload_generate_0.1", |b| b.iter(|| generate(&spec)));

    // A deployed system for validation/engine benchmarks.
    let mut hp = HeuristicPlanner::new(w.catalog.clone());
    for q in w.queries.iter().take(30) {
        hp.submit(q);
    }
    g.bench_function("deployment_validate", |b| {
        b.iter(|| hp.state().validate(hp.catalog()).len())
    });
    g.bench_function("engine_60_ticks", |b| {
        let cfg = EngineConfig::default();
        b.iter(|| run_engine(hp.catalog(), hp.state(), &cfg).delivered)
    });
    g.bench_function("heuristic_submit_30", |b| {
        b.iter(|| {
            let mut hp = HeuristicPlanner::new(w.catalog.clone());
            for q in w.queries.iter().take(30) {
                hp.submit(q);
            }
            hp.num_admitted()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
