//! Substrate benchmarks: catalog interning, deployment validation, the
//! execution engine, and workload generation.

use sqpr_baselines::HeuristicPlanner;
use sqpr_bench::timing::BenchGroup;
use sqpr_dsps::{run_engine, EngineConfig};
use sqpr_workload::{generate, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::paper_sim(0.1);
    let w = generate(&spec);

    let mut g = BenchGroup::new("substrate");
    g.bench("workload_generate_0.1", || generate(&spec));

    // A deployed system for validation/engine benchmarks.
    let mut hp = HeuristicPlanner::new(w.catalog.clone());
    for q in w.queries.iter().take(30) {
        hp.submit(q);
    }
    g.bench("deployment_validate", || {
        hp.state().validate(hp.catalog()).len()
    });
    let cfg = EngineConfig::default();
    g.bench("engine_60_ticks", || {
        run_engine(hp.catalog(), hp.state(), &cfg).delivered
    });
    g.bench("heuristic_submit_30", || {
        let mut hp = HeuristicPlanner::new(w.catalog.clone());
        for q in w.queries.iter().take(30) {
            hp.submit(q);
        }
        hp.num_admitted()
    });
    g.finish();
}
