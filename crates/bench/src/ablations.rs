//! Ablation studies for the design choices called out in DESIGN.md.
//!
//! Each ablation runs the same workload with one knob flipped and reports
//! the admitted-query count (and, where relevant, load-balance metrics).

use sqpr_core::{AcyclicityMode, PlannerConfig, RelayPolicy, SqprPlanner};
use sqpr_dsps::metrics::jain_fairness;
use sqpr_workload::{generate, WorkloadSpec};

use crate::harness::{budget_for_timeout, Series};

fn run_with(
    cfg_mod: impl Fn(&mut PlannerConfig),
    scale: f64,
    queries: Option<usize>,
) -> (usize, f64) {
    let spec = WorkloadSpec::paper_sim(scale);
    let w = generate(&spec);
    let mut cfg = PlannerConfig::new(&w.catalog);
    cfg.budget = budget_for_timeout(30);
    cfg_mod(&mut cfg);
    let mut planner = SqprPlanner::new(w.catalog.clone(), cfg);
    let n = queries.unwrap_or(w.queries.len());
    for q in w.queries.iter().take(n) {
        planner.submit(q).expect("valid bases");
    }
    let cpu = planner.state().cpu_usage(planner.catalog());
    (planner.num_admitted(), jain_fairness(&cpu))
}

/// Reuse on/off: value of cross-query sharing (§II-C).
pub fn ablation_reuse(scale: f64) -> Vec<Series> {
    let mut s = Series::new("admitted");
    let (on, _) = run_with(|_| {}, scale, None);
    let (off, _) = run_with(|c| c.reuse = false, scale, None);
    s.push(1.0, on as f64);
    s.push(0.0, off as f64);
    println!("reuse on: {on} admitted; reuse off: {off} admitted");
    vec![s]
}

/// Relay policy: the §II-C stream-relaying freedom vs producers-only.
pub fn ablation_relay(scale: f64) -> Vec<Series> {
    let mut s = Series::new("admitted");
    let (all, _) = run_with(|_| {}, scale, None);
    let (prod, _) = run_with(|c| c.relay_policy = RelayPolicy::ProducersOnly, scale, None);
    s.push(1.0, all as f64);
    s.push(0.0, prod as f64);
    println!("relays allowed: {all} admitted; producers-only: {prod} admitted");
    vec![s]
}

/// §IV-A problem reduction on/off (off is intractable beyond small systems,
/// so this runs a reduced query count).
pub fn ablation_reduction(scale: f64) -> Vec<Series> {
    let n = Some(((40.0 * scale).round() as usize).max(6));
    let mut s = Series::new("admitted");
    let (on, _) = run_with(|_| {}, scale, n);
    let (off, _) = run_with(|c| c.reduction = false, scale, n);
    s.push(1.0, on as f64);
    s.push(0.0, off as f64);
    println!("reduction on: {on} admitted; reduction off: {off} admitted (over {n:?} queries)");
    vec![s]
}

/// IV.9 re-planning flexibility on/off.
pub fn ablation_replan(scale: f64) -> Vec<Series> {
    let mut s = Series::new("admitted");
    let (on, _) = run_with(|_| {}, scale, None);
    let (off, _) = run_with(|c| c.replan = false, scale, None);
    s.push(1.0, on as f64);
    s.push(0.0, off as f64);
    println!("replanning on: {on} admitted; replanning off: {off} admitted");
    vec![s]
}

/// Warm-start (constructive admission) on/off.
pub fn ablation_warmstart(scale: f64) -> Vec<Series> {
    let n = Some(((120.0 * scale).round() as usize).max(6));
    let mut s = Series::new("admitted");
    let (on, _) = run_with(|_| {}, scale, n);
    let (off, _) = run_with(|c| c.warm_start = false, scale, n);
    s.push(1.0, on as f64);
    s.push(0.0, off as f64);
    println!("warm start on: {on} admitted; warm start off: {off} admitted (over {n:?} queries)");
    vec![s]
}

/// In-model (III.7) vs lazy acyclicity.
pub fn ablation_acyclicity(scale: f64) -> Vec<Series> {
    let n = Some(((60.0 * scale).round() as usize).max(6));
    let mut s = Series::new("admitted");
    let t0 = std::time::Instant::now();
    let (lazy, _) = run_with(|_| {}, scale, n);
    let t_lazy = t0.elapsed();
    let t1 = std::time::Instant::now();
    let (cons, _) = run_with(|c| c.acyclicity = AcyclicityMode::Constraints, scale, n);
    let t_cons = t1.elapsed();
    s.push(0.0, lazy as f64);
    s.push(1.0, cons as f64);
    println!("lazy: {lazy} admitted in {t_lazy:?}; III.7 in-model: {cons} admitted in {t_cons:?}");
    vec![s]
}

/// Hierarchical decomposition (§VII future work) vs. flat planning:
/// admitted queries and total planning wall time on the same workload.
pub fn ablation_hierarchical(scale: f64) -> Vec<Series> {
    use sqpr_core::HierarchicalPlanner;
    use sqpr_dsps::HostId;

    let mut spec = WorkloadSpec::paper_sim(scale);
    spec.hosts = spec.hosts.max(6);
    let w = generate(&spec);

    let t0 = std::time::Instant::now();
    let mut cfg = PlannerConfig::new(&w.catalog);
    cfg.budget = budget_for_timeout(30);
    let mut flat = SqprPlanner::new(w.catalog.clone(), cfg);
    for q in &w.queries {
        flat.submit(q).expect("valid bases");
    }
    let t_flat = t0.elapsed();

    let t1 = std::time::Instant::now();
    let half = w.catalog.num_hosts() / 2;
    let sites = vec![
        (0..half).map(|i| HostId(i as u32)).collect::<Vec<_>>(),
        (half..w.catalog.num_hosts())
            .map(|i| HostId(i as u32))
            .collect(),
    ];
    let mut hier = HierarchicalPlanner::new(&w.catalog, sites, |sc| {
        let mut cfg = PlannerConfig::new(sc);
        cfg.budget = budget_for_timeout(30);
        cfg
    });
    for q in &w.queries {
        hier.submit(q).expect("valid bases");
    }
    let t_hier = t1.elapsed();

    println!(
        "flat: {} admitted in {t_flat:?}; hierarchical (2 sites): {} admitted in {t_hier:?}",
        flat.num_admitted(),
        hier.num_admitted()
    );
    let mut s = Series::new("admitted");
    s.push(0.0, flat.num_admitted() as f64);
    s.push(1.0, hier.num_admitted() as f64);
    let mut t = Series::new("total planning s");
    t.push(0.0, t_flat.as_secs_f64());
    t.push(1.0, t_hier.as_secs_f64());
    vec![s, t]
}

/// λ3/λ4 sweep (§III-B trade-off between total consumption and balance):
/// reports admitted count and Jain fairness of the CPU distribution.
pub fn ablation_weights(scale: f64) -> Vec<Series> {
    let mut admitted = Series::new("admitted");
    let mut fairness = Series::new("jain fairness");
    for (i, mix) in [0.0f64, 0.25, 0.5, 0.75, 1.0].iter().enumerate() {
        let (adm, fair) = run_with(|c| c.weights = c.weights.balance_mix(*mix), scale, None);
        admitted.push(*mix, adm as f64);
        fairness.push(*mix, fair);
        let _ = i;
    }
    vec![admitted, fairness]
}
