//! Runs all DESIGN.md ablations: reuse, relaying, problem reduction, IV.9
//! replanning, warm start, acyclicity mode, and the λ3/λ4 balance sweep.
//! Usage: `ablations [scale]`.
use sqpr_bench::ablations::*;
use sqpr_bench::harness::{print_figure, scale_arg};

fn main() {
    let scale = scale_arg(0.1);
    println!("Ablations @ scale {scale}");
    print_figure("Ablation: reuse (1=on)", "reuse", &ablation_reuse(scale));
    print_figure(
        "Ablation: relaying (1=all)",
        "relays",
        &ablation_relay(scale),
    );
    print_figure(
        "Ablation: reduction (1=on)",
        "reduction",
        &ablation_reduction(scale),
    );
    print_figure(
        "Ablation: replanning (1=on)",
        "replan",
        &ablation_replan(scale),
    );
    print_figure(
        "Ablation: warm start (1=on)",
        "warmstart",
        &ablation_warmstart(scale),
    );
    print_figure(
        "Ablation: acyclicity (0=lazy, 1=III.7)",
        "mode",
        &ablation_acyclicity(scale),
    );
    print_figure(
        "Ablation: balance mix (0=min-resource, 1=balance)",
        "mix",
        &ablation_weights(scale),
    );
    print_figure(
        "Ablation: hierarchical (0=flat, 1=2 sites)",
        "mode",
        &ablation_hierarchical(scale),
    );
}
