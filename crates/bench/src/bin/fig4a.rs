//! Reproduces Fig. 4(a): planning efficiency — satisfied vs. input queries
//! for the optimistic bound, SQPR at three solve budgets, and the
//! heuristic planner. Usage: `fig4a [scale]` (1.0 = paper size).
use sqpr_bench::figures::fig4a;
use sqpr_bench::harness::{print_figure, scale_arg};

fn main() {
    let scale = scale_arg(0.15);
    println!("Fig 4(a) @ scale {scale} (paper: 50 hosts, 500 base streams, 500 input queries)");
    let series = fig4a(scale);
    print_figure("Fig 4(a): planning efficiency", "input queries", &series);
}
