//! Reproduces Fig. 4(b): efficiency with batched submission (batches of
//! 2-5 queries planned jointly). Usage: `fig4b [scale]`.
use sqpr_bench::figures::fig4b;
use sqpr_bench::harness::{print_figure, scale_arg};

fn main() {
    let scale = scale_arg(0.15);
    println!("Fig 4(b) @ scale {scale}");
    let series = fig4b(scale);
    print_figure(
        "Fig 4(b): efficiency with batching",
        "input queries",
        &series,
    );
}
