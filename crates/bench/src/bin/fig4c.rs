//! Reproduces Fig. 4(c): efficiency vs. query overlap (Zipf factor sweep
//! for three base-stream universe sizes). Usage: `fig4c [scale]`.
use sqpr_bench::figures::fig4c;
use sqpr_bench::harness::{print_figure, scale_arg};

fn main() {
    let scale = scale_arg(0.1);
    println!("Fig 4(c) @ scale {scale} (paper: 100/500/1000 base streams, Zipf 0-2)");
    let series = fig4c(scale);
    print_figure("Fig 4(c): efficiency with overlap", "zipf factor", &series);
}
