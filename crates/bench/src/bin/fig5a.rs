//! Reproduces Fig. 5(a): scalability in hosts (25/50/100/150 at paper
//! scale). Usage: `fig5a [scale]`.
use sqpr_bench::figures::fig5a;
use sqpr_bench::harness::{print_figure, scale_arg};

fn main() {
    let scale = scale_arg(0.1);
    println!("Fig 5(a) @ scale {scale} (paper hosts: 25/50/100/150)");
    let series = fig5a(scale);
    print_figure("Fig 5(a): scalability in hosts", "hosts", &series);
}
