//! Reproduces Fig. 5(b): scalability in per-host resources (1/2/4/8 CPU
//! cores, 10x network). Usage: `fig5b [scale]`.
use sqpr_bench::figures::fig5b;
use sqpr_bench::harness::{print_figure, scale_arg};

fn main() {
    let scale = scale_arg(0.1);
    println!("Fig 5(b) @ scale {scale} (paper: 1/2/4/8 cores, 10 Gbps)");
    let series = fig5b(scale);
    print_figure("Fig 5(b): scalability in resources", "CPU cores", &series);
}
