//! Reproduces Fig. 5(c): scalability in query complexity (2- to 5-way
//! joins). Usage: `fig5c [scale]`.
use sqpr_bench::figures::fig5c;
use sqpr_bench::harness::{print_figure, scale_arg};

fn main() {
    let scale = scale_arg(0.1);
    println!("Fig 5(c) @ scale {scale} (paper: 2-w..5-w joins)");
    let series = fig5c(scale);
    print_figure(
        "Fig 5(c): scalability in query complexity",
        "join arity",
        &series,
    );
}
