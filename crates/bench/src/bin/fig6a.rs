//! Reproduces Fig. 6(a): average planning time vs. host count at 75-95%
//! resource utilisation. Usage: `fig6a [scale]`.
use sqpr_bench::figures::fig6a;
use sqpr_bench::harness::{print_figure, scale_arg};

fn main() {
    let scale = scale_arg(0.1);
    println!("Fig 6(a) @ scale {scale} (paper hosts: 25/50/100/150, 100 s cap)");
    let series = fig6a(scale);
    print_figure("Fig 6(a): planning time vs hosts", "hosts", &series);
}
