//! Reproduces Fig. 6(b): average planning time vs. query arity.
//! Usage: `fig6b [scale]`.
use sqpr_bench::figures::fig6b;
use sqpr_bench::harness::{print_figure, scale_arg};

fn main() {
    let scale = scale_arg(0.1);
    println!("Fig 6(b) @ scale {scale} (paper: 2-w..5-w at 50 hosts)");
    let series = fig6b(scale);
    print_figure(
        "Fig 6(b): planning time vs query type",
        "join arity",
        &series,
    );
}
