//! Reproduces Fig. 7(a): cluster planning efficiency, SQPR vs SODA, in
//! waves of 50 queries on the simulated 15-host cluster.
//! Usage: `fig7a [scale]`.
use sqpr_bench::cluster::fig7a;
use sqpr_bench::harness::{print_figure, scale_arg};

fn main() {
    let scale = scale_arg(0.5);
    println!("Fig 7(a) @ scale {scale} (paper: 15 hosts, 300 base streams, waves of 50)");
    let series = fig7a(scale);
    print_figure(
        "Fig 7(a): cluster planning efficiency",
        "input queries",
        &series,
    );
}
