//! Reproduces Fig. 7(b): CDF of per-host CPU utilisation measured by the
//! execution engine after deploying 50 and 150 input queries (scaled) with
//! SQPR and SODA. Usage: `fig7b [scale]`.
use sqpr_bench::cluster::{cluster_distributions, print_cdfs};
use sqpr_bench::harness::scale_arg;

fn main() {
    let scale = scale_arg(0.5);
    println!("Fig 7(b) @ scale {scale} (paper: 50 & 150 input queries)");
    let mut cdfs = Vec::new();
    for n in [(50.0 * scale) as usize, (150.0 * scale) as usize] {
        for d in cluster_distributions(scale, n.max(5)) {
            cdfs.push((d.label.clone(), d.cpu_percent));
        }
    }
    print_cdfs("Fig 7(b): CPU utilisation distribution", "CPU %", &cdfs);
}
