//! Reproduces Fig. 7(c): CDF of per-host network usage (sent + received)
//! measured by the execution engine. Usage: `fig7c [scale]`.
use sqpr_bench::cluster::{cluster_distributions, print_cdfs};
use sqpr_bench::harness::scale_arg;

fn main() {
    let scale = scale_arg(0.5);
    println!("Fig 7(c) @ scale {scale} (paper: 50 & 150 input queries)");
    let mut cdfs = Vec::new();
    for n in [(50.0 * scale) as usize, (150.0 * scale) as usize] {
        for d in cluster_distributions(scale, n.max(5)) {
            cdfs.push((d.label.clone(), d.net_usage));
        }
    }
    print_cdfs(
        "Fig 7(c): network usage distribution",
        "Mbps (in+out)",
        &cdfs,
    );
}
