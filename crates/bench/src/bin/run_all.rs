//! Runs every figure harness at a laptop-friendly scale and prints all
//! tables (the data recorded in EXPERIMENTS.md). Usage: `run_all [scale]`.
use sqpr_bench::cluster::{cluster_distributions, fig7a, print_cdfs};
use sqpr_bench::figures::*;
use sqpr_bench::harness::{print_figure, scale_arg};

fn main() {
    let scale = scale_arg(0.1);
    println!("SQPR reproduction: all figures @ scale {scale} (1.0 = paper size)");
    print_figure(
        "Fig 4(a): planning efficiency",
        "input queries",
        &fig4a(scale),
    );
    print_figure(
        "Fig 4(b): efficiency with batching",
        "input queries",
        &fig4b(scale),
    );
    print_figure(
        "Fig 4(c): efficiency with overlap",
        "zipf factor",
        &fig4c(scale),
    );
    print_figure("Fig 5(a): scalability in hosts", "hosts", &fig5a(scale));
    print_figure(
        "Fig 5(b): scalability in resources",
        "CPU cores",
        &fig5b(scale),
    );
    print_figure(
        "Fig 5(c): scalability in query complexity",
        "join arity",
        &fig5c(scale),
    );
    print_figure(
        "Fig 6(a): planning time vs hosts (ms)",
        "hosts",
        &fig6a(scale),
    );
    print_figure(
        "Fig 6(b): planning time vs query type (ms)",
        "join arity",
        &fig6b(scale),
    );
    let cscale = (scale * 4.0).min(1.0);
    print_figure(
        "Fig 7(a): cluster planning efficiency",
        "input queries",
        &fig7a(cscale),
    );
    let mut cpu_cdfs = Vec::new();
    let mut net_cdfs = Vec::new();
    for n in [(50.0 * cscale) as usize, (150.0 * cscale) as usize] {
        for d in cluster_distributions(cscale, n.max(5)) {
            cpu_cdfs.push((d.label.clone(), d.cpu_percent));
            net_cdfs.push((d.label, d.net_usage));
        }
    }
    print_cdfs("Fig 7(b): CPU utilisation distribution", "CPU %", &cpu_cdfs);
    print_cdfs("Fig 7(c): network usage distribution", "Mbps", &net_cdfs);
}
