//! Reproduction of the cluster-deployment experiments (paper §V-B, Fig. 7).
//!
//! The paper runs a DISSP prototype on 15 Emulab hosts (10 Mbps LAN) and
//! submits waves of 50 queries to SQPR and SODA, measuring admitted counts
//! and the distribution of per-host CPU/network usage. We substitute the
//! `sqpr-dsps` execution engine for Emulab: plans are deployed onto the
//! simulated cluster and the engine's resource monitors provide the
//! measured distributions.

use sqpr_baselines::SodaPlanner;
use sqpr_core::{ObjectiveWeights, PlannerConfig, SqprPlanner};
use sqpr_dsps::{run_engine, Cdf, EngineConfig};
use sqpr_workload::{generate, Workload, WorkloadSpec};

use crate::harness::{budget_for_timeout, Series};

/// Wave size (the paper submits 50 queries per wave at full scale).
fn wave_size(spec: &WorkloadSpec) -> usize {
    (spec.queries / 5).max(1)
}

fn cluster_sqpr(w: &Workload) -> SqprPlanner {
    let mut cfg = PlannerConfig::new(&w.catalog);
    cfg.budget = budget_for_timeout(30);
    // §V-B: "the objective function for the next experiments is set to
    // load balancing".
    cfg.weights = ObjectiveWeights::load_balance(&w.catalog);
    SqprPlanner::new(w.catalog.clone(), cfg)
}

/// Figure 7(a): admitted queries per wave, SQPR vs SODA, on the cluster.
pub fn fig7a(scale: f64) -> Vec<Series> {
    let spec = WorkloadSpec::paper_cluster(scale);
    let w = generate(&spec);
    let wave = wave_size(&spec);

    let mut sqpr = cluster_sqpr(&w);
    let mut soda = SodaPlanner::new(w.catalog.clone());
    let mut s1 = Series::new("sqpr");
    let mut s2 = Series::new("soda");
    let mut submitted = 0usize;
    for chunk in w.queries.chunks(wave) {
        for q in chunk {
            sqpr.submit(q).expect("valid bases");
            soda.submit(q);
        }
        submitted += chunk.len();
        s1.push(submitted as f64, sqpr.num_admitted() as f64);
        s2.push(submitted as f64, soda.num_admitted() as f64);
    }
    vec![s1, s2]
}

/// Measured per-host distributions after deploying `n_queries` with each
/// planner: returns `(label, cpu%, net)` CDFs.
pub struct ClusterDistributions {
    pub label: String,
    pub cpu_percent: Cdf,
    pub net_usage: Cdf,
}

/// Figures 7(b)/(c) backend: runs both planners to the given input-query
/// count, deploys the resulting allocations on the execution engine and
/// samples the monitors.
pub fn cluster_distributions(scale: f64, input_queries: usize) -> Vec<ClusterDistributions> {
    let spec = WorkloadSpec::paper_cluster(scale);
    let w = generate(&spec);
    let queries: Vec<_> = w.queries.iter().take(input_queries).collect();

    let engine_cfg = EngineConfig {
        tick_seconds: 1.0,
        warmup_ticks: 20,
        measure_ticks: 60,
        cpu_noise: 0.05,
        seed: 0xD155,
    };

    let mut out = Vec::new();

    let mut sqpr = cluster_sqpr(&w);
    for q in &queries {
        sqpr.submit(q).expect("valid bases");
    }
    let report = run_engine(sqpr.catalog(), sqpr.state(), &engine_cfg);
    out.push(ClusterDistributions {
        label: format!("SQPR-{input_queries}"),
        cpu_percent: Cdf::from_samples(report.cpu_utilization.iter().map(|u| u * 100.0).collect()),
        net_usage: Cdf::from_samples(report.net_usage.clone()),
    });

    let mut soda = SodaPlanner::new(w.catalog.clone());
    for q in &queries {
        soda.submit(q);
    }
    let report = run_engine(soda.catalog(), soda.state(), &engine_cfg);
    out.push(ClusterDistributions {
        label: format!("SODA-{input_queries}"),
        cpu_percent: Cdf::from_samples(report.cpu_utilization.iter().map(|u| u * 100.0).collect()),
        net_usage: Cdf::from_samples(report.net_usage.clone()),
    });
    out
}

/// Prints a CDF table (10 evenly spaced cumulative fractions per series).
pub fn print_cdfs(title: &str, value_label: &str, dists: &[(String, Cdf)]) {
    println!("\n=== {title} ===");
    println!("{:>12} {:>30}", "quantile", value_label);
    print!("{:>12}", "q");
    for (label, _) in dists {
        print!("  {label:>14}");
    }
    println!();
    for i in 1..=10 {
        let q = i as f64 / 10.0;
        print!("{q:>12.1}");
        for (_, cdf) in dists {
            if cdf.is_empty() {
                print!("  {:>14}", "-");
            } else {
                print!("  {:>14.3}", cdf.quantile(q));
            }
        }
        println!();
    }
}
