//! Reproduction of the simulation figures (paper §V-A, Figs. 4–6).
//!
//! Every function regenerates one figure's series on a scaled-down system
//! (`scale = 1.0` reproduces the paper's sizes). Absolute numbers differ
//! from the paper (different hardware, solver and scale); the *shapes* are
//! the reproduction target: ordering of planners, saturation points,
//! monotonicity in overlap/resources, and the host-count sensitivity of
//! planning time.

use std::time::Instant;

use sqpr_baselines::{HeuristicPlanner, OptimisticBound, Planner};
use sqpr_core::{PlannerConfig, SolveBudget, SqprPlanner};
use sqpr_workload::{generate, Workload, WorkloadSpec};

use crate::harness::{budget_for_timeout, Series};

fn sqpr_with_budget(workload: &Workload, budget: SolveBudget) -> SqprPlanner {
    let mut cfg = PlannerConfig::new(&workload.catalog);
    cfg.budget = budget;
    SqprPlanner::new(workload.catalog.clone(), cfg)
}

/// Runs a planner over the workload, recording admitted counts at every
/// `every`-query checkpoint.
fn admission_curve(
    planner: &mut dyn Planner,
    queries: &[Vec<sqpr_dsps::StreamId>],
    every: usize,
) -> Vec<(f64, f64)> {
    let mut points = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        planner.submit_query(q);
        if (i + 1) % every == 0 || i + 1 == queries.len() {
            points.push(((i + 1) as f64, planner.admitted() as f64));
        }
    }
    points
}

/// Figure 4(a): satisfied vs. input queries for the optimistic bound, SQPR
/// under three solve budgets (the paper's 60/30/5 s CPLEX timeouts), and
/// the heuristic planner.
pub fn fig4a(scale: f64) -> Vec<Series> {
    let spec = WorkloadSpec::paper_sim(scale);
    let w = generate(&spec);
    let every = (w.queries.len() / 20).max(1);
    let mut out = Vec::new();

    let mut ob = OptimisticBound::new(w.catalog.clone());
    let mut s = Series::new("optimistic");
    s.points = admission_curve(&mut ob, &w.queries, every);
    out.push(s);

    for (label, secs) in [("sqpr-60s", 60u64), ("sqpr-30s", 30), ("sqpr-5s", 5)] {
        let mut planner = sqpr_with_budget(&w, budget_for_timeout(secs));
        let mut s = Series::new(label);
        s.points = admission_curve(&mut planner, &w.queries, every);
        out.push(s);
    }

    let mut hp = HeuristicPlanner::new(w.catalog.clone());
    let mut s = Series::new("heuristic");
    s.points = admission_curve(&mut hp, &w.queries, every);
    out.push(s);
    out
}

/// Figure 4(b): admission curves when queries are submitted in batches of
/// 2–5, each batch planned as one optimisation with an `n`-scaled budget.
pub fn fig4b(scale: f64) -> Vec<Series> {
    let spec = WorkloadSpec::paper_sim(scale);
    let w = generate(&spec);
    let every = (w.queries.len() / 20).max(1);
    let mut out = Vec::new();
    for batch in 2..=5usize {
        let base = budget_for_timeout(30);
        let budget = SolveBudget {
            max_nodes: base.max_nodes * batch,
            // The paper uses 30n-second timeouts; cap the wall clock so the
            // harness stays interactive at laptop scale.
            wall_clock_ms: base
                .wall_clock_ms
                .map(|msec| (msec * batch as u64).min(4000)),
        };
        let mut planner = sqpr_with_budget(&w, budget);
        let mut s = Series::new(format!("{batch} query batches"));
        let mut submitted = 0usize;
        for chunk in w.queries.chunks(batch) {
            planner.submit_batch(chunk).expect("valid bases");
            submitted += chunk.len();
            if submitted % every < batch || submitted == w.queries.len() {
                s.push(submitted as f64, planner.num_admitted() as f64);
            }
        }
        out.push(s);
    }
    out
}

/// Figure 4(c): satisfiable queries vs. the Zipf factor controlling
/// base-stream overlap, for three base-stream universe sizes.
pub fn fig4c(scale: f64) -> Vec<Series> {
    let mut out = Vec::new();
    for bases_factor in [0.2f64, 1.0, 2.0] {
        let base_spec = WorkloadSpec::paper_sim(scale);
        let n_bases = ((base_spec.base_streams as f64 * bases_factor) as usize).max(6);
        let mut s = Series::new(format!("{n_bases} base streams"));
        for zipf in [0.0f64, 0.5, 1.0, 1.5, 2.0] {
            let mut spec = WorkloadSpec::paper_sim(scale);
            spec.base_streams = n_bases;
            spec.zipf_theta = zipf;
            let w = generate(&spec);
            let mut planner = sqpr_with_budget(&w, budget_for_timeout(30));
            for q in &w.queries {
                planner.submit_query(q);
            }
            s.push(zipf, planner.num_admitted() as f64);
        }
        out.push(s);
    }
    out
}

/// Figure 5(a): satisfiable queries vs. host count, SQPR vs. the optimistic
/// bound. Host counts follow the paper's 25/50/100/150 ratio at the given
/// scale.
pub fn fig5a(scale: f64) -> Vec<Series> {
    let mut sqpr = Series::new("sqpr");
    let mut opt = Series::new("optimistic");
    for factor in [0.5f64, 1.0, 2.0, 3.0] {
        let mut spec = WorkloadSpec::paper_sim(scale);
        spec.hosts = ((spec.hosts as f64 * factor) as usize).max(3);
        // More hosts host more queries; submit enough to saturate.
        spec.queries = (spec.queries as f64 * factor.max(1.0) * 1.5) as usize;
        let w = generate(&spec);
        let mut planner = sqpr_with_budget(&w, budget_for_timeout(30));
        for q in &w.queries {
            planner.submit_query(q);
        }
        sqpr.push(spec.hosts as f64, planner.num_admitted() as f64);
        let mut ob = OptimisticBound::new(w.catalog.clone());
        for q in &w.queries {
            ob.submit_query(q);
        }
        opt.push(spec.hosts as f64, ob.admitted() as f64);
    }
    vec![opt, sqpr]
}

/// Figure 5(b): satisfiable queries vs. per-host CPU cores (1/2/4/8), with
/// 10x network capacity as in the paper.
pub fn fig5b(scale: f64) -> Vec<Series> {
    let mut sqpr = Series::new("sqpr");
    let mut opt = Series::new("optimistic");
    for cores in [1u32, 2, 4, 8] {
        let mut spec = WorkloadSpec::paper_sim(scale);
        spec.cpu_capacity *= cores as f64;
        spec.host_bandwidth *= 10.0;
        spec.link_capacity *= 10.0;
        spec.queries = (spec.queries * cores as usize * 2).min(spec.queries * 8);
        let w = generate(&spec);
        let mut planner = sqpr_with_budget(&w, budget_for_timeout(30));
        for q in &w.queries {
            planner.submit_query(q);
        }
        sqpr.push(cores as f64, planner.num_admitted() as f64);
        let mut ob = OptimisticBound::new(w.catalog.clone());
        for q in &w.queries {
            ob.submit_query(q);
        }
        opt.push(cores as f64, ob.admitted() as f64);
    }
    vec![opt, sqpr]
}

/// Figure 5(c): satisfiable queries vs. query complexity (all queries k-way
/// for k = 2..5).
pub fn fig5c(scale: f64) -> Vec<Series> {
    let mut sqpr = Series::new("sqpr");
    let mut opt = Series::new("optimistic");
    for k in 2..=5usize {
        let mut spec = WorkloadSpec::paper_sim(scale);
        spec.arities = vec![(k, 1.0)];
        let w = generate(&spec);
        let mut planner = sqpr_with_budget(&w, budget_for_timeout(30));
        for q in &w.queries {
            planner.submit_query(q);
        }
        sqpr.push(k as f64, planner.num_admitted() as f64);
        let mut ob = OptimisticBound::new(w.catalog.clone());
        for q in &w.queries {
            ob.submit_query(q);
        }
        opt.push(k as f64, ob.admitted() as f64);
    }
    vec![opt, sqpr]
}

/// Drives a planner to 75% CPU utilisation, then measures the mean planning
/// time of subsequent queries (paper Fig. 6 methodology: planning is
/// hardest when 75–95% of resources are consumed).
fn planning_time_at_load(spec: &WorkloadSpec, budget: SolveBudget) -> f64 {
    let w = generate(spec);
    let total_cpu = w.catalog.total_cpu();
    let mut planner = sqpr_with_budget(&w, budget);
    let mut times = Vec::new();
    for q in &w.queries {
        let used: f64 = planner.state().cpu_usage(planner.catalog()).iter().sum();
        let loaded = used / total_cpu >= 0.75;
        let t = Instant::now();
        planner.submit(q).expect("valid bases");
        if loaded {
            times.push(t.elapsed().as_secs_f64() * 1e3);
        }
        if times.len() >= 25 {
            break;
        }
    }
    if times.is_empty() {
        f64::NAN
    } else {
        times.iter().sum::<f64>() / times.len() as f64
    }
}

/// Figure 6(a): average planning time vs. host count at 75–95% utilisation
/// (the paper caps CPLEX at 100 s; we use the scaled budget).
pub fn fig6a(scale: f64) -> Vec<Series> {
    let mut s = Series::new("avg planning ms");
    for factor in [0.5f64, 1.0, 2.0, 3.0] {
        let mut spec = WorkloadSpec::paper_sim(scale);
        spec.hosts = ((spec.hosts as f64 * factor) as usize).max(3);
        spec.queries = (spec.queries as f64 * factor.max(1.0) * 1.5) as usize;
        let t = planning_time_at_load(&spec, budget_for_timeout(100));
        s.push(spec.hosts as f64, t);
    }
    vec![s]
}

/// Figure 6(b): average planning time vs. query arity (2- to 5-way joins).
pub fn fig6b(scale: f64) -> Vec<Series> {
    let mut s = Series::new("avg planning ms");
    for k in 2..=5usize {
        let mut spec = WorkloadSpec::paper_sim(scale);
        spec.arities = vec![(k, 1.0)];
        let t = planning_time_at_load(&spec, budget_for_timeout(100));
        s.push(k as f64, t);
    }
    vec![s]
}
