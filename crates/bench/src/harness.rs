//! Shared harness utilities for the figure-reproduction binaries.
//!
//! Every harness prints a self-describing table: the paper figure it
//! regenerates, the (scaled) experiment parameters, and one row per x-value
//! with one column per series — the same rows/series the paper plots.

use std::time::Duration;

use sqpr_core::SolveBudget;

/// Scale factor for experiments: 1.0 = the paper's sizes. Read from the
/// `SQPR_SCALE` environment variable or the first CLI argument; defaults to
/// a laptop-friendly fraction.
pub fn scale_arg(default: f64) -> f64 {
    if let Some(a) = std::env::args().nth(1) {
        if let Ok(v) = a.parse::<f64>() {
            return v.clamp(0.02, 1.0);
        }
    }
    if let Ok(s) = std::env::var("SQPR_SCALE") {
        if let Ok(v) = s.parse::<f64>() {
            return v.clamp(0.02, 1.0);
        }
    }
    default
}

/// Maps a paper-side CPLEX timeout (seconds) to our solver's budget. The
/// deterministic component is the branch & bound node budget; the wall
/// clock is scaled down 5x because the experiments themselves are scaled.
pub fn budget_for_timeout(paper_seconds: u64) -> SolveBudget {
    SolveBudget {
        max_nodes: (paper_seconds as usize) * 8,
        wall_clock_ms: Some(paper_seconds * 50),
    }
}

/// One plotted series: a label and `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    pub label: String,
    pub points: Vec<(f64, f64)>,
}

impl Series {
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }
}

/// Prints a figure as an aligned table: `x` column plus one column per
/// series, matching the paper's plotted lines.
pub fn print_figure(title: &str, xlabel: &str, series: &[Series]) {
    println!("\n=== {title} ===");
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, _)| x))
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs.dedup();
    print!("{xlabel:>16}");
    for s in series {
        print!("  {:>18}", s.label);
    }
    println!();
    for &x in &xs {
        print!("{x:>16.2}");
        for s in series {
            match s.points.iter().find(|&&(px, _)| px == x) {
                Some(&(_, y)) => print!("  {y:>18.2}"),
                None => print!("  {:>18}", "-"),
            }
        }
        println!();
    }
}

/// Formats a duration in milliseconds with two decimals.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// A JSON value for the machine-readable bench emitter. Only the shapes
/// the harnesses need (no external dependencies).
#[derive(Debug, Clone)]
pub enum Json {
    Num(f64),
    Str(String),
    Bool(bool),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Num(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

/// Writes a machine-readable result file (`BENCH_<name>.json`) next to the
/// printed tables so successive runs can be diffed by tooling. The target
/// directory comes from `SQPR_BENCH_DIR` (default: current directory).
/// Returns the path written, or `None` on IO failure (benches must not
/// fail because a results directory is read-only).
pub fn emit_json(name: &str, payload: &Json) -> Option<std::path::PathBuf> {
    let dir = std::env::var("SQPR_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
    match std::fs::write(&path, payload.to_string() + "\n") {
        Ok(()) => {
            println!("wrote {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("warning: could not write {}: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_mapping_monotone() {
        let b5 = budget_for_timeout(5);
        let b30 = budget_for_timeout(30);
        let b60 = budget_for_timeout(60);
        assert!(b5.max_nodes < b30.max_nodes && b30.max_nodes < b60.max_nodes);
        assert!(b5.wall_clock_ms.unwrap() < b60.wall_clock_ms.unwrap());
    }

    #[test]
    fn series_printing_does_not_panic() {
        let mut s = Series::new("test");
        s.push(1.0, 2.0);
        s.push(2.0, 4.0);
        print_figure("t", "x", &[s]);
    }

    #[test]
    fn ms_converts() {
        assert_eq!(ms(Duration::from_millis(1500)), 1500.0);
    }
}
