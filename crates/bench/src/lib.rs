//! # sqpr-bench
//!
//! Figure/table reproduction harnesses for the SQPR evaluation (one binary
//! per figure; see `src/bin/`), shared utilities, and the ablation studies
//! listed in DESIGN.md. Criterion micro-benchmarks for the solver stack
//! live in `benches/`.

pub mod ablations;
pub mod cluster;
pub mod figures;
pub mod harness;
pub mod timing;
