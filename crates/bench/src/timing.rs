//! Minimal micro-benchmark runner used by the `benches/` targets.
//!
//! The sanctioned dependency set has no `criterion`, so the bench targets
//! are plain `harness = false` binaries built on this runner: per-benchmark
//! auto-calibration to a target measurement window, min/median/mean
//! reporting, and an aligned summary table. Use `std::hint::black_box` at
//! call sites to keep the optimiser honest.

use std::time::{Duration, Instant};

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub name: String,
    /// Per-iteration wall-clock samples, sorted ascending.
    pub samples_ns: Vec<f64>,
}

impl BenchResult {
    pub fn min_ns(&self) -> f64 {
        self.samples_ns.first().copied().unwrap_or(f64::NAN)
    }

    pub fn median_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return f64::NAN;
        }
        self.samples_ns[self.samples_ns.len() / 2]
    }

    pub fn mean_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return f64::NAN;
        }
        self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64
    }
}

/// A named group of benchmarks printed as one table by [`BenchGroup::finish`].
pub struct BenchGroup {
    name: String,
    /// Target total measurement time per benchmark.
    pub measure_for: Duration,
    /// Hard cap on measured iterations.
    pub max_iters: usize,
    results: Vec<BenchResult>,
}

impl BenchGroup {
    pub fn new(name: impl Into<String>) -> Self {
        BenchGroup {
            name: name.into(),
            measure_for: Duration::from_millis(300),
            max_iters: 200,
            results: Vec::new(),
        }
    }

    /// Runs `f` repeatedly: one warmup call, then enough iterations to fill
    /// the measurement window (at least 5, at most `max_iters`).
    pub fn bench<T>(&mut self, name: impl Into<String>, mut f: impl FnMut() -> T) -> &BenchResult {
        let name = name.into();
        // Warmup + calibration probe.
        let probe = Instant::now();
        std::hint::black_box(f());
        let once = probe.elapsed().max(Duration::from_nanos(50));
        let iters = (self.measure_for.as_nanos() / once.as_nanos()).clamp(5, self.max_iters as u128)
            as usize;
        let mut samples_ns = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t = Instant::now();
            std::hint::black_box(f());
            samples_ns.push(t.elapsed().as_nanos() as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.results.push(BenchResult { name, samples_ns });
        self.results.last().unwrap()
    }

    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the aligned summary table and returns the results.
    pub fn finish(self) -> Vec<BenchResult> {
        println!("\n== bench group: {} ==", self.name);
        println!(
            "{:<32} {:>8} {:>14} {:>14} {:>14}",
            "benchmark", "iters", "min", "median", "mean"
        );
        for r in &self.results {
            println!(
                "{:<32} {:>8} {:>14} {:>14} {:>14}",
                r.name,
                r.samples_ns.len(),
                fmt_ns(r.min_ns()),
                fmt_ns(r.median_ns()),
                fmt_ns(r.mean_ns()),
            );
        }
        self.results
    }
}

/// Human-friendly nanosecond formatting.
pub fn fmt_ns(ns: f64) -> String {
    if ns.is_nan() {
        "-".to_string()
    } else if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_collects_samples_and_stats() {
        let mut g = BenchGroup::new("t");
        g.measure_for = Duration::from_millis(5);
        let mut acc = 0u64;
        let r = g.bench("noop", || {
            acc = acc.wrapping_add(1);
            acc
        });
        assert!(r.samples_ns.len() >= 5);
        assert!(r.min_ns() <= r.median_ns());
        let all = g.finish();
        assert_eq!(all.len(), 1);
    }

    #[test]
    fn formats_scales() {
        assert!(fmt_ns(500.0).ends_with("ns"));
        assert!(fmt_ns(5_000.0).ends_with("µs"));
        assert!(fmt_ns(5_000_000.0).ends_with("ms"));
        assert!(fmt_ns(5e9).ends_with('s'));
    }
}
