//! Adaptive query planning (paper §IV-B).
//!
//! Initial planning is based on cost-model estimates; rates drift at
//! runtime. SQPR "stores the resource estimates used during initial
//! planning … and periodically constructs a list of queries (a) for which
//! the resource consumption differs from the initial estimates by a given
//! threshold or (b) that suffer from a shortage of resources on a host. It
//! then re-plans these queries by considering the system without those
//! queries and re-adding them."

use std::collections::BTreeSet;

use sqpr_dsps::{QueryId, StreamId};

use crate::planner::SqprPlanner;

/// Report of one adaptation round.
#[derive(Debug, Clone, Default)]
pub struct AdaptReport {
    /// Base streams whose observed rate deviated beyond the threshold.
    pub drifted_streams: Vec<StreamId>,
    /// Queries selected for re-planning (criterion (a) or (b)).
    pub replanned: Vec<QueryId>,
    /// Queries re-admitted successfully.
    pub readmitted: Vec<QueryId>,
    /// Queries dropped because no feasible plan was found after the drift.
    pub dropped: Vec<QueryId>,
}

/// Applies observed base-stream rates and re-plans affected queries.
///
/// `threshold` is the relative deviation that triggers re-planning
/// (criterion (a)); after the drift pass, any remaining resource shortage
/// triggers a full re-plan sweep (criterion (b)).
pub fn adapt_to_observed_rates(
    planner: &mut SqprPlanner,
    observed: &[(StreamId, f64)],
    threshold: f64,
) -> AdaptReport {
    let mut report = AdaptReport::default();

    // Criterion (a): rate drift beyond the threshold.
    let mut drifted: BTreeSet<StreamId> = BTreeSet::new();
    for &(s, rate) in observed {
        let old = planner.catalog().stream(s).rate;
        if old > 0.0 && ((rate - old) / old).abs() > threshold {
            drifted.insert(s);
        }
        planner.update_base_rate(s, rate);
    }
    report.drifted_streams = drifted.iter().copied().collect();

    let affected: Vec<QueryId> = planner
        .queries()
        .iter()
        .filter(|spec| {
            planner.state().admitted().contains_key(&spec.id)
                && spec.bases.iter().any(|b| drifted.contains(b))
        })
        .map(|spec| spec.id)
        .collect();

    for q in affected {
        report.replanned.push(q);
        match planner.replan_query(q) {
            Ok(outcome) if outcome.admitted => report.readmitted.push(q),
            _ => report.dropped.push(q),
        }
    }

    // Criterion (b): shortage anywhere -> sweep every admitted query once.
    if !planner.state().is_valid(planner.catalog()) {
        let all: Vec<QueryId> = planner.state().admitted().keys().copied().collect();
        for q in all {
            if planner.state().is_valid(planner.catalog()) {
                break;
            }
            if !report.replanned.contains(&q) {
                report.replanned.push(q);
                match planner.replan_query(q) {
                    Ok(outcome) if outcome.admitted => report.readmitted.push(q),
                    _ => report.dropped.push(q),
                }
            }
        }
    }
    report
}
