//! Adaptive query planning (paper §IV-B).
//!
//! Initial planning is based on cost-model estimates; rates drift at
//! runtime. SQPR "stores the resource estimates used during initial
//! planning … and periodically constructs a list of queries (a) for which
//! the resource consumption differs from the initial estimates by a given
//! threshold or (b) that suffer from a shortage of resources on a host. It
//! then re-plans these queries by considering the system without those
//! queries and re-adding them."

use std::collections::{BTreeMap, BTreeSet};

use sqpr_dsps::{QueryId, RateSketch, StreamId};

use crate::planner::SqprPlanner;

/// Report of one adaptation round.
#[derive(Debug, Clone, Default)]
pub struct AdaptReport {
    /// Base streams whose observed rate deviated beyond the threshold.
    pub drifted_streams: Vec<StreamId>,
    /// Queries selected for re-planning (criterion (a) or (b)).
    pub replanned: Vec<QueryId>,
    /// Queries re-admitted successfully.
    pub readmitted: Vec<QueryId>,
    /// Queries dropped because no feasible plan was found after the drift.
    pub dropped: Vec<QueryId>,
}

/// Applies observed base-stream rates and re-plans affected queries.
///
/// `threshold` is the relative deviation that triggers re-planning
/// (criterion (a)); after the drift pass, any remaining resource shortage
/// triggers a full re-plan sweep (criterion (b)).
pub fn adapt_to_observed_rates(
    planner: &mut SqprPlanner,
    observed: &[(StreamId, f64)],
    threshold: f64,
) -> AdaptReport {
    let mut report = AdaptReport::default();

    // Criterion (a): rate drift beyond the threshold.
    let mut drifted: BTreeSet<StreamId> = BTreeSet::new();
    for &(s, rate) in observed {
        let old = planner.catalog().stream(s).rate;
        if old > 0.0 && ((rate - old) / old).abs() > threshold {
            drifted.insert(s);
        }
        planner.update_base_rate(s, rate);
    }
    report.drifted_streams = drifted.iter().copied().collect();

    let affected: Vec<QueryId> = planner
        .queries()
        .iter()
        .filter(|spec| {
            planner.state().admitted().contains_key(&spec.id)
                && spec.bases.iter().any(|b| drifted.contains(b))
        })
        .map(|spec| spec.id)
        .collect();

    for q in affected {
        report.replanned.push(q);
        match planner.replan_query(q) {
            Ok(outcome) if outcome.admitted => report.readmitted.push(q),
            _ => report.dropped.push(q),
        }
    }

    // Criterion (b): shortage anywhere -> sweep every admitted query once.
    if !planner.state().is_valid(planner.catalog()) {
        let all: Vec<QueryId> = planner.state().admitted().keys().copied().collect();
        for q in all {
            if planner.state().is_valid(planner.catalog()) {
                break;
            }
            if !report.replanned.contains(&q) {
                report.replanned.push(q);
                match planner.replan_query(q) {
                    Ok(outcome) if outcome.admitted => report.readmitted.push(q),
                    _ => report.dropped.push(q),
                }
            }
        }
    }
    report
}

/// The feedback loop between the metrics layer and §IV-B re-planning.
///
/// The planner's rates are cost-model estimates; the running system
/// *measures* them. A `DriftMonitor` accumulates measured per-stream rate
/// samples into bounded sketches ([`sqpr_dsps::RateSketch`], one per
/// stream) and, when asked, compares each stream's window median against
/// the rate the planner currently assumes. Only when some stream's
/// estimate deviates beyond the threshold does it push the observations
/// through [`adapt_to_observed_rates`] — `update_base_rate` invalidates
/// the planner's solver context, so sub-threshold noise must not reach it.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    window: usize,
    /// Streams need this many valid samples before their estimate counts
    /// (a single spike must not trigger a re-planning storm).
    min_samples: usize,
    sketches: BTreeMap<StreamId, RateSketch>,
}

impl DriftMonitor {
    /// A monitor whose per-stream sketches retain `window` samples and
    /// vote only after `min_samples` of them arrived.
    pub fn new(window: usize, min_samples: usize) -> Self {
        assert!(min_samples >= 1 && min_samples <= window);
        DriftMonitor {
            window,
            min_samples,
            sketches: BTreeMap::new(),
        }
    }

    /// Ingests one measured rate sample for base stream `s`.
    pub fn observe(&mut self, s: StreamId, rate: f64) {
        self.sketches
            .entry(s)
            .or_insert_with(|| RateSketch::new(self.window))
            .observe(rate);
    }

    /// Ingests a batch of `(stream, rate)` samples.
    pub fn observe_all(&mut self, samples: &[(StreamId, f64)]) {
        for &(s, rate) in samples {
            self.observe(s, rate);
        }
    }

    /// Current per-stream estimates (window medians), ascending by stream
    /// id, restricted to streams with at least `min_samples` samples.
    pub fn estimates(&self) -> Vec<(StreamId, f64)> {
        self.sketches
            .iter()
            .filter(|(_, sk)| sk.len() >= self.min_samples)
            .filter_map(|(&s, sk)| sk.estimate().map(|e| (s, e)))
            .collect()
    }

    /// Streams whose estimate deviates from the planner's current rate by
    /// more than `threshold` (relative).
    pub fn drifted(&self, planner: &SqprPlanner, threshold: f64) -> Vec<StreamId> {
        self.estimates()
            .into_iter()
            .filter(|&(s, est)| {
                let assumed = planner.catalog().stream(s).rate;
                assumed > 0.0 && ((est - assumed) / assumed).abs() > threshold
            })
            .map(|(s, _)| s)
            .collect()
    }

    /// The adaptation trigger: when any tracked stream drifted beyond
    /// `threshold`, feeds *all* current estimates through
    /// [`adapt_to_observed_rates`] (sub-threshold streams just refresh
    /// their assumed rates; the drifted ones select queries for
    /// re-planning), clears the sketches for the next interval, and
    /// returns the report. Returns `None` — and touches neither planner
    /// nor sketches — while everything is within threshold, so the solver
    /// context survives quiet intervals untouched.
    pub fn adapt_if_drifted(
        &mut self,
        planner: &mut SqprPlanner,
        threshold: f64,
    ) -> Option<AdaptReport> {
        if self.drifted(planner, threshold).is_empty() {
            return None;
        }
        let observed = self.estimates();
        self.sketches.clear();
        Some(adapt_to_observed_rates(planner, &observed, threshold))
    }
}
