//! Deadline-bounded admission: anytime verdicts and the admission queue.
//!
//! With [`PlannerConfig::node_quantum`](crate::PlannerConfig::node_quantum)
//! set, every planning solve runs as a sequence of preemptible slices
//! ([`sqpr_milp::solve_preemptible`]); with
//! [`round_deadline`](crate::PlannerConfig::round_deadline) also set, a
//! round that is still open when its (deterministic, node-counted)
//! deadline expires answers *anytime* instead of burning the full budget:
//!
//! - an **admitting incumbent** is installed immediately —
//!   [`Admitted::IncumbentAtDeadline`], optimality deliberately forfeited;
//! - otherwise the suspended search is **parked** —
//!   [`Rejected::DeadlineNoCertificate`], a provisional rejection.
//!
//! The [`AdmissionQueue`] owns the parked rounds. Each [`pump`] tick
//! resumes the eligible ones **in park order** (deterministic), granting
//! another `round_deadline` nodes per attempt, with exponential
//! logical-tick backoff between attempts. A round that exhausts
//! [`admission_max_retries`](crate::PlannerConfig::admission_max_retries)
//! descends PR 7's degradation ladder:
//!
//! 1. **resume** — bounded retries of the suspended search (progress is
//!    never thrown away: the search continues bit-for-bit where it left
//!    off);
//! 2. **incumbent handoff** — at any deadline expiry, an incumbent that
//!    admits the query is installed;
//! 3. **greedy install** — the constructive baseline placement
//!    ([`SqprPlanner::admit_greedy`]);
//! 4. **defer** — the round is marked deferred and its next resume runs
//!    *unbounded*, producing a proven verdict either way.
//!
//! [`drain`] forces every parked round to a terminal verdict (unbounded
//! resumes), so after a quiet period the queue is empty and every
//! submission ever parked is accounted for in the [`AdmissionRecord`] log
//! — there is no silent-drop path, mirroring the recovery storm's
//! [`StormReport`](crate::StormReport) contract.
//!
//! [`pump`]: AdmissionQueue::pump
//! [`drain`]: AdmissionQueue::drain

use std::collections::VecDeque;

use sqpr_dsps::{QueryId, StreamId};
use sqpr_milp::MilpStatus;

use crate::planner::{PlannerError, PlanningOutcome, PreemptedRound, ResumeOutcome, SqprPlanner};

/// How a submission came to be admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admitted {
    /// The solver proved the admitting placement optimal.
    Proven,
    /// Admitted by an anytime handoff without an optimality certificate:
    /// the best incumbent at a deadline/budget expiry, or the degradation
    /// ladder's greedy install.
    IncumbentAtDeadline,
}

/// How a submission came to be rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The solver proved no admitting placement exists (infeasible, or the
    /// optimum does not admit).
    Proven,
    /// The deadline/budget expired with no admitting incumbent and no
    /// proof. When issued by a deadline round this rejection is
    /// *provisional*: the suspended search is parked in the
    /// [`AdmissionQueue`] and may still resolve either way.
    DeadlineNoCertificate,
}

/// Anytime verdict of one planning round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundVerdict {
    Admitted(Admitted),
    Rejected(Rejected),
}

impl RoundVerdict {
    /// Maps a *completed* (non-preempted) round to its verdict: proofs
    /// require a terminal solver status, everything else is an anytime
    /// answer.
    pub(crate) fn of_result(admitted: bool, status: MilpStatus) -> Self {
        if admitted {
            if status == MilpStatus::Optimal {
                RoundVerdict::Admitted(Admitted::Proven)
            } else {
                RoundVerdict::Admitted(Admitted::IncumbentAtDeadline)
            }
        } else if matches!(status, MilpStatus::Optimal | MilpStatus::Infeasible) {
            RoundVerdict::Rejected(Rejected::Proven)
        } else {
            RoundVerdict::Rejected(Rejected::DeadlineNoCertificate)
        }
    }

    pub fn is_admitted(&self) -> bool {
        matches!(self, RoundVerdict::Admitted(_))
    }

    /// Whether the verdict carries a certificate (proven admit/reject).
    pub fn is_proven(&self) -> bool {
        matches!(
            self,
            RoundVerdict::Admitted(Admitted::Proven) | RoundVerdict::Rejected(Rejected::Proven)
        )
    }
}

/// The rung of the degradation ladder that produced a terminal verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPath {
    /// Resolved by the submission round itself (no parking involved).
    Direct,
    /// Resolved by resuming the parked search to completion.
    Resumed,
    /// An admitting incumbent was installed at a deadline expiry.
    IncumbentHandoff,
    /// The greedy baseline placement was installed after the retry budget
    /// ran dry.
    GreedyInstall,
    /// Resolved by the deferred (unbounded) final resume.
    DeferredReplan,
}

/// Terminal record of one submission that went through the queue. Every
/// parked round produces exactly one record once resolved; the scenario
/// corpus asserts the ledger covers every preempted submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionRecord {
    pub query: QueryId,
    pub verdict: RoundVerdict,
    /// Resume attempts consumed (0 for `Direct`).
    pub attempts: u32,
    pub path: AdmissionPath,
}

struct Parked {
    round: PreemptedRound,
    attempts: u32,
    /// Logical tick at which the next resume attempt may run.
    eligible_at: u64,
    /// Ladder rung 4: the next resume runs unbounded.
    deferred: bool,
}

/// Admission front-end for deadline-bounded planning: parks
/// deadline-preempted submissions (suspended search included) and resumes
/// them in deterministic order under bounded retries with logical-tick
/// backoff. See the module docs for the full ladder.
#[derive(Default)]
pub struct AdmissionQueue {
    parked: VecDeque<Parked>,
    tick: u64,
    log: Vec<AdmissionRecord>,
}

impl AdmissionQueue {
    pub fn new() -> Self {
        AdmissionQueue::default()
    }

    /// Submissions currently parked (suspended searches awaiting resume).
    pub fn parked(&self) -> usize {
        self.parked.len()
    }

    /// Queries currently parked, in resume order.
    pub fn parked_queries(&self) -> Vec<QueryId> {
        self.parked.iter().map(|p| p.round.query()).collect()
    }

    /// Current logical tick (advanced by [`Self::pump`]).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Terminal ledger: one record per resolved submission, in resolution
    /// order.
    pub fn records(&self) -> &[AdmissionRecord] {
        &self.log
    }

    /// Submits a query through the deadline layer: a round preempted at
    /// its node deadline without an admitting incumbent is parked here for
    /// retries; everything else resolves directly. The returned outcome is
    /// the round's — check [`PlanningOutcome::verdict`] to distinguish a
    /// provisional [`Rejected::DeadlineNoCertificate`] (parked, may still
    /// admit) from a terminal answer.
    pub fn submit(
        &mut self,
        planner: &mut SqprPlanner,
        bases: &[StreamId],
    ) -> Result<PlanningOutcome, PlannerError> {
        let outcome = planner.submit(bases)?;
        match planner.take_preempted_round() {
            Some(round) => self.parked.push_back(Parked {
                round,
                attempts: 0,
                eligible_at: self.tick + 1,
                deferred: false,
            }),
            None => self.log.push(AdmissionRecord {
                query: outcome.query,
                verdict: outcome.verdict,
                attempts: 0,
                path: AdmissionPath::Direct,
            }),
        }
        Ok(outcome)
    }

    /// One logical tick: resumes every eligible parked round in park order,
    /// each under another `round_deadline` node budget (deferred rounds run
    /// unbounded). Returns the outcomes of the rounds that resolved this
    /// tick. Rounds that stay open are re-parked with exponential backoff
    /// until their retries run dry, then descend the ladder (greedy
    /// install, else deferred).
    pub fn pump(&mut self, planner: &mut SqprPlanner) -> Vec<PlanningOutcome> {
        self.tick += 1;
        let max_retries = planner.config().admission_max_retries;
        let backoff = planner.config().admission_backoff_base.max(1);
        let deadline = planner.config().round_deadline;
        let mut resolved = Vec::new();
        for _ in 0..self.parked.len() {
            let Some(mut p) = self.parked.pop_front() else {
                break;
            };
            if p.eligible_at > self.tick {
                self.parked.push_back(p);
                continue;
            }
            p.attempts += 1;
            let budget = if p.deferred { None } else { deadline };
            let path = if p.deferred {
                AdmissionPath::DeferredReplan
            } else {
                AdmissionPath::Resumed
            };
            match planner.resume_parked(p.round, budget) {
                ResumeOutcome::Resolved(outcome) => {
                    let path = if outcome.verdict
                        == RoundVerdict::Admitted(Admitted::IncumbentAtDeadline)
                        && !outcome.proved_optimal
                        && !p.deferred
                    {
                        AdmissionPath::IncumbentHandoff
                    } else {
                        path
                    };
                    self.log.push(AdmissionRecord {
                        query: outcome.query,
                        verdict: outcome.verdict,
                        attempts: p.attempts,
                        path,
                    });
                    resolved.push(outcome);
                }
                ResumeOutcome::StillOpen(round) => {
                    if p.attempts < max_retries {
                        // Rung 1: retry later, exponential logical backoff.
                        p.eligible_at = self.tick + (backoff << (p.attempts - 1).min(32) as u64);
                        p.round = round;
                        self.parked.push_back(p);
                    } else if matches!(planner.admit_greedy(round.query()), Ok(true)) {
                        // Rung 3: greedy install — served at degraded
                        // quality; the suspended search is dropped.
                        let outcome = degraded_outcome(
                            round.query(),
                            round.nodes_done(),
                            RoundVerdict::Admitted(Admitted::IncumbentAtDeadline),
                        );
                        self.log.push(AdmissionRecord {
                            query: outcome.query,
                            verdict: outcome.verdict,
                            attempts: p.attempts,
                            path: AdmissionPath::GreedyInstall,
                        });
                        resolved.push(outcome);
                    } else {
                        // Rung 4: defer — the next resume runs unbounded
                        // and must produce a proven verdict.
                        p.deferred = true;
                        p.eligible_at = self.tick + 1;
                        p.round = round;
                        self.parked.push_back(p);
                    }
                }
            }
        }
        resolved
    }

    /// Forces every parked round to a terminal verdict *now*: each gets
    /// one unbounded resume (the parked search completes, reusing all
    /// progress). After `drain` the queue is empty — the zero-silent-drops
    /// guarantee the deadline-storm scenario pins.
    pub fn drain(&mut self, planner: &mut SqprPlanner) -> Vec<PlanningOutcome> {
        let mut resolved = Vec::new();
        while let Some(mut p) = self.parked.pop_front() {
            p.attempts += 1;
            match planner.resume_parked(p.round, None) {
                ResumeOutcome::Resolved(outcome) => {
                    self.log.push(AdmissionRecord {
                        query: outcome.query,
                        verdict: outcome.verdict,
                        attempts: p.attempts,
                        path: AdmissionPath::DeferredReplan,
                    });
                    resolved.push(outcome);
                }
                // Unreachable (an unbounded resume always completes), but
                // kept panic-free: fall back to the greedy rung and record
                // the answer rather than dropping the submission.
                ResumeOutcome::StillOpen(round) => {
                    let admitted = matches!(planner.admit_greedy(round.query()), Ok(true));
                    let verdict = if admitted {
                        RoundVerdict::Admitted(Admitted::IncumbentAtDeadline)
                    } else {
                        RoundVerdict::Rejected(Rejected::DeadlineNoCertificate)
                    };
                    let outcome = degraded_outcome(round.query(), round.nodes_done(), verdict);
                    self.log.push(AdmissionRecord {
                        query: outcome.query,
                        verdict,
                        attempts: p.attempts,
                        path: AdmissionPath::GreedyInstall,
                    });
                    resolved.push(outcome);
                }
            }
        }
        resolved
    }
}

/// Outcome synthesized for a ladder resolution that never re-entered the
/// solver (greedy install / defensive fallback).
fn degraded_outcome(q: QueryId, nodes: usize, verdict: RoundVerdict) -> PlanningOutcome {
    PlanningOutcome {
        query: q,
        admitted: verdict.is_admitted(),
        reused_existing: false,
        nodes,
        lp_iterations: 0,
        lp_pivots: sqpr_milp::PivotCounts::default(),
        gap: f64::INFINITY,
        solve_time: std::time::Duration::ZERO,
        model_vars: 0,
        model_cons: 0,
        proved_optimal: false,
        status: MilpStatus::Unknown,
        incremental: false,
        lp_cache: sqpr_milp::CacheStats::default(),
        verdict,
    }
}
