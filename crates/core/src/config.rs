//! Planner configuration: objective weights, solve budgets, ablation knobs.

use sqpr_dsps::Catalog;
use sqpr_lp::{BasisUpdate, PricingRule, RatioTest};

/// Controls whether hosts may relay streams they neither source nor produce
/// (paper §II-C introduces the relay operator `µ`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelayPolicy {
    /// Any host holding a stream may forward it (the paper's model).
    All,
    /// Streams may only be sent by hosts that generate them (source hosts
    /// for base streams, producing hosts for composites). Ablation.
    ProducersOnly,
}

/// How the acyclicity requirement (paper III.7) is enforced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcyclicityMode {
    /// Potential variables `p` and big-M rows in the MILP — the paper's
    /// formulation, verbatim. Big-M rows weaken the LP relaxation and slow
    /// the solver; kept as the faithful variant and for the ablation.
    Constraints,
    /// Lazy enforcement: the model omits III.7 and integral candidates with
    /// acausal flow cycles are rejected at incumbent time (the availability
    /// fixpoint cannot derive them). Solutions are identical — any causal
    /// allocation admits valid potentials and vice versa — but relaxations
    /// are much tighter. Default.
    Lazy,
}

/// Objective weights `λ1..λ4` of the weighted sum (III.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectiveWeights {
    /// Weight of O1 (satisfied queries). The paper sets a "sufficiently
    /// large number" so admission dominates.
    pub lambda1: f64,
    /// Weight of O2 (system-wide network usage).
    pub lambda2: f64,
    /// Weight of O3 (system-wide CPU usage).
    pub lambda3: f64,
    /// Weight of O4 (maximum per-host CPU; the load-balancing term).
    pub lambda4: f64,
}

impl ObjectiveWeights {
    /// The paper's §IV-A defaults, with corrected normalisers.
    ///
    /// The paper sets `λ1 = M` ("sufficiently large"), `λ2 = 1/Σβ_h` to
    /// scale network usage into `[0, 1]`, and then states `λ3 = 1/Σκ_hm`
    /// "scales the aggregated usage of CPU" — which it does not (κ is link
    /// bandwidth). We use the normalisers the text clearly intends:
    /// `λ3 = 1/Σζ_h` scales O3 into `[0, 1]` and `λ4 = 1/max_h ζ_h` scales
    /// O4 into `[0, 1]`, preserving the stated goal that O4 "receives the
    /// same weight as the average consumption of CPU". `λ1` is then chosen
    /// so one admission always outweighs every resource penalty combined.
    pub fn paper_defaults(catalog: &Catalog) -> Self {
        let beta_sum = catalog.total_bandwidth_out().max(1e-9);
        let zeta_sum = catalog.total_cpu().max(1e-9);
        let zeta_max = catalog
            .hosts()
            .map(|h| catalog.host(h).cpu_capacity)
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let big_m =
            (10.0 * (catalog.num_hosts().max(1) * catalog.num_streams().max(1)) as f64).max(1000.0);
        ObjectiveWeights {
            lambda1: big_m,
            lambda2: 1.0 / beta_sum,
            lambda3: 1.0 / zeta_sum,
            lambda4: 1.0 / zeta_max,
        }
    }

    /// Pure resource-minimisation preset: `(λ3, λ4) = (1, 0)` per §III-B.
    pub fn min_resources(catalog: &Catalog) -> Self {
        let mut w = Self::paper_defaults(catalog);
        w.lambda3 = 1.0;
        w.lambda4 = 0.0;
        w
    }

    /// Pure load-balancing preset: `(λ3, λ4) = (0, 1)` per §III-B
    /// (with λ4 normalised as in [`Self::paper_defaults`]).
    pub fn load_balance(catalog: &Catalog) -> Self {
        let mut w = Self::paper_defaults(catalog);
        w.lambda3 = 0.0;
        w
    }

    /// Interpolates §III-B's `(λ3, λ4)` trade-off: `mix = 0` is pure
    /// resource minimisation, `mix = 1` pure load balancing, `0.5` the
    /// intermediate setting the paper mentions.
    pub fn balance_mix(mut self, mix: f64) -> Self {
        assert!((0.0..=1.0).contains(&mix), "mix in [0, 1]");
        self.lambda3 *= 2.0 * (1.0 - mix);
        self.lambda4 *= 2.0 * mix;
        self
    }
}

/// Solve budget per planning round, mirroring the paper's CPLEX timeout.
///
/// `max_nodes` is the deterministic budget (tests use it exclusively);
/// `wall_clock_ms` optionally adds a real timeout for harnesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveBudget {
    pub max_nodes: usize,
    pub wall_clock_ms: Option<u64>,
}

impl SolveBudget {
    pub fn nodes(max_nodes: usize) -> Self {
        SolveBudget {
            max_nodes,
            wall_clock_ms: None,
        }
    }

    /// Budget roughly equivalent to the paper's 30 s CPLEX timeout at our
    /// default experiment scale.
    pub fn default_per_query() -> Self {
        SolveBudget {
            max_nodes: 600,
            wall_clock_ms: Some(30_000),
        }
    }
}

/// Full planner configuration.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    pub weights: ObjectiveWeights,
    pub budget: SolveBudget,
    pub relay_policy: RelayPolicy,
    pub acyclicity: AcyclicityMode,
    /// §IV-A problem reduction: optimise only over S(q)/O(q). Disabling
    /// re-plans everything every time (ablation; intractable beyond toys).
    pub reduction: bool,
    /// §II-C reuse: share equivalent streams across queries. Disabling
    /// registers private per-query copies (ablation).
    pub reuse: bool,
    /// Re-planning flexibility (IV.9 allows moving already-admitted
    /// queries). Disabling freezes all previously placed variables.
    pub replan: bool,
    /// Warm-start the MILP from the current deployment (and keep existing
    /// queries alive at timeout).
    pub warm_start: bool,
    /// Relative MIP gap at which a planning solve stops early.
    pub gap_tol: f64,
    /// Node budget when an admitting warm start is already in hand (the
    /// solver then only *improves* placement quality; admission itself is
    /// secured). Small values favour throughput, larger values quality.
    pub improve_nodes: usize,
    /// Carry solver state across submissions: the planner keeps one
    /// persistent model skeleton (extended per query instead of rebuilt)
    /// and warm-starts every root LP from the previous submission's basis.
    /// Disabling reverts to a fresh model + cold simplex per submission
    /// (the paper's behaviour, kept as the baseline/ablation). Only active
    /// alongside `replan = true` and `RelayPolicy::All`.
    pub reuse_solver_context: bool,
    /// Skeleton column GC trigger: when more than this fraction of the
    /// cached skeleton's columns belong to queries that are no longer
    /// admitted, the skeleton is compacted (rebuilt from the live plan
    /// spaces, root basis re-mapped). Long-running planners would otherwise
    /// grow the skeleton — and every `extend`/`apply_reduction` sweep —
    /// without bound. Values > 1.0 disable compaction.
    pub skeleton_gc_threshold: f64,
    /// Simplex ratio-test mode for every LP the planner solves
    /// ([`sqpr_lp::RatioTest`]): Harris two-pass tolerances plus the
    /// bound-flipping dual long step by default, `Classic` as the
    /// textbook-ratio-test ablation.
    pub lp_ratio_test: RatioTest,
    /// Primal pricing rule for every LP the planner solves
    /// ([`sqpr_lp::PricingRule`]): full-pivot-row devex by default,
    /// `Dantzig` as the ablation.
    pub lp_pricing: PricingRule,
    /// Basis update representation for every LP the planner solves
    /// ([`sqpr_lp::BasisUpdate`]): Forrest–Tomlin updates of `U` (sparse
    /// factors, fill-growth-keyed refactorisation) by default,
    /// `ProductForm` etas as the ablation.
    pub lp_basis_update: BasisUpdate,
    /// Reuse basis factorisations *across* branch & bound constructions
    /// served from the compressed-LP cache: cut rounds and consecutive
    /// submissions whose LP only had its bounds patched re-attach the
    /// previous construction's root factorisation instead of
    /// refactorising. Disabling scopes factor reuse to a single tree (the
    /// pre-lift behaviour, kept as the ablation).
    pub lp_cross_solve_factors: bool,
    /// Keep the plan-space columns of *recently rejected* queries unfolded
    /// in the compressed-LP cache: rejected queries are the re-planning
    /// targets (admission retries, §IV-B adaptation), and exempting their
    /// columns from the bound-fold means a near-term re-submission only
    /// moves bounds the cache can patch — instead of freeing folded
    /// columns, which forces a full relayout. The value is the recency
    /// window, in submissions: rejected queries among the last this-many
    /// planning rounds stay unfolded. Each exempt space costs compression
    /// (its columns ride along bound-collapsed, and their rows stay in the
    /// LP), so the window bounds that overhead; `0` disables the
    /// exemptions entirely (maximal per-round compression, the ablation).
    pub lp_keep_rejected_free_window: usize,
    /// Worker threads for parallel branch & bound node evaluation
    /// ([`sqpr_milp::MilpOptions::threads`]): `0` resolves to the machine's
    /// available parallelism, `1` forces the classic sequential loop.
    /// Admission decisions, objectives, and node/iteration counts are
    /// bit-identical at every value — speculative node LPs are replayed in
    /// deterministic node-id order — so this is purely a wall-clock knob.
    /// The default honours the `SQPR_LP_THREADS` environment variable when
    /// set (used by CI to run the whole suite across a thread matrix).
    pub lp_threads: usize,
    /// Preemption quantum, in branch & bound nodes: every planning solve
    /// runs as a sequence of at-most-this-many-node slices through
    /// [`sqpr_milp::solve_preemptible`], with the search suspended into a
    /// [`sqpr_milp::SearchState`] between slices. `0` disables slicing (the
    /// classic uninterruptible solve). Slicing alone is *transparent*:
    /// without a [`round_deadline`](Self::round_deadline) every slice
    /// sequence runs to completion and admission decisions, objectives and
    /// node/pivot counts are bit-identical to the unsliced run (CI fuzzes
    /// this via the `SQPR_NODE_QUANTUM` environment variable, honoured by
    /// the default the same way `SQPR_LP_THREADS` is).
    pub node_quantum: usize,
    /// Deadline per planning round, in branch & bound nodes (deterministic,
    /// unlike a wall clock). When the deadline expires with the search still
    /// open, the round returns an *anytime* verdict instead of burning the
    /// full node budget: the incumbent is installed when it admits
    /// ([`Admitted::IncumbentAtDeadline`](crate::Admitted)), otherwise the
    /// suspended search is handed to the admission queue for bounded
    /// retries ([`Rejected::DeadlineNoCertificate`](crate::Rejected)).
    /// Requires `node_quantum > 0` to take effect (the quantum is the
    /// granularity at which the deadline is observed). `None` disables the
    /// deadline layer entirely.
    ///
    /// The deadline bounds *fresh single-query submissions* only: batch
    /// rounds (whose members cannot be resumed individually) and internal
    /// replans (adaptation, recovery, retries) run deadline-free under
    /// their own budgets, so they never park a round behind the admission
    /// queue's back.
    pub round_deadline: Option<usize>,
    /// Resume attempts a deadline-preempted submission gets from the
    /// admission queue before the degradation ladder takes over (incumbent
    /// handoff → greedy install → deferred full replan). Each attempt
    /// grants another `round_deadline` nodes.
    pub admission_max_retries: u32,
    /// Backoff base, in logical queue ticks, between resume attempts of a
    /// parked submission: attempt `k` waits `admission_backoff_base << (k-1)`
    /// ticks. Logical (tick-counted) rather than wall-clock so replays are
    /// deterministic.
    pub admission_backoff_base: u64,
}

impl PlannerConfig {
    pub fn new(catalog: &Catalog) -> Self {
        PlannerConfig {
            weights: ObjectiveWeights::paper_defaults(catalog),
            budget: SolveBudget::default_per_query(),
            relay_policy: RelayPolicy::All,
            acyclicity: AcyclicityMode::Lazy,
            reduction: true,
            reuse: true,
            replan: true,
            warm_start: true,
            gap_tol: 0.02,
            improve_nodes: 8,
            reuse_solver_context: true,
            skeleton_gc_threshold: 0.5,
            lp_ratio_test: RatioTest::LongStep,
            lp_pricing: PricingRule::Devex,
            lp_basis_update: BasisUpdate::ForrestTomlin,
            lp_cross_solve_factors: true,
            lp_keep_rejected_free_window: 4,
            lp_threads: std::env::var("SQPR_LP_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
            node_quantum: std::env::var("SQPR_NODE_QUANTUM")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
            round_deadline: None,
            admission_max_retries: 2,
            admission_backoff_base: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqpr_dsps::{CostModel, HostId, HostSpec};

    fn catalog() -> Catalog {
        let mut c = Catalog::uniform(4, HostSpec::new(8.0, 100.0), 1000.0, CostModel::default());
        c.add_base_stream(HostId(0), 10.0, 1);
        c.add_base_stream(HostId(1), 10.0, 2);
        c
    }

    #[test]
    fn paper_weights_normalise() {
        let c = catalog();
        let w = ObjectiveWeights::paper_defaults(&c);
        assert!(w.lambda1 >= 1000.0, "λ1 must dominate");
        assert!((w.lambda2 - 1.0 / 400.0).abs() < 1e-12);
        // 4 hosts x 8 CPU units.
        assert!((w.lambda3 - 1.0 / 32.0).abs() < 1e-12);
        assert!((w.lambda4 - 1.0 / 8.0).abs() < 1e-12);
        // One admission must outweigh the maximal combined penalty
        // (each normalised term is at most 1).
        assert!(w.lambda1 > 3.0);
    }

    #[test]
    fn presets_toggle_balance_terms() {
        let c = catalog();
        let min_r = ObjectiveWeights::min_resources(&c);
        assert_eq!((min_r.lambda3, min_r.lambda4), (1.0, 0.0));
        let lb = ObjectiveWeights::load_balance(&c);
        assert_eq!(lb.lambda3, 0.0);
        assert!(lb.lambda4 > 0.0);
    }

    #[test]
    fn config_defaults() {
        let c = catalog();
        let cfg = PlannerConfig::new(&c);
        assert!(cfg.reduction && cfg.reuse && cfg.replan && cfg.warm_start);
        assert_eq!(cfg.relay_policy, RelayPolicy::All);
    }
}
