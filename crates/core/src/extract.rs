//! Extraction of query-plan trees (paper §III-A) from a deployment.
//!
//! The MILP works on flat variables; operators that merely forward streams
//! (the relay operator `µ` of §II-C) are implicit in the flow variables.
//! This module reconstructs the explicit tree for one demanded stream:
//! operator nodes `⟨h, o⟩`, relay nodes `⟨h, µ⟩`, and base-stream source
//! arcs — suitable for display and validatable against conditions C1–C4.

use std::collections::{BTreeMap, BTreeSet};

use sqpr_dsps::{Catalog, DeploymentState, HostId, PlanNode, PlanNodeKind, QueryPlan, StreamId};

/// Builds the plan tree delivering `stream` from its providing host.
/// Returns `None` when the stream is not provided or the deployment cannot
/// derive it (invalid state).
pub fn extract_plan(
    catalog: &Catalog,
    state: &DeploymentState,
    stream: StreamId,
) -> Option<QueryPlan> {
    let provider = state.provider_of(stream)?;
    // Derivation rounds: the round at which each (host, stream) first
    // becomes available. Mechanisms must only reference strictly earlier
    // rounds, which guarantees the recursion terminates.
    let rounds = derivation_rounds(catalog, state);
    let mut nodes: Vec<PlanNode> = Vec::new();
    let root = build_node(catalog, state, &rounds, provider, stream, &mut nodes)?;
    Some(QueryPlan::new(nodes, root))
}

/// Round number per (host, stream); base placements are round 0.
fn derivation_rounds(
    catalog: &Catalog,
    state: &DeploymentState,
) -> BTreeMap<(HostId, StreamId), usize> {
    let mut round: BTreeMap<(HostId, StreamId), usize> = BTreeMap::new();
    for h in catalog.hosts() {
        for &s in catalog.base_streams_at(h) {
            round.insert((h, s), 0);
        }
    }
    let mut r = 0usize;
    loop {
        r += 1;
        let mut changed = false;
        for &(h, o) in state.placements() {
            let op = catalog.operator(o);
            if round.contains_key(&(h, op.output)) {
                continue;
            }
            if op
                .inputs
                .iter()
                .all(|&i| round.get(&(h, i)).is_some_and(|&ri| ri < r))
            {
                round.insert((h, op.output), r);
                changed = true;
            }
        }
        for &(g, m, s) in state.flows() {
            if round.contains_key(&(m, s)) {
                continue;
            }
            if round.get(&(g, s)).is_some_and(|&rg| rg < r) {
                round.insert((m, s), r);
                changed = true;
            }
        }
        if !changed {
            return round;
        }
    }
}

/// Recursively constructs the node producing `stream` at `host`.
fn build_node(
    catalog: &Catalog,
    state: &DeploymentState,
    rounds: &BTreeMap<(HostId, StreamId), usize>,
    host: HostId,
    stream: StreamId,
    nodes: &mut Vec<PlanNode>,
) -> Option<usize> {
    let my_round = *rounds.get(&(host, stream))?;

    // Base stream at its own source: a relay node fed directly by the
    // source arc (C3/C4 compatible leaf).
    if catalog.is_base_at(stream, host) {
        nodes.push(PlanNode {
            host,
            kind: PlanNodeKind::Relay,
            output: stream,
            children: vec![],
            source_inputs: vec![stream],
        });
        return Some(nodes.len() - 1);
    }

    // Prefer a local operator that produces the stream from earlier-round
    // inputs.
    for &o in catalog.producers_of(stream) {
        if !state.is_placed(host, o) {
            continue;
        }
        let op = catalog.operator(o);
        let usable = op
            .inputs
            .iter()
            .all(|&i| rounds.get(&(host, i)).is_some_and(|&ri| ri < my_round));
        if !usable {
            continue;
        }
        let mut children = Vec::new();
        let mut source_inputs = Vec::new();
        let inputs = op.inputs.clone();
        for inp in inputs {
            if catalog.is_base_at(inp, host) {
                source_inputs.push(inp);
            } else if rounds.get(&(host, inp)).is_some() {
                // Locally derived or received: recurse at the best origin.
                let child = origin_node(catalog, state, rounds, host, inp, nodes)?;
                children.push(child);
            } else {
                return None;
            }
        }
        nodes.push(PlanNode {
            host,
            kind: PlanNodeKind::Operator(o),
            output: stream,
            children,
            source_inputs,
        });
        return Some(nodes.len() - 1);
    }

    // Otherwise the stream was received: relay node over the incoming flow.
    let sender = best_sender(state, rounds, host, stream, my_round)?;
    let child = build_node(catalog, state, rounds, sender, stream, nodes)?;
    nodes.push(PlanNode {
        host,
        kind: PlanNodeKind::Relay,
        output: stream,
        children: vec![child],
        source_inputs: vec![],
    });
    Some(nodes.len() - 1)
}

/// For an operator input available at `host`: either it is derived locally
/// (recurse at `host`) or received from a sender (build the sender's
/// subtree; the cross-host arc is implicit in the child/parent hosts).
fn origin_node(
    catalog: &Catalog,
    state: &DeploymentState,
    rounds: &BTreeMap<(HostId, StreamId), usize>,
    host: HostId,
    stream: StreamId,
    nodes: &mut Vec<PlanNode>,
) -> Option<usize> {
    let my_round = *rounds.get(&(host, stream))?;
    // Locally produced?
    let locally = catalog.is_base_at(stream, host)
        || catalog
            .producers_of(stream)
            .iter()
            .any(|&o| state.is_placed(host, o));
    if locally {
        return build_node(catalog, state, rounds, host, stream, nodes);
    }
    let sender = best_sender(state, rounds, host, stream, my_round)?;
    build_node(catalog, state, rounds, sender, stream, nodes)
}

/// The flow sender with the earliest derivation round (strictly earlier
/// than the receiver's).
fn best_sender(
    state: &DeploymentState,
    rounds: &BTreeMap<(HostId, StreamId), usize>,
    host: HostId,
    stream: StreamId,
    before: usize,
) -> Option<HostId> {
    let mut senders: BTreeSet<(usize, HostId)> = BTreeSet::new();
    for &(g, m, s) in state.flows() {
        if m == host && s == stream {
            if let Some(&rg) = rounds.get(&(g, s)) {
                if rg < before {
                    senders.insert((rg, g));
                }
            }
        }
    }
    senders.into_iter().next().map(|(_, g)| g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlannerConfig;
    use crate::planner::SqprPlanner;
    use sqpr_dsps::{CostModel, HostSpec};

    fn planned_system() -> SqprPlanner {
        let mut c = Catalog::uniform(3, HostSpec::new(100.0, 100.0), 1000.0, CostModel::default());
        let a = c.add_base_stream(HostId(0), 10.0, 1);
        let b = c.add_base_stream(HostId(1), 10.0, 2);
        let d = c.add_base_stream(HostId(2), 10.0, 3);
        let mut cfg = PlannerConfig::new(&c);
        cfg.budget.max_nodes = 50;
        let mut p = SqprPlanner::new(c, cfg);
        assert!(p.submit(&[a, b]).expect("valid bases").admitted);
        assert!(p.submit(&[a, b, d]).expect("valid bases").admitted);
        p
    }

    #[test]
    fn extracted_plans_validate_c1_to_c4() {
        let p = planned_system();
        for (&q, &s) in p.state().admitted() {
            let plan = extract_plan(p.catalog(), p.state(), s)
                .unwrap_or_else(|| panic!("no plan for {q}"));
            assert_eq!(
                plan.validate(p.catalog(), s),
                Ok(()),
                "query {q} plan invalid"
            );
            assert!(!plan.is_empty());
        }
    }

    #[test]
    fn plan_flows_are_subset_of_deployment_flows() {
        let p = planned_system();
        for &s in p.state().admitted().values() {
            let plan = extract_plan(p.catalog(), p.state(), s).unwrap();
            for (from, to, fs) in plan.flows() {
                assert!(
                    p.state().flows().contains(&(from, to, fs)),
                    "plan flow {from}->{to} {fs} not deployed"
                );
            }
        }
    }

    #[test]
    fn unprovided_stream_has_no_plan() {
        let p = planned_system();
        // A base stream is never provided to clients here.
        let base = StreamId(0);
        assert!(extract_plan(p.catalog(), p.state(), base).is_none());
    }
}
