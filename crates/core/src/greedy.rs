//! Constructive admission: a greedy, reuse-aware plan builder used to
//! warm-start the MILP (paper §VII lists "combine heuristics with SQPR" as
//! future work; we implement it because our branch & bound benefits from an
//! admitting incumbent the way CPLEX benefits from its own heuristics).
//!
//! A dynamic program over base-set subsets picks the cheapest join tree
//! counting only *marginal* CPU (sub-results that already exist anywhere in
//! the deployment are free and transferred instead of recomputed); the
//! chosen tree is then placed greedily: each fresh operator goes to the
//! feasible host with the most spare CPU among those that can receive its
//! inputs, and missing inputs are shipped from the nearest holder.

use std::collections::BTreeSet;

use sqpr_dsps::{Catalog, DeploymentState, HostId, OperatorId, StreamId, StreamSignature};

/// Attempts to extend `state` with an allocation that provides `result`.
/// Returns the extended state on success.
///
/// Three construction strategies are tried in order of increasing cost:
/// 1. the DP-cheapest join tree with greedy multi-host placement;
/// 2. every join tree (up to an attempt cap) with greedy placement;
/// 3. every join tree forced onto each single host (a strict superset of
///    the evaluation's heuristic planner, so SQPR never constructs worse).
pub fn greedy_admit(
    catalog: &Catalog,
    state: &DeploymentState,
    result: StreamId,
    reuse_tag: u64,
) -> Option<DeploymentState> {
    if let Some(cand) = dp_admit(catalog, state, result, reuse_tag) {
        return Some(cand);
    }
    enumerate_admit(catalog, state, result, reuse_tag)
}

/// Strategy 1: DP over subsets for the cheapest marginal-CPU tree.
fn dp_admit(
    catalog: &Catalog,
    state: &DeploymentState,
    result: StreamId,
    reuse_tag: u64,
) -> Option<DeploymentState> {
    let bases: Vec<StreamId> = catalog.base_set(result).into_iter().collect();
    let k = bases.len();
    if !(2..=16).contains(&k) {
        return None;
    }
    let mut cand = state.clone();

    // DP over subsets: cheapest marginal CPU to have the subset's join
    // stream exist somewhere in the deployment.
    let full = (1u32 << k) - 1;
    let mut cost = vec![f64::INFINITY; (full + 1) as usize];
    let mut split = vec![0u32; (full + 1) as usize];
    for i in 0..k {
        cost[1 << i] = 0.0; // base streams exist at their sources
    }
    for mask in 1..=full {
        let size = mask.count_ones();
        if size < 2 {
            continue;
        }
        // Already produced anywhere? Zero marginal cost.
        if let Some(s) = subset_stream(catalog, &bases, mask, reuse_tag) {
            if cand.hosts_with(s).next().is_some() {
                cost[mask as usize] = 0.0;
                split[mask as usize] = 0;
                continue;
            }
        }
        let low = mask & mask.wrapping_neg();
        let mut sub = (mask - 1) & mask;
        while sub != 0 {
            if sub & low != 0 && sub != mask {
                let a = cost[sub as usize];
                let b = cost[(mask ^ sub) as usize];
                if a.is_finite() && b.is_finite() {
                    let gamma = join_gamma(catalog, &bases, sub, mask ^ sub, reuse_tag);
                    let total = a + b + gamma;
                    if total < cost[mask as usize] {
                        cost[mask as usize] = total;
                        split[mask as usize] = sub;
                    }
                }
            }
            sub = (sub - 1) & mask;
        }
    }
    if !cost[full as usize].is_finite() {
        return None;
    }

    // Materialise the chosen tree bottom-up.
    let root_host = build(catalog, &mut cand, &bases, full, &split, reuse_tag, None)?;
    finish_serving(catalog, cand, result, root_host)
}

/// Checks delivery bandwidth and installs the provision.
fn finish_serving(
    catalog: &Catalog,
    mut cand: DeploymentState,
    result: StreamId,
    root_host: HostId,
) -> Option<DeploymentState> {
    let rate = catalog.stream(result).rate;
    let serving = cand
        .hosts_with(result)
        .chain(std::iter::once(root_host))
        .find(|&h| {
            let net = cand.net_usage(catalog);
            net[h.index()].0 + rate <= catalog.host(h).bandwidth_out + 1e-9
        })?;
    cand.set_provided(result, serving);
    if cand.is_valid(catalog) {
        Some(cand)
    } else {
        None
    }
}

/// Strategies 2 + 3: enumerate join trees; for each, try greedy multi-host
/// placement, then forced single-host placement on every host.
fn enumerate_admit(
    catalog: &Catalog,
    state: &DeploymentState,
    result: StreamId,
    reuse_tag: u64,
) -> Option<DeploymentState> {
    let bases: Vec<StreamId> = catalog.base_set(result).into_iter().collect();
    let k = bases.len();
    if !(2..=6).contains(&k) {
        return None; // enumeration is exponential; DP already covered DPable sizes
    }
    let full = (1u32 << k) - 1;
    let mut trees: Vec<Vec<u32>> = Vec::new(); // split per mask, indexed by mask
    let mut current = vec![0u32; (full + 1) as usize];
    collect_trees(full, &mut current, &mut trees, 0);

    const MAX_ATTEMPTS: usize = 400;
    let mut attempts = 0usize;
    for split in &trees {
        // Multi-host greedy with this tree.
        attempts += 1;
        if attempts > MAX_ATTEMPTS {
            return None;
        }
        let mut cand = state.clone();
        if let Some(root_host) = build(catalog, &mut cand, &bases, full, split, reuse_tag, None) {
            if let Some(done) = finish_serving(catalog, cand, result, root_host) {
                return Some(done);
            }
        }
        // Forced single host.
        for h in catalog.hosts() {
            attempts += 1;
            if attempts > MAX_ATTEMPTS {
                return None;
            }
            let mut cand = state.clone();
            if let Some(root_host) =
                build(catalog, &mut cand, &bases, full, split, reuse_tag, Some(h))
            {
                if let Some(done) = finish_serving(catalog, cand, result, root_host) {
                    return Some(done);
                }
            }
        }
    }
    None
}

/// Enumerates all binary-tree split maps over the full mask (recursive).
fn collect_trees(mask: u32, current: &mut Vec<u32>, out: &mut Vec<Vec<u32>>, depth: usize) {
    if depth > 32 || out.len() > 256 {
        return;
    }
    // Find the first undecided composite submask reachable from the root.
    fn first_undecided(mask: u32, current: &[u32]) -> Option<u32> {
        if mask.count_ones() <= 1 {
            return None;
        }
        if current[mask as usize] == 0 {
            return Some(mask);
        }
        let sub = current[mask as usize];
        first_undecided(sub, current).or_else(|| first_undecided(mask ^ sub, current))
    }
    match first_undecided(mask, current) {
        None => out.push(current.clone()),
        Some(m) => {
            let low = m & m.wrapping_neg();
            let mut sub = (m - 1) & m;
            while sub != 0 {
                if sub & low != 0 && sub != m {
                    current[m as usize] = sub;
                    collect_trees(mask, current, out, depth + 1);
                    current[m as usize] = 0;
                }
                sub = (sub - 1) & m;
            }
        }
    }
}

/// Stream id of the join over the masked subset, if interned.
fn subset_stream(catalog: &Catalog, bases: &[StreamId], mask: u32, tag: u64) -> Option<StreamId> {
    if mask.count_ones() == 1 {
        return Some(bases[mask.trailing_zeros() as usize]);
    }
    let set: BTreeSet<StreamId> = (0..bases.len())
        .filter(|i| mask & (1 << i) != 0)
        .map(|i| bases[i])
        .collect();
    catalog.find_stream(&StreamSignature::Join { bases: set, tag })
}

/// CPU cost of the join combining the two masked subsets.
fn join_gamma(catalog: &Catalog, bases: &[StreamId], a: u32, b: u32, tag: u64) -> f64 {
    let sa = subset_stream(catalog, bases, a, tag);
    let sb = subset_stream(catalog, bases, b, tag);
    match (sa, sb) {
        (Some(sa), Some(sb)) => catalog
            .cost_model()
            .join_cpu(&[catalog.stream(sa).rate, catalog.stream(sb).rate]),
        _ => f64::INFINITY,
    }
}

/// Recursively ensures the subset's stream exists somewhere; returns a host
/// that has it.
fn build(
    catalog: &Catalog,
    cand: &mut DeploymentState,
    bases: &[StreamId],
    mask: u32,
    split: &[u32],
    tag: u64,
    forced_host: Option<HostId>,
) -> Option<HostId> {
    if mask.count_ones() == 1 {
        let s = bases[mask.trailing_zeros() as usize];
        return catalog.source_host(s);
    }
    let s = subset_stream(catalog, bases, mask, tag)?;
    if let Some(h) = cand.hosts_with(s).next() {
        return Some(h);
    }
    let sub = split[mask as usize];
    debug_assert!(sub != 0, "unsolved subset reached build()");
    let ha = build(catalog, cand, bases, sub, split, tag, forced_host)?;
    let hb = build(catalog, cand, bases, mask ^ sub, split, tag, forced_host)?;
    let sa = subset_stream(catalog, bases, sub, tag)?;
    let sb = subset_stream(catalog, bases, mask ^ sub, tag)?;
    let op = find_join_op(catalog, s, sa, sb)?;
    let gamma = catalog.operator(op).cpu_cost;

    // Candidate hosts ordered best-fit (least spare CPU that still fits):
    // consolidation preserves contiguous capacity for later queries.
    let cpu = cand.cpu_usage(catalog);
    let mut hosts: Vec<HostId> = catalog.hosts().collect();
    hosts.sort_by(|&x, &y| {
        let sx = catalog.host(x).cpu_capacity - cpu[x.index()];
        let sy = catalog.host(y).cpu_capacity - cpu[y.index()];
        sx.total_cmp(&sy)
    });
    // Prefer hosts that already hold an input (zero-transfer), then fall
    // back to the spare-CPU order. A forced host restricts the choice.
    let prefer: Vec<HostId> = match forced_host {
        Some(h) => vec![h],
        None => [ha, hb].into_iter().chain(hosts.iter().copied()).collect(),
    };

    let mem = cand.memory_usage(catalog);
    let op_mem = catalog.operator(op).memory_cost;
    'host: for h in prefer {
        if cpu[h.index()] + gamma > catalog.host(h).cpu_capacity + 1e-9 {
            continue;
        }
        if mem[h.index()] + op_mem > catalog.host(h).memory_capacity + 1e-9 {
            continue;
        }
        let mut trial = cand.clone();
        for (inp, holder) in [(sa, ha), (sb, hb)] {
            if trial.is_available(h, inp) || catalog.is_base_at(inp, h) {
                continue;
            }
            // Ship from the known holder (or any holder with capacity).
            let mut senders: Vec<HostId> = trial.hosts_with(inp).filter(|&g| g != h).collect();
            if let Some(src) = catalog.source_host(inp) {
                if src != h {
                    senders.push(src);
                }
            }
            senders.sort();
            senders.dedup();
            if holder != h && !senders.contains(&holder) {
                senders.push(holder);
            }
            let rate = catalog.stream(inp).rate;
            let net = trial.net_usage(catalog);
            let links = trial.link_usage(catalog);
            // Among feasible senders, prefer the one with the most spare
            // outgoing bandwidth (avoids manufacturing hot spots, cf. the
            // paper's Fig. 2 discussion).
            let sender = senders
                .into_iter()
                .filter(|&g| {
                    net[g.index()].0 + rate <= catalog.host(g).bandwidth_out + 1e-9
                        && net[h.index()].1 + rate <= catalog.host(h).bandwidth_in + 1e-9
                        && links.get(&(g, h)).copied().unwrap_or(0.0) + rate
                            <= catalog.topology().link(g, h) + 1e-9
                })
                .max_by(|&a, &b| {
                    let sa = catalog.host(a).bandwidth_out - net[a.index()].0;
                    let sb = catalog.host(b).bandwidth_out - net[b.index()].0;
                    sa.total_cmp(&sb)
                });
            let Some(g) = sender else { continue 'host };
            trial.add_flow(g, h, inp);
            trial.add_available(h, inp);
        }
        trial.add_placement(h, op);
        trial.add_available(h, s);
        *cand = trial;
        return Some(h);
    }
    None
}

fn find_join_op(
    catalog: &Catalog,
    out: StreamId,
    left: StreamId,
    right: StreamId,
) -> Option<OperatorId> {
    let mut inputs = [left, right];
    inputs.sort();
    catalog
        .producers_of(out)
        .iter()
        .copied()
        .find(|&o| catalog.operator(o).inputs == inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::register_join_query;
    use sqpr_dsps::{CostModel, HostSpec, QueryId};

    fn setup(n_hosts: usize, cpu: f64) -> (Catalog, Vec<StreamId>) {
        let mut c = Catalog::uniform(
            n_hosts,
            HostSpec::new(cpu, 100.0),
            1000.0,
            CostModel::default(),
        );
        let b = (0..4)
            .map(|i| c.add_base_stream(HostId((i % n_hosts) as u32), 10.0, i as u64))
            .collect();
        (c, b)
    }

    #[test]
    fn admits_two_way_join() {
        let (mut c, b) = setup(2, 100.0);
        let (spec, _) = register_join_query(&mut c, QueryId(0), &[b[0], b[1]], 0);
        let state = DeploymentState::new();
        let cand = greedy_admit(&c, &state, spec.result, 0).expect("feasible");
        assert_eq!(
            cand.provider_of(spec.result),
            cand.hosts_with(spec.result).next()
        );
        assert!(cand.is_valid(&c));
        assert_eq!(cand.placements().len(), 1);
    }

    #[test]
    fn reuses_existing_subresult() {
        let (mut c, b) = setup(2, 1000.0);
        let (q1, _) = register_join_query(&mut c, QueryId(0), &[b[0], b[1]], 0);
        let (q2, _) = register_join_query(&mut c, QueryId(1), &[b[0], b[1], b[2]], 0);
        let state = DeploymentState::new();
        let s1 = greedy_admit(&c, &state, q1.result, 0).expect("q1");
        let ops_before = s1.placements().len();
        let s2 = greedy_admit(&c, &s1, q2.result, 0).expect("q2");
        // Only the top join is new.
        assert_eq!(s2.placements().len(), ops_before + 1);
        assert!(s2.is_valid(&c));
    }

    #[test]
    fn spreads_over_hosts_when_one_is_tight() {
        // Each host fits exactly one join; a 3-way query needs two.
        let (mut c, b) = setup(3, 25.0);
        let (spec, _) = register_join_query(&mut c, QueryId(0), &[b[0], b[1], b[2]], 0);
        let state = DeploymentState::new();
        let cand = greedy_admit(&c, &state, spec.result, 0).expect("feasible spread");
        let hosts: BTreeSet<HostId> = cand.placements().iter().map(|&(h, _)| h).collect();
        assert!(hosts.len() >= 2, "placements: {:?}", cand.placements());
        assert!(cand.is_valid(&c));
    }

    #[test]
    fn fails_cleanly_when_infeasible() {
        let (mut c, b) = setup(2, 1.0); // join cost 20 >> 1
        let (spec, _) = register_join_query(&mut c, QueryId(0), &[b[0], b[1]], 0);
        let state = DeploymentState::new();
        assert!(greedy_admit(&c, &state, spec.result, 0).is_none());
    }
}
