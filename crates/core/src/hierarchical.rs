//! Hierarchical decomposition (paper §VII, future work): "query planning
//! across federated data centres by first assigning queries to sites and
//! then planning queries within sites".
//!
//! Hosts are partitioned into *sites*, each planned by an independent
//! [`SqprPlanner`] over a site-local catalog. An arriving query is assigned
//! to the site natively sourcing the most of its base streams (ties broken
//! by lighter load); base streams the chosen site lacks are *mirrored* at
//! the site's gateway host — modelling a cross-site feed — and the query is
//! then planned entirely within the site. This trades global optimality for
//! per-site model sizes, attacking exactly the host-count sensitivity the
//! paper measures in Fig. 6(a).

use std::collections::BTreeMap;

use sqpr_dsps::{Catalog, HostId, HostSpec, NetworkTopology, StreamId};

use crate::config::PlannerConfig;
use crate::planner::{PlannerError, PlanningOutcome, SqprPlanner};

/// One site's planner plus the id mappings back to the global system.
struct Site {
    planner: SqprPlanner,
    /// Global host ids of this site (index = local host id).
    hosts: Vec<HostId>,
    /// Global base stream -> site-local stream id (native or mirrored).
    local_stream: BTreeMap<StreamId, StreamId>,
    /// Local gateway host receiving mirrored streams.
    gateway: HostId,
}

/// Federated planner over a host partition.
pub struct HierarchicalPlanner {
    sites: Vec<Site>,
    /// Global base stream -> site natively sourcing it.
    native_site: BTreeMap<StreamId, usize>,
    /// Global rate per base stream (for mirroring).
    rates: BTreeMap<StreamId, f64>,
    outcomes: Vec<(usize, PlanningOutcome)>,
}

impl HierarchicalPlanner {
    /// Partitions the catalog's hosts into `sites` (a cover of all hosts;
    /// each host in exactly one site) and builds one planner per site.
    ///
    /// Site-local catalogs copy the member hosts' specs and a full mesh
    /// with the minimum pairwise link capacity observed inside the site
    /// (conservative), plus the site's native base streams.
    ///
    /// # Panics
    /// Panics if the partition is empty, covers unknown hosts, or assigns
    /// a host twice.
    pub fn new(
        catalog: &Catalog,
        partition: Vec<Vec<HostId>>,
        config: impl Fn(&Catalog) -> PlannerConfig,
    ) -> Self {
        assert!(!partition.is_empty(), "at least one site required");
        let mut seen = vec![false; catalog.num_hosts()];
        for site in &partition {
            assert!(!site.is_empty(), "empty site");
            for &h in site {
                assert!(h.index() < catalog.num_hosts(), "unknown host {h}");
                assert!(!seen[h.index()], "host {h} in two sites");
                seen[h.index()] = true;
            }
        }

        let mut native_site = BTreeMap::new();
        let mut rates = BTreeMap::new();
        let mut sites = Vec::with_capacity(partition.len());
        for (si, hosts) in partition.into_iter().enumerate() {
            // Conservative uniform intra-site link capacity.
            let mut link_cap = f64::INFINITY;
            for &a in &hosts {
                for &b in &hosts {
                    if a != b {
                        link_cap = link_cap.min(catalog.topology().link(a, b));
                    }
                }
            }
            if !link_cap.is_finite() {
                link_cap = f64::INFINITY; // single-host site
            }
            let specs: Vec<HostSpec> = hosts.iter().map(|&h| catalog.host(h).clone()).collect();
            let mut site_catalog = Catalog::new(
                specs,
                NetworkTopology::full_mesh(hosts.len(), link_cap),
                catalog.cost_model().clone(),
            );
            let mut local_stream = BTreeMap::new();
            for (li, &gh) in hosts.iter().enumerate() {
                for &s in catalog.base_streams_at(gh) {
                    let local = site_catalog.add_base_stream(
                        HostId::from_index(li),
                        catalog.stream(s).rate,
                        stream_tag(s),
                    );
                    local_stream.insert(s, local);
                    native_site.insert(s, si);
                    rates.insert(s, catalog.stream(s).rate);
                }
            }
            let cfg = config(&site_catalog);
            sites.push(Site {
                planner: SqprPlanner::new(site_catalog, cfg),
                hosts,
                local_stream,
                gateway: HostId(0),
            });
        }
        HierarchicalPlanner {
            sites,
            native_site,
            rates,
            outcomes: Vec::new(),
        }
    }

    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// Total queries admitted across all sites.
    pub fn num_admitted(&self) -> usize {
        self.sites.iter().map(|s| s.planner.num_admitted()).sum()
    }

    /// Per-site admitted counts.
    pub fn admitted_per_site(&self) -> Vec<usize> {
        self.sites
            .iter()
            .map(|s| s.planner.num_admitted())
            .collect()
    }

    /// The site each global host belongs to (diagnostics).
    pub fn site_of_host(&self, h: HostId) -> Option<usize> {
        self.sites.iter().position(|s| s.hosts.contains(&h))
    }

    pub fn outcomes(&self) -> &[(usize, PlanningOutcome)] {
        &self.outcomes
    }

    /// Submits a query (global base-stream ids): assigns a site, mirrors
    /// missing base streams at its gateway, plans within the site. Returns
    /// the chosen site and whether the query was admitted.
    ///
    /// # Errors
    /// Propagates the site planner's [`PlannerError`] (fewer than two
    /// distinct bases, unknown streams).
    pub fn submit(&mut self, bases: &[StreamId]) -> Result<(usize, bool), PlannerError> {
        // Site scoring: native base count, tie-break by fewer admitted.
        let mut best = 0usize;
        let mut best_score = (usize::MIN, usize::MAX);
        for (si, site) in self.sites.iter().enumerate() {
            let native = bases
                .iter()
                .filter(|s| self.native_site.get(s) == Some(&si))
                .count();
            let load = site.planner.num_admitted();
            let score = (native, load);
            // Higher native wins; for equal native, lower load wins.
            if score.0 > best_score.0 || (score.0 == best_score.0 && score.1 < best_score.1) {
                best_score = score;
                best = si;
            }
        }

        // Mirror out-of-site base streams at the gateway.
        let site = &mut self.sites[best];
        let mut local_bases = Vec::with_capacity(bases.len());
        for &s in bases {
            let local = match site.local_stream.get(&s) {
                Some(&l) => l,
                None => {
                    let rate = match self.rates.get(&s) {
                        Some(&r) => r,
                        None => return Err(PlannerError::UnknownStream(s)),
                    };
                    let l = site
                        .planner
                        .register_mirrored_base(site.gateway, rate, stream_tag(s));
                    site.local_stream.insert(s, l);
                    l
                }
            };
            local_bases.push(local);
        }

        let outcome = site.planner.submit(&local_bases)?;
        let admitted = outcome.admitted;
        self.outcomes.push((best, outcome));
        Ok((best, admitted))
    }
}

/// Stable per-stream source tag for mirrored registration.
fn stream_tag(s: StreamId) -> u64 {
    0x4D49_0000_0000_0000 | u64::from(s.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SolveBudget;
    use sqpr_dsps::CostModel;

    fn global_catalog() -> (Catalog, Vec<StreamId>) {
        let mut c = Catalog::uniform(4, HostSpec::new(100.0, 100.0), 1000.0, CostModel::default());
        let b = (0..4)
            .map(|i| c.add_base_stream(HostId(i as u32), 10.0, i as u64))
            .collect();
        (c, b)
    }

    fn hp(c: &Catalog) -> HierarchicalPlanner {
        HierarchicalPlanner::new(
            c,
            vec![vec![HostId(0), HostId(1)], vec![HostId(2), HostId(3)]],
            |site_catalog| {
                let mut cfg = PlannerConfig::new(site_catalog);
                cfg.budget = SolveBudget::nodes(60);
                cfg
            },
        )
    }

    #[test]
    fn queries_go_to_their_native_site() {
        let (c, b) = global_catalog();
        let mut h = hp(&c);
        let (site0, ok0) = h.submit(&[b[0], b[1]]).expect("valid bases"); // site 0
        let (site1, ok1) = h.submit(&[b[2], b[3]]).expect("valid bases"); // site 1
        assert!(ok0 && ok1);
        assert_eq!(site0, 0);
        assert_eq!(site1, 1);
        assert_eq!(h.num_admitted(), 2);
        assert_eq!(h.admitted_per_site(), vec![1, 1]);
    }

    #[test]
    fn cross_site_queries_mirror_bases() {
        let (c, b) = global_catalog();
        let mut h = hp(&c);
        // b0, b1 native to site 0; b2 native to site 1 -> assigned to site
        // 0 (majority), b2 mirrored at the gateway.
        let (site, ok) = h.submit(&[b[0], b[1], b[2]]).expect("valid bases");
        assert_eq!(site, 0);
        assert!(ok);
        assert_eq!(h.num_admitted(), 1);
    }

    #[test]
    fn site_planners_stay_valid() {
        let (c, b) = global_catalog();
        let mut h = hp(&c);
        h.submit(&[b[0], b[1]]).expect("valid bases");
        h.submit(&[b[0], b[2]]).expect("valid bases");
        h.submit(&[b[2], b[3]]).expect("valid bases");
        for site in &h.sites {
            assert!(site.planner.state().is_valid(site.planner.catalog()));
        }
    }

    #[test]
    #[should_panic(expected = "two sites")]
    fn rejects_overlapping_partition() {
        let (c, _) = global_catalog();
        HierarchicalPlanner::new(
            &c,
            vec![vec![HostId(0), HostId(1)], vec![HostId(1), HostId(2)]],
            PlannerConfig::new,
        );
    }
}
