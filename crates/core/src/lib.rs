//! # sqpr-core
//!
//! The SQPR query planner (Kalyvianaki et al., ICDE 2011): query admission,
//! operator placement and cross-query reuse as a single constrained
//! optimisation problem, solved per arriving query over a reduced plan
//! space with a budgeted branch & bound.
//!
//! - [`model`] builds the MILP of paper §III (constraints III.4–III.7,
//!   objectives O1–O4, re-planning constraint IV.9, §IV-A variable fixing);
//! - [`planner`] implements Algorithm 1 (initial query planning) plus
//!   batched submission and query removal with garbage collection;
//! - [`adaptive`] implements §IV-B (re-planning on rate drift / shortage);
//! - [`recovery`] drives failure-storm re-admission: displaced queries
//!   re-enter admission through the warm solver path under a storm-wide
//!   budget, degrading to greedy placement when the budget runs dry;
//! - [`admission`] bounds admission latency: planning rounds run as
//!   preemptible node-quantum slices under a deterministic deadline, and
//!   rounds still open at the deadline answer anytime — the admitting
//!   incumbent installs, otherwise the suspended search parks in an
//!   [`AdmissionQueue`] for bounded, backed-off retries;
//! - [`config`] exposes the λ-weights (with the paper's defaults), solve
//!   budgets and the ablation knobs (reuse / reduction / relaying / IV.9).

pub mod adaptive;
pub mod admission;
pub mod config;
pub mod extract;
pub mod greedy;
pub mod hierarchical;
pub mod model;
pub mod planner;
pub mod query;
pub mod recovery;

pub use adaptive::{adapt_to_observed_rates, AdaptReport, DriftMonitor};
pub use admission::{
    AdmissionPath, AdmissionQueue, AdmissionRecord, Admitted, Rejected, RoundVerdict,
};
pub use config::{AcyclicityMode, ObjectiveWeights, PlannerConfig, RelayPolicy, SolveBudget};
pub use extract::extract_plan;
pub use greedy::greedy_admit;
pub use hierarchical::HierarchicalPlanner;
pub use model::{DecodedAllocation, ModelInputs, PlanningModel};
pub use planner::{
    garbage_collect, PlannerError, PlanningOutcome, PreemptedRound, SolverStats, SqprPlanner,
};
pub use query::{full_space, register_join_query, PlanSpace, QuerySpec};
pub use recovery::{recover_from_failures, QueryRecovery, RecoveryMode, StormBudget, StormReport};
pub use sqpr_lp::{BasisUpdate, PricingRule, RatioTest};
pub use sqpr_milp::{CacheStats, MilpStatus, PivotCounts};
