//! The SQPR optimisation model (paper §III), reduced per §IV-A.
//!
//! Builds one MILP per planning round over the *free* plan space `S(q)`,
//! `O(q)` of the arriving query (or batch). Decision variables outside the
//! free space stay at their current deployment values and enter the model
//! only as residual-capacity constants — exactly the paper's variable
//! fixing. Constraint groups:
//!
//! | paper | here |
//! |---|---|
//! | III.4a demand        | `d_hs ≤ y_hs` |
//! | III.4b / IV.9        | `Σ_h d_hs ≤ 1` (new) / `= 1` (admitted) |
//! | III.5a availability  | `y_ms ≤ Σ_h x_hms + Σ_o z_mo + 1[s ∈ S0_m]` |
//! | III.5b operator      | `z_ho ≤ y_hs` for each input `s ∈ S_o` |
//! | III.5c flow          | `x_hms ≤ y_hs` |
//! | III.6a link          | `Σ_s ̺_s x_hms ≤ κ_hm − fixed` |
//! | III.6b in-bandwidth  | `Σ_{h,s} ̺_s x_hms ≤ β_m − fixed` |
//! | III.6c out-bandwidth | `Σ_{m,s} ̺_s x_hms + Σ_s ̺_s d_hs ≤ β_h − fixed` |
//! | III.6d CPU           | `Σ_o γ_o z_ho ≤ ζ_h − fixed` |
//! | III.7 acyclicity     | `p_ms − p_hs + M x_hms ≤ M − 1`, `M = H + 2` |
//! | O4 linearisation     | `t ≥ fixed_cpu_h + Σ_o γ_o z_ho` |
//!
//! Additionally, *fixed consumers* — operators of unrelated queries that
//! stay in place but consume a stream in the free space — pin `y_hs = 1` so
//! a re-plan cannot starve them.
//!
//! ## Incremental skeleton (warm-started re-planning)
//!
//! A `PlanningModel` can also act as a persistent *skeleton* across
//! submissions: [`PlanningModel::extend`] appends the columns and rows for
//! newly registered streams/operators instead of re-enumerating the whole
//! space, and [`PlanningModel::apply_reduction`] re-applies the §IV-A
//! variable fixing for the *current* submission by bound-fixing every
//! variable outside its plan space at the deployed value. Because the
//! skeleton only ever appends columns and rows, the LP basis of the
//! previous submission remains a valid warm-start hint
//! ([`sqpr_lp::BasisState`]) for the next one. Internally `build` is
//! exactly "empty shell + one `extend`", so both construction paths
//! generate identical structures.

use std::collections::{BTreeMap, BTreeSet};

use sqpr_milp::{ConsId, Model, Sense, VarId};

use sqpr_dsps::{Catalog, DeploymentState, HostId, OperatorId, StreamId};

use crate::config::{AcyclicityMode, ObjectiveWeights, RelayPolicy};
use crate::query::PlanSpace;

/// A lazy availability cut: inside a "dead" host set (one that derived no
/// real source of `stream` in a candidate solution), availability must be
/// powered from outside the set. Valid for every causal allocation and
/// violated by the offending cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AvailabilityCut {
    pub stream: StreamId,
    pub dead_set: BTreeSet<HostId>,
}

/// Inputs to one planning-model build.
pub struct ModelInputs<'a> {
    pub catalog: &'a Catalog,
    pub state: &'a DeploymentState,
    /// Free plan space (the reduction's S(q), O(q)).
    pub space: &'a PlanSpace,
    /// Newly demanded streams (one per query in the batch).
    pub new_streams: &'a [StreamId],
    pub weights: ObjectiveWeights,
    pub relay_policy: RelayPolicy,
    pub acyclicity: AcyclicityMode,
    /// IV.9 flexibility: when false, variables currently 1 are frozen.
    pub replan: bool,
    /// Lazy availability cuts accumulated by previous solve rounds.
    pub cuts: &'a [AvailabilityCut],
}

/// Lifecycle of one demanded stream's `Σ_h d_hs` row across submissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DemandKind {
    /// Admitted: IV.9 equality (`= 1`).
    Eq,
    /// Demanded by the current submission: `<= 1`.
    Le,
    /// Demanded by a past submission and rejected: `d` fixed to 0 so stale
    /// λ1 rewards cannot distort later solves.
    Disabled,
}

/// A built planning model plus the variable maps needed to decode results.
///
/// Every map here is a `BTreeMap` on purpose: model construction and
/// decoding iterate these maps (acausal-cut discovery, warm-start
/// objective accumulation, link-residual sweeps), and hash-ordered
/// iteration made row layout and float summation order vary run to run.
/// Ordered maps pin both, so identical inputs build byte-identical
/// models — the invariant the parallel branch & bound's determinism
/// tests assert end to end.
///
/// `Clone` exists for the admission queue: a deadline-preempted round
/// parks its suspended [`sqpr_milp::SearchState`] *together with* a clone
/// of the model it was built from, because the search's `x` vector indexes
/// this model's variables — the planner's live skeleton may have been
/// extended by other submissions by the time the search resumes.
#[derive(Clone)]
pub struct PlanningModel {
    pub milp: Model,
    d: BTreeMap<(HostId, StreamId), VarId>,
    x: BTreeMap<(HostId, HostId, StreamId), VarId>,
    y: BTreeMap<(HostId, StreamId), VarId>,
    z: BTreeMap<(HostId, OperatorId), VarId>,
    p: BTreeMap<(HostId, StreamId), VarId>,
    free_streams: BTreeSet<StreamId>,
    free_ops: BTreeSet<OperatorId>,
    t: Option<VarId>,
    fixed_cpu: Vec<f64>,
    gamma: BTreeMap<OperatorId, f64>,
    big_m: f64,
    n_hosts: usize,
    // --- incremental bookkeeping ---
    hosts: Vec<HostId>,
    weights: ObjectiveWeights,
    relay_policy: RelayPolicy,
    acyclicity: AcyclicityMode,
    avail_rows: BTreeMap<(HostId, StreamId), ConsId>,
    /// `ProducersOnly` relay rows keyed by `(sender, receiver, stream)`:
    /// later-added producers of `stream` append their `-z` terms here, so
    /// the ablation extends incrementally like everything else.
    relay_rows: BTreeMap<(HostId, HostId, StreamId), ConsId>,
    demand_rows: BTreeMap<StreamId, ConsId>,
    demand_kind: BTreeMap<StreamId, DemandKind>,
    link_rows: BTreeMap<(HostId, HostId), ConsId>,
    in_rows: Vec<Option<ConsId>>,
    out_rows: Vec<Option<ConsId>>,
    cpu_rows: Vec<ConsId>,
    mem_rows: Vec<Option<ConsId>>,
    t_rows: Vec<ConsId>,
    cut_rows: Vec<(AvailabilityCut, Vec<ConsId>)>,
    pinned: BTreeSet<(HostId, StreamId)>,
    fixed_producer: BTreeSet<(HostId, StreamId)>,
}

impl PlanningModel {
    /// Builds the reduced MILP: an empty shell (capacity rows, O4
    /// variable) plus one [`Self::extend`] over the whole input space.
    pub fn build(inp: &ModelInputs<'_>) -> Self {
        let catalog = inp.catalog;
        let n = catalog.num_hosts();
        let big_m = n as f64 + 2.0; // any value > |H| + 1 (paper III.7)
        let hosts: Vec<HostId> = catalog.hosts().collect();
        let w = inp.weights;

        let mut milp = Model::new(Sense::Maximize);
        let t = if w.lambda4 != 0.0 {
            Some(milp.add_continuous(0.0, f64::INFINITY, -w.lambda4))
        } else {
            None
        };

        // Shared capacity rows are created once, empty; extensions append
        // the terms of every column that lands in them. Bounds are
        // refreshed from the residuals on every extension.
        let mut link_rows = BTreeMap::new();
        for &h in &hosts {
            for &m in &hosts {
                if h != m && catalog.topology().link(h, m).is_finite() {
                    link_rows.insert((h, m), milp.add_le(Vec::new(), f64::INFINITY));
                }
            }
        }
        let in_rows: Vec<Option<ConsId>> = hosts
            .iter()
            .map(|&m| {
                catalog
                    .host(m)
                    .bandwidth_in
                    .is_finite()
                    .then(|| milp.add_le(Vec::new(), f64::INFINITY))
            })
            .collect();
        let out_rows: Vec<Option<ConsId>> = hosts
            .iter()
            .map(|&h| {
                catalog
                    .host(h)
                    .bandwidth_out
                    .is_finite()
                    .then(|| milp.add_le(Vec::new(), f64::INFINITY))
            })
            .collect();
        let cpu_rows: Vec<ConsId> = hosts
            .iter()
            .map(|_| milp.add_le(Vec::new(), f64::INFINITY))
            .collect();
        let mem_rows: Vec<Option<ConsId>> = hosts
            .iter()
            .map(|&h| {
                catalog
                    .host(h)
                    .memory_capacity
                    .is_finite()
                    .then(|| milp.add_le(Vec::new(), f64::INFINITY))
            })
            .collect();
        let t_rows: Vec<ConsId> = match t {
            Some(t) => hosts
                .iter()
                .map(|_| milp.add_ge(vec![(t, 1.0)], 0.0))
                .collect(),
            None => Vec::new(),
        };

        let mut model = PlanningModel {
            milp,
            d: BTreeMap::new(),
            x: BTreeMap::new(),
            y: BTreeMap::new(),
            z: BTreeMap::new(),
            p: BTreeMap::new(),
            free_streams: BTreeSet::new(),
            free_ops: BTreeSet::new(),
            t,
            fixed_cpu: vec![0.0; n],
            gamma: BTreeMap::new(),
            big_m,
            n_hosts: n,
            hosts,
            weights: w,
            relay_policy: inp.relay_policy,
            acyclicity: inp.acyclicity,
            avail_rows: BTreeMap::new(),
            relay_rows: BTreeMap::new(),
            demand_rows: BTreeMap::new(),
            demand_kind: BTreeMap::new(),
            link_rows,
            in_rows,
            out_rows,
            cpu_rows,
            mem_rows,
            t_rows,
            cut_rows: Vec::new(),
            pinned: BTreeSet::new(),
            fixed_producer: BTreeSet::new(),
        };
        model.extend(inp);
        model
    }

    /// Extends the skeleton to cover `inp.space`, appending columns and
    /// rows for streams/operators not yet represented, updating the demand
    /// rows to the current admitted/new sets, adding availability cuts not
    /// yet applied, and refreshing the residual capacities, availability
    /// right-hand sides and fixed-consumer pins against `inp.state`.
    ///
    /// Appended columns never disturb existing ones, so an
    /// [`sqpr_lp::BasisState`] captured before the extension remains a
    /// valid warm-start hint afterwards.
    ///
    /// `RelayPolicy::ProducersOnly` extends incrementally too: relay rows
    /// are registered in a keyed registry (`(sender, receiver,
    /// stream)`), producers added later append their `-z` terms to the
    /// rows of their output stream, and the right-hand sides (base
    /// placement plus fixed-producer grants) are refreshed from the state
    /// on every extension like the availability rows.
    pub fn extend(&mut self, inp: &ModelInputs<'_>) {
        let catalog = inp.catalog;
        let w = self.weights;
        debug_assert_eq!(self.n_hosts, catalog.num_hosts());
        debug_assert_eq!(self.relay_policy, inp.relay_policy);
        debug_assert_eq!(self.acyclicity, inp.acyclicity);

        let mut added_streams: Vec<StreamId> = inp
            .space
            .streams
            .iter()
            .copied()
            .filter(|s| !self.free_streams.contains(s))
            .collect();
        added_streams.sort();
        added_streams.dedup();
        let mut added_ops: Vec<OperatorId> = inp
            .space
            .operators
            .iter()
            .copied()
            .filter(|o| !self.free_ops.contains(o))
            .collect();
        added_ops.sort();
        added_ops.dedup();

        let hosts = self.hosts.clone();
        let with_potentials = self.acyclicity == AcyclicityMode::Constraints;

        // ---- columns ----
        for &s in &added_streams {
            for &h in &hosts {
                let yv = self.milp.add_binary(0.0);
                self.y.insert((h, s), yv);
                if with_potentials {
                    let pv = self.milp.add_continuous(0.0, self.big_m, 0.0);
                    self.p.insert((h, s), pv);
                }
            }
            let rate = catalog.stream(s).rate;
            for &h in &hosts {
                for &m in &hosts {
                    if h != m {
                        let xv = self.milp.add_binary(-w.lambda2 * rate);
                        self.x.insert((h, m, s), xv);
                    }
                }
            }
        }
        for &o in &added_ops {
            let gamma = catalog.operator(o).cpu_cost;
            for &h in &hosts {
                let zv = self.milp.add_binary(-w.lambda3 * gamma);
                self.z.insert((h, o), zv);
            }
            self.gamma.insert(o, gamma);
        }
        self.free_streams.extend(added_streams.iter().copied());
        self.free_ops.extend(added_ops.iter().copied());

        // ---- demand lifecycle ----
        let admitted: BTreeSet<StreamId> = inp.state.admitted().values().copied().collect();
        let wanted_eq: Vec<StreamId> = admitted
            .iter()
            .copied()
            .filter(|s| self.free_streams.contains(s))
            .collect();
        let mut wanted_new: Vec<StreamId> = inp
            .new_streams
            .iter()
            .copied()
            .filter(|s| !admitted.contains(s))
            .collect();
        wanted_new.sort();
        wanted_new.dedup();
        let existing: Vec<StreamId> = {
            let mut v: Vec<StreamId> = self.demand_rows.keys().copied().collect();
            v.sort();
            v
        };
        for s in existing {
            let kind = if admitted.contains(&s) {
                DemandKind::Eq
            } else if wanted_new.contains(&s) {
                DemandKind::Le
            } else {
                DemandKind::Disabled
            };
            self.set_demand_kind(s, kind);
        }
        for &s in wanted_eq.iter().chain(wanted_new.iter()) {
            if self.demand_rows.contains_key(&s) {
                continue;
            }
            assert!(
                self.free_streams.contains(&s),
                "demanded stream {s} outside the free space"
            );
            let rate = catalog.stream(s).rate;
            let mut row_terms = Vec::with_capacity(hosts.len());
            for &h in &hosts {
                let dv = self.milp.add_binary(w.lambda1);
                self.d.insert((h, s), dv);
                // III.4a: d_hs <= y_hs.
                self.milp
                    .add_le(vec![(dv, 1.0), (self.y[&(h, s)], -1.0)], 0.0);
                // Client delivery counts against out-bandwidth (III.6c).
                if let Some(row) = self.out_rows[h.index()] {
                    self.milp.add_terms(row, [(dv, rate)]);
                }
                row_terms.push((dv, 1.0));
            }
            let row = self.milp.add_le(row_terms, 1.0);
            self.demand_rows.insert(s, row);
            let kind = if admitted.contains(&s) {
                DemandKind::Eq
            } else {
                DemandKind::Le
            };
            self.set_demand_kind(s, kind);
        }

        // ---- rows for the added columns ----
        // III.5a availability for every (added stream, host).
        for &s in &added_streams {
            for &m in &hosts {
                let mut terms = vec![(self.y[&(m, s)], 1.0)];
                for &h in &hosts {
                    if h != m {
                        terms.push((self.x[&(h, m, s)], -1.0));
                    }
                }
                for &o in catalog.producers_of(s) {
                    if self.free_ops.contains(&o) {
                        terms.push((self.z[&(m, o)], -1.0));
                    }
                }
                let row = self.milp.add_le(terms, 0.0); // rhs refreshed below
                self.avail_rows.insert((m, s), row);
            }
        }
        // Added operators producing *pre-existing* free streams join those
        // streams' availability rows (and any cut rows on that stream),
        // plus — under the `ProducersOnly` ablation — the relay rows of
        // their output stream, which is exactly what used to force the
        // planner's cold fresh-build fallback.
        for &o in &added_ops {
            let out = catalog.operator(o).output;
            if added_streams.binary_search(&out).is_err() {
                for &m in &hosts {
                    if let Some(&row) = self.avail_rows.get(&(m, out)) {
                        self.milp.add_terms(row, [(self.z[&(m, o)], -1.0)]);
                    }
                }
                if self.relay_policy == RelayPolicy::ProducersOnly {
                    for &h in &hosts {
                        let zv = self.z[&(h, o)];
                        for &m in &hosts {
                            if let Some(&row) = self.relay_rows.get(&(h, m, out)) {
                                self.milp.add_terms(row, [(zv, -1.0)]);
                            }
                        }
                    }
                }
            }
            for (cut, rows) in &self.cut_rows {
                if cut.stream == out {
                    let feed: Vec<(VarId, f64)> = cut
                        .dead_set
                        .iter()
                        .map(|&m2| (self.z[&(m2, o)], -1.0))
                        .collect();
                    for &row in rows {
                        self.milp.add_terms(row, feed.iter().copied());
                    }
                }
            }
        }
        // III.5b operator inputs for added operators.
        for &o in &added_ops {
            let op = catalog.operator(o);
            for &s in &op.inputs {
                assert!(
                    self.free_streams.contains(&s),
                    "free operator {o} consumes stream {s} outside the free space"
                );
                for &h in &hosts {
                    self.milp
                        .add_le(vec![(self.z[&(h, o)], 1.0), (self.y[&(h, s)], -1.0)], 0.0);
                }
            }
        }
        // III.5c flows + III.7 acyclicity (+ relay ablation) per added x.
        for &s in &added_streams {
            for &h in &hosts {
                for &m in &hosts {
                    if h == m {
                        continue;
                    }
                    let xv = self.x[&(h, m, s)];
                    self.milp
                        .add_le(vec![(xv, 1.0), (self.y[&(h, s)], -1.0)], 0.0);
                    if with_potentials {
                        self.milp.add_le(
                            vec![
                                (self.p[&(m, s)], 1.0),
                                (self.p[&(h, s)], -1.0),
                                (xv, self.big_m),
                            ],
                            self.big_m - 1.0,
                        );
                    }
                    if self.relay_policy == RelayPolicy::ProducersOnly {
                        // Senders must generate the stream locally
                        // (ablation). Terms cover the *currently* free
                        // producers; later-added producers join below and
                        // the rhs (base/fixed-producer grants) is
                        // refreshed per extension like the availability
                        // rows, so the ablation grows incrementally.
                        let mut terms = vec![(xv, 1.0)];
                        for &o in catalog.producers_of(s) {
                            if self.free_ops.contains(&o) {
                                terms.push((self.z[&(h, o)], -1.0));
                            }
                        }
                        let row = self.milp.add_le(terms, f64::INFINITY);
                        self.relay_rows.insert((h, m, s), row);
                    }
                }
            }
        }
        // Capacity terms of the added flow columns (III.6a/b/c).
        for &s in &added_streams {
            let rate = catalog.stream(s).rate;
            for &h in &hosts {
                for &m in &hosts {
                    if h == m {
                        continue;
                    }
                    let xv = self.x[&(h, m, s)];
                    if let Some(&row) = self.link_rows.get(&(h, m)) {
                        self.milp.add_terms(row, [(xv, rate)]);
                    }
                    if let Some(row) = self.in_rows[m.index()] {
                        self.milp.add_terms(row, [(xv, rate)]);
                    }
                    if let Some(row) = self.out_rows[h.index()] {
                        self.milp.add_terms(row, [(xv, rate)]);
                    }
                }
            }
        }
        // CPU / memory / O4 terms of the added operator columns (III.6d).
        for &o in &added_ops {
            let op = catalog.operator(o);
            for &h in &hosts {
                let zv = self.z[&(h, o)];
                self.milp
                    .add_terms(self.cpu_rows[h.index()], [(zv, op.cpu_cost)]);
                if op.memory_cost != 0.0 {
                    if let Some(row) = self.mem_rows[h.index()] {
                        self.milp.add_terms(row, [(zv, op.memory_cost)]);
                    }
                }
                if self.t.is_some() {
                    self.milp
                        .add_terms(self.t_rows[h.index()], [(zv, -op.cpu_cost)]);
                }
            }
        }

        // ---- availability cuts not applied yet ----
        for cut in inp.cuts {
            if self.cut_rows.iter().any(|(c, _)| c == cut) {
                continue;
            }
            self.add_cut(cut.clone(), catalog);
        }

        // ---- refresh state-dependent pieces ----
        self.refresh_pins_and_producers(inp.state, catalog);
        self.refresh_avail_rhs(catalog);
        self.refresh_relay_rhs(catalog);
        self.refresh_cut_rhs(catalog);
        self.refresh_residuals(inp.state, catalog);

        // Freeze current assignments when replanning is disabled
        // (ablation; build path only — the planner never caches skeletons
        // with replan off).
        if !inp.replan {
            for &(h, o) in inp.state.placements() {
                if let Some(&v) = self.z.get(&(h, o)) {
                    self.milp.set_bounds(v, 1.0, 1.0);
                }
            }
            for &(h, m, s) in inp.state.flows() {
                if let Some(&v) = self.x.get(&(h, m, s)) {
                    self.milp.set_bounds(v, 1.0, 1.0);
                }
            }
            for (&s, &h) in inp.state.provided() {
                if let Some(&v) = self.d.get(&(h, s)) {
                    self.milp.set_bounds(v, 1.0, 1.0);
                }
            }
            for &(h, s) in inp.state.available() {
                if let Some(&v) = self.y.get(&(h, s)) {
                    self.milp.set_bounds(v, 1.0, 1.0);
                }
            }
        }
    }

    /// Re-applies the §IV-A reduction for one submission over a persistent
    /// skeleton: every variable whose stream/operator lies outside `space`
    /// is bound-fixed at its current deployment value; variables inside are
    /// released to their natural bounds (respecting fixed-consumer pins and
    /// the demand lifecycle). The result is algebraically identical to a
    /// fresh reduced model over `space` — same feasible set, same optimal
    /// decisions — while keeping the column layout stable for basis reuse.
    pub fn apply_reduction(
        &mut self,
        space: &PlanSpace,
        state: &DeploymentState,
        catalog: &Catalog,
    ) {
        let in_streams: BTreeSet<StreamId> = space.streams.iter().copied().collect();
        let in_ops: BTreeSet<OperatorId> = space.operators.iter().copied().collect();
        let derived = state.derive_availability(catalog);
        for (&(h, s), &v) in &self.y {
            if in_streams.contains(&s) {
                if self.pinned.contains(&(h, s)) {
                    self.milp.set_bounds(v, 1.0, 1.0);
                } else {
                    self.milp.set_bounds(v, 0.0, 1.0);
                }
            } else {
                let val = if derived.contains(&(h, s)) { 1.0 } else { 0.0 };
                self.milp.set_bounds(v, val, val);
            }
        }
        for (&(h, m, s), &v) in &self.x {
            if in_streams.contains(&s) {
                self.milp.set_bounds(v, 0.0, 1.0);
            } else {
                let val = if state.flows().contains(&(h, m, s)) {
                    1.0
                } else {
                    0.0
                };
                self.milp.set_bounds(v, val, val);
            }
        }
        for (&(h, o), &v) in &self.z {
            if in_ops.contains(&o) {
                self.milp.set_bounds(v, 0.0, 1.0);
            } else {
                let val = if state.is_placed(h, o) { 1.0 } else { 0.0 };
                self.milp.set_bounds(v, val, val);
            }
        }
        for (&(h, s), &v) in &self.d {
            match self.demand_kind[&s] {
                DemandKind::Disabled => self.milp.set_bounds(v, 0.0, 0.0),
                DemandKind::Eq | DemandKind::Le => {
                    if in_streams.contains(&s) {
                        self.milp.set_bounds(v, 0.0, 1.0);
                    } else {
                        let val = if state.provider_of(s) == Some(h) {
                            1.0
                        } else {
                            0.0
                        };
                        self.milp.set_bounds(v, val, val);
                    }
                }
            }
        }
        // Potentials and the O4 variable stay free: both are auxiliary
        // (zero/objective-only cost) and any causal fixing admits them.
    }

    /// Whether every decision column of `space` — its streams' `y`/`x`/`d`
    /// and its operators' `z` — is currently bound-fixed (`lb == ub`),
    /// i.e. the space lies entirely outside the active reduction. The
    /// auxiliary columns ([`Self::apply_reduction`] never fixes potentials
    /// or the O4 variable) are excluded. This is the safety condition for
    /// keeping the solver context across a query removal: re-fixing a
    /// fixed column at a new value is a bound patch the LP cache absorbs.
    pub fn space_is_bound_fixed(&self, space: &PlanSpace) -> bool {
        let in_streams: BTreeSet<StreamId> = space.streams.iter().copied().collect();
        let in_ops: BTreeSet<OperatorId> = space.operators.iter().copied().collect();
        let fixed = |v: VarId| {
            let (lb, ub) = self.milp.var_bounds(v);
            lb == ub
        };
        self.y
            .iter()
            .chain(self.d.iter())
            .all(|(&(_, s), &v)| !in_streams.contains(&s) || fixed(v))
            && self
                .x
                .iter()
                .all(|(&(_, _, s), &v)| !in_streams.contains(&s) || fixed(v))
            && self
                .z
                .iter()
                .all(|(&(_, o), &v)| !in_ops.contains(&o) || fixed(v))
    }

    /// Marks the decision variables of `spaces` fold-exempt (and everything
    /// else fold-eligible): the compressed-LP cache then keeps those
    /// columns in the LP even while a submission pins them, so a later
    /// submission that re-frees them — re-planning a currently-unserved
    /// query is the planner's case — patches the cached lowering instead
    /// of paying a relayout. Purely a compression hint
    /// ([`sqpr_milp::Model::set_fold_exempt`]): decisions and objectives
    /// are unchanged, the LP just stays a little wider.
    pub fn set_fold_exemptions<'a>(&mut self, spaces: impl IntoIterator<Item = &'a PlanSpace>) {
        let mut streams: BTreeSet<StreamId> = BTreeSet::new();
        let mut ops: BTreeSet<OperatorId> = BTreeSet::new();
        for sp in spaces {
            streams.extend(sp.streams.iter().copied());
            ops.extend(sp.operators.iter().copied());
        }
        for (&(_, s), &v) in &self.y {
            self.milp.set_fold_exempt(v, streams.contains(&s));
        }
        for (&(_, _, s), &v) in &self.x {
            self.milp.set_fold_exempt(v, streams.contains(&s));
        }
        for (&(_, o), &v) in &self.z {
            self.milp.set_fold_exempt(v, ops.contains(&o));
        }
        for (&(_, s), &v) in &self.d {
            self.milp.set_fold_exempt(v, streams.contains(&s));
        }
    }

    /// Applies one demand-row transition (see [`DemandKind`]).
    fn set_demand_kind(&mut self, s: StreamId, kind: DemandKind) {
        let row = self.demand_rows[&s];
        match kind {
            DemandKind::Eq => self.milp.set_row_bounds(row, 1.0, 1.0),
            DemandKind::Le | DemandKind::Disabled => {
                self.milp.set_row_bounds(row, -f64::INFINITY, 1.0)
            }
        }
        for &h in &self.hosts {
            let v = self.d[&(h, s)];
            match kind {
                DemandKind::Disabled => self.milp.set_bounds(v, 0.0, 0.0),
                DemandKind::Eq | DemandKind::Le => self.milp.set_bounds(v, 0.0, 1.0),
            }
        }
        self.demand_kind.insert(s, kind);
    }

    /// Adds one availability cut's rows (shared feed, one row per member).
    fn add_cut(&mut self, cut: AvailabilityCut, catalog: &Catalog) {
        if !self.free_streams.contains(&cut.stream) {
            return;
        }
        let s_ = cut.stream;
        let mut feed: Vec<(VarId, f64)> = Vec::new();
        for &m2 in &cut.dead_set {
            for &h in &self.hosts {
                if h != m2 && !cut.dead_set.contains(&h) {
                    feed.push((self.x[&(h, m2, s_)], -1.0));
                }
            }
            for &o in catalog.producers_of(s_) {
                if self.free_ops.contains(&o) {
                    feed.push((self.z[&(m2, o)], -1.0));
                }
            }
        }
        let mut rows = Vec::with_capacity(cut.dead_set.len());
        for &m in &cut.dead_set {
            let mut terms = vec![(self.y[&(m, s_)], 1.0)];
            terms.extend(feed.iter().copied());
            rows.push(self.milp.add_le(terms, 0.0)); // rhs set by refresh
        }
        self.cut_rows.push((cut, rows));
    }

    /// Recomputes the fixed-producer and fixed-consumer (pin) sets from the
    /// current deployment, applying and reverting `y` pins as needed.
    fn refresh_pins_and_producers(&mut self, state: &DeploymentState, catalog: &Catalog) {
        let mut fixed_producer = BTreeSet::new();
        let mut pinned = BTreeSet::new();
        for &(h, o) in state.placements() {
            if self.free_ops.contains(&o) {
                continue;
            }
            let op = catalog.operator(o);
            if self.free_streams.contains(&op.output) {
                fixed_producer.insert((h, op.output));
            }
            for &s in &op.inputs {
                if self.free_streams.contains(&s) {
                    pinned.insert((h, s));
                }
            }
        }
        for &(h, s) in pinned.difference(&self.pinned) {
            self.milp.set_bounds(self.y[&(h, s)], 1.0, 1.0);
        }
        for &(h, s) in self.pinned.difference(&pinned) {
            self.milp.set_bounds(self.y[&(h, s)], 0.0, 1.0);
        }
        self.pinned = pinned;
        self.fixed_producer = fixed_producer;
    }

    /// Refreshes availability-row right-hand sides (base placement plus
    /// fixed-producer grants).
    fn refresh_avail_rhs(&mut self, catalog: &Catalog) {
        for (&(m, s), &row) in &self.avail_rows {
            let mut rhs = 0.0;
            if catalog.is_base_at(s, m) && !catalog.is_host_failed(m) {
                rhs += 1.0;
            }
            if self.fixed_producer.contains(&(m, s)) {
                rhs += 1.0;
            }
            self.milp.set_row_bounds(row, -f64::INFINITY, rhs);
        }
    }

    /// Refreshes relay-row right-hand sides (`ProducersOnly` ablation):
    /// the sender may forward without a free producer when the stream is
    /// based at the sender or a fixed producer is placed there — the same
    /// grants as the availability rows, re-derived from the current state
    /// on every extension.
    fn refresh_relay_rhs(&mut self, catalog: &Catalog) {
        for (&(h, _, s), &row) in &self.relay_rows {
            let mut rhs = 0.0;
            if catalog.is_base_at(s, h) && !catalog.is_host_failed(h) {
                rhs += 1.0;
            }
            if self.fixed_producer.contains(&(h, s)) {
                rhs += 1.0;
            }
            self.milp.set_row_bounds(row, -f64::INFINITY, rhs);
        }
    }

    /// Refreshes cut-row right-hand sides (base/fixed-producer grants of
    /// dead-set members).
    fn refresh_cut_rhs(&mut self, catalog: &Catalog) {
        for (cut, rows) in &self.cut_rows {
            let mut rhs = 0.0;
            for &m2 in &cut.dead_set {
                if catalog.is_base_at(cut.stream, m2) && !catalog.is_host_failed(m2) {
                    rhs += 1.0;
                }
                if self.fixed_producer.contains(&(m2, cut.stream)) {
                    rhs += 1.0;
                }
            }
            for &row in rows {
                self.milp.set_row_bounds(row, -f64::INFINITY, rhs);
            }
        }
    }

    /// Recomputes the residual capacities: contributions of allocations
    /// whose streams/operators are *not represented in the skeleton*
    /// (everything represented is either free or bound-fixed and therefore
    /// already counted by its own terms).
    fn refresh_residuals(&mut self, state: &DeploymentState, catalog: &Catalog) {
        let n = self.n_hosts;
        let mut cpu_fixed = vec![0.0; n];
        let mut mem_fixed = vec![0.0; n];
        let mut out_fixed = vec![0.0; n];
        let mut in_fixed = vec![0.0; n];
        let mut link_fixed: BTreeMap<(HostId, HostId), f64> = BTreeMap::new();
        for &(h, o) in state.placements() {
            if !self.free_ops.contains(&o) {
                cpu_fixed[h.index()] += catalog.operator(o).cpu_cost;
                mem_fixed[h.index()] += catalog.operator(o).memory_cost;
            }
        }
        for &(h, m, s) in state.flows() {
            if !self.free_streams.contains(&s) {
                let r = catalog.stream(s).rate;
                out_fixed[h.index()] += r;
                in_fixed[m.index()] += r;
                *link_fixed.entry((h, m)).or_default() += r;
            }
        }
        for (&s, &h) in state.provided() {
            if !self.free_streams.contains(&s) {
                out_fixed[h.index()] += catalog.stream(s).rate;
            }
        }

        for (&(h, m), &row) in &self.link_rows {
            let cap = catalog.topology().link(h, m);
            let residual = cap - link_fixed.get(&(h, m)).copied().unwrap_or(0.0);
            self.milp
                .set_row_bounds(row, -f64::INFINITY, residual.max(0.0));
        }
        for (i, &h) in self.hosts.clone().iter().enumerate() {
            if let Some(row) = self.in_rows[i] {
                let cap = catalog.host(h).bandwidth_in;
                self.milp
                    .set_row_bounds(row, -f64::INFINITY, (cap - in_fixed[i]).max(0.0));
            }
            if let Some(row) = self.out_rows[i] {
                let cap = catalog.host(h).bandwidth_out;
                self.milp
                    .set_row_bounds(row, -f64::INFINITY, (cap - out_fixed[i]).max(0.0));
            }
            let cap = catalog.host(h).cpu_capacity;
            self.milp.set_row_bounds(
                self.cpu_rows[i],
                -f64::INFINITY,
                (cap - cpu_fixed[i]).max(0.0),
            );
            if let Some(row) = self.mem_rows[i] {
                let cap = catalog.host(h).memory_capacity;
                self.milp
                    .set_row_bounds(row, -f64::INFINITY, (cap - mem_fixed[i]).max(0.0));
            }
            if !self.t_rows.is_empty() {
                // O4: t >= cpu_fixed + sum gamma z.
                self.milp
                    .set_row_bounds(self.t_rows[i], cpu_fixed[i], f64::INFINITY);
            }
        }
        self.fixed_cpu = cpu_fixed;
    }

    pub fn num_vars(&self) -> usize {
        self.milp.num_vars()
    }

    pub fn num_cons(&self) -> usize {
        self.milp.num_cons()
    }

    /// Re-expresses a [`sqpr_milp::ModelBasis`] captured against `old` in
    /// this (compacted/rebuilt) skeleton's coordinates. Variables are
    /// matched through their `(host, stream/operator)` keys; constraints
    /// through the keyed row registries (availability, demand, capacity,
    /// cut rows). Rows without a key (the per-column coupling rows, whose
    /// slacks are rarely basic) are left unmapped and repaired by the usual
    /// slack substitution — a one-time cost per compaction, not a
    /// correctness concern.
    pub fn remap_basis_from(
        &self,
        old: &PlanningModel,
        basis: &sqpr_milp::ModelBasis,
    ) -> sqpr_milp::ModelBasis {
        let mut var_map: Vec<Option<usize>> = vec![None; old.milp.num_vars()];
        for (key, &v) in &old.y {
            if let Some(&nv) = self.y.get(key) {
                var_map[v.index()] = Some(nv.index());
            }
        }
        for (key, &v) in &old.x {
            if let Some(&nv) = self.x.get(key) {
                var_map[v.index()] = Some(nv.index());
            }
        }
        for (key, &v) in &old.z {
            if let Some(&nv) = self.z.get(key) {
                var_map[v.index()] = Some(nv.index());
            }
        }
        for (key, &v) in &old.p {
            if let Some(&nv) = self.p.get(key) {
                var_map[v.index()] = Some(nv.index());
            }
        }
        for (key, &v) in &old.d {
            if let Some(&nv) = self.d.get(key) {
                var_map[v.index()] = Some(nv.index());
            }
        }
        if let (Some(ot), Some(nt)) = (old.t, self.t) {
            var_map[ot.index()] = Some(nt.index());
        }

        let mut cons_map: Vec<Option<usize>> = vec![None; old.milp.num_cons()];
        for (key, &c) in &old.avail_rows {
            if let Some(&nc) = self.avail_rows.get(key) {
                cons_map[c.index()] = Some(nc.index());
            }
        }
        for (key, &c) in &old.demand_rows {
            if let Some(&nc) = self.demand_rows.get(key) {
                cons_map[c.index()] = Some(nc.index());
            }
        }
        for (key, &c) in &old.relay_rows {
            if let Some(&nc) = self.relay_rows.get(key) {
                cons_map[c.index()] = Some(nc.index());
            }
        }
        for (key, &c) in &old.link_rows {
            if let Some(&nc) = self.link_rows.get(key) {
                cons_map[c.index()] = Some(nc.index());
            }
        }
        let per_host = [
            (&old.in_rows, &self.in_rows),
            (&old.out_rows, &self.out_rows),
            (&old.mem_rows, &self.mem_rows),
        ];
        for (old_rows, new_rows) in per_host {
            for (i, slot) in old_rows.iter().enumerate() {
                if let (Some(oc), Some(Some(nc))) = (slot, new_rows.get(i)) {
                    cons_map[oc.index()] = Some(nc.index());
                }
            }
        }
        for (i, oc) in old.cpu_rows.iter().enumerate() {
            if let Some(nc) = self.cpu_rows.get(i) {
                cons_map[oc.index()] = Some(nc.index());
            }
        }
        for (i, oc) in old.t_rows.iter().enumerate() {
            if let Some(nc) = self.t_rows.get(i) {
                cons_map[oc.index()] = Some(nc.index());
            }
        }
        for (cut, old_rows) in &old.cut_rows {
            if let Some((_, new_rows)) = self.cut_rows.iter().find(|(c, _)| c == cut) {
                for (oc, nc) in old_rows.iter().zip(new_rows) {
                    cons_map[oc.index()] = Some(nc.index());
                }
            }
        }
        basis.remap(
            &var_map,
            &cons_map,
            self.milp.num_vars(),
            self.milp.num_cons(),
        )
    }

    /// Builds a warm-start vector from the current deployment: free
    /// variables take their current values, the new queries stay
    /// unadmitted, and stream potentials are set to flow-graph heights so
    /// the acyclicity rows hold. Returns `None` if the state claims a flow
    /// cycle (cannot happen for validated states).
    pub fn warm_start(&self, state: &DeploymentState, catalog: &Catalog) -> Option<Vec<f64>> {
        let mut v = vec![0.0; self.milp.num_vars()];
        // Use the *derived* availability fixpoint rather than the state's
        // explicit claims: base streams are implicitly available at their
        // sources, and hand-built states may omit entries that flows or
        // local operators imply.
        let derived = state.derive_availability(catalog);
        for (&(h, s), &var) in &self.y {
            if derived.contains(&(h, s)) {
                v[var.index()] = 1.0;
            }
        }
        for (&(h, m, s), &var) in &self.x {
            if state.flows().contains(&(h, m, s)) {
                v[var.index()] = 1.0;
            }
        }
        for (&(h, o), &var) in &self.z {
            if state.is_placed(h, o) {
                v[var.index()] = 1.0;
            }
        }
        for (&(h, s), &var) in &self.d {
            if self.demand_kind.get(&s) != Some(&DemandKind::Disabled)
                && state.provider_of(s) == Some(h)
            {
                v[var.index()] = 1.0;
            }
        }
        // Potentials: longest path along current flow edges per stream
        // (only present in Constraints mode).
        if !self.p.is_empty() {
            for &s in &self.free_streams {
                let heights = self.flow_heights(state, s)?;
                for (h, &var) in self
                    .p
                    .iter()
                    .filter(|((_, ps), _)| *ps == s)
                    .map(|((h, _), var)| (h, var))
                {
                    v[var.index()] = heights[h.index()].min(self.big_m);
                }
            }
        }
        // O4 variable: the minimal feasible value is the maximum per-host
        // CPU under the warm-start placements plus the fixed load.
        if let Some(t_var) = self.t {
            let mut cpu = self.fixed_cpu.clone();
            for (&(h, o), &var) in &self.z {
                if v[var.index()] > 0.5 {
                    cpu[h.index()] += self.gamma[&o];
                }
            }
            v[t_var.index()] = cpu.iter().copied().fold(0.0, f64::max);
        }
        Some(v)
    }

    fn flow_heights(&self, state: &DeploymentState, s: StreamId) -> Option<Vec<f64>> {
        // heights[h] = longest path from h along flow edges of stream s.
        let n = self.n_hosts;
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(h, m, fs) in state.flows() {
            if fs == s {
                adj[h.index()].push(m.index());
            }
        }
        let mut memo = vec![-1i64; n];
        let mut visiting = vec![false; n];
        fn dfs(
            u: usize,
            adj: &[Vec<usize>],
            memo: &mut [i64],
            visiting: &mut [bool],
        ) -> Option<i64> {
            if memo[u] >= 0 {
                return Some(memo[u]);
            }
            if visiting[u] {
                return None; // cycle
            }
            visiting[u] = true;
            let mut best = 0i64;
            for &w in &adj[u] {
                best = best.max(dfs(w, adj, memo, visiting)? + 1);
            }
            visiting[u] = false;
            memo[u] = best;
            Some(best)
        }
        let mut out = vec![0.0; n];
        for (u, slot) in out.iter_mut().enumerate() {
            *slot = dfs(u, &adj, &mut memo, &mut visiting)? as f64;
        }
        Some(out)
    }

    /// Extracts availability cuts violated by an acausal candidate: for
    /// each free stream, the set of hosts whose claimed availability is not
    /// derivable (a self-sustaining cycle) becomes one dead-set cut.
    pub fn find_acausal_cuts(
        &self,
        xsol: &[f64],
        prev: &DeploymentState,
        catalog: &Catalog,
    ) -> Vec<AvailabilityCut> {
        let decoded = self.decode(xsol, prev);
        let mut cand = prev.clone();
        decoded.install(&mut cand);
        let derived = cand.derive_availability(catalog);
        let mut dead: BTreeMap<StreamId, BTreeSet<HostId>> = BTreeMap::new();
        for &(h, s) in cand.available() {
            if self.free_streams.contains(&s) && !derived.contains(&(h, s)) {
                dead.entry(s).or_default().insert(h);
            }
        }
        dead.into_iter()
            .map(|(stream, dead_set)| AvailabilityCut { stream, dead_set })
            .collect()
    }

    /// Whether a candidate solution is *causal*: decoded onto the previous
    /// state, every availability/flow/placement claim must be derivable
    /// from base streams through operators and flows (the fixpoint of
    /// [`DeploymentState::derive_availability`]). Used as the lazy
    /// stand-in for the paper's acyclicity constraints.
    pub fn is_causal(&self, xsol: &[f64], prev: &DeploymentState, catalog: &Catalog) -> bool {
        let decoded = self.decode(xsol, prev);
        let mut cand = prev.clone();
        decoded.install(&mut cand);
        cand.validate(catalog).is_empty()
    }

    /// Whether a solution vector admits the given demanded stream.
    pub fn admits(&self, x: &[f64], stream: StreamId) -> bool {
        self.d
            .iter()
            .any(|(&(_, s), &v)| s == stream && x[v.index()] > 0.5)
    }

    /// Decodes a solution into a fresh deployment allocation, merging the
    /// fixed (untouched) portion of the previous state.
    pub fn decode(&self, xsol: &[f64], prev: &DeploymentState) -> DecodedAllocation {
        let mut provided: BTreeMap<StreamId, HostId> = BTreeMap::new();
        let mut flows: BTreeSet<(HostId, HostId, StreamId)> = BTreeSet::new();
        let mut available: BTreeSet<(HostId, StreamId)> = BTreeSet::new();
        let mut placements: BTreeSet<(HostId, OperatorId)> = BTreeSet::new();

        // Fixed portion.
        for (&s, &h) in prev.provided() {
            if !self.free_streams.contains(&s) {
                provided.insert(s, h);
            }
        }
        for &(h, m, s) in prev.flows() {
            if !self.free_streams.contains(&s) {
                flows.insert((h, m, s));
            }
        }
        for &(h, s) in prev.available() {
            if !self.free_streams.contains(&s) {
                available.insert((h, s));
            }
        }
        for &(h, o) in prev.placements() {
            if !self.free_ops.contains(&o) {
                placements.insert((h, o));
            }
        }

        // Free portion from the solution.
        for (&(h, s), &v) in &self.d {
            if xsol[v.index()] > 0.5 {
                provided.insert(s, h);
            }
        }
        for (&(h, m, s), &v) in &self.x {
            if xsol[v.index()] > 0.5 {
                flows.insert((h, m, s));
            }
        }
        for (&(h, s), &v) in &self.y {
            if xsol[v.index()] > 0.5 {
                available.insert((h, s));
            }
        }
        for (&(h, o), &v) in &self.z {
            if xsol[v.index()] > 0.5 {
                placements.insert((h, o));
            }
        }

        DecodedAllocation {
            provided,
            flows,
            available,
            placements,
        }
    }
}

/// A decoded allocation ready to install into a [`DeploymentState`].
#[derive(Debug, Clone)]
pub struct DecodedAllocation {
    pub provided: BTreeMap<StreamId, HostId>,
    pub flows: BTreeSet<(HostId, HostId, StreamId)>,
    pub available: BTreeSet<(HostId, StreamId)>,
    pub placements: BTreeSet<(HostId, OperatorId)>,
}

impl DecodedAllocation {
    /// Installs this allocation into the deployment state.
    pub fn install(self, state: &mut DeploymentState) {
        state.replace_allocation(self.provided, self.flows, self.available, self.placements);
    }
}
