//! The SQPR optimisation model (paper §III), reduced per §IV-A.
//!
//! Builds one MILP per planning round over the *free* plan space `S(q)`,
//! `O(q)` of the arriving query (or batch). Decision variables outside the
//! free space stay at their current deployment values and enter the model
//! only as residual-capacity constants — exactly the paper's variable
//! fixing. Constraint groups:
//!
//! | paper | here |
//! |---|---|
//! | III.4a demand        | `d_hs ≤ y_hs` |
//! | III.4b / IV.9        | `Σ_h d_hs ≤ 1` (new) / `= 1` (admitted) |
//! | III.5a availability  | `y_ms ≤ Σ_h x_hms + Σ_o z_mo + 1[s ∈ S0_m]` |
//! | III.5b operator      | `z_ho ≤ y_hs` for each input `s ∈ S_o` |
//! | III.5c flow          | `x_hms ≤ y_hs` |
//! | III.6a link          | `Σ_s ̺_s x_hms ≤ κ_hm − fixed` |
//! | III.6b in-bandwidth  | `Σ_{h,s} ̺_s x_hms ≤ β_m − fixed` |
//! | III.6c out-bandwidth | `Σ_{m,s} ̺_s x_hms + Σ_s ̺_s d_hs ≤ β_h − fixed` |
//! | III.6d CPU           | `Σ_o γ_o z_ho ≤ ζ_h − fixed` |
//! | III.7 acyclicity     | `p_ms − p_hs + M x_hms ≤ M − 1`, `M = H + 2` |
//! | O4 linearisation     | `t ≥ fixed_cpu_h + Σ_o γ_o z_ho` |
//!
//! Additionally, *fixed consumers* — operators of unrelated queries that
//! stay in place but consume a stream in the free space — pin `y_hs = 1` so
//! a re-plan cannot starve them.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use sqpr_milp::{Model, Sense, VarId};

use sqpr_dsps::{Catalog, DeploymentState, HostId, OperatorId, StreamId};

use crate::config::{AcyclicityMode, ObjectiveWeights, RelayPolicy};
use crate::query::PlanSpace;

/// A lazy availability cut: inside a "dead" host set (one that derived no
/// real source of `stream` in a candidate solution), availability must be
/// powered from outside the set. Valid for every causal allocation and
/// violated by the offending cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AvailabilityCut {
    pub stream: StreamId,
    pub dead_set: BTreeSet<HostId>,
}

/// Inputs to one planning-model build.
pub struct ModelInputs<'a> {
    pub catalog: &'a Catalog,
    pub state: &'a DeploymentState,
    /// Free plan space (the reduction's S(q), O(q)).
    pub space: &'a PlanSpace,
    /// Newly demanded streams (one per query in the batch).
    pub new_streams: &'a [StreamId],
    pub weights: ObjectiveWeights,
    pub relay_policy: RelayPolicy,
    pub acyclicity: AcyclicityMode,
    /// IV.9 flexibility: when false, variables currently 1 are frozen.
    pub replan: bool,
    /// Lazy availability cuts accumulated by previous solve rounds.
    pub cuts: &'a [AvailabilityCut],
}

/// A built planning model plus the variable maps needed to decode results.
pub struct PlanningModel {
    pub milp: Model,
    d: HashMap<(HostId, StreamId), VarId>,
    x: HashMap<(HostId, HostId, StreamId), VarId>,
    y: HashMap<(HostId, StreamId), VarId>,
    z: HashMap<(HostId, OperatorId), VarId>,
    p: HashMap<(HostId, StreamId), VarId>,
    free_streams: BTreeSet<StreamId>,
    free_ops: BTreeSet<OperatorId>,
    t: Option<VarId>,
    fixed_cpu: Vec<f64>,
    gamma: HashMap<OperatorId, f64>,
    big_m: f64,
    n_hosts: usize,
}

impl PlanningModel {
    /// Builds the reduced MILP.
    pub fn build(inp: &ModelInputs<'_>) -> Self {
        let catalog = inp.catalog;
        let n = catalog.num_hosts();
        let big_m = n as f64 + 2.0; // any value > |H| + 1 (paper III.7)
        let free_streams: BTreeSet<StreamId> = inp.space.streams.iter().copied().collect();
        let free_ops: BTreeSet<OperatorId> = inp.space.operators.iter().copied().collect();

        // Demanded streams in the free space: already-admitted ones (IV.9
        // equality) and the new ones (≤ 1).
        let admitted_streams: BTreeSet<StreamId> = inp.state.admitted().values().copied().collect();
        let mut demanded_eq: Vec<StreamId> = admitted_streams
            .iter()
            .copied()
            .filter(|s| free_streams.contains(s))
            .collect();
        demanded_eq.sort();
        let mut demanded_new: Vec<StreamId> = inp
            .new_streams
            .iter()
            .copied()
            .filter(|s| !admitted_streams.contains(s))
            .collect();
        demanded_new.sort();
        demanded_new.dedup();

        // Residual capacities: subtract contributions of *fixed* flows,
        // deliveries and placements (anything outside the free space).
        let mut cpu_fixed = vec![0.0; n];
        let mut mem_fixed = vec![0.0; n];
        let mut out_fixed = vec![0.0; n];
        let mut in_fixed = vec![0.0; n];
        let mut link_fixed: HashMap<(HostId, HostId), f64> = HashMap::new();
        for &(h, o) in inp.state.placements() {
            if !free_ops.contains(&o) {
                cpu_fixed[h.index()] += catalog.operator(o).cpu_cost;
                mem_fixed[h.index()] += catalog.operator(o).memory_cost;
            }
        }
        for &(h, m, s) in inp.state.flows() {
            if !free_streams.contains(&s) {
                let r = catalog.stream(s).rate;
                out_fixed[h.index()] += r;
                in_fixed[m.index()] += r;
                *link_fixed.entry((h, m)).or_default() += r;
            }
        }
        for (&s, &h) in inp.state.provided() {
            if !free_streams.contains(&s) {
                out_fixed[h.index()] += catalog.stream(s).rate;
            }
        }

        // Fixed producers: placements outside the free space whose output
        // *is* a free stream (possible with private/tagged spaces); they
        // grant availability as constants in III.5a.
        let mut fixed_producer: BTreeSet<(HostId, StreamId)> = BTreeSet::new();
        // Fixed consumers: placements outside the free space that consume a
        // free stream; their host must keep the stream available.
        let mut pinned_available: BTreeSet<(HostId, StreamId)> = BTreeSet::new();
        for &(h, o) in inp.state.placements() {
            if free_ops.contains(&o) {
                continue;
            }
            let op = catalog.operator(o);
            if free_streams.contains(&op.output) {
                fixed_producer.insert((h, op.output));
            }
            for &s in &op.inputs {
                if free_streams.contains(&s) {
                    pinned_available.insert((h, s));
                }
            }
        }

        let mut milp = Model::new(Sense::Maximize);
        let w = inp.weights;

        // ---- variables ----
        let mut d = HashMap::new();
        let mut x = HashMap::new();
        let mut y = HashMap::new();
        let mut z = HashMap::new();
        let mut p = HashMap::new();

        let hosts: Vec<HostId> = catalog.hosts().collect();
        let with_potentials = inp.acyclicity == AcyclicityMode::Constraints;
        for &s in free_streams.iter() {
            for &h in &hosts {
                let yv = milp.add_binary(0.0);
                y.insert((h, s), yv);
                if with_potentials {
                    let pv = milp.add_continuous(0.0, big_m, 0.0);
                    p.insert((h, s), pv);
                }
            }
            let rate = catalog.stream(s).rate;
            for &h in &hosts {
                for &m in &hosts {
                    if h != m {
                        let xv = milp.add_binary(-w.lambda2 * rate);
                        x.insert((h, m, s), xv);
                    }
                }
            }
        }
        for s in demanded_eq.iter().chain(demanded_new.iter()) {
            for &h in &hosts {
                let dv = milp.add_binary(w.lambda1);
                d.insert((h, *s), dv);
            }
        }
        for &o in free_ops.iter() {
            let gamma = catalog.operator(o).cpu_cost;
            for &h in &hosts {
                let zv = milp.add_binary(-w.lambda3 * gamma);
                z.insert((h, o), zv);
            }
        }
        let t = if w.lambda4 != 0.0 {
            Some(milp.add_continuous(0.0, f64::INFINITY, -w.lambda4))
        } else {
            None
        };

        // Pin availability required by fixed consumers.
        for &(h, s) in &pinned_available {
            milp.set_bounds(y[&(h, s)], 1.0, 1.0);
        }

        // Freeze current assignments when replanning is disabled.
        if !inp.replan {
            for &(h, o) in inp.state.placements() {
                if let Some(&v) = z.get(&(h, o)) {
                    milp.set_bounds(v, 1.0, 1.0);
                }
            }
            for &(h, m, s) in inp.state.flows() {
                if let Some(&v) = x.get(&(h, m, s)) {
                    milp.set_bounds(v, 1.0, 1.0);
                }
            }
            for (&s, &h) in inp.state.provided() {
                if let Some(&v) = d.get(&(h, s)) {
                    milp.set_bounds(v, 1.0, 1.0);
                }
            }
            for &(h, s) in inp.state.available() {
                if let Some(&v) = y.get(&(h, s)) {
                    milp.set_bounds(v, 1.0, 1.0);
                }
            }
        }

        // ---- constraints ----
        // III.4a: d_hs <= y_hs.
        for (&(h, s), &dv) in &d {
            milp.add_le(vec![(dv, 1.0), (y[&(h, s)], -1.0)], 0.0);
        }
        // IV.9 for admitted, III.4b for new.
        for &s in &demanded_eq {
            let terms: Vec<_> = hosts.iter().map(|&h| (d[&(h, s)], 1.0)).collect();
            milp.add_eq(terms, 1.0);
        }
        for &s in &demanded_new {
            let terms: Vec<_> = hosts.iter().map(|&h| (d[&(h, s)], 1.0)).collect();
            milp.add_le(terms, 1.0);
        }
        // III.5a availability.
        for &s in &free_streams {
            for &m in &hosts {
                let mut terms = vec![(y[&(m, s)], 1.0)];
                for &h in &hosts {
                    if h != m {
                        terms.push((x[&(h, m, s)], -1.0));
                    }
                }
                for &o in catalog.producers_of(s) {
                    if free_ops.contains(&o) {
                        terms.push((z[&(m, o)], -1.0));
                    }
                }
                let mut rhs = 0.0;
                if catalog.is_base_at(s, m) {
                    rhs += 1.0;
                }
                if fixed_producer.contains(&(m, s)) {
                    rhs += 1.0;
                }
                milp.add_le(terms, rhs);
            }
        }
        // Lazy availability cuts from previous rounds: availability at any
        // host inside a dead set requires the *set* to be fed — inflow
        // from outside the set, or production/base/fixed-producer at some
        // member. (Counting only direct inflow to the host itself would be
        // invalid: members may legitimately relay for each other.)
        for cut in inp.cuts {
            if !free_streams.contains(&cut.stream) {
                continue;
            }
            let s_ = cut.stream;
            // Shared feed terms for the whole set.
            let mut feed: Vec<(sqpr_milp::VarId, f64)> = Vec::new();
            let mut rhs = 0.0;
            for &m2 in &cut.dead_set {
                for &h in &hosts {
                    if h != m2 && !cut.dead_set.contains(&h) {
                        feed.push((x[&(h, m2, s_)], -1.0));
                    }
                }
                for &o in catalog.producers_of(s_) {
                    if free_ops.contains(&o) {
                        feed.push((z[&(m2, o)], -1.0));
                    }
                }
                if catalog.is_base_at(s_, m2) {
                    rhs += 1.0;
                }
                if fixed_producer.contains(&(m2, s_)) {
                    rhs += 1.0;
                }
            }
            for &m in &cut.dead_set {
                let mut terms = vec![(y[&(m, s_)], 1.0)];
                terms.extend(feed.iter().copied());
                milp.add_le(terms, rhs);
            }
        }
        // III.5b operator inputs.
        for &o in &free_ops {
            let op = catalog.operator(o);
            for &s in &op.inputs {
                assert!(
                    free_streams.contains(&s),
                    "free operator {o} consumes stream {s} outside the free space"
                );
                for &h in &hosts {
                    milp.add_le(vec![(z[&(h, o)], 1.0), (y[&(h, s)], -1.0)], 0.0);
                }
            }
        }
        // III.5c flows need the sender to have the stream; III.7 acyclicity.
        for (&(h, m, s), &xv) in &x {
            milp.add_le(vec![(xv, 1.0), (y[&(h, s)], -1.0)], 0.0);
            if with_potentials {
                milp.add_le(
                    vec![(p[&(m, s)], 1.0), (p[&(h, s)], -1.0), (xv, big_m)],
                    big_m - 1.0,
                );
            }
            if inp.relay_policy == RelayPolicy::ProducersOnly {
                // Senders must generate the stream locally (ablation).
                let mut terms = vec![(xv, 1.0)];
                for &o in catalog.producers_of(s) {
                    if free_ops.contains(&o) {
                        terms.push((z[&(h, o)], -1.0));
                    }
                }
                let mut rhs = 0.0;
                if catalog.is_base_at(s, h) {
                    rhs += 1.0;
                }
                if fixed_producer.contains(&(h, s)) {
                    rhs += 1.0;
                }
                milp.add_le(terms, rhs);
            }
        }
        // III.6a link capacities (only rows with at least one variable).
        for &h in &hosts {
            for &m in &hosts {
                if h == m {
                    continue;
                }
                let cap = catalog.topology().link(h, m);
                if !cap.is_finite() {
                    continue;
                }
                let residual = cap - link_fixed.get(&(h, m)).copied().unwrap_or(0.0);
                let terms: Vec<_> = free_streams
                    .iter()
                    .map(|&s| (x[&(h, m, s)], catalog.stream(s).rate))
                    .collect();
                if !terms.is_empty() {
                    milp.add_le(terms, residual.max(0.0));
                }
            }
        }
        // III.6b incoming host bandwidth.
        for &m in &hosts {
            let cap = catalog.host(m).bandwidth_in;
            if !cap.is_finite() {
                continue;
            }
            let mut terms = Vec::new();
            for &s in &free_streams {
                let rate = catalog.stream(s).rate;
                for &h in &hosts {
                    if h != m {
                        terms.push((x[&(h, m, s)], rate));
                    }
                }
            }
            if !terms.is_empty() {
                milp.add_le(terms, (cap - in_fixed[m.index()]).max(0.0));
            }
        }
        // III.6c outgoing host bandwidth (flows + client deliveries).
        for &h in &hosts {
            let cap = catalog.host(h).bandwidth_out;
            if !cap.is_finite() {
                continue;
            }
            let mut terms = Vec::new();
            for &s in &free_streams {
                let rate = catalog.stream(s).rate;
                for &m in &hosts {
                    if h != m {
                        terms.push((x[&(h, m, s)], rate));
                    }
                }
                if let Some(&dv) = d.get(&(h, s)) {
                    terms.push((dv, rate));
                }
            }
            if !terms.is_empty() {
                milp.add_le(terms, (cap - out_fixed[h.index()]).max(0.0));
            }
        }
        // III.6d CPU, the memory analogue (§VII extension) and the O4
        // linearisation.
        for &h in &hosts {
            let cap = catalog.host(h).cpu_capacity;
            let terms: Vec<_> = free_ops
                .iter()
                .map(|&o| (z[&(h, o)], catalog.operator(o).cpu_cost))
                .collect();
            if !terms.is_empty() {
                milp.add_le(terms.clone(), (cap - cpu_fixed[h.index()]).max(0.0));
            }
            let mem_cap = catalog.host(h).memory_capacity;
            if mem_cap.is_finite() {
                let mem_terms: Vec<_> = free_ops
                    .iter()
                    .map(|&o| (z[&(h, o)], catalog.operator(o).memory_cost))
                    .filter(|&(_, m)| m != 0.0)
                    .collect();
                if !mem_terms.is_empty() {
                    milp.add_le(mem_terms, (mem_cap - mem_fixed[h.index()]).max(0.0));
                }
            }
            if let Some(t) = t {
                // t >= cpu_fixed + sum gamma z  <=>  t - sum gamma z >= fixed.
                let mut trow = vec![(t, 1.0)];
                trow.extend(terms.iter().map(|&(v, g)| (v, -g)));
                milp.add_ge(trow, cpu_fixed[h.index()]);
            }
        }

        let gamma: HashMap<OperatorId, f64> = free_ops
            .iter()
            .map(|&o| (o, catalog.operator(o).cpu_cost))
            .collect();
        PlanningModel {
            milp,
            d,
            x,
            y,
            z,
            p,
            free_streams,
            free_ops,
            t,
            fixed_cpu: cpu_fixed,
            gamma,
            big_m,
            n_hosts: n,
        }
    }

    pub fn num_vars(&self) -> usize {
        self.milp.num_vars()
    }

    pub fn num_cons(&self) -> usize {
        self.milp.num_cons()
    }

    /// Builds a warm-start vector from the current deployment: free
    /// variables take their current values, the new queries stay
    /// unadmitted, and stream potentials are set to flow-graph heights so
    /// the acyclicity rows hold. Returns `None` if the state claims a flow
    /// cycle (cannot happen for validated states).
    pub fn warm_start(&self, state: &DeploymentState, catalog: &Catalog) -> Option<Vec<f64>> {
        let mut v = vec![0.0; self.milp.num_vars()];
        // Use the *derived* availability fixpoint rather than the state's
        // explicit claims: base streams are implicitly available at their
        // sources, and hand-built states may omit entries that flows or
        // local operators imply.
        let derived = state.derive_availability(catalog);
        for (&(h, s), &var) in &self.y {
            if derived.contains(&(h, s)) {
                v[var.index()] = 1.0;
            }
        }
        for (&(h, m, s), &var) in &self.x {
            if state.flows().contains(&(h, m, s)) {
                v[var.index()] = 1.0;
            }
        }
        for (&(h, o), &var) in &self.z {
            if state.is_placed(h, o) {
                v[var.index()] = 1.0;
            }
        }
        for (&(h, s), &var) in &self.d {
            if state.provider_of(s) == Some(h) {
                v[var.index()] = 1.0;
            }
        }
        // Potentials: longest path along current flow edges per stream
        // (only present in Constraints mode).
        if !self.p.is_empty() {
            for &s in &self.free_streams {
                let heights = self.flow_heights(state, s)?;
                for (h, &var) in self
                    .p
                    .iter()
                    .filter(|((_, ps), _)| *ps == s)
                    .map(|((h, _), var)| (h, var))
                {
                    v[var.index()] = heights[h.index()].min(self.big_m);
                }
            }
        }
        // O4 variable: the minimal feasible value is the maximum per-host
        // CPU under the warm-start placements plus the fixed load.
        if let Some(t_var) = self.t {
            let mut cpu = self.fixed_cpu.clone();
            for (&(h, o), &var) in &self.z {
                if v[var.index()] > 0.5 {
                    cpu[h.index()] += self.gamma[&o];
                }
            }
            v[t_var.index()] = cpu.iter().copied().fold(0.0, f64::max);
        }
        Some(v)
    }

    fn flow_heights(&self, state: &DeploymentState, s: StreamId) -> Option<Vec<f64>> {
        // heights[h] = longest path from h along flow edges of stream s.
        let n = self.n_hosts;
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(h, m, fs) in state.flows() {
            if fs == s {
                adj[h.index()].push(m.index());
            }
        }
        let mut memo = vec![-1i64; n];
        let mut visiting = vec![false; n];
        fn dfs(
            u: usize,
            adj: &[Vec<usize>],
            memo: &mut [i64],
            visiting: &mut [bool],
        ) -> Option<i64> {
            if memo[u] >= 0 {
                return Some(memo[u]);
            }
            if visiting[u] {
                return None; // cycle
            }
            visiting[u] = true;
            let mut best = 0i64;
            for &w in &adj[u] {
                best = best.max(dfs(w, adj, memo, visiting)? + 1);
            }
            visiting[u] = false;
            memo[u] = best;
            Some(best)
        }
        let mut out = vec![0.0; n];
        for u in 0..n {
            out[u] = dfs(u, &adj, &mut memo, &mut visiting)? as f64;
        }
        Some(out)
    }

    /// Extracts availability cuts violated by an acausal candidate: for
    /// each free stream, the set of hosts whose claimed availability is not
    /// derivable (a self-sustaining cycle) becomes one dead-set cut.
    pub fn find_acausal_cuts(
        &self,
        xsol: &[f64],
        prev: &DeploymentState,
        catalog: &Catalog,
    ) -> Vec<AvailabilityCut> {
        let decoded = self.decode(xsol, prev);
        let mut cand = prev.clone();
        decoded.install(&mut cand);
        let derived = cand.derive_availability(catalog);
        let mut dead: HashMap<StreamId, BTreeSet<HostId>> = HashMap::new();
        for &(h, s) in cand.available() {
            if self.free_streams.contains(&s) && !derived.contains(&(h, s)) {
                dead.entry(s).or_default().insert(h);
            }
        }
        dead.into_iter()
            .map(|(stream, dead_set)| AvailabilityCut { stream, dead_set })
            .collect()
    }

    /// Whether a candidate solution is *causal*: decoded onto the previous
    /// state, every availability/flow/placement claim must be derivable
    /// from base streams through operators and flows (the fixpoint of
    /// [`DeploymentState::derive_availability`]). Used as the lazy
    /// stand-in for the paper's acyclicity constraints.
    pub fn is_causal(&self, xsol: &[f64], prev: &DeploymentState, catalog: &Catalog) -> bool {
        let decoded = self.decode(xsol, prev);
        let mut cand = prev.clone();
        decoded.install(&mut cand);
        cand.validate(catalog).is_empty()
    }

    /// Whether a solution vector admits the given demanded stream.
    pub fn admits(&self, x: &[f64], stream: StreamId) -> bool {
        self.d
            .iter()
            .any(|(&(_, s), &v)| s == stream && x[v.index()] > 0.5)
    }

    /// Decodes a solution into a fresh deployment allocation, merging the
    /// fixed (untouched) portion of the previous state.
    pub fn decode(&self, xsol: &[f64], prev: &DeploymentState) -> DecodedAllocation {
        let mut provided: BTreeMap<StreamId, HostId> = BTreeMap::new();
        let mut flows: BTreeSet<(HostId, HostId, StreamId)> = BTreeSet::new();
        let mut available: BTreeSet<(HostId, StreamId)> = BTreeSet::new();
        let mut placements: BTreeSet<(HostId, OperatorId)> = BTreeSet::new();

        // Fixed portion.
        for (&s, &h) in prev.provided() {
            if !self.free_streams.contains(&s) {
                provided.insert(s, h);
            }
        }
        for &(h, m, s) in prev.flows() {
            if !self.free_streams.contains(&s) {
                flows.insert((h, m, s));
            }
        }
        for &(h, s) in prev.available() {
            if !self.free_streams.contains(&s) {
                available.insert((h, s));
            }
        }
        for &(h, o) in prev.placements() {
            if !self.free_ops.contains(&o) {
                placements.insert((h, o));
            }
        }

        // Free portion from the solution.
        for (&(h, s), &v) in &self.d {
            if xsol[v.index()] > 0.5 {
                provided.insert(s, h);
            }
        }
        for (&(h, m, s), &v) in &self.x {
            if xsol[v.index()] > 0.5 {
                flows.insert((h, m, s));
            }
        }
        for (&(h, s), &v) in &self.y {
            if xsol[v.index()] > 0.5 {
                available.insert((h, s));
            }
        }
        for (&(h, o), &v) in &self.z {
            if xsol[v.index()] > 0.5 {
                placements.insert((h, o));
            }
        }

        DecodedAllocation {
            provided,
            flows,
            available,
            placements,
        }
    }
}

/// A decoded allocation ready to install into a [`DeploymentState`].
#[derive(Debug, Clone)]
pub struct DecodedAllocation {
    pub provided: BTreeMap<StreamId, HostId>,
    pub flows: BTreeSet<(HostId, HostId, StreamId)>,
    pub available: BTreeSet<(HostId, StreamId)>,
    pub placements: BTreeSet<(HostId, OperatorId)>,
}

impl DecodedAllocation {
    /// Installs this allocation into the deployment state.
    pub fn install(self, state: &mut DeploymentState) {
        state.replace_allocation(self.provided, self.flows, self.available, self.placements);
    }
}
