//! The SQPR planner: Algorithm 1 (initial query planning).
//!
//! One `submit` call per arriving query: register the query's plan space,
//! short-circuit if its result stream is already provided (line 3 of
//! Algorithm 1), otherwise build the reduced MILP with constraint IV.9,
//! warm-start from the current deployment (which guarantees admitted
//! queries survive any timeout), solve under the configured budget, and
//! install the best incumbent if it admits the query.

use std::collections::BTreeSet;
use std::fmt;
use std::time::{Duration, Instant};

use sqpr_dsps::{Catalog, DeploymentState, FailureAudit, HostId, QueryId, StreamId};
use sqpr_milp::{
    solve_preemptible, CacheStats, IncumbentFilter, LpCacheSlot, MilpOptions, MilpResult,
    MilpStatus, MilpWarmStart, ModelBasis, PivotCounts, SearchState, SolveOutcome,
};

use crate::admission::{Admitted, Rejected, RoundVerdict};
use crate::config::{AcyclicityMode, ObjectiveWeights, PlannerConfig, RelayPolicy};
use crate::greedy::greedy_admit;
use crate::model::{AvailabilityCut, ModelInputs, PlanningModel};
use crate::query::{full_space, register_join_query, PlanSpace, QuerySpec};

/// Typed rejection of a malformed planner request. Submission and
/// re-planning used to panic on these (deep inside query registration);
/// on the re-admission hot path of a failure storm a panic over one bad
/// query would take the whole recovery down, so they are surfaced as
/// values instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlannerError {
    /// A join query needs at least 2 *distinct* base streams.
    TooFewBases { distinct: usize },
    /// The stream id is not registered in the catalog.
    UnknownStream(StreamId),
    /// The stream exists but is a composite, not a base stream.
    NotABaseStream(StreamId),
    /// The query id was never submitted to this planner.
    UnknownQuery(QueryId),
}

impl fmt::Display for PlannerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlannerError::TooFewBases { distinct } => {
                write!(
                    f,
                    "a join query needs >= 2 distinct base streams (got {distinct})"
                )
            }
            PlannerError::UnknownStream(s) => write!(f, "unknown stream {s}"),
            PlannerError::NotABaseStream(s) => write!(f, "stream {s} is not a base stream"),
            PlannerError::UnknownQuery(q) => write!(f, "unknown query {q}"),
        }
    }
}

impl std::error::Error for PlannerError {}

/// Result of one planning round.
#[derive(Debug, Clone)]
pub struct PlanningOutcome {
    pub query: QueryId,
    pub admitted: bool,
    /// True when the query was satisfied by an existing provision without
    /// solving (Algorithm 1, line 3).
    pub reused_existing: bool,
    /// Branch & bound nodes explored.
    pub nodes: usize,
    /// Total LP simplex iterations.
    pub lp_iterations: usize,
    /// LP iterations broken down by simplex phase (phase-I, primal, dual).
    /// Warm bound-change re-solves should show up as `dual` pivots, not
    /// `phase1` — the bench asserts exactly that.
    pub lp_pivots: PivotCounts,
    /// Relative MIP gap of the final incumbent (∞ if none).
    pub gap: f64,
    /// Wall-clock planning time.
    pub solve_time: Duration,
    /// Model size actually solved (0 when short-circuited).
    pub model_vars: usize,
    pub model_cons: usize,
    /// The solver proved optimality (vs. stopping on the budget).
    pub proved_optimal: bool,
    /// Final solver status of the round (`Optimal` for short-circuited
    /// submissions). Distinguishes budget-limited rounds (`Feasible` /
    /// `Unknown`) from proven ones — the recovery storm reports it per
    /// re-admitted query.
    pub status: MilpStatus,
    /// The round reused the persistent solver context (extended skeleton
    /// plus root-basis warm start) instead of building from scratch.
    pub incremental: bool,
    /// Compressed-LP cache activity of this round (counter deltas):
    /// `patches` vs `rebuilds` says whether the round's B&B constructions
    /// were served in place or paid a fresh lowering; `refix_patches`
    /// counts the cross-submission hits where the bound-fixed set moved
    /// within the cached layout's fixed class. Zero on cold rounds (no
    /// cache) and short-circuited submissions.
    pub lp_cache: CacheStats,
    /// Anytime admission verdict of the round (see [`crate::admission`]):
    /// whether the admit/reject decision carries an optimality/infeasibility
    /// certificate or stopped on a budget/deadline. A
    /// [`Rejected::DeadlineNoCertificate`] round may have parked a suspended
    /// search for the admission queue to retry
    /// ([`crate::AdmissionQueue`]) — the rejection is provisional.
    pub verdict: RoundVerdict,
}

/// Config fingerprint the cached skeleton depends on; a mismatch forces a
/// rebuild (weights are baked into objective coefficients, the policies
/// into the row structure).
#[derive(Debug, Clone, PartialEq)]
struct CacheSig {
    weights: ObjectiveWeights,
    relay_policy: RelayPolicy,
    acyclicity: AcyclicityMode,
    replan: bool,
    reduction: bool,
    reuse: bool,
}

impl CacheSig {
    fn of(config: &PlannerConfig) -> Self {
        CacheSig {
            weights: config.weights,
            relay_policy: config.relay_policy,
            acyclicity: config.acyclicity,
            replan: config.replan,
            reduction: config.reduction,
            reuse: config.reuse,
        }
    }
}

/// The persistent model skeleton: grows by appending columns/rows per
/// submission, so LP bases stay transferable between solves.
struct ModelCache {
    model: PlanningModel,
    /// Cumulative plan space the skeleton covers.
    space: PlanSpace,
    /// Cumulative availability cuts applied to the skeleton.
    cuts: Vec<AvailabilityCut>,
    sig: CacheSig,
    /// Which query contributed which plan space — the liveness input of
    /// skeleton compaction (a query that is no longer admitted is dead,
    /// and so are skeleton columns only *it* needed).
    query_log: Vec<(QueryId, PlanSpace)>,
}

/// Solver state carried across submissions: the cached skeleton, the
/// previous root-LP basis (the `(basis, incumbent)` pair of warm-started
/// incremental re-planning; the incumbent side is reconstructed from the
/// deployment each round, which survives model growth by construction),
/// and the cached compressed-LP lowering shared by the skeleton's branch &
/// bound constructions (see [`sqpr_milp::LpCacheSlot`]).
#[derive(Default)]
struct SolverContext {
    cache: Option<ModelCache>,
    root_basis: Option<ModelBasis>,
    lp_cache: LpCacheSlot,
}

/// Counters describing how the incremental machinery behaved over the
/// planner's lifetime (never reset by context invalidation). These make
/// silent degradations observable: a `reuse_solver_context = true` planner
/// whose configuration cannot actually be extended incrementally
/// (`replan = false`) shows up as `config_fallback_rounds` instead of
/// quietly building cold models.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Planning rounds served by the persistent solver context.
    pub incremental_rounds: usize,
    /// Rounds built cold because `reuse_solver_context` is disabled.
    pub cold_rounds: usize,
    /// Rounds where context reuse was requested but the configuration
    /// forced a cold fresh build (frozen re-planning, `replan = false`;
    /// the `ProducersOnly` relay ablation extends incrementally since its
    /// relay rows joined the keyed row registries).
    pub config_fallback_rounds: usize,
    /// Skeleton compactions (column GC of dead queries' plan spaces).
    pub compactions: usize,
    /// Dead skeleton columns dropped by compactions, cumulative.
    pub compacted_columns: usize,
}

/// A planning round preempted at its node deadline with the search still
/// open: the suspended branch & bound plus everything needed to resume and
/// decode it later. The model is a *clone* of what the round solved — the
/// planner's live skeleton may be extended by other submissions while this
/// round is parked, and the suspended search's `x` vector indexes the
/// model it was built from.
pub struct PreemptedRound {
    pub(crate) query: QueryId,
    pub(crate) streams: Vec<StreamId>,
    pub(crate) model: PlanningModel,
    pub(crate) state: Box<SearchState>,
}

impl PreemptedRound {
    pub fn query(&self) -> QueryId {
        self.query
    }

    /// Branch & bound nodes the parked search has explored so far.
    pub fn nodes_done(&self) -> usize {
        self.state.nodes_done()
    }
}

impl fmt::Debug for PreemptedRound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PreemptedRound")
            .field("query", &self.query)
            .field("streams", &self.streams)
            .field("state", &self.state)
            .finish()
    }
}

/// How one branch & bound construction of a planning round ended.
// `Done` keeps `MilpResult` by value: it is the overwhelmingly common arm
// and the suspended arm is already boxed.
#[allow(clippy::large_enum_variant)]
enum RoundSolve {
    Done(MilpResult),
    Preempted(Box<SearchState>, PreemptCause),
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum PreemptCause {
    /// The round's deterministic node deadline expired
    /// ([`PlannerConfig::round_deadline`]).
    NodeDeadline,
    /// A wall-clock deadline expired (recovery storms; best-effort — the
    /// clock is only observed between quantum slices).
    WallClock,
}

/// Resolution of one resume attempt on a parked round.
// Both arms are transient — consumed immediately by the admission queue —
// so the size skew never sits in a collection.
#[allow(clippy::large_enum_variant)]
pub(crate) enum ResumeOutcome {
    /// The round reached a terminal verdict (proven, or the incumbent was
    /// installed at the deadline).
    Resolved(PlanningOutcome),
    /// The deadline expired again with no admitting incumbent; the round is
    /// handed back, still suspended.
    StillOpen(PreemptedRound),
}

/// Drives one branch & bound construction in `quantum`-node slices through
/// [`solve_preemptible`], suspending strictly between node evaluations.
/// Returns [`RoundSolve::Preempted`] when the node budget (deterministic)
/// or the wall deadline (best-effort) expires with the search still open.
/// `quantum = 0` means unsliced; without a budget or deadline the sliced
/// run completes with bit-identical results to the unsliced one (the
/// `SQPR_NODE_QUANTUM` transparency invariant CI fuzzes).
#[allow(clippy::too_many_arguments)]
fn drive_preemptible(
    milp: &sqpr_milp::Model,
    opts: &MilpOptions,
    warm: MilpWarmStart<'_>,
    filter: Option<IncumbentFilter<'_>>,
    cache: Option<&mut LpCacheSlot>,
    quantum: usize,
    node_budget: Option<usize>,
    wall_deadline: Option<Instant>,
) -> RoundSolve {
    let quantum = if quantum == 0 { usize::MAX } else { quantum };
    // A slice never runs past the node budget, so the deadline is observed
    // exactly (a `Some(0)` budget suspends before the first evaluation).
    let slice = |done: usize| match node_budget {
        Some(b) => quantum.min(b.saturating_sub(done)),
        None => quantum,
    };
    let mut outcome = solve_preemptible(milp, opts, warm, filter, cache, slice(0));
    loop {
        match outcome {
            SolveOutcome::Done(r) => return RoundSolve::Done(r),
            SolveOutcome::Suspended(state) => {
                let done = state.nodes_done();
                if node_budget.is_some_and(|b| done >= b) {
                    return RoundSolve::Preempted(state, PreemptCause::NodeDeadline);
                }
                // sqpr::allow(ambient-nondeterminism): wall-clock admission deadline is part of the SLO surface; timing affects only *when* we preempt, and preempted==uninterrupted results are pinned by the resume suites
                if wall_deadline.is_some_and(|d| Instant::now() >= d) {
                    return RoundSolve::Preempted(state, PreemptCause::WallClock);
                }
                outcome = state.resume(filter, slice(done));
            }
        }
    }
}

/// The SQPR query planner (paper §IV).
pub struct SqprPlanner {
    catalog: Catalog,
    state: DeploymentState,
    config: PlannerConfig,
    next_query: u32,
    outcomes: Vec<PlanningOutcome>,
    queries: Vec<QuerySpec>,
    ctx: SolverContext,
    stats: SolverStats,
    /// The round most recently preempted at its node deadline, awaiting
    /// collection by the admission queue ([`Self::take_preempted_round`]).
    preempt: Option<PreemptedRound>,
    /// Wall-clock deadline the *next* planning rounds must observe between
    /// quantum slices (set by the recovery storm around each replan so a
    /// round cannot overshoot the storm budget by a whole tree).
    wall_deadline: Option<Instant>,
}

impl SqprPlanner {
    pub fn new(catalog: Catalog, config: PlannerConfig) -> Self {
        SqprPlanner {
            catalog,
            state: DeploymentState::new(),
            config,
            next_query: 0,
            outcomes: Vec::new(),
            queries: Vec::new(),
            ctx: SolverContext::default(),
            stats: SolverStats::default(),
            preempt: None,
            wall_deadline: None,
        }
    }

    /// Takes the round the last submission parked at its node deadline (if
    /// any). The caller — normally [`crate::AdmissionQueue`] — becomes
    /// responsible for eventually resolving it; a round left here is
    /// replaced by the next preemption, so collect it promptly.
    pub fn take_preempted_round(&mut self) -> Option<PreemptedRound> {
        self.preempt.take()
    }

    /// Arms (or clears) the wall-clock deadline planning rounds observe
    /// *between quantum slices*: an expired deadline makes the round
    /// finish with its anytime incumbent instead of burning the node
    /// budget. Requires `node_quantum > 0` to have any effect mid-solve,
    /// and is best-effort by nature (the clock is only read at slice
    /// boundaries — determinism-sensitive callers use
    /// [`PlannerConfig::round_deadline`] instead). The recovery storm arms
    /// this around its re-admission rounds.
    pub fn set_wall_deadline(&mut self, deadline: Option<Instant>) {
        self.wall_deadline = deadline;
    }

    /// Lifetime counters of the incremental machinery (see [`SolverStats`]).
    pub fn solver_stats(&self) -> SolverStats {
        self.stats
    }

    /// Counters of the *current* solver context's compressed-LP cache
    /// (reset whenever the context is invalidated).
    pub fn lp_cache_stats(&self) -> CacheStats {
        self.ctx.lp_cache.stats()
    }

    /// Drops the cached model skeleton and root basis. Called on every
    /// mutation the incremental bookkeeping cannot patch (rate updates
    /// change objective/constraint coefficients; removals shrink the
    /// deployment under the skeleton's feet).
    fn invalidate_solver_context(&mut self) {
        self.ctx = SolverContext::default();
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn state(&self) -> &DeploymentState {
        &self.state
    }

    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    pub fn config_mut(&mut self) -> &mut PlannerConfig {
        &mut self.config
    }

    pub fn outcomes(&self) -> &[PlanningOutcome] {
        &self.outcomes
    }

    pub fn queries(&self) -> &[QuerySpec] {
        &self.queries
    }

    pub fn num_admitted(&self) -> usize {
        self.state.num_admitted()
    }

    /// λ-weighted quality of the *current deployment*: admissions minus
    /// network and CPU usage, weighted like the model objective but
    /// computed from the installed state — model-independent, so planners
    /// with different free spaces (warm vs. cold, reduced vs. full) are
    /// directly comparable.
    pub fn deployment_objective(&self) -> f64 {
        let w = self.config.weights;
        let network: f64 = self
            .state
            .flows()
            .iter()
            .map(|&(_, _, s)| self.catalog.stream(s).rate)
            .sum();
        let cpu: f64 = self
            .state
            .placements()
            .iter()
            .map(|&(_, o)| self.catalog.operator(o).cpu_cost)
            .sum();
        w.lambda1 * self.state.num_admitted() as f64 - w.lambda2 * network - w.lambda3 * cpu
    }

    fn reuse_tag(&self, q: QueryId) -> u64 {
        if self.config.reuse {
            0
        } else {
            u64::from(q.0) + 1
        }
    }

    /// Validates a submission's base streams before anything is registered
    /// or mutated, so malformed input is a clean [`PlannerError`] instead
    /// of a panic halfway through catalog interning.
    fn validate_bases(&self, bases: &[StreamId]) -> Result<(), PlannerError> {
        let distinct: BTreeSet<StreamId> = bases.iter().copied().collect();
        if distinct.len() < 2 {
            return Err(PlannerError::TooFewBases {
                distinct: distinct.len(),
            });
        }
        for &s in &distinct {
            if s.index() >= self.catalog.num_streams() {
                return Err(PlannerError::UnknownStream(s));
            }
            if self.catalog.source_host(s).is_none() {
                return Err(PlannerError::NotABaseStream(s));
            }
        }
        Ok(())
    }

    /// Submits one k-way join query over the given base streams.
    pub fn submit(&mut self, bases: &[StreamId]) -> Result<PlanningOutcome, PlannerError> {
        self.validate_bases(bases)?;
        let q = QueryId(self.next_query);
        self.next_query += 1;
        let tag = self.reuse_tag(q);
        let (spec, space) = register_join_query(&mut self.catalog, q, bases, tag);

        // Algorithm 1 line 3: the stream may already be provided.
        if self.state.provider_of(spec.result).is_some() {
            self.state.admit_query(q, spec.result);
            let outcome = short_circuit_outcome(q);
            self.queries.push(spec);
            self.outcomes.push(outcome.clone());
            return Ok(outcome);
        }

        let outcome = self.plan_streams(q, std::slice::from_ref(&spec.result), &space, true);
        if outcome.admitted {
            self.state.admit_query(q, spec.result);
        }
        self.queries.push(spec);
        self.outcomes.push(outcome.clone());
        Ok(outcome)
    }

    /// Submits a batch of queries planned in a single optimisation (paper
    /// Fig. 4(b)): one model whose free space is the union of the batch's
    /// plan spaces, with the budget scaled by the batch size by the caller.
    pub fn submit_batch(
        &mut self,
        batch: &[Vec<StreamId>],
    ) -> Result<Vec<PlanningOutcome>, PlannerError> {
        // Validate the whole batch before registering anything: a rejected
        // batch leaves the planner untouched.
        for bases in batch {
            self.validate_bases(bases)?;
        }
        let mut specs = Vec::new();
        let mut merged = PlanSpace::default();
        let mut new_streams = Vec::new();
        let mut pre_provided = Vec::new();
        for bases in batch {
            let q = QueryId(self.next_query);
            self.next_query += 1;
            let tag = self.reuse_tag(q);
            let (spec, space) = register_join_query(&mut self.catalog, q, bases, tag);
            merged.merge(&space);
            let provided = self.state.provider_of(spec.result).is_some();
            pre_provided.push(provided);
            if !provided {
                new_streams.push(spec.result);
            }
            specs.push(spec);
        }
        new_streams.sort();
        new_streams.dedup();

        let shared = if new_streams.is_empty() {
            None
        } else {
            // Batch rounds are never parked (their members cannot be
            // resumed individually), so they run deadline-free.
            let outcome = self.plan_streams(QueryId(u32::MAX), &new_streams, &merged, false);
            // Batch rounds plan under a sentinel id; log the merged space
            // under each member so skeleton compaction sees them as live
            // while they stay admitted.
            if let Some(cache) = &mut self.ctx.cache {
                for spec in &specs {
                    cache.query_log.push((spec.id, merged.clone()));
                }
            }
            Some(outcome)
        };

        let mut outcomes = Vec::new();
        for (spec, was_provided) in specs.into_iter().zip(pre_provided) {
            let admitted = self.state.provider_of(spec.result).is_some();
            if admitted {
                self.state.admit_query(spec.id, spec.result);
            }
            let mut o = shared
                .clone()
                .unwrap_or_else(|| short_circuit_outcome(spec.id));
            o.query = spec.id;
            o.admitted = admitted;
            o.reused_existing = was_provided;
            self.queries.push(spec);
            self.outcomes.push(o.clone());
            outcomes.push(o);
        }
        Ok(outcomes)
    }

    /// Whether submissions may reuse the persistent solver context.
    /// `replan = false` is the one remaining gated-out configuration: it
    /// freezes variables from a state snapshot, which the skeleton cannot
    /// patch. (`ProducersOnly` relays used to be gated too; their relay
    /// rows now live in a keyed registry that later-added producers join,
    /// so the ablation extends incrementally like the default policy.)
    fn incremental_eligible(&self) -> bool {
        self.config.reuse_solver_context && self.config.replan
    }

    /// Skeleton column GC: when more than `skeleton_gc_threshold` of the
    /// cached skeleton's columns belong to queries that are no longer
    /// admitted (rejected or superseded), rebuild the skeleton from the
    /// *live* plan spaces instead of letting it grow forever. The root
    /// basis is carried across the rebuild by re-mapping it through the
    /// `(host, stream/operator)` keys ([`PlanningModel::remap_basis_from`]),
    /// so the next solve still warm-starts.
    fn maybe_compact_skeleton(&mut self, space: &PlanSpace, new_streams: &[StreamId]) {
        let threshold = self.config.skeleton_gc_threshold;
        let h = self.catalog.num_hosts();
        let Some(cache) = &self.ctx.cache else {
            return;
        };
        // Column weight per skeleton entity: a stream owns h availability
        // columns plus h(h-1) flow columns (plus potentials in Constraints
        // mode, same order); an operator owns h placement columns.
        let stream_cols = h * h;
        let op_cols = h;
        let mut live_streams: BTreeSet<StreamId> = space.streams.iter().copied().collect();
        let mut live_ops: BTreeSet<sqpr_dsps::OperatorId> =
            space.operators.iter().copied().collect();
        for (lq, ls) in &cache.query_log {
            if self.state.admitted().contains_key(lq) {
                live_streams.extend(ls.streams.iter().copied());
                live_ops.extend(ls.operators.iter().copied());
            }
        }
        let dead_streams = cache
            .space
            .streams
            .iter()
            .filter(|s| !live_streams.contains(s))
            .count();
        let dead_ops = cache
            .space
            .operators
            .iter()
            .filter(|o| !live_ops.contains(o))
            .count();
        let dead_cols = dead_streams * stream_cols + dead_ops * op_cols;
        let total_cols =
            cache.space.streams.len() * stream_cols + cache.space.operators.len() * op_cols;
        if total_cols == 0 || (dead_cols as f64) <= threshold * total_cols as f64 {
            return;
        }

        // Rebuild from the live spaces only; cuts on dropped streams go
        // too. The current submission's own space is merged but not logged
        // here — the extend path logs it (once) like any other round.
        let mut live_space = space.clone();
        let mut live_log: Vec<(QueryId, PlanSpace)> = Vec::new();
        for (lq, ls) in &cache.query_log {
            if self.state.admitted().contains_key(lq) {
                live_space.merge(ls);
                live_log.push((*lq, ls.clone()));
            }
        }
        let live_cuts: Vec<AvailabilityCut> = cache
            .cuts
            .iter()
            .filter(|c| live_space.contains_stream(c.stream))
            .cloned()
            .collect();
        let model = self.build_model(&live_space, new_streams, &live_cuts);
        let Some(old) = self.ctx.cache.take() else {
            return;
        };
        self.ctx.root_basis = self
            .ctx
            .root_basis
            .as_ref()
            .map(|b| model.remap_basis_from(&old.model, b));
        self.stats.compactions += 1;
        self.stats.compacted_columns += dead_cols;
        self.ctx.cache = Some(ModelCache {
            model,
            space: live_space,
            cuts: live_cuts,
            sig: old.sig,
            query_log: live_log,
        });
        // The compressed-LP cache indexes the old skeleton's columns.
        self.ctx.lp_cache.invalidate();
    }

    /// Builds a planning model from scratch over the given space (the
    /// cold path, and the incremental path's first round).
    fn build_model(
        &self,
        space: &PlanSpace,
        new_streams: &[StreamId],
        cuts: &[AvailabilityCut],
    ) -> PlanningModel {
        PlanningModel::build(&ModelInputs {
            catalog: &self.catalog,
            state: &self.state,
            space,
            new_streams,
            weights: self.config.weights,
            relay_policy: self.config.relay_policy,
            acyclicity: self.config.acyclicity,
            replan: self.config.replan,
            cuts,
        })
    }

    /// Core planning round: build or extend, warm-start, solve, decode,
    /// install.
    fn plan_streams(
        &mut self,
        q: QueryId,
        new_streams: &[StreamId],
        space: &PlanSpace,
        deadline_bounded: bool,
    ) -> PlanningOutcome {
        // sqpr::allow(ambient-nondeterminism): planning-latency measurement reported in the outcome; never feeds a decision
        let started = Instant::now();
        let full;
        let space = if self.config.reduction {
            space
        } else {
            full = full_space(&self.catalog);
            &full
        };
        let incremental = self.incremental_eligible();
        if incremental {
            self.stats.incremental_rounds += 1;
        } else if self.config.reuse_solver_context {
            // Reuse was requested but the configuration cannot be extended
            // incrementally — make the silent cold fallback observable.
            self.stats.config_fallback_rounds += 1;
        } else {
            self.stats.cold_rounds += 1;
        }
        let sig = CacheSig::of(&self.config);
        if !incremental || self.ctx.cache.as_ref().is_some_and(|c| c.sig != sig) {
            self.ctx = SolverContext::default();
        }
        // Snapshot after the potential context reset: the outcome reports
        // this round's deltas of the (monotone) compressed-LP cache
        // counters. `LpCacheSlot::invalidate` (compaction) keeps them.
        let cache_stats_before = self.ctx.lp_cache.stats();
        if incremental {
            self.maybe_compact_skeleton(space, new_streams);
        }
        // Cutting-plane rounds: in lazy-acyclicity mode the branch & bound
        // rejects acausal incumbents; the cuts they violate are added and
        // the model re-solved so the true optimum is not lost to pruning.
        // (The incremental path accumulates its cuts in the cache instead —
        // they stay valid for every later submission.)
        let mut cuts: Vec<AvailabilityCut> = Vec::new();
        let max_rounds = if self.config.acyclicity == AcyclicityMode::Lazy {
            3
        } else {
            1
        };
        let mut round = 0;
        let mut warm: Option<Vec<f64>> = None;
        let mut admitting_start = false;
        let mut warm_ready = false;
        // Node deadline accounting across cut rounds: the deadline is per
        // *planning round* (submission), not per construction.
        let mut nodes_spent = 0usize;
        loop {
            round += 1;
            let last_round = round >= max_rounds;
            let fresh_model;
            let model: &PlanningModel = if incremental {
                // Build or extend on the *owned* cache (taken out of the
                // context) so no panicking re-borrow is needed afterwards;
                // `Option::insert` hands the final shared borrow back.
                let mut cache = match self.ctx.cache.take() {
                    None => ModelCache {
                        model: self.build_model(space, new_streams, &cuts),
                        space: space.clone(),
                        cuts: cuts.clone(),
                        sig: sig.clone(),
                        query_log: log_entry(q, space),
                    },
                    Some(mut cache) => {
                        if round == 1 {
                            cache.query_log.extend(log_entry(q, space));
                        }
                        cache.space.merge(space);
                        for c in cuts.drain(..) {
                            if !cache.cuts.contains(&c) {
                                cache.cuts.push(c);
                            }
                        }
                        cache.model.extend(&ModelInputs {
                            catalog: &self.catalog,
                            state: &self.state,
                            space: &cache.space,
                            new_streams,
                            weights: self.config.weights,
                            relay_policy: self.config.relay_policy,
                            acyclicity: self.config.acyclicity,
                            replan: self.config.replan,
                            cuts: &cache.cuts,
                        });
                        cache
                            .model
                            .apply_reduction(space, &self.state, &self.catalog);
                        cache
                    }
                };
                // Compression hint for the LP cache: keep recently
                // rejected queries' columns unfolded — they are the
                // re-planning targets, and re-freeing a *folded* column is
                // the one bound change the cache cannot patch. The recency
                // window bounds the compression loss; admitted and
                // current-round-pending logs resolve via the live
                // deployment, so the exempt set shrinks as queries land.
                let window = self.config.lp_keep_rejected_free_window;
                if window > 0 {
                    let start = cache.query_log.len().saturating_sub(window);
                    let rejected = cache.query_log[start..]
                        .iter()
                        .filter(|(lq, _)| !self.state.admitted().contains_key(lq))
                        .map(|(_, sp)| sp);
                    cache.model.set_fold_exemptions(rejected);
                }
                self.ctx.cache = Some(cache);
                match self.ctx.cache.as_ref() {
                    Some(c) => &c.model,
                    // Just assigned; kept panic-free with a cold fallback.
                    None => {
                        fresh_model = self.build_model(space, new_streams, &cuts);
                        &fresh_model
                    }
                }
            } else {
                fresh_model = self.build_model(space, new_streams, &cuts);
                &fresh_model
            };

            // Warm starts: prefer a constructively *admitting* start (greedy,
            // reuse-aware); otherwise fall back to the current deployment
            // (non-admitting but always feasible thanks to IV.9). Computed
            // once per submission: later cut rounds only append availability
            // cut rows, which any causal start satisfies by construction, so
            // the vector (variable-indexed, and cuts add no variables) stays
            // valid verbatim.
            if !warm_ready {
                warm_ready = true;
                if self.config.warm_start {
                    // Note: in the reuse-off ablation batch submissions use a
                    // sentinel query id, so the tag misses the per-query
                    // private streams and construction falls back to the
                    // non-admitting start (graceful degradation; B&B still
                    // searches).
                    let tag = if self.config.reuse {
                        0
                    } else {
                        u64::from(q.0) + 1
                    };
                    let mut cand = self.state.clone();
                    let mut all_ok = true;
                    for &s in new_streams {
                        match greedy_admit(&self.catalog, &cand, s, tag) {
                            Some(next) => cand = next,
                            None => {
                                all_ok = false;
                                break;
                            }
                        }
                    }
                    warm = if all_ok {
                        let w = model.warm_start(&cand, &self.catalog);
                        if let Some(w) = &w {
                            if model.milp.is_feasible(w, 1e-6) {
                                admitting_start = true;
                            }
                        }
                        if admitting_start {
                            w
                        } else {
                            model.warm_start(&self.state, &self.catalog)
                        }
                    } else {
                        model.warm_start(&self.state, &self.catalog)
                    };
                }
                debug_assert!(
                    warm.as_ref()
                        .is_none_or(|w| model.milp.is_feasible(w, 1e-6)),
                    "warm start must be feasible"
                );
            }

            // Big-M acyclicity rows make the relaxations heavily degenerate;
            // the perturbation cuts simplex iteration counts several-fold
            // (on top of the Harris/long-step ratio tests, which attack the
            // same degeneracy from the ratio-test side).
            let lp_opts = sqpr_lp::SimplexOptions {
                perturb: 1e-7,
                ratio_test: self.config.lp_ratio_test,
                pricing: self.config.lp_pricing,
                basis_update: self.config.lp_basis_update,
                ..sqpr_lp::SimplexOptions::default()
            };
            let opts = MilpOptions {
                // With an admitting incumbent, λ1-dominance means the incumbent
                // is within the MIP gap after a handful of nodes; reserve the
                // full budget for the hard case where construction failed
                // (resource-tight systems — exactly the paper's Fig. 6 regime).
                max_nodes: if admitting_start {
                    self.config
                        .budget
                        .max_nodes
                        .min(self.config.improve_nodes.max(1))
                } else {
                    self.config.budget.max_nodes
                },
                time_limit: self.config.budget.wall_clock_ms.map(Duration::from_millis),
                gap_tol: self.config.gap_tol,
                int_tol: 1e-6,
                // Dives are expensive (one LP per fixing); with an admitting
                // incumbent in hand they rarely pay off.
                dive_every: if admitting_start { 0 } else { 16 },
                // Without an admitting start, the only improvement worth
                // finding is an admission (non-admitting results are
                // discarded below — `install` is gated on `admits_any`),
                // and λ1-dominance prices one admission at λ1 minus a
                // bounded resource swing. Pruning everything within half an
                // admission of the incumbent turns rejection proofs from
                // full budget burns into a handful of nodes; admitting
                // solutions beat the incumbent by more than the margin, so
                // admit/reject decisions are untouched. With an admitting
                // start the solve is a placement-quality improvement pass,
                // where sub-λ1 gains are exactly the point — no margin.
                cutoff_margin: if admitting_start {
                    0.0
                } else {
                    0.5 * self.config.weights.lambda1
                },
                presolve: true,
                // In-tree parent-basis reuse is model-local and valid for
                // every config, so it follows the ablation flag directly
                // (not `incremental`): configs that merely fall back to
                // fresh builds (replan=false) keep it, while
                // `reuse_solver_context = false` is the full cold-start
                // path (fresh model, every LP from the slack identity).
                reuse_bases: self.config.reuse_solver_context,
                cross_solve_factors: self.config.lp_cross_solve_factors,
                threads: self.config.lp_threads,
                lp: lp_opts,
            };
            let new_cuts: std::cell::RefCell<Vec<AvailabilityCut>> =
                std::cell::RefCell::new(Vec::new());
            let warm_ctx = MilpWarmStart {
                start: warm.as_deref(),
                // The previous submission's root basis: the skeleton only
                // appended columns/rows since, so it adapts in place.
                root_basis: if incremental {
                    self.ctx.root_basis.as_ref()
                } else {
                    None
                },
            };
            // Every construction is driven through the preemptible solver
            // (the classic entry points are wrappers over it): sliced by
            // `node_quantum`, bounded by the round's remaining node
            // deadline, and observing the recovery storm's wall deadline
            // between slices.
            let node_budget = if deadline_bounded && self.config.node_quantum > 0 {
                self.config
                    .round_deadline
                    .map(|d| d.saturating_sub(nodes_spent))
            } else {
                None
            };
            let solved = {
                let filter_fn = |xsol: &[f64]| {
                    let violated = model.find_acausal_cuts(xsol, &self.state, &self.catalog);
                    if violated.is_empty() {
                        true
                    } else {
                        new_cuts.borrow_mut().extend(violated);
                        false
                    }
                };
                let filter: Option<IncumbentFilter<'_>> =
                    if self.config.acyclicity == AcyclicityMode::Lazy {
                        Some(&filter_fn)
                    } else {
                        None
                    };
                // The compressed LP is served from the context's cache when
                // incremental: later cut rounds append their rows in place
                // and later submissions with an unchanged fixed layout
                // patch only bounds, removing the per-construction
                // skeleton scan.
                let cache = if incremental {
                    Some(&mut self.ctx.lp_cache)
                } else {
                    None
                };
                drive_preemptible(
                    &model.milp,
                    &opts,
                    warm_ctx,
                    filter,
                    cache,
                    self.config.node_quantum,
                    node_budget,
                    self.wall_deadline,
                )
            };
            let mut parked_state: Option<Box<SearchState>> = None;
            let mut deadline_preempt = false;
            let mut preempted = false;
            let result = match solved {
                RoundSolve::Done(r) => r,
                RoundSolve::Preempted(state, cause) => {
                    // The search is still open past its deadline: continue
                    // with the anytime incumbent snapshot (always causal —
                    // the filter gates incumbents). On a node deadline the
                    // suspended search is kept so a non-admitting round can
                    // be parked for the admission queue; a wall-clock
                    // expiry (recovery storm) drops it — recovery has its
                    // own degradation ladder.
                    preempted = true;
                    let snap = state.incumbent_result();
                    if cause == PreemptCause::NodeDeadline {
                        deadline_preempt = true;
                        parked_state = Some(state);
                    }
                    snap
                }
            };
            nodes_spent += result.nodes;
            // If acausal candidates were pruned, the claimed optimum may be
            // wrong: add their cuts and re-solve (unless out of rounds).
            let mut fresh = new_cuts.into_inner();
            match &self.ctx.cache {
                Some(cache) if incremental => fresh.retain(|c| !cache.cuts.contains(c)),
                _ => fresh.retain(|c| !cuts.contains(c)),
            }
            if incremental {
                if result.root_basis.is_some() {
                    self.ctx.root_basis = result.root_basis.clone();
                } else if !preempted {
                    // A preempted snapshot carries no root basis; keep the
                    // previous one rather than cold-starting the next round.
                    self.ctx.root_basis = None;
                }
            }
            if !fresh.is_empty() && !last_round && !preempted {
                cuts.extend(fresh);
                continue;
            }

            let mut admitted = false;
            if let Some(x) = &result.x {
                let admits_any = new_streams.iter().any(|&s| model.admits(x, s));
                if admits_any {
                    // Install the re-planned allocation; keep the old one if the
                    // decoded state is somehow invalid (defensive).
                    let decoded = model.decode(x, &self.state);
                    let mut candidate = self.state.clone();
                    decoded.install(&mut candidate);
                    if candidate.is_valid(&self.catalog) {
                        // Check every previously admitted query is still served
                        // (IV.9 must have enforced this).
                        let all_served = candidate_serves_admitted(&candidate);
                        if all_served {
                            self.state = candidate;
                            admitted = new_streams
                                .iter()
                                .all(|&s| self.state.provider_of(s).is_some());
                        }
                    }
                }
            }

            let verdict = if deadline_preempt {
                if admitted {
                    // Incumbent handoff: the submission is served at the
                    // deadline; optimality is deliberately forfeited and
                    // the suspended search dropped.
                    RoundVerdict::Admitted(Admitted::IncumbentAtDeadline)
                } else {
                    // No admitting incumbent at the deadline: park the
                    // suspended search (with the model its solution vector
                    // indexes) for the admission queue's bounded retries.
                    // The rejection is provisional, not a certificate.
                    // Batch rounds (sentinel id) are never parked — their
                    // members cannot be resumed individually.
                    if q.0 != u32::MAX {
                        if let Some(state) = parked_state.take() {
                            self.preempt = Some(PreemptedRound {
                                query: q,
                                streams: new_streams.to_vec(),
                                model: model.clone(),
                                state,
                            });
                        }
                    }
                    RoundVerdict::Rejected(Rejected::DeadlineNoCertificate)
                }
            } else {
                RoundVerdict::of_result(admitted, result.status)
            };
            return PlanningOutcome {
                query: q,
                admitted,
                reused_existing: false,
                nodes: result.nodes,
                lp_iterations: result.lp_iterations,
                lp_pivots: result.lp_pivots,
                gap: result.gap,
                solve_time: started.elapsed(),
                model_vars: model.num_vars(),
                model_cons: model.num_cons(),
                proved_optimal: result.status == MilpStatus::Optimal,
                status: result.status,
                incremental,
                lp_cache: self.ctx.lp_cache.stats().since(&cache_stats_before),
                verdict,
            };
        }
    }

    /// Grants a parked round more search budget: `budget` further branch &
    /// bound nodes (`None` = run to completion), sliced by `node_quantum`.
    /// On completion the result is decoded against the *parked* model and
    /// installed under the same defensive gates as a live round. At another
    /// deadline expiry the admitting incumbent is installed if there is
    /// one; otherwise the round is handed back still suspended.
    ///
    /// Availability cuts discovered while resuming are *dropped* — the
    /// parked LP cannot take new rows — but the filter still rejects every
    /// acausal incumbent, so admit/reject decisions stay sound; only
    /// placement optimality can degrade (the documented anytime trade).
    pub(crate) fn resume_parked(
        &mut self,
        round: PreemptedRound,
        budget: Option<usize>,
    ) -> ResumeOutcome {
        // sqpr::allow(ambient-nondeterminism): planning-latency measurement reported in the outcome; never feeds a decision
        let started = Instant::now();
        let PreemptedRound {
            query,
            streams,
            model,
            state,
        } = round;
        let base = state.nodes_done();
        let target = budget.map(|b| base.saturating_add(b));
        let quantum = if self.config.node_quantum == 0 {
            usize::MAX
        } else {
            self.config.node_quantum
        };
        let slice = |done: usize| match target {
            Some(t) => quantum.min(t.saturating_sub(done)),
            None => quantum,
        };
        let solved = {
            let filter_fn = |xsol: &[f64]| {
                model
                    .find_acausal_cuts(xsol, &self.state, &self.catalog)
                    .is_empty()
            };
            let filter: Option<IncumbentFilter<'_>> =
                if self.config.acyclicity == AcyclicityMode::Lazy {
                    Some(&filter_fn)
                } else {
                    None
                };
            let mut outcome = state.resume(filter, slice(base));
            loop {
                match outcome {
                    SolveOutcome::Done(r) => break RoundSolve::Done(r),
                    SolveOutcome::Suspended(state) => {
                        let done = state.nodes_done();
                        if target.is_some_and(|t| done >= t) {
                            break RoundSolve::Preempted(state, PreemptCause::NodeDeadline);
                        }
                        // sqpr::allow(ambient-nondeterminism): wall-clock admission deadline is part of the SLO surface; timing affects only *when* we preempt, and preempted==uninterrupted results are pinned by the resume suites
                        if self.wall_deadline.is_some_and(|d| Instant::now() >= d) {
                            break RoundSolve::Preempted(state, PreemptCause::WallClock);
                        }
                        outcome = state.resume(filter, slice(done));
                    }
                }
            }
        };
        let mut parked_state: Option<Box<SearchState>> = None;
        let mut deadline_preempt = false;
        let result = match solved {
            RoundSolve::Done(r) => r,
            RoundSolve::Preempted(state, _) => {
                deadline_preempt = true;
                let snap = state.incumbent_result();
                parked_state = Some(state);
                snap
            }
        };

        let mut admitted = false;
        if let Some(x) = &result.x {
            if streams.iter().any(|&s| model.admits(x, s)) {
                let decoded = model.decode(x, &self.state);
                let mut candidate = self.state.clone();
                decoded.install(&mut candidate);
                if candidate.is_valid(&self.catalog) && candidate_serves_admitted(&candidate) {
                    self.state = candidate;
                    admitted = streams.iter().all(|&s| self.state.provider_of(s).is_some());
                }
            }
        }
        if admitted {
            for &s in &streams {
                if self.state.provider_of(s).is_some() {
                    self.state.admit_query(query, s);
                }
            }
        } else if deadline_preempt {
            if let Some(state) = parked_state.take() {
                return ResumeOutcome::StillOpen(PreemptedRound {
                    query,
                    streams,
                    model,
                    state,
                });
            }
        }

        let verdict = if deadline_preempt {
            debug_assert!(admitted, "non-admitting deadline expiry re-parks above");
            RoundVerdict::Admitted(Admitted::IncumbentAtDeadline)
        } else {
            RoundVerdict::of_result(admitted, result.status)
        };
        ResumeOutcome::Resolved(PlanningOutcome {
            query,
            admitted,
            reused_existing: false,
            nodes: result.nodes,
            lp_iterations: result.lp_iterations,
            lp_pivots: result.lp_pivots,
            gap: result.gap,
            solve_time: started.elapsed(),
            model_vars: model.num_vars(),
            model_cons: model.num_cons(),
            proved_optimal: result.status == MilpStatus::Optimal,
            status: result.status,
            incremental: false,
            lp_cache: CacheStats::default(),
            verdict,
        })
    }

    /// Updates a base stream's observed rate (propagating to derived
    /// streams and operator costs; see §IV-B). Rates are baked into the
    /// skeleton's coefficients, so the solver context is invalidated.
    pub fn update_base_rate(&mut self, s: StreamId, rate: f64) {
        self.catalog.update_base_rate(s, rate);
        self.invalidate_solver_context();
    }

    /// Registers a mirrored base stream at `host` (used by the hierarchical
    /// planner to model cross-site feeds arriving at a site gateway).
    pub fn register_mirrored_base(
        &mut self,
        host: sqpr_dsps::HostId,
        rate: f64,
        source_tag: u64,
    ) -> StreamId {
        self.catalog.add_base_stream(host, rate, source_tag)
    }

    /// Removes a query; garbage-collects allocation pieces that no longer
    /// serve anything (used by adaptive re-planning, §IV-B).
    ///
    /// The solver context survives the removal when every model column the
    /// query contributed is currently *bound-fixed* (outside the active
    /// plan space): the next extension's demand-kind lifecycle relaxes the
    /// stream's IV.9 equality, `apply_reduction` re-fixes the vacated
    /// columns at their new (empty) deployment values, and the residual
    /// refresh re-credits the freed capacity — all bound patches the
    /// compressed-LP cache absorbs in place, so a failure storm's
    /// remove/re-admit churn does not cold-start the cache. If any of the
    /// query's columns are still free (it was planned in the latest round
    /// and nothing re-fixed them yet), the context is invalidated as
    /// before.
    pub fn remove_query(&mut self, q: QueryId) -> bool {
        let Some(stream) = self.state.remove_query(q) else {
            return false;
        };
        // Other queries may demand the same stream.
        let still_needed = self.state.admitted().values().any(|&s| s == stream);
        if !still_needed {
            self.state.clear_provided(stream);
            garbage_collect(&mut self.state, &self.catalog);
        }
        if !self.context_survives_removal(q) {
            self.invalidate_solver_context();
        }
        true
    }

    /// Whether the cached skeleton can absorb the removal of `q` with
    /// bound patches alone: every column of each of the query's logged
    /// plan spaces must be bound-fixed. A query with no log entries (it
    /// short-circuited onto an existing provider) contributed no columns
    /// of its own, so the context trivially survives.
    fn context_survives_removal(&self, q: QueryId) -> bool {
        let Some(cache) = &self.ctx.cache else {
            return false;
        };
        cache
            .query_log
            .iter()
            .filter(|(lq, _)| *lq == q)
            .all(|(_, sp)| cache.model.space_is_bound_fixed(sp))
    }

    // ----- fault model & recovery ---------------------------------------

    /// Fails a host: its capacities and every link touching it drop to
    /// zero. The solver context is *kept* — capacities live in row bounds
    /// that every extension refreshes from the catalog, so the next round
    /// patches the cached LP in place instead of rebuilding. Call
    /// [`Self::absorb_failures`] afterwards to audit and shed the
    /// displaced allocations. Returns false if the host was already down.
    pub fn fail_host(&mut self, h: HostId) -> bool {
        self.catalog.fail_host(h)
    }

    /// Restores a previously failed host to its configured capacities.
    pub fn restore_host(&mut self, h: HostId) -> bool {
        self.catalog.restore_host(h)
    }

    /// Degrades the directed link `h -> m` to the given effective capacity.
    pub fn degrade_link(&mut self, h: HostId, m: HostId, capacity: f64) {
        self.catalog.degrade_link(h, m, capacity);
    }

    /// Restores the directed link `h -> m` to its configured capacity.
    pub fn restore_link(&mut self, h: HostId, m: HostId) {
        self.catalog.restore_link(h, m);
    }

    /// Reconnects base streams orphaned by host failures to surviving
    /// ingest hosts ([`Catalog::rehome_orphaned_sources`]). Availability
    /// grants live in row bounds the next extension refreshes, so the
    /// moves ride the warm patch path like the failures themselves.
    pub fn rehome_orphaned_sources(&mut self) -> Vec<(StreamId, HostId, HostId)> {
        self.catalog.rehome_orphaned_sources()
    }

    /// Audits the deployment against the current fault set, installs the
    /// surviving allocation and garbage-collects orphaned pieces. The
    /// returned audit lists the displaced queries (ascending id) — the
    /// re-admission order of a recovery storm ([`crate::recovery`]).
    ///
    /// Like [`Self::remove_query`] on the bound-fixed path, this keeps the
    /// solver context: the shrink is absorbed by the next extension's
    /// demand/residual/pin refreshes and `apply_reduction`'s re-fixing, so
    /// storm rounds stay on the warm patch path. Queries whose columns are
    /// still free in the skeleton force an invalidation (same rule as
    /// removal).
    pub fn absorb_failures(&mut self) -> FailureAudit {
        let audit = self.state.audit_failures(&self.catalog);
        let survives = audit
            .displaced
            .iter()
            .all(|&q| self.context_survives_removal(q));
        self.state = audit.survivor.clone();
        garbage_collect(&mut self.state, &self.catalog);
        if !survives {
            self.invalidate_solver_context();
        }
        audit
    }

    /// Constructive fallback admission for one already-registered query:
    /// the greedy baseline placement (no solver). Used by the recovery
    /// storm when its budget runs dry — a degraded-but-served placement
    /// beats dropping the query. Returns the outcome, or an error if `q`
    /// was never submitted.
    pub fn admit_greedy(&mut self, q: QueryId) -> Result<bool, PlannerError> {
        let spec = self
            .queries
            .iter()
            .find(|s| s.id == q)
            .ok_or(PlannerError::UnknownQuery(q))?;
        let result = spec.result;
        if self.state.provider_of(result).is_some() {
            self.state.admit_query(q, result);
            return Ok(true);
        }
        let tag = self.reuse_tag(q);
        match greedy_admit(&self.catalog, &self.state, result, tag) {
            Some(next) => {
                self.state = next;
                self.state.admit_query(q, result);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Re-registers and re-plans an existing query (remove + re-add).
    /// Returns the new outcome.
    pub fn replan_query(&mut self, q: QueryId) -> Result<PlanningOutcome, PlannerError> {
        let spec = self
            .queries
            .iter()
            .find(|s| s.id == q)
            .cloned()
            .ok_or(PlannerError::UnknownQuery(q))?;
        self.remove_query(q);
        let bases: Vec<StreamId> = spec.bases.iter().copied().collect();
        let tag = self.reuse_tag(q);
        let (spec2, space) = register_join_query(&mut self.catalog, q, &bases, tag);
        if self.state.provider_of(spec2.result).is_some() {
            self.state.admit_query(q, spec2.result);
            return Ok(short_circuit_outcome(q));
        }
        // Replans (adaptation, recovery, retries) run deadline-free: the
        // admission SLO covers fresh submissions; internal re-planning has
        // its own budgets (`StormBudget`, drift thresholds) and must never
        // leave a parked round behind the admission queue's back.
        let outcome = self.plan_streams(q, &[spec2.result], &space, false);
        if outcome.admitted {
            self.state.admit_query(q, spec2.result);
        }
        Ok(outcome)
    }
}

/// Outcome of a round that never reached the solver: the result stream was
/// already provided (Algorithm 1, line 3) or an equivalent short-circuit.
fn short_circuit_outcome(q: QueryId) -> PlanningOutcome {
    PlanningOutcome {
        query: q,
        admitted: true,
        reused_existing: true,
        nodes: 0,
        lp_iterations: 0,
        lp_pivots: PivotCounts::default(),
        gap: 0.0,
        solve_time: Duration::ZERO,
        model_vars: 0,
        model_cons: 0,
        proved_optimal: true,
        status: MilpStatus::Optimal,
        incremental: false,
        lp_cache: CacheStats::default(),
        verdict: RoundVerdict::Admitted(Admitted::Proven),
    }
}

/// Query-log entry for the skeleton's liveness bookkeeping; batch rounds
/// use a sentinel id and are logged per member by [`SqprPlanner::submit_batch`].
fn log_entry(q: QueryId, space: &PlanSpace) -> Vec<(QueryId, PlanSpace)> {
    if q.0 == u32::MAX {
        Vec::new()
    } else {
        vec![(q, space.clone())]
    }
}

fn candidate_serves_admitted(state: &DeploymentState) -> bool {
    state
        .admitted()
        .values()
        .all(|s| state.provider_of(*s).is_some())
}

/// Drops flows, placements and availability entries that no longer serve a
/// provided stream (conservative backward reachability).
pub fn garbage_collect(state: &mut DeploymentState, catalog: &Catalog) {
    use sqpr_dsps::{HostId, OperatorId};
    let mut needed_streams: BTreeSet<(HostId, StreamId)> = BTreeSet::new();
    let mut needed_ops: BTreeSet<(HostId, OperatorId)> = BTreeSet::new();
    let mut queue: Vec<(HostId, StreamId)> =
        state.provided().iter().map(|(&s, &h)| (h, s)).collect();
    while let Some((h, s)) = queue.pop() {
        if !needed_streams.insert((h, s)) {
            continue;
        }
        // Keep every mechanism currently delivering (h, s).
        for &(g, m, fs) in state.flows() {
            if m == h && fs == s {
                queue.push((g, s));
            }
        }
        for &(ph, o) in state.placements() {
            if ph == h && catalog.operator(o).output == s {
                needed_ops.insert((ph, o));
                for &inp in &catalog.operator(o).inputs {
                    queue.push((h, inp));
                }
            }
        }
    }
    let flows: BTreeSet<_> = state
        .flows()
        .iter()
        .copied()
        .filter(|&(_, m, s)| needed_streams.contains(&(m, s)))
        .collect();
    let placements: BTreeSet<_> = state
        .placements()
        .iter()
        .copied()
        .filter(|k| needed_ops.contains(k))
        .collect();
    let available: BTreeSet<_> = state
        .available()
        .iter()
        .copied()
        .filter(|k| needed_streams.contains(k))
        .collect();
    let provided = state.provided().clone();
    state.replace_allocation(provided, flows, available, placements);
}
