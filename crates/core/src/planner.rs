//! The SQPR planner: Algorithm 1 (initial query planning).
//!
//! One `submit` call per arriving query: register the query's plan space,
//! short-circuit if its result stream is already provided (line 3 of
//! Algorithm 1), otherwise build the reduced MILP with constraint IV.9,
//! warm-start from the current deployment (which guarantees admitted
//! queries survive any timeout), solve under the configured budget, and
//! install the best incumbent if it admits the query.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use sqpr_dsps::{Catalog, DeploymentState, QueryId, StreamId};
use sqpr_milp::{solve_filtered, solve_with_start, MilpOptions, MilpStatus};

use crate::config::{AcyclicityMode, PlannerConfig};
use crate::greedy::greedy_admit;
use crate::model::{AvailabilityCut, ModelInputs, PlanningModel};
use crate::query::{full_space, register_join_query, PlanSpace, QuerySpec};

/// Result of one planning round.
#[derive(Debug, Clone)]
pub struct PlanningOutcome {
    pub query: QueryId,
    pub admitted: bool,
    /// True when the query was satisfied by an existing provision without
    /// solving (Algorithm 1, line 3).
    pub reused_existing: bool,
    /// Branch & bound nodes explored.
    pub nodes: usize,
    /// Total LP simplex iterations.
    pub lp_iterations: usize,
    /// Relative MIP gap of the final incumbent (∞ if none).
    pub gap: f64,
    /// Wall-clock planning time.
    pub solve_time: Duration,
    /// Model size actually solved (0 when short-circuited).
    pub model_vars: usize,
    pub model_cons: usize,
    /// The solver proved optimality (vs. stopping on the budget).
    pub proved_optimal: bool,
}

/// The SQPR query planner (paper §IV).
pub struct SqprPlanner {
    catalog: Catalog,
    state: DeploymentState,
    config: PlannerConfig,
    next_query: u32,
    outcomes: Vec<PlanningOutcome>,
    queries: Vec<QuerySpec>,
}

impl SqprPlanner {
    pub fn new(catalog: Catalog, config: PlannerConfig) -> Self {
        SqprPlanner {
            catalog,
            state: DeploymentState::new(),
            config,
            next_query: 0,
            outcomes: Vec::new(),
            queries: Vec::new(),
        }
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn state(&self) -> &DeploymentState {
        &self.state
    }

    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    pub fn config_mut(&mut self) -> &mut PlannerConfig {
        &mut self.config
    }

    pub fn outcomes(&self) -> &[PlanningOutcome] {
        &self.outcomes
    }

    pub fn queries(&self) -> &[QuerySpec] {
        &self.queries
    }

    pub fn num_admitted(&self) -> usize {
        self.state.num_admitted()
    }

    fn reuse_tag(&self, q: QueryId) -> u64 {
        if self.config.reuse {
            0
        } else {
            u64::from(q.0) + 1
        }
    }

    /// Submits one k-way join query over the given base streams.
    pub fn submit(&mut self, bases: &[StreamId]) -> PlanningOutcome {
        let q = QueryId(self.next_query);
        self.next_query += 1;
        let tag = self.reuse_tag(q);
        let (spec, space) = register_join_query(&mut self.catalog, q, bases, tag);

        // Algorithm 1 line 3: the stream may already be provided.
        if self.state.provider_of(spec.result).is_some() {
            self.state.admit_query(q, spec.result);
            let outcome = PlanningOutcome {
                query: q,
                admitted: true,
                reused_existing: true,
                nodes: 0,
                lp_iterations: 0,
                gap: 0.0,
                solve_time: Duration::ZERO,
                model_vars: 0,
                model_cons: 0,
                proved_optimal: true,
            };
            self.queries.push(spec);
            self.outcomes.push(outcome.clone());
            return outcome;
        }

        let outcome = self.plan_streams(q, std::slice::from_ref(&spec.result), &space);
        if outcome.admitted {
            self.state.admit_query(q, spec.result);
        }
        self.queries.push(spec);
        self.outcomes.push(outcome.clone());
        outcome
    }

    /// Submits a batch of queries planned in a single optimisation (paper
    /// Fig. 4(b)): one model whose free space is the union of the batch's
    /// plan spaces, with the budget scaled by the batch size by the caller.
    pub fn submit_batch(&mut self, batch: &[Vec<StreamId>]) -> Vec<PlanningOutcome> {
        let mut specs = Vec::new();
        let mut merged = PlanSpace::default();
        let mut new_streams = Vec::new();
        let mut pre_provided = Vec::new();
        for bases in batch {
            let q = QueryId(self.next_query);
            self.next_query += 1;
            let tag = self.reuse_tag(q);
            let (spec, space) = register_join_query(&mut self.catalog, q, bases, tag);
            merged.merge(&space);
            let provided = self.state.provider_of(spec.result).is_some();
            pre_provided.push(provided);
            if !provided {
                new_streams.push(spec.result);
            }
            specs.push(spec);
        }
        new_streams.sort();
        new_streams.dedup();

        let shared = if new_streams.is_empty() {
            None
        } else {
            Some(self.plan_streams(QueryId(u32::MAX), &new_streams, &merged))
        };

        let mut outcomes = Vec::new();
        for (spec, was_provided) in specs.into_iter().zip(pre_provided) {
            let admitted = self.state.provider_of(spec.result).is_some();
            if admitted {
                self.state.admit_query(spec.id, spec.result);
            }
            let mut o = shared.clone().unwrap_or(PlanningOutcome {
                query: spec.id,
                admitted,
                reused_existing: true,
                nodes: 0,
                lp_iterations: 0,
                gap: 0.0,
                solve_time: Duration::ZERO,
                model_vars: 0,
                model_cons: 0,
                proved_optimal: true,
            });
            o.query = spec.id;
            o.admitted = admitted;
            o.reused_existing = was_provided;
            self.queries.push(spec);
            self.outcomes.push(o.clone());
            outcomes.push(o);
        }
        outcomes
    }

    /// Core planning round: build, warm-start, solve, decode, install.
    fn plan_streams(
        &mut self,
        q: QueryId,
        new_streams: &[StreamId],
        space: &PlanSpace,
    ) -> PlanningOutcome {
        let started = Instant::now();
        let full;
        let space = if self.config.reduction {
            space
        } else {
            full = full_space(&self.catalog);
            &full
        };
        // Cutting-plane rounds: in lazy-acyclicity mode the branch & bound
        // rejects acausal incumbents; the cuts they violate are added and
        // the model re-solved so the true optimum is not lost to pruning.
        let mut cuts: Vec<AvailabilityCut> = Vec::new();
        let max_rounds = if self.config.acyclicity == AcyclicityMode::Lazy {
            3
        } else {
            1
        };
        let mut round = 0;
        loop {
            round += 1;
            let last_round = round >= max_rounds;
            let model = PlanningModel::build(&ModelInputs {
                catalog: &self.catalog,
                state: &self.state,
                space,
                new_streams,
                weights: self.config.weights,
                relay_policy: self.config.relay_policy,
                acyclicity: self.config.acyclicity,
                replan: self.config.replan,
                cuts: &cuts,
            });

            // Warm starts: prefer a constructively *admitting* start (greedy,
            // reuse-aware); otherwise fall back to the current deployment
            // (non-admitting but always feasible thanks to IV.9).
            let mut admitting_start = false;
            let warm = if self.config.warm_start {
                // Note: in the reuse-off ablation batch submissions use a
                // sentinel query id, so the tag misses the per-query private
                // streams and construction falls back to the non-admitting
                // start (graceful degradation; B&B still searches).
                let tag = if self.config.reuse {
                    0
                } else {
                    u64::from(q.0) + 1
                };
                let mut cand = self.state.clone();
                let mut all_ok = true;
                for &s in new_streams {
                    match greedy_admit(&self.catalog, &cand, s, tag) {
                        Some(next) => cand = next,
                        None => {
                            all_ok = false;
                            break;
                        }
                    }
                }
                if all_ok {
                    let w = model.warm_start(&cand, &self.catalog);
                    if let Some(w) = &w {
                        if model.milp.is_feasible(w, 1e-6) {
                            admitting_start = true;
                        }
                    }
                    if admitting_start {
                        w
                    } else {
                        model.warm_start(&self.state, &self.catalog)
                    }
                } else {
                    model.warm_start(&self.state, &self.catalog)
                }
            } else {
                None
            };
            debug_assert!(
                warm.as_ref()
                    .is_none_or(|w| model.milp.is_feasible(w, 1e-6)),
                "warm start must be feasible"
            );

            let mut lp_opts = sqpr_lp::SimplexOptions::default();
            // Big-M acyclicity rows make the relaxations heavily degenerate;
            // the perturbation cuts simplex iteration counts several-fold.
            lp_opts.perturb = 1e-7;
            let opts = MilpOptions {
                // With an admitting incumbent, λ1-dominance means the incumbent
                // is within the MIP gap after a handful of nodes; reserve the
                // full budget for the hard case where construction failed
                // (resource-tight systems — exactly the paper's Fig. 6 regime).
                max_nodes: if admitting_start {
                    self.config
                        .budget
                        .max_nodes
                        .min(self.config.improve_nodes.max(1))
                } else {
                    self.config.budget.max_nodes
                },
                time_limit: self.config.budget.wall_clock_ms.map(Duration::from_millis),
                gap_tol: self.config.gap_tol,
                int_tol: 1e-6,
                // Dives are expensive (one LP per fixing); with an admitting
                // incumbent in hand they rarely pay off.
                dive_every: if admitting_start { 0 } else { 16 },
                presolve: true,
                lp: lp_opts,
            };
            let new_cuts: std::cell::RefCell<Vec<AvailabilityCut>> =
                std::cell::RefCell::new(Vec::new());
            let result = if self.config.acyclicity == AcyclicityMode::Lazy {
                let filter = |xsol: &[f64]| {
                    let violated = model.find_acausal_cuts(xsol, &self.state, &self.catalog);
                    if violated.is_empty() {
                        true
                    } else {
                        new_cuts.borrow_mut().extend(violated);
                        false
                    }
                };
                solve_filtered(&model.milp, &opts, warm.as_deref(), &filter)
            } else {
                solve_with_start(&model.milp, &opts, warm.as_deref())
            };
            // If acausal candidates were pruned, the claimed optimum may be
            // wrong: add their cuts and re-solve (unless out of rounds).
            let mut fresh = new_cuts.into_inner();
            fresh.retain(|c| !cuts.contains(c));
            if !fresh.is_empty() && !last_round {
                cuts.extend(fresh);
                continue;
            }

            let mut admitted = false;
            if let Some(x) = &result.x {
                let admits_any = new_streams.iter().any(|&s| model.admits(x, s));
                if admits_any {
                    // Install the re-planned allocation; keep the old one if the
                    // decoded state is somehow invalid (defensive).
                    let decoded = model.decode(x, &self.state);
                    let mut candidate = self.state.clone();
                    decoded.install(&mut candidate);
                    if candidate.is_valid(&self.catalog) {
                        // Check every previously admitted query is still served
                        // (IV.9 must have enforced this).
                        let all_served = candidate_serves_admitted(&candidate);
                        if all_served {
                            self.state = candidate;
                            admitted = new_streams
                                .iter()
                                .all(|&s| self.state.provider_of(s).is_some());
                        }
                    }
                }
            }

            return PlanningOutcome {
                query: q,
                admitted,
                reused_existing: false,
                nodes: result.nodes,
                lp_iterations: result.lp_iterations,
                gap: result.gap,
                solve_time: started.elapsed(),
                model_vars: model.num_vars(),
                model_cons: model.num_cons(),
                proved_optimal: result.status == MilpStatus::Optimal,
            };
        }
    }

    /// Updates a base stream's observed rate (propagating to derived
    /// streams and operator costs; see §IV-B).
    pub fn update_base_rate(&mut self, s: StreamId, rate: f64) {
        self.catalog.update_base_rate(s, rate);
    }

    /// Registers a mirrored base stream at `host` (used by the hierarchical
    /// planner to model cross-site feeds arriving at a site gateway).
    pub fn register_mirrored_base(
        &mut self,
        host: sqpr_dsps::HostId,
        rate: f64,
        source_tag: u64,
    ) -> StreamId {
        self.catalog.add_base_stream(host, rate, source_tag)
    }

    /// Removes a query; garbage-collects allocation pieces that no longer
    /// serve anything (used by adaptive re-planning, §IV-B).
    pub fn remove_query(&mut self, q: QueryId) -> bool {
        let Some(stream) = self.state.remove_query(q) else {
            return false;
        };
        // Other queries may demand the same stream.
        let still_needed = self.state.admitted().values().any(|&s| s == stream);
        if !still_needed {
            self.state.clear_provided(stream);
            garbage_collect(&mut self.state, &self.catalog);
        }
        true
    }

    /// Re-registers and re-plans an existing query (remove + re-add).
    /// Returns the new outcome.
    pub fn replan_query(&mut self, q: QueryId) -> Option<PlanningOutcome> {
        let spec = self.queries.iter().find(|s| s.id == q)?.clone();
        self.remove_query(q);
        let bases: Vec<StreamId> = spec.bases.iter().copied().collect();
        let tag = self.reuse_tag(q);
        let (spec2, space) = register_join_query(&mut self.catalog, q, &bases, tag);
        if self.state.provider_of(spec2.result).is_some() {
            self.state.admit_query(q, spec2.result);
            return Some(PlanningOutcome {
                query: q,
                admitted: true,
                reused_existing: true,
                nodes: 0,
                lp_iterations: 0,
                gap: 0.0,
                solve_time: Duration::ZERO,
                model_vars: 0,
                model_cons: 0,
                proved_optimal: true,
            });
        }
        let outcome = self.plan_streams(q, &[spec2.result], &space);
        if outcome.admitted {
            self.state.admit_query(q, spec2.result);
        }
        Some(outcome)
    }
}

fn candidate_serves_admitted(state: &DeploymentState) -> bool {
    state
        .admitted()
        .values()
        .all(|s| state.provider_of(*s).is_some())
}

/// Drops flows, placements and availability entries that no longer serve a
/// provided stream (conservative backward reachability).
pub fn garbage_collect(state: &mut DeploymentState, catalog: &Catalog) {
    use sqpr_dsps::{HostId, OperatorId};
    let mut needed_streams: BTreeSet<(HostId, StreamId)> = BTreeSet::new();
    let mut needed_ops: BTreeSet<(HostId, OperatorId)> = BTreeSet::new();
    let mut queue: Vec<(HostId, StreamId)> =
        state.provided().iter().map(|(&s, &h)| (h, s)).collect();
    while let Some((h, s)) = queue.pop() {
        if !needed_streams.insert((h, s)) {
            continue;
        }
        // Keep every mechanism currently delivering (h, s).
        for &(g, m, fs) in state.flows() {
            if m == h && fs == s {
                queue.push((g, s));
            }
        }
        for &(ph, o) in state.placements() {
            if ph == h && catalog.operator(o).output == s {
                needed_ops.insert((ph, o));
                for &inp in &catalog.operator(o).inputs {
                    queue.push((h, inp));
                }
            }
        }
    }
    let flows: BTreeSet<_> = state
        .flows()
        .iter()
        .copied()
        .filter(|&(_, m, s)| needed_streams.contains(&(m, s)))
        .collect();
    let placements: BTreeSet<_> = state
        .placements()
        .iter()
        .copied()
        .filter(|k| needed_ops.contains(k))
        .collect();
    let available: BTreeSet<_> = state
        .available()
        .iter()
        .copied()
        .filter(|k| needed_streams.contains(k))
        .collect();
    let provided = state.provided().clone();
    state.replace_allocation(provided, flows, available, placements);
}
