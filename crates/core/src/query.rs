//! Query registration and plan-space computation (paper §IV-A).
//!
//! A submitted query is a k-way join over base streams. Registering it
//! interns *every* abstract join tree into the catalog: all join-result
//! streams over subsets of the base set, and all binary join operators that
//! can produce them. The MILP then chooses which operators to actually run —
//! this is how SQPR "dynamically changes the query plan" (§V-B) instead of
//! being locked to one user template like SODA.
//!
//! `S(q)` (streams that can appear in plans for `q`) and `O(q)` (operators
//! that can appear) are exactly the interned sets plus the base streams;
//! the §IV-A problem reduction fixes every variable outside them.

use std::collections::BTreeSet;

use sqpr_dsps::{Catalog, OperatorId, QueryId, StreamId};

/// A registered query: its base-stream set and the interned result stream.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    pub id: QueryId,
    pub bases: BTreeSet<StreamId>,
    /// The demanded (result) stream — shared across queries over the same
    /// base set when reuse is on.
    pub result: StreamId,
}

/// The plan space of a query: `S(q)` and `O(q)`.
#[derive(Debug, Clone, Default)]
pub struct PlanSpace {
    pub streams: Vec<StreamId>,
    pub operators: Vec<OperatorId>,
}

impl PlanSpace {
    pub fn contains_stream(&self, s: StreamId) -> bool {
        self.streams.contains(&s)
    }

    pub fn contains_operator(&self, o: OperatorId) -> bool {
        self.operators.contains(&o)
    }

    /// Merges another plan space in (used for batched submission, Fig 4b).
    /// Exhaustively destructured so a newly added plan-space component is a
    /// compile error here, not a silently unmerged field.
    pub fn merge(&mut self, other: &PlanSpace) {
        let PlanSpace { streams, operators } = other;
        for &s in streams {
            if !self.streams.contains(&s) {
                self.streams.push(s);
            }
        }
        for &o in operators {
            if !self.operators.contains(&o) {
                self.operators.push(o);
            }
        }
    }
}

/// Registers a k-way join query: interns all subset streams and all binary
/// join operators over them. With `reuse_tag = 0` equivalent sub-queries
/// unify across queries; a nonzero tag creates a private copy (reuse-off
/// ablation).
///
/// Returns the query spec and its plan space.
///
/// # Panics
/// Panics if `bases` has fewer than 2 streams or contains composites.
pub fn register_join_query(
    catalog: &mut Catalog,
    id: QueryId,
    bases: &[StreamId],
    reuse_tag: u64,
) -> (QuerySpec, PlanSpace) {
    let base_set: BTreeSet<StreamId> = bases.iter().copied().collect();
    assert!(base_set.len() >= 2, "a join query needs >= 2 base streams");

    let mut space = PlanSpace::default();
    space.streams.extend(base_set.iter().copied());

    // Enumerate all subsets of size >= 2 in increasing-size order so that
    // operator inputs are already interned when needed.
    let base_vec: Vec<StreamId> = base_set.iter().copied().collect();
    let k = base_vec.len();
    let mut subsets_by_size: Vec<Vec<u32>> = vec![Vec::new(); k + 1];
    for mask in 1u32..(1 << k) {
        let size = mask.count_ones() as usize;
        if size >= 2 {
            subsets_by_size[size].push(mask);
        }
    }

    // Stream id per subset mask (masks of size 1 map to the base stream).
    let stream_of_mask = |catalog: &mut Catalog, mask: u32| -> StreamId {
        if mask.count_ones() == 1 {
            base_vec[mask.trailing_zeros() as usize]
        } else {
            let subset: BTreeSet<StreamId> = (0..k)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| base_vec[i])
                .collect();
            catalog.intern_join_stream_tagged(&subset, reuse_tag)
        }
    };

    for size_masks in subsets_by_size.iter().skip(2) {
        for &mask in size_masks {
            let out = stream_of_mask(catalog, mask);
            if !space.streams.contains(&out) {
                space.streams.push(out);
            }
            // All binary partitions of `mask` into two non-empty halves.
            // Iterate proper non-empty submasks; take each unordered pair
            // once by requiring the submask to contain the lowest set bit.
            let low = mask & mask.wrapping_neg();
            let mut sub = (mask - 1) & mask;
            while sub != 0 {
                if sub & low != 0 {
                    let left = stream_of_mask(catalog, sub);
                    let right = stream_of_mask(catalog, mask ^ sub);
                    let op = catalog.intern_join_operator_tagged(left, right, reuse_tag);
                    if !space.operators.contains(&op) {
                        space.operators.push(op);
                    }
                }
                sub = (sub - 1) & mask;
            }
        }
    }

    let result = stream_of_mask(catalog, (1 << k) - 1);
    (
        QuerySpec {
            id,
            bases: base_set,
            result,
        },
        space,
    )
}

/// The full catalog as a plan space (reduction-off ablation).
pub fn full_space(catalog: &Catalog) -> PlanSpace {
    PlanSpace {
        streams: catalog.streams().map(|s| s.id).collect(),
        operators: catalog.operators().map(|o| o.id).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqpr_dsps::{CostModel, HostId, HostSpec};

    fn catalog() -> (Catalog, Vec<StreamId>) {
        let mut c = Catalog::uniform(2, HostSpec::new(100.0, 100.0), 1000.0, CostModel::default());
        let bases: Vec<StreamId> = (0..5)
            .map(|i| c.add_base_stream(HostId((i % 2) as u32), 10.0, i as u64))
            .collect();
        (c, bases)
    }

    #[test]
    fn two_way_join_space() {
        let (mut c, b) = catalog();
        let (q, space) = register_join_query(&mut c, QueryId(0), &[b[0], b[1]], 0);
        // Streams: 2 bases + 1 join; operators: 1.
        assert_eq!(space.streams.len(), 3);
        assert_eq!(space.operators.len(), 1);
        assert!(space.contains_stream(q.result));
    }

    #[test]
    fn four_way_join_space_counts() {
        let (mut c, b) = catalog();
        let (_, space) = register_join_query(&mut c, QueryId(0), &b[..4], 0);
        // Composite streams: C(4,2)+C(4,3)+C(4,4) = 6+4+1 = 11; plus 4 bases.
        assert_eq!(space.streams.len(), 15);
        // Operators: 6*1 + 4*3 + 1*7 = 25.
        assert_eq!(space.operators.len(), 25);
    }

    #[test]
    fn overlapping_queries_share_plan_space() {
        let (mut c, b) = catalog();
        let (q1, s1) = register_join_query(&mut c, QueryId(0), &[b[0], b[1], b[2]], 0);
        let (q2, s2) = register_join_query(&mut c, QueryId(1), &[b[0], b[1], b[3]], 0);
        assert_ne!(q1.result, q2.result);
        // The {b0, b1} sub-join is shared.
        let shared: Vec<_> = s1
            .operators
            .iter()
            .filter(|o| s2.operators.contains(o))
            .collect();
        assert!(!shared.is_empty(), "sub-join must be shared");
    }

    #[test]
    fn identical_queries_share_result() {
        let (mut c, b) = catalog();
        let (q1, _) = register_join_query(&mut c, QueryId(0), &[b[0], b[1]], 0);
        let (q2, _) = register_join_query(&mut c, QueryId(1), &[b[1], b[0]], 0);
        assert_eq!(q1.result, q2.result, "commuted joins unify");
    }

    #[test]
    fn reuse_off_creates_private_copies() {
        let (mut c, b) = catalog();
        let (q1, _) = register_join_query(&mut c, QueryId(0), &[b[0], b[1]], 1);
        let (q2, _) = register_join_query(&mut c, QueryId(1), &[b[0], b[1]], 2);
        assert_ne!(q1.result, q2.result, "private tags must not unify");
    }

    #[test]
    fn merge_unions_spaces() {
        let (mut c, b) = catalog();
        let (_, mut s1) = register_join_query(&mut c, QueryId(0), &[b[0], b[1]], 0);
        let (_, s2) = register_join_query(&mut c, QueryId(1), &[b[2], b[3]], 0);
        let n1 = s1.streams.len();
        s1.merge(&s2);
        assert_eq!(s1.streams.len(), n1 + 3); // 2 new bases + 1 new join
        let before = s1.streams.len();
        s1.merge(&s2); // idempotent
        assert_eq!(s1.streams.len(), before);
    }

    #[test]
    #[should_panic(expected = ">= 2 base streams")]
    fn rejects_single_stream_queries() {
        let (mut c, b) = catalog();
        register_join_query(&mut c, QueryId(0), &[b[0]], 0);
    }
}
