//! Failure-storm recovery: mass re-admission with graceful degradation.
//!
//! A federated DSPS loses hosts and links as a matter of course; every
//! failure displaces the queries deployed on them and forces re-planning.
//! This module drives the *re-admission storm* that follows: orphaned
//! base-stream feeds reconnect to surviving ingest hosts
//! ([`SqprPlanner::rehome_orphaned_sources`]), the planner audits the
//! fault ([`SqprPlanner::absorb_failures`]), and
//! [`recover_from_failures`] re-enters the displaced queries into
//! admission in ascending query-id order — each round riding the warm
//! [`SqprPlanner::replan_query`] path, where the surviving skeleton's
//! capacity rows were already patched in place from the post-fault
//! catalog.
//!
//! The storm runs under a storm-wide budget ([`StormBudget`]: cumulative
//! branch & bound nodes and/or wall clock). **Graceful degradation** is a
//! ladder: once the budget runs dry — or the solver rejects a query
//! within budget (resource-tight post-fault systems) — the query first
//! gets the greedy baseline placement ([`SqprPlanner::admit_greedy`],
//! capacity-respecting, installed into the managed deployment); if even
//! that cannot fit, it is *pinned best-effort* to the surviving host with
//! the most remaining CPU (oversubscribing it — the query runs at reduced
//! QoS outside the optimiser-managed deployment, which stays valid). Both
//! rungs report [`RecoveryMode::Degraded`]; a pin also records its host
//! in [`QueryRecovery::degraded_host`]. [`RecoveryMode::Dropped`] is
//! reached only when no host survives to pin to; a [`StormReport`]
//! accounts for every displaced query, so nothing is dropped silently.
//!
//! Determinism: with a node-only budget the storm is a pure function of
//! the planner state and fault set — replaying it (any `SQPR_LP_THREADS`
//! setting) reproduces decisions bit-for-bit. A wall-clock budget
//! necessarily breaks that; benches asserting determinism use nodes only.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use sqpr_dsps::{HostId, QueryId, StreamId};
use sqpr_milp::MilpStatus;

use crate::planner::{PlanningOutcome, SqprPlanner};

/// How one displaced query came back (or did not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryMode {
    /// Re-admitted by the solver through the warm re-planning path.
    Replanned,
    /// Served at reduced quality: the greedy baseline placement, or — when
    /// no capacity-respecting placement exists — a best-effort pin to the
    /// least-loaded surviving host ([`QueryRecovery::degraded_host`]).
    Degraded,
    /// Not served: no host survives to run it, even oversubscribed.
    Dropped,
}

/// Storm-wide recovery budget. `None` fields are unlimited.
#[derive(Debug, Clone, Copy, Default)]
pub struct StormBudget {
    /// Cumulative branch & bound nodes across the storm's solver rounds
    /// (the deterministic budget).
    pub max_nodes: Option<usize>,
    /// Wall-clock limit for the whole storm (nondeterministic; benches
    /// asserting bit-identical decisions leave this `None`).
    pub wall_clock: Option<Duration>,
}

impl StormBudget {
    /// Node-budgeted storm (deterministic).
    pub fn nodes(max_nodes: usize) -> Self {
        StormBudget {
            max_nodes: Some(max_nodes),
            wall_clock: None,
        }
    }

    /// Unlimited storm: every displaced query gets a full solver round.
    pub fn unlimited() -> Self {
        StormBudget::default()
    }
}

/// Per-query record of one storm round.
#[derive(Debug, Clone)]
pub struct QueryRecovery {
    pub query: QueryId,
    pub mode: RecoveryMode,
    /// Solver status of the query's round: the planning outcome's status
    /// when the solver ran, `Unknown` when the round was budget-skipped
    /// straight to the fallback. Distinguishes budget-limited rounds from
    /// proven ones.
    pub status: MilpStatus,
    /// The solver outcome, when a solver round ran.
    pub outcome: Option<PlanningOutcome>,
    /// Set when the query was pinned best-effort (mode `Degraded`, bottom
    /// rung): the surviving host it runs on, oversubscribed, outside the
    /// optimiser-managed deployment.
    pub degraded_host: Option<HostId>,
}

/// Full account of one recovery storm: every displaced query appears in
/// `recoveries` exactly once — there is no silent-drop path.
#[derive(Debug, Clone)]
pub struct StormReport {
    /// Hosts down during the storm (ascending).
    pub failed_hosts: Vec<HostId>,
    /// Base-stream feeds reconnected to surviving ingest hosts before
    /// re-admission, as `(stream, from, to)`.
    pub rehomed: Vec<(StreamId, HostId, HostId)>,
    /// Placements lost to the fault (pre-recovery).
    pub lost_placements: usize,
    /// Flows lost to the fault (pre-recovery).
    pub lost_flows: usize,
    /// One record per displaced query, in re-admission (ascending id)
    /// order.
    pub recoveries: Vec<QueryRecovery>,
    /// Branch & bound nodes spent by the storm's solver rounds.
    pub nodes_spent: usize,
    /// Wall-clock time of the whole storm (audit + re-admission).
    pub elapsed: Duration,
}

impl StormReport {
    /// Queries re-admitted through the solver.
    pub fn replanned(&self) -> usize {
        self.count(RecoveryMode::Replanned)
    }

    /// Queries served by the greedy fallback.
    pub fn degraded(&self) -> usize {
        self.count(RecoveryMode::Degraded)
    }

    /// Queries that could not be served at all.
    pub fn dropped(&self) -> usize {
        self.count(RecoveryMode::Dropped)
    }

    /// Fraction of displaced queries that ended `Degraded` (0 when none
    /// were displaced).
    pub fn degraded_fraction(&self) -> f64 {
        if self.recoveries.is_empty() {
            0.0
        } else {
            self.degraded() as f64 / self.recoveries.len() as f64
        }
    }

    fn count(&self, mode: RecoveryMode) -> usize {
        self.recoveries.iter().filter(|r| r.mode == mode).count()
    }
}

/// Audits the current fault set and re-admits every displaced query under
/// the storm budget (see the module docs for the degradation order).
pub fn recover_from_failures(planner: &mut SqprPlanner, budget: &StormBudget) -> StormReport {
    // sqpr::allow(ambient-nondeterminism): storm-budget wall clock bounds recovery *effort*; the degradation ladder's verdicts are pinned by the scenario goldens
    let started = Instant::now();
    // Reconnect orphaned feeds first: a query whose raw source died is
    // unservable by solver and greedy alike until the feed has a living
    // ingest host again.
    let rehomed = planner.rehome_orphaned_sources();
    let audit = planner.absorb_failures();
    let mut report = StormReport {
        failed_hosts: audit.failed_hosts.clone(),
        rehomed,
        lost_placements: audit.lost_placements,
        lost_flows: audit.lost_flows,
        recoveries: Vec::with_capacity(audit.displaced.len()),
        nodes_spent: 0,
        elapsed: Duration::ZERO,
    };

    // Arm the wall clock on the planner itself, not just between rounds:
    // each round's branch & bound observes the deadline *between quantum
    // slices* ([`crate::PlannerConfig::node_quantum`]) and finishes with
    // its anytime incumbent on expiry, so a single tree can no longer
    // overshoot the whole storm budget. With `node_quantum = 0` rounds are
    // uninterruptible and the check degrades to the old between-rounds
    // behaviour.
    planner.set_wall_deadline(budget.wall_clock.map(|w| started + w));
    let mut pins: BTreeMap<HostId, f64> = BTreeMap::new();
    for &q in &audit.displaced {
        let nodes_dry = budget.max_nodes.is_some_and(|n| report.nodes_spent >= n);
        let clock_dry = budget.wall_clock.is_some_and(|w| started.elapsed() >= w);
        let record = if nodes_dry || clock_dry {
            // Budget dry: straight to the degradation ladder.
            degrade(planner, &mut pins, q, MilpStatus::Unknown, None)
        } else {
            match planner.replan_query(q) {
                Ok(outcome) => {
                    // A node-deadline config may have parked the round's
                    // suspended search; the storm has its own degradation
                    // ladder, so the parked state is discarded rather than
                    // left for an admission queue that is not driving us.
                    planner.take_preempted_round();
                    report.nodes_spent += outcome.nodes;
                    if outcome.admitted {
                        QueryRecovery {
                            query: q,
                            mode: RecoveryMode::Replanned,
                            status: outcome.status,
                            outcome: Some(outcome),
                            degraded_host: None,
                        }
                    } else {
                        // Rejected within budget: degrade, keep the status.
                        let status = outcome.status;
                        degrade(planner, &mut pins, q, status, Some(outcome))
                    }
                }
                // The query vanished from the registry (cannot happen for
                // audited displacements; defensive) — record, don't panic.
                Err(_) => QueryRecovery {
                    query: q,
                    mode: RecoveryMode::Dropped,
                    status: MilpStatus::Unknown,
                    outcome: None,
                    degraded_host: None,
                },
            }
        };
        report.recoveries.push(record);
    }
    planner.set_wall_deadline(None);
    report.elapsed = started.elapsed();
    report
}

/// The degradation ladder below the solver: greedy baseline placement
/// first (capacity-respecting, installed into the deployment), then a
/// best-effort pin to the least-loaded surviving host (oversubscribed,
/// recorded in the report only), and `Dropped` solely when no host
/// survives.
fn degrade(
    planner: &mut SqprPlanner,
    pins: &mut BTreeMap<HostId, f64>,
    q: QueryId,
    status: MilpStatus,
    outcome: Option<PlanningOutcome>,
) -> QueryRecovery {
    if planner.admit_greedy(q).unwrap_or(false) {
        return QueryRecovery {
            query: q,
            mode: RecoveryMode::Degraded,
            status,
            outcome,
            degraded_host: None,
        };
    }
    match best_effort_host(planner, pins) {
        Some(h) => {
            *pins.entry(h).or_insert(0.0) += pin_weight(planner, q);
            QueryRecovery {
                query: q,
                mode: RecoveryMode::Degraded,
                status,
                outcome,
                degraded_host: Some(h),
            }
        }
        None => QueryRecovery {
            query: q,
            mode: RecoveryMode::Dropped,
            status,
            outcome,
            degraded_host: None,
        },
    }
}

/// The surviving host with the most remaining CPU, counting earlier pins
/// at their queries' estimated load; ties break to the lowest host id
/// (deterministic).
fn best_effort_host(planner: &SqprPlanner, pins: &BTreeMap<HostId, f64>) -> Option<HostId> {
    let catalog = planner.catalog();
    let usage = planner.state().cpu_usage(catalog);
    catalog
        .hosts()
        .filter(|&h| !catalog.is_host_failed(h))
        .map(|h| {
            let pinned = pins.get(&h).copied().unwrap_or(0.0);
            (h, catalog.host(h).cpu_capacity - usage[h.index()] - pinned)
        })
        .max_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| b.0.cmp(&a.0))
        })
        .map(|(h, _)| h)
}

/// Estimated load of a pinned query: its result stream's rate — a crude
/// but deterministic proxy that keeps successive pins spreading across
/// survivors instead of dogpiling one host.
fn pin_weight(planner: &SqprPlanner, q: QueryId) -> f64 {
    planner
        .queries()
        .iter()
        .find(|spec| spec.id == q)
        .map(|spec| planner.catalog().stream(spec.result).rate.max(1e-9))
        .unwrap_or(1.0)
}
