//! Tests for §IV-B adaptive re-planning: criterion (a) (rate drift beyond
//! a relative threshold), criterion (b) (resource shortage sweep), the
//! `AdaptReport` accounting identity, and the `DriftMonitor` trigger that
//! guards the solver context against sub-threshold noise.

use sqpr_core::{adapt_to_observed_rates, DriftMonitor, PlannerConfig, SqprPlanner};
use sqpr_dsps::{Catalog, CostModel, HostId, HostSpec, StreamId};

/// `n` hosts with the given capacities; `k` base streams spread
/// round-robin, all at rate 10.
fn system(
    n_hosts: usize,
    n_bases: usize,
    cpu: f64,
    bw: f64,
    link: f64,
) -> (Catalog, Vec<StreamId>) {
    let mut c = Catalog::uniform(n_hosts, HostSpec::new(cpu, bw), link, CostModel::default());
    let bases = (0..n_bases)
        .map(|i| c.add_base_stream(HostId((i % n_hosts) as u32), 10.0, i as u64))
        .collect();
    (c, bases)
}

fn planner(c: Catalog) -> SqprPlanner {
    let mut cfg = PlannerConfig::new(&c);
    cfg.budget.max_nodes = 200;
    cfg.budget.wall_clock_ms = Some(10_000);
    SqprPlanner::new(c, cfg)
}

// ---------------------------------------------------------------- criterion (a)

#[test]
fn criterion_a_replans_only_queries_on_drifted_bases() {
    let (c, b) = system(3, 4, 1000.0, 1000.0, 10_000.0);
    let mut p = planner(c);
    let q01 = p.submit(&[b[0], b[1]]).expect("valid").query;
    let q23 = p.submit(&[b[2], b[3]]).expect("valid").query;
    assert_eq!(p.num_admitted(), 2);

    // b0 doubles (100% > 25% threshold); b2 nudges by 1% (below it). Both
    // rates must be applied to the catalog, but only the q01 query sits on
    // a drifted base.
    let report = adapt_to_observed_rates(&mut p, &[(b[0], 20.0), (b[2], 10.1)], 0.25);

    assert_eq!(report.drifted_streams, vec![b[0]]);
    assert_eq!(report.replanned, vec![q01]);
    assert_eq!(report.readmitted, vec![q01]);
    assert!(report.dropped.is_empty());
    assert!(
        !report.replanned.contains(&q23),
        "q23's bases did not drift"
    );
    // Sub-threshold observations still refresh the assumed rates.
    assert_eq!(p.catalog().stream(b[0]).rate, 20.0);
    assert_eq!(p.catalog().stream(b[2]).rate, 10.1);
    assert!(p.state().is_valid(p.catalog()));
}

#[test]
fn sub_threshold_drift_is_a_noop_report_but_rates_update() {
    let (c, b) = system(2, 2, 1000.0, 1000.0, 10_000.0);
    let mut p = planner(c);
    p.submit(&[b[0], b[1]]).expect("valid");

    let report = adapt_to_observed_rates(&mut p, &[(b[0], 10.5), (b[1], 9.6)], 0.25);

    assert!(report.drifted_streams.is_empty());
    assert!(report.replanned.is_empty());
    assert!(report.readmitted.is_empty());
    assert!(report.dropped.is_empty());
    assert_eq!(p.catalog().stream(b[0]).rate, 10.5);
    assert_eq!(p.catalog().stream(b[1]).rate, 9.6);
    assert_eq!(p.num_admitted(), 1);
}

#[test]
fn drift_on_unadmitted_query_bases_selects_nothing() {
    let (c, b) = system(2, 3, 1000.0, 1000.0, 10_000.0);
    let mut p = planner(c);
    let q = p.submit(&[b[0], b[1]]).expect("valid").query;
    assert!(p.remove_query(q), "fresh query removes cleanly");

    // b0 drifts hard, but the only query on it is gone.
    let report = adapt_to_observed_rates(&mut p, &[(b[0], 100.0)], 0.25);
    assert_eq!(report.drifted_streams, vec![b[0]]);
    assert!(report.replanned.is_empty(), "no admitted query is affected");
}

// ---------------------------------------------------------------- criterion (b)

#[test]
fn criterion_b_sweeps_on_shortage_even_without_threshold_drift() {
    // Tight hosts: each 25-CPU host fits exactly one cost-20 join at the
    // initial rates; then one base rate rises enough to oversubscribe its
    // host. An enormous threshold keeps criterion (a) silent, so only the
    // shortage sweep can react.
    let (c, b) = system(2, 4, 25.0, 10_000.0, 10_000.0);
    let mut p = planner(c);
    assert!(p.submit(&[b[0], b[1]]).expect("valid").admitted);
    assert!(p.submit(&[b[2], b[3]]).expect("valid").admitted);
    assert!(p.state().is_valid(p.catalog()));

    let report = adapt_to_observed_rates(&mut p, &[(b[0], 24.0)], 1e9);

    assert!(
        report.drifted_streams.is_empty(),
        "threshold 1e9 must mute criterion (a): {report:?}"
    );
    assert!(
        !report.replanned.is_empty(),
        "shortage must trigger the criterion-(b) sweep: {report:?}"
    );
    assert_eq!(
        report.replanned.len(),
        report.readmitted.len() + report.dropped.len(),
        "accounting identity broke: {report:?}"
    );
    assert!(
        p.state().is_valid(p.catalog()),
        "after the sweep the deployment is feasible again: {:?}",
        p.state().validate(p.catalog())
    );
}

#[test]
fn adapt_report_accounting_identity_holds_even_with_drops() {
    // The rate explosion makes every query infeasible: criterion (a)
    // selects them all and every re-plan fails. The report must still
    // balance: replanned == readmitted + dropped, disjointly.
    let (c, b) = system(2, 4, 70.0, 10_000.0, 10_000.0);
    let mut p = planner(c);
    assert!(p.submit(&[b[0], b[1]]).expect("valid").admitted);
    assert!(p.submit(&[b[2], b[3]]).expect("valid").admitted);

    let observed: Vec<(StreamId, f64)> = b.iter().map(|&s| (s, 500.0)).collect();
    let report = adapt_to_observed_rates(&mut p, &observed, 0.25);

    assert_eq!(report.drifted_streams, b);
    assert_eq!(
        report.replanned.len(),
        report.readmitted.len() + report.dropped.len(),
        "accounting identity broke: {report:?}"
    );
    for q in &report.readmitted {
        assert!(report.replanned.contains(q));
        assert!(
            !report.dropped.contains(q),
            "readmitted and dropped overlap"
        );
    }
    for q in &report.dropped {
        assert!(report.replanned.contains(q));
        assert!(
            !p.state().admitted().contains_key(q),
            "dropped query {q} still admitted"
        );
    }
    assert!(!report.dropped.is_empty(), "500x rates must drop something");
    assert_eq!(
        p.num_admitted(),
        2 - report.dropped.len(),
        "planner admission count tracks the drops"
    );
}

// ---------------------------------------------------------------- DriftMonitor

#[test]
fn monitor_stays_silent_within_threshold_and_touches_nothing() {
    let (c, b) = system(2, 2, 1000.0, 1000.0, 10_000.0);
    let mut p = planner(c);
    p.submit(&[b[0], b[1]]).expect("valid");

    let mut mon = DriftMonitor::new(8, 2);
    mon.observe_all(&[(b[0], 10.4), (b[0], 10.6), (b[1], 9.7), (b[1], 9.9)]);
    assert_eq!(mon.drifted(&p, 0.25), vec![]);

    assert!(mon.adapt_if_drifted(&mut p, 0.25).is_none());
    // Quiet interval: the planner's assumed rates are untouched and the
    // sketches keep accumulating (a later sample can still tip them).
    assert_eq!(p.catalog().stream(b[0]).rate, 10.0);
    assert_eq!(p.catalog().stream(b[1]).rate, 10.0);
    assert_eq!(mon.estimates().len(), 2);
}

#[test]
fn monitor_triggers_on_drift_applies_medians_and_clears() {
    let (c, b) = system(2, 2, 1000.0, 1000.0, 10_000.0);
    let mut p = planner(c);
    let q = p.submit(&[b[0], b[1]]).expect("valid").query;

    let mut mon = DriftMonitor::new(8, 3);
    // b0's window median is 30 (3x the assumed 10); b1 hovers at ~10.
    mon.observe_all(&[(b[0], 28.0), (b[0], 30.0), (b[0], 31.0)]);
    mon.observe_all(&[(b[1], 9.8), (b[1], 10.2), (b[1], 10.1)]);
    assert_eq!(mon.drifted(&p, 0.5), vec![b[0]]);

    let report = mon.adapt_if_drifted(&mut p, 0.5).expect("b0 drifted 3x");
    assert_eq!(report.drifted_streams, vec![b[0]]);
    assert_eq!(report.replanned, vec![q]);
    assert_eq!(report.readmitted, vec![q]);
    // Both estimates were pushed through: the window medians become the
    // planner's new assumed rates — including the sub-threshold stream.
    assert_eq!(p.catalog().stream(b[0]).rate, 30.0);
    assert_eq!(p.catalog().stream(b[1]).rate, 10.1);
    // Sketches cleared for the next interval: a second call is silent.
    assert!(mon.estimates().is_empty());
    assert!(mon.adapt_if_drifted(&mut p, 0.5).is_none());
}

#[test]
fn monitor_respects_min_samples() {
    let (c, b) = system(2, 2, 1000.0, 1000.0, 10_000.0);
    let mut p = planner(c);
    p.submit(&[b[0], b[1]]).expect("valid");

    let mut mon = DriftMonitor::new(8, 3);
    mon.observe(b[0], 50.0);
    mon.observe(b[0], 50.0);
    // Two loud samples, but min_samples = 3: the estimate doesn't count
    // yet, so no drift is reported and no adaptation fires.
    assert!(mon.estimates().is_empty());
    assert!(mon.drifted(&p, 0.25).is_empty());
    assert!(mon.adapt_if_drifted(&mut p, 0.25).is_none());
    assert_eq!(p.catalog().stream(b[0]).rate, 10.0);

    mon.observe(b[0], 50.0);
    assert_eq!(mon.estimates(), vec![(b[0], 50.0)]);
    assert_eq!(mon.drifted(&p, 0.25), vec![b[0]]);
}

#[test]
fn monitor_window_median_ignores_a_single_spike() {
    let (c, b) = system(2, 2, 1000.0, 1000.0, 10_000.0);
    let mut p = planner(c);
    p.submit(&[b[0], b[1]]).expect("valid");

    let mut mon = DriftMonitor::new(5, 3);
    // Four on-target samples and one wild spike: the median shrugs it off.
    mon.observe_all(&[
        (b[0], 10.1),
        (b[0], 9.9),
        (b[0], 400.0),
        (b[0], 10.0),
        (b[0], 10.2),
    ]);
    assert_eq!(mon.estimates(), vec![(b[0], 10.1)]);
    assert!(mon.adapt_if_drifted(&mut p, 0.25).is_none());
}
