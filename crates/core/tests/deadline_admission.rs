//! The deadline-bounded admission layer, end to end:
//!
//! - **Quantum transparency**: slicing every solve into `node_quantum`
//!   preemptible pieces (no deadline) must be invisible — identical
//!   admit/reject sequences, tree sizes, simplex work and deployment
//!   objective bits at every quantum and thread setting. This is the
//!   invariant CI's `deadline-fuzz` job sweeps over the scenario corpus.
//! - **Anytime verdicts + the admission queue**: under a tight
//!   `round_deadline` every preempted submission is either served at the
//!   deadline (incumbent handoff) or parked and later resolved by the
//!   queue — never silently dropped — and a drained system converges to
//!   the same admit set as the deadline-free run.
//! - **Wall-clock preemption**: an expired wall deadline stops a round at
//!   the next node boundary (the storm-budget fix).

use std::time::{Duration, Instant};

use sqpr_core::{AdmissionQueue, Admitted, PlannerConfig, Rejected, RoundVerdict, SqprPlanner};
use sqpr_dsps::{Catalog, CostModel, HostId, HostSpec, QueryId, StreamId};

fn system(
    n_hosts: usize,
    n_bases: usize,
    cpu: f64,
    bw: f64,
    link: f64,
) -> (Catalog, Vec<StreamId>) {
    let mut c = Catalog::uniform(n_hosts, HostSpec::new(cpu, bw), link, CostModel::default());
    let bases = (0..n_bases)
        .map(|i| c.add_base_stream(HostId((i % n_hosts) as u32), 10.0, i as u64))
        .collect();
    (c, bases)
}

/// A tight-ish workload with both admissions and rejections (same shape as
/// the thread-equivalence suite).
fn submissions() -> Vec<Vec<usize>> {
    vec![
        vec![0, 1],
        vec![1, 2, 3],
        vec![2, 3],
        vec![0, 2, 4],
        vec![3, 4, 5],
        vec![1, 3],
        vec![0, 4],
        vec![2, 4, 5],
        vec![1, 4],
        vec![0, 3, 5],
    ]
}

fn run_planner(node_quantum: usize, lp_threads: usize) -> SqprPlanner {
    let (c, b) = system(4, 6, 45.0, 40.0, 400.0);
    let mut cfg = PlannerConfig::new(&c);
    cfg.budget.max_nodes = 200;
    cfg.lp_threads = lp_threads;
    cfg.node_quantum = node_quantum;
    let mut planner = SqprPlanner::new(c, cfg);
    for q in &submissions() {
        let streams: Vec<_> = q.iter().map(|&i| b[i]).collect();
        planner.submit(&streams).expect("valid bases");
    }
    planner
}

#[test]
fn node_quantum_is_transparent() {
    let base = run_planner(0, 1);
    assert!(
        base.outcomes().iter().any(|o| o.admitted) && base.outcomes().iter().any(|o| !o.admitted),
        "workload must exercise both decisions"
    );
    // Aggressive quanta (1 = suspend at every node boundary) and the
    // parallel pool must all reproduce the unsliced run exactly.
    for (quantum, threads) in [(1usize, 1usize), (3, 1), (7, 1), (1, 0), (5, 0)] {
        let p = run_planner(quantum, threads);
        assert_eq!(base.outcomes().len(), p.outcomes().len());
        for (i, (a, b)) in base.outcomes().iter().zip(p.outcomes()).enumerate() {
            let ctx = format!("round {i}, quantum {quantum}, threads {threads}");
            assert_eq!(a.admitted, b.admitted, "{ctx}: admit/reject diverged");
            assert_eq!(a.nodes, b.nodes, "{ctx}: tree size diverged");
            assert_eq!(
                a.lp_iterations, b.lp_iterations,
                "{ctx}: simplex work diverged"
            );
            assert_eq!(a.lp_pivots, b.lp_pivots, "{ctx}: pivot breakdown diverged");
            assert_eq!(a.verdict, b.verdict, "{ctx}: verdict diverged");
        }
        assert_eq!(
            base.deployment_objective().to_bits(),
            p.deployment_objective().to_bits(),
            "objective bits diverged at quantum {quantum}, threads {threads}"
        );
    }
}

#[test]
fn verdicts_certify_completed_rounds() {
    let p = run_planner(0, 1);
    for o in p.outcomes() {
        match o.verdict {
            RoundVerdict::Admitted(Admitted::Proven) => {
                assert!(o.admitted && o.proved_optimal)
            }
            RoundVerdict::Admitted(Admitted::IncumbentAtDeadline) => {
                assert!(o.admitted && !o.proved_optimal)
            }
            RoundVerdict::Rejected(Rejected::Proven) => assert!(!o.admitted),
            RoundVerdict::Rejected(Rejected::DeadlineNoCertificate) => {
                assert!(!o.admitted && !o.proved_optimal)
            }
        }
    }
}

/// Tight deadlines: submissions preempt mid-search, park in the queue, and
/// after pumping + draining every one has a terminal verdict, the queue is
/// empty, and the admit set matches the deadline-free run.
#[test]
fn deadline_storm_drains_to_the_deadline_free_admit_set() {
    let free = run_planner(0, 1);
    let admitted_free: Vec<QueryId> = free
        .outcomes()
        .iter()
        .filter(|o| o.admitted)
        .map(|o| o.query)
        .collect();

    let (c, b) = system(4, 6, 45.0, 40.0, 400.0);
    let mut cfg = PlannerConfig::new(&c);
    cfg.budget.max_nodes = 200;
    cfg.lp_threads = 1;
    cfg.node_quantum = 1;
    cfg.round_deadline = Some(2); // far below typical rejection trees
    let mut planner = SqprPlanner::new(c, cfg);
    let mut queue = AdmissionQueue::new();

    let mut provisional = 0usize;
    for q in &submissions() {
        let streams: Vec<_> = q.iter().map(|&i| b[i]).collect();
        let out = queue.submit(&mut planner, &streams).expect("valid bases");
        if out.verdict == RoundVerdict::Rejected(Rejected::DeadlineNoCertificate) {
            provisional += 1;
        }
    }
    assert!(
        provisional > 0,
        "deadline of 2 nodes preempted nothing; the test is vacuous"
    );
    assert!(queue.parked() > 0, "no submission was parked");

    // Quiet period: pump until the retry/backoff machinery settles, then
    // drain whatever the ladder deferred.
    for _ in 0..32 {
        queue.pump(&mut planner);
    }
    queue.drain(&mut planner);
    assert_eq!(queue.parked(), 0, "drain left submissions parked");

    // Zero silent drops: every submission has exactly one terminal record.
    let subs = submissions().len();
    assert_eq!(queue.records().len(), subs);
    let mut seen: Vec<u32> = queue.records().iter().map(|r| r.query.0).collect();
    seen.sort_unstable();
    assert_eq!(seen, (0..subs as u32).collect::<Vec<_>>());

    // The drained system serves the same queries the deadline-free run
    // admitted (possibly at degraded placement quality — that is the
    // documented anytime trade; admission itself must converge).
    let admitted_deadline: Vec<QueryId> = (0..subs as u32)
        .map(QueryId)
        .filter(|q| planner.state().admitted().contains_key(q))
        .collect();
    assert_eq!(
        admitted_free, admitted_deadline,
        "deadline + drain changed the admit set"
    );
    assert!(planner.state().is_valid(planner.catalog()));
}

/// An expired wall deadline stops the round at the first node boundary
/// with an anytime answer — it never parks (recovery owns its own ladder)
/// and never burns the node budget.
#[test]
fn expired_wall_deadline_preempts_at_first_node_boundary() {
    let (c, b) = system(4, 6, 45.0, 40.0, 400.0);
    let mut cfg = PlannerConfig::new(&c);
    cfg.budget.max_nodes = 200;
    cfg.lp_threads = 1;
    cfg.node_quantum = 1;
    let mut planner = SqprPlanner::new(c, cfg);
    planner.set_wall_deadline(Some(Instant::now() - Duration::from_secs(1)));
    let out = planner.submit(&[b[0], b[1], b[2]]).expect("valid bases");
    assert!(
        out.nodes <= 1,
        "wall-preempted round explored {} nodes past the deadline",
        out.nodes
    );
    assert!(
        planner.take_preempted_round().is_none(),
        "wall-clock preemption must not park"
    );
    assert!(planner.state().is_valid(planner.catalog()));
    planner.set_wall_deadline(None);
}
