//! Failure-storm recovery: host faults displace queries; the storm driver
//! must account for every one of them (re-admitted, degraded, or an
//! explicit drop — never a silent loss), stay on the warm solver path
//! where possible, and make bit-identical decisions regardless of the
//! `lp_threads` knob.

use sqpr_core::{
    recover_from_failures, PlannerConfig, RecoveryMode, SolveBudget, SqprPlanner, StormBudget,
};
use sqpr_dsps::{Catalog, CostModel, HostId, HostSpec, StreamId};

fn system(
    n_hosts: usize,
    n_bases: usize,
    cpu: f64,
    bw: f64,
    link: f64,
) -> (Catalog, Vec<StreamId>) {
    let mut c = Catalog::uniform(n_hosts, HostSpec::new(cpu, bw), link, CostModel::default());
    let bases = (0..n_bases)
        .map(|i| c.add_base_stream(HostId((i % n_hosts) as u32), 10.0, i as u64))
        .collect();
    (c, bases)
}

fn planner(c: &Catalog, threads: usize) -> SqprPlanner {
    let mut cfg = PlannerConfig::new(c);
    cfg.budget = SolveBudget::nodes(200);
    cfg.lp_threads = threads;
    SqprPlanner::new(c.clone(), cfg)
}

const SUBMISSIONS: &[&[usize]] = &[
    &[0, 1],
    &[2, 3],
    &[4, 5],
    &[0, 2],
    &[1, 3, 5],
    &[0, 4],
    &[2, 5],
    &[1, 4],
];

fn submit_all(p: &mut SqprPlanner, bases: &[StreamId]) {
    for q in SUBMISSIONS {
        let set: Vec<StreamId> = q.iter().map(|&i| bases[i]).collect();
        p.submit(&set).expect("valid bases");
    }
}

/// A host goes down on a system with plenty of slack: every displaced
/// query must come back through the solver, nothing lands on the dead
/// host, and the report accounts for each displaced query exactly once.
#[test]
fn storm_readmits_every_displaced_query_with_slack() {
    let (c, b) = system(6, 6, 200.0, 200.0, 2000.0);
    let mut p = planner(&c, 1);
    submit_all(&mut p, &b);
    let before = p.num_admitted();
    assert!(before >= SUBMISSIONS.len() - 1, "slack system should admit");

    // Fail a host that carries placements (every host sources a base
    // stream; pick one actually used by the deployment).
    let victim = p
        .state()
        .placements()
        .iter()
        .map(|&(h, _)| h)
        .next()
        .expect("deployment has placements");
    assert!(p.fail_host(victim));

    let report = recover_from_failures(&mut p, &StormBudget::unlimited());
    assert_eq!(report.failed_hosts, vec![victim]);
    assert!(!report.recoveries.is_empty(), "victim carried no queries");
    assert_eq!(report.dropped(), 0, "slack system must not drop");
    assert_eq!(report.degraded(), 0, "slack system must not degrade");
    assert_eq!(report.replanned(), report.recoveries.len());
    assert_eq!(p.num_admitted(), before);

    // No recovered piece may touch the dead host, and the deployment must
    // validate against the post-fault catalog.
    assert!(p.state().placements().iter().all(|&(h, _)| h != victim));
    assert!(p.state().is_valid(p.catalog()));

    // Every displaced query appears exactly once in the report.
    let mut qs: Vec<_> = report.recoveries.iter().map(|r| r.query).collect();
    qs.dedup();
    assert_eq!(qs.len(), report.recoveries.len());
}

/// With the node budget already exhausted, the storm must degrade to the
/// greedy baseline — served, reported, zero solver nodes — never drop
/// silently.
#[test]
fn dry_budget_degrades_instead_of_dropping() {
    let (c, b) = system(6, 6, 200.0, 200.0, 2000.0);
    let mut p = planner(&c, 1);
    submit_all(&mut p, &b);
    let before = p.num_admitted();

    let victim = p
        .state()
        .placements()
        .iter()
        .map(|&(h, _)| h)
        .next()
        .expect("deployment has placements");
    p.fail_host(victim);

    let report = recover_from_failures(&mut p, &StormBudget::nodes(0));
    assert!(!report.recoveries.is_empty());
    assert_eq!(report.nodes_spent, 0, "dry budget must not run the solver");
    assert_eq!(report.dropped(), 0, "greedy fallback must serve the slack");
    assert_eq!(report.degraded(), report.recoveries.len());
    assert!((report.degraded_fraction() - 1.0).abs() < 1e-12);
    assert_eq!(p.num_admitted(), before);
    assert!(p.state().is_valid(p.catalog()));
    assert!(p.state().placements().iter().all(|&(h, _)| h != victim));
}

/// Restoring the failed host brings its capacity back: a query displaced
/// and rejected while the host was down is admittable again.
#[test]
fn restore_host_returns_capacity() {
    let (c, b) = system(3, 3, 25.0, 40.0, 400.0);
    let mut p = planner(&c, 1);
    p.submit(&[b[0], b[1]]).expect("valid bases");
    let victim = HostId(2);
    assert!(p.fail_host(victim));
    assert!(p.catalog().is_host_failed(victim));
    assert!(p.restore_host(victim));
    assert!(!p.catalog().is_host_failed(victim));
    // Planning still works and may use the restored host again.
    p.submit(&[b[1], b[2]]).expect("valid bases");
    assert!(p.state().is_valid(p.catalog()));
}

/// On a saturated system the solver and the greedy baseline both run out
/// of capacity — the ladder's bottom rung must still serve every
/// displaced query by pinning it (oversubscribed) to a surviving host,
/// leaving the managed deployment untouched and valid. `Dropped` is
/// reserved for a system with no surviving hosts at all.
#[test]
fn saturated_storm_pins_best_effort_instead_of_dropping() {
    // Tight: barely fits the initial workload, so post-fault re-admission
    // cannot re-place everything within capacity.
    let (c, b) = system(4, 6, 30.0, 40.0, 400.0);
    let mut p = planner(&c, 1);
    submit_all(&mut p, &b);
    assert!(p.num_admitted() > 0);

    p.fail_host(HostId(0));
    let report = recover_from_failures(&mut p, &StormBudget::nodes(400));
    assert!(!report.recoveries.is_empty());
    assert_eq!(report.dropped(), 0, "survivors exist: nothing may drop");
    // Pins land on surviving hosts only, and the managed deployment stays
    // valid (pins live outside it).
    for r in &report.recoveries {
        if let Some(h) = r.degraded_host {
            assert!(!p.catalog().is_host_failed(h));
            assert_eq!(r.mode, RecoveryMode::Degraded);
        }
    }
    assert!(p.state().is_valid(p.catalog()));

    // Kill everything: with no survivors the ladder has no bottom rung
    // left and queries drop — explicitly, in the report.
    for h in 1..4 {
        p.fail_host(HostId(h));
    }
    let report = recover_from_failures(&mut p, &StormBudget::nodes(0));
    assert_eq!(p.num_admitted(), 0);
    assert!(report
        .recoveries
        .iter()
        .all(|r| r.mode == RecoveryMode::Dropped));
}

/// The storm is a pure function of planner state and fault set under a
/// node-only budget: thread counts 1 and 4 must produce identical
/// per-query recovery modes and bit-identical deployment objectives.
#[test]
fn storm_decisions_invariant_in_lp_threads() {
    let run = |threads: usize| {
        let (c, b) = system(6, 6, 60.0, 60.0, 600.0);
        let mut p = planner(&c, threads);
        submit_all(&mut p, &b);
        p.fail_host(HostId(0));
        p.fail_host(HostId(3));
        let report = recover_from_failures(&mut p, &StormBudget::nodes(400));
        (report, p)
    };
    let (ra, pa) = run(1);
    let (rb, pb) = run(4);

    let modes = |r: &sqpr_core::StormReport| -> Vec<(u32, RecoveryMode)> {
        r.recoveries.iter().map(|x| (x.query.0, x.mode)).collect()
    };
    assert_eq!(modes(&ra), modes(&rb), "recovery modes diverged");
    assert_eq!(ra.nodes_spent, rb.nodes_spent, "node spend diverged");
    assert_eq!(pa.num_admitted(), pb.num_admitted());
    assert_eq!(pa.state().placements(), pb.state().placements());
    assert_eq!(pa.state().flows(), pb.state().flows());
    assert_eq!(
        pa.deployment_objective().to_bits(),
        pb.deployment_objective().to_bits(),
        "objective not bit-identical"
    );
}

/// The storm's solver rounds must ride the warm patch path: after the
/// fault, re-admissions extend the surviving skeleton (incremental
/// rounds), and the compressed-LP cache serves them with in-place patches
/// rather than fresh lowerings. The context survives the displacement
/// only when the displaced queries' columns are already bound-fixed, so
/// the victim is chosen to spare the latest-planned query (whose columns
/// are still free until the next extension re-fixes them).
#[test]
fn storm_rounds_stay_on_the_warm_patch_path() {
    let (c, b) = system(6, 6, 200.0, 200.0, 2000.0);
    let mut p = planner(&c, 1);
    submit_all(&mut p, &b);
    let last_planned = p
        .outcomes()
        .iter()
        .rev()
        .find(|o| !o.reused_existing)
        .map(|o| o.query)
        .expect("at least one solved round");
    let victim = p
        .catalog()
        .hosts()
        .find(|&h| {
            let mut faulted = p.catalog().clone();
            faulted.fail_host(h);
            let audit = p.state().audit_failures(&faulted);
            !audit.displaced.is_empty() && !audit.displaced.contains(&last_planned)
        })
        .expect("a victim displacing only bound-fixed queries");
    p.fail_host(victim);

    let inc_before = p.solver_stats().incremental_rounds;
    let cache_before = p.lp_cache_stats();
    let report = recover_from_failures(&mut p, &StormBudget::unlimited());
    let solver_rounds = report
        .recoveries
        .iter()
        .filter(|r| r.outcome.as_ref().is_some_and(|o| !o.reused_existing))
        .count();
    let inc_delta = p.solver_stats().incremental_rounds - inc_before;
    assert_eq!(
        inc_delta, solver_rounds,
        "storm solver rounds fell off the incremental path"
    );
    let cache = p.lp_cache_stats().since(&cache_before);
    assert!(
        cache.patches > 0,
        "storm rounds never patched the LP cache in place"
    );
}
