//! Observability of the incremental machinery: the `ProducersOnly` relay
//! fallback must be surfaced (not silent), and the skeleton column GC must
//! compact dead (rejected) queries' columns while preserving behaviour.

use sqpr_core::{CacheStats, PlannerConfig, RelayPolicy, SqprPlanner};
use sqpr_dsps::{Catalog, CostModel, HostId, HostSpec, StreamId};

fn system(
    n_hosts: usize,
    n_bases: usize,
    cpu: f64,
    bw: f64,
    link: f64,
) -> (Catalog, Vec<StreamId>) {
    let mut c = Catalog::uniform(n_hosts, HostSpec::new(cpu, bw), link, CostModel::default());
    let bases = (0..n_bases)
        .map(|i| c.add_base_stream(HostId((i % n_hosts) as u32), 10.0, i as u64))
        .collect();
    (c, bases)
}

/// `ProducersOnly` relays extend incrementally: relay rows live in a keyed
/// registry, later-added producers join the rows of their output stream,
/// and the right-hand sides are refreshed per extension — so the planner
/// serves every round from the persistent solver context
/// (`config_fallback_rounds == 0`), with decisions identical to a cold
/// `ProducersOnly` twin.
#[test]
fn producers_only_uses_the_incremental_path() {
    let (c, b) = system(3, 3, 100.0, 100.0, 1000.0);
    let mut cfg = PlannerConfig::new(&c);
    cfg.budget.max_nodes = 120;
    cfg.relay_policy = RelayPolicy::ProducersOnly;
    assert!(cfg.reuse_solver_context, "reuse is the default");
    let mut warm = SqprPlanner::new(c.clone(), cfg.clone());
    cfg.reuse_solver_context = false;
    let mut cold = SqprPlanner::new(c, cfg);

    for pair in [[b[0], b[1]], [b[1], b[2]], [b[0], b[2]], [b[2], b[1]]] {
        let wo = warm.submit(&pair).expect("valid bases");
        let co = cold.submit(&pair).expect("valid bases");
        assert_eq!(
            wo.admitted, co.admitted,
            "incremental ProducersOnly diverged from the cold twin"
        );
        assert!(warm.state().is_valid(warm.catalog()));
    }

    let stats = warm.solver_stats();
    assert_eq!(
        stats.config_fallback_rounds, 0,
        "ProducersOnly must no longer force cold fresh builds: {stats:?}"
    );
    assert!(stats.incremental_rounds >= 1, "{stats:?}");
    assert_eq!(stats.cold_rounds, 0, "{stats:?}");
    // Solved (non-short-circuited) rounds report the incremental path.
    assert!(
        warm.outcomes()
            .iter()
            .filter(|o| !o.reused_existing)
            .all(|o| o.incremental),
        "every solved round must reuse the context"
    );

    // `replan = false` remains the one gated-out configuration.
    let (c2, b2) = system(3, 3, 100.0, 100.0, 1000.0);
    let mut cfg2 = PlannerConfig::new(&c2);
    cfg2.budget.max_nodes = 120;
    cfg2.replan = false;
    let mut p2 = SqprPlanner::new(c2, cfg2);
    p2.submit(&[b2[0], b2[1]]).expect("valid bases");
    let stats2 = p2.solver_stats();
    assert_eq!(stats2.incremental_rounds, 0, "{stats2:?}");
    assert_eq!(stats2.config_fallback_rounds, 1, "{stats2:?}");
}

/// The compressed-LP cache's activity must be observable per round:
/// `PlanningOutcome::lp_cache` carries the round's counter deltas, and
/// they must sum to the slot's lifetime stats. Re-submitting a rejected
/// query is the canonical cross-submission warm case — the skeleton
/// already covers its plan space (no structural growth), only the
/// deployment pins moved — so the re-submission's constructions must be
/// served by patches, not rebuilds.
#[test]
fn cache_stats_surface_per_round_and_resubmissions_patch() {
    // A system too tight to admit anything: every submission solves (no
    // provider short-circuit) and is rejected.
    let (c, b) = system(2, 3, 0.05, 2.0, 20.0);
    let mut cfg = PlannerConfig::new(&c);
    cfg.budget.max_nodes = 120;
    let mut planner = SqprPlanner::new(c, cfg);

    let o1 = planner.submit(&[b[0], b[1]]).expect("valid bases");
    assert!(!o1.admitted && !o1.reused_existing);
    assert!(
        o1.lp_cache.rebuilds >= 1,
        "first construction lowers fresh: {:?}",
        o1.lp_cache
    );

    // Same bases again: the result stream exists but is unprovided, so the
    // round solves — over an unchanged skeleton structure.
    let o2 = planner.submit(&[b[0], b[1]]).expect("valid bases");
    assert!(!o2.reused_existing, "rejected queries are not provided");
    assert!(
        o2.lp_cache.patches >= 1 && o2.lp_cache.rebuilds == 0,
        "re-submission must patch the cached LP, not rebuild: {:?}",
        o2.lp_cache
    );

    // Per-round deltas sum to the slot's lifetime counters.
    let mut summed = CacheStats::default();
    for o in planner.outcomes() {
        summed.add(&o.lp_cache);
    }
    assert_eq!(summed, planner.lp_cache_stats());
    assert!(planner.lp_cache_stats().patch_rate() > 0.0);
}

/// Rejected queries leave dead columns in the cached skeleton. With
/// `reuse = false` (private per-query plan spaces) and a CPU budget that
/// only fits the first couple of joins, most submissions are rejected;
/// once dead columns pass the threshold the planner must compact — and
/// keep planning correctly afterwards (same decisions as a cold twin).
#[test]
fn skeleton_gc_compacts_rejected_queries() {
    let (c, b) = system(2, 4, 3.0, 60.0, 600.0);
    let mut cfg = PlannerConfig::new(&c);
    cfg.budget.max_nodes = 120;
    cfg.reuse = false; // private spaces: rejected queries' columns are dead
    let mut warm = SqprPlanner::new(c.clone(), cfg.clone());
    let mut no_gc_cfg = cfg.clone();
    no_gc_cfg.skeleton_gc_threshold = 2.0; // disabled: skeleton only grows
    let mut no_gc = SqprPlanner::new(c.clone(), no_gc_cfg);
    cfg.reuse_solver_context = false;
    let mut cold = SqprPlanner::new(c, cfg);

    for i in 0..10 {
        let pair = [b[i % 4], b[(i + 1) % 4]];
        let wo = warm.submit(&pair).expect("valid bases");
        let go = no_gc.submit(&pair).expect("valid bases");
        let co = cold.submit(&pair).expect("valid bases");
        assert_eq!(
            wo.admitted, co.admitted,
            "step {i}: admit/reject diverged (warm {} vs cold {})",
            wo.admitted, co.admitted
        );
        assert_eq!(wo.admitted, go.admitted, "step {i}: GC changed a decision");
        assert!(warm.state().is_valid(warm.catalog()), "step {i}");
    }
    let stats = warm.solver_stats();
    assert!(
        stats.compactions >= 1,
        "rejected queries must trigger skeleton GC: {stats:?}"
    );
    assert!(
        stats.compacted_columns > 0,
        "compaction must actually drop columns: {stats:?}"
    );
    assert_eq!(no_gc.solver_stats().compactions, 0);
    // The compacted planner's final model must be strictly smaller than
    // the grow-forever twin's.
    let last = warm.outcomes().last().unwrap().model_vars;
    let last_no_gc = no_gc.outcomes().last().unwrap().model_vars;
    assert!(
        last < last_no_gc,
        "GC'd skeleton ({last}) should be smaller than the grow-forever one ({last_no_gc})"
    );
    assert_eq!(warm.num_admitted(), cold.num_admitted());
}
