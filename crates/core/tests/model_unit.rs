//! Direct tests of the planning-model builder: variable/constraint
//! generation, the §IV-A reduction's residual fixing, relay policies and
//! the two acyclicity modes.

use sqpr_core::{
    register_join_query, AcyclicityMode, ModelInputs, ObjectiveWeights, PlannerConfig,
    PlanningModel, RelayPolicy, SolveBudget, SqprPlanner,
};
use sqpr_dsps::{Catalog, CostModel, DeploymentState, HostId, HostSpec, QueryId, StreamId};

fn catalog(hosts: usize) -> (Catalog, Vec<StreamId>) {
    let mut c = Catalog::uniform(
        hosts,
        HostSpec::new(100.0, 100.0),
        1000.0,
        CostModel::default(),
    );
    let b = (0..4)
        .map(|i| c.add_base_stream(HostId((i % hosts) as u32), 10.0, i as u64))
        .collect();
    (c, b)
}

fn build(
    c: &Catalog,
    state: &DeploymentState,
    space: &sqpr_core::PlanSpace,
    new: &[StreamId],
    acyclicity: AcyclicityMode,
    relay: RelayPolicy,
) -> PlanningModel {
    PlanningModel::build(&ModelInputs {
        catalog: c,
        state,
        space,
        new_streams: new,
        weights: ObjectiveWeights::paper_defaults(c),
        relay_policy: relay,
        acyclicity,
        replan: true,
        cuts: &[],
    })
}

#[test]
fn variable_counts_follow_the_formulation() {
    let (mut c, b) = catalog(3);
    let (spec, space) = register_join_query(&mut c, QueryId(0), &[b[0], b[1]], 0);
    let state = DeploymentState::new();
    let h = 3usize;
    let ns = space.streams.len(); // 2 bases + 1 join
    let no = space.operators.len(); // 1
    assert_eq!((ns, no), (3, 1));

    let lazy = build(
        &c,
        &state,
        &space,
        &[spec.result],
        AcyclicityMode::Lazy,
        RelayPolicy::All,
    );
    // y: H*ns, x: H*(H-1)*ns, z: H*no, d: H (one demanded stream), t: 1.
    let expect_lazy = h * ns + h * (h - 1) * ns + h * no + h + 1;
    assert_eq!(lazy.num_vars(), expect_lazy);

    let cons = build(
        &c,
        &state,
        &space,
        &[spec.result],
        AcyclicityMode::Constraints,
        RelayPolicy::All,
    );
    // Adds p: H*ns continuous potentials.
    assert_eq!(cons.num_vars(), expect_lazy + h * ns);
    // And one acyclicity row per x variable.
    assert_eq!(cons.num_cons(), lazy.num_cons() + h * (h - 1) * ns);
}

#[test]
fn producers_only_relay_policy_adds_rows() {
    let (mut c, b) = catalog(3);
    let (spec, space) = register_join_query(&mut c, QueryId(0), &[b[0], b[1]], 0);
    let state = DeploymentState::new();
    let all = build(
        &c,
        &state,
        &space,
        &[spec.result],
        AcyclicityMode::Lazy,
        RelayPolicy::All,
    );
    let prod = build(
        &c,
        &state,
        &space,
        &[spec.result],
        AcyclicityMode::Lazy,
        RelayPolicy::ProducersOnly,
    );
    // One extra row per x variable.
    assert_eq!(
        prod.num_cons(),
        all.num_cons() + 3 * 2 * space.streams.len()
    );
}

#[test]
fn acyclicity_modes_agree_on_admissions() {
    // Same tiny workload planned under both modes must admit identically.
    let (c, b) = catalog(3);
    let queries = [vec![b[0], b[1]], vec![b[1], b[2]], vec![b[0], b[1], b[3]]];
    let mut counts = Vec::new();
    for mode in [AcyclicityMode::Lazy, AcyclicityMode::Constraints] {
        let mut cfg = PlannerConfig::new(&c);
        cfg.budget = SolveBudget::nodes(80);
        cfg.acyclicity = mode;
        let mut p = SqprPlanner::new(c.clone(), cfg);
        for q in &queries {
            p.submit(q).expect("valid bases");
        }
        assert!(p.state().is_valid(p.catalog()));
        counts.push(p.num_admitted());
    }
    assert_eq!(counts[0], counts[1], "lazy vs III.7 admissions differ");
}

#[test]
fn warm_start_reflects_existing_deployment() {
    let (mut c, b) = catalog(2);
    let (spec, space) = register_join_query(&mut c, QueryId(0), &[b[0], b[1]], 0);
    // Hand-build a deployment: ship b1 to h0, join at h0, provide from h0.
    let op = space.operators[0];
    let mut state = DeploymentState::new();
    state.add_flow(HostId(1), HostId(0), b[1]);
    state.add_placement(HostId(0), op);
    state.add_available(HostId(0), spec.result);
    state.set_provided(spec.result, HostId(0));
    state.admit_query(QueryId(0), spec.result);
    assert!(state.is_valid(&c));

    let model = build(
        &c,
        &state,
        &space,
        &[],
        AcyclicityMode::Constraints,
        RelayPolicy::All,
    );
    let warm = model.warm_start(&state, &c).expect("heights derivable");
    assert!(
        model.milp.is_feasible(&warm, 1e-6),
        "warm start must satisfy the model (incl. IV.9 equality rows)"
    );
}

#[test]
fn residual_fixing_blocks_oversubscription() {
    // A fixed (unrelated) placement consumes most of one host's CPU; the
    // model for a new query must respect the residual.
    let (mut c, b) = catalog(2);
    // Unrelated pair occupies h0 heavily.
    let (q0, s0) = register_join_query(&mut c, QueryId(0), &[b[2], b[3]], 0);
    let big_op = s0.operators[0];
    let mut state = DeploymentState::new();
    // Force both bases of q0 to exist at h0 for a self-contained placement.
    // b2 is at h0 already; ship b3 across.
    state.add_flow(HostId(1), HostId(0), b[3]);
    state.add_placement(HostId(0), big_op);
    state.add_available(HostId(0), q0.result);
    state.set_provided(q0.result, HostId(0));
    state.admit_query(QueryId(0), q0.result);
    assert!(state.is_valid(&c));

    // New query over b0, b1 (disjoint!): its space excludes big_op, so the
    // model must treat h0's 20 used CPU as fixed.
    let (q1, space1) = register_join_query(&mut c, QueryId(1), &[b[0], b[1]], 0);
    // Constraints mode: raw solves (no causality filter) stay causal.
    let model = build(
        &c,
        &state,
        &space1,
        &[q1.result],
        AcyclicityMode::Constraints,
        RelayPolicy::All,
    );
    assert!(!space1.operators.contains(&big_op));
    // Solve: must succeed (plenty of room) and keep q0 intact.
    let r = sqpr_milp::solve(&model.milp, &sqpr_milp::MilpOptions::default());
    assert!(r.has_solution());
    let decoded = model.decode(r.x.as_ref().unwrap(), &state);
    let mut next = state.clone();
    decoded.install(&mut next);
    assert!(next.is_valid(&c));
    assert_eq!(
        next.provider_of(q0.result),
        Some(HostId(0)),
        "fixed query untouched"
    );
}

#[test]
fn admits_reports_demanded_stream() {
    let (mut c, b) = catalog(2);
    let (spec, space) = register_join_query(&mut c, QueryId(0), &[b[0], b[1]], 0);
    let state = DeploymentState::new();
    let model = build(
        &c,
        &state,
        &space,
        &[spec.result],
        AcyclicityMode::Constraints,
        RelayPolicy::All,
    );
    let r = sqpr_milp::solve(&model.milp, &sqpr_milp::MilpOptions::default());
    let x = r.x.expect("solvable");
    assert!(model.admits(&x, spec.result), "λ1 dominance must admit");
}
