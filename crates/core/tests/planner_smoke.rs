//! End-to-end planner tests on small systems.

use sqpr_core::{adapt_to_observed_rates, PlannerConfig, SqprPlanner};
use sqpr_dsps::{Catalog, CostModel, HostId, HostSpec, StreamId};

/// `n` hosts with ample CPU/network; `k` base streams spread round-robin.
fn system(
    n_hosts: usize,
    n_bases: usize,
    cpu: f64,
    bw: f64,
    link: f64,
) -> (Catalog, Vec<StreamId>) {
    let mut c = Catalog::uniform(n_hosts, HostSpec::new(cpu, bw), link, CostModel::default());
    let bases = (0..n_bases)
        .map(|i| c.add_base_stream(HostId((i % n_hosts) as u32), 10.0, i as u64))
        .collect();
    (c, bases)
}

fn planner(c: Catalog) -> SqprPlanner {
    let mut cfg = PlannerConfig::new(&c);
    cfg.budget.max_nodes = 200;
    cfg.budget.wall_clock_ms = Some(10_000);
    SqprPlanner::new(c, cfg)
}

#[test]
fn admits_single_two_way_join() {
    let (c, b) = system(2, 2, 100.0, 100.0, 1000.0);
    let mut p = planner(c);
    let o = p.submit(&[b[0], b[1]]).expect("valid bases");
    assert!(o.admitted, "{o:?}");
    assert!(!o.reused_existing);
    assert_eq!(p.num_admitted(), 1);
    assert!(
        p.state().is_valid(p.catalog()),
        "{:?}",
        p.state().validate(p.catalog())
    );
    // Exactly one join operator placed somewhere.
    assert_eq!(p.state().placements().len(), 1);
}

#[test]
fn identical_query_short_circuits() {
    let (c, b) = system(2, 2, 100.0, 100.0, 1000.0);
    let mut p = planner(c);
    let o1 = p.submit(&[b[0], b[1]]).expect("valid bases");
    assert!(o1.admitted);
    let o2 = p.submit(&[b[1], b[0]]).expect("valid bases");
    assert!(o2.admitted);
    assert!(o2.reused_existing, "commuted join must reuse the provision");
    assert_eq!(o2.nodes, 0);
    assert_eq!(p.num_admitted(), 2);
    // No extra operators were placed.
    assert_eq!(p.state().placements().len(), 1);
}

#[test]
fn overlapping_queries_share_subjoins() {
    let (c, b) = system(3, 3, 1000.0, 1000.0, 10_000.0);
    let mut p = planner(c);
    assert!(p.submit(&[b[0], b[1]]).expect("valid bases").admitted);
    assert!(p.submit(&[b[0], b[1], b[2]]).expect("valid bases").admitted);
    assert!(p.state().is_valid(p.catalog()));
    // The three-way query should build on the existing two-way join: at
    // most 2 operators total (ab, ab⋈c) if reuse worked; without reuse it
    // would need 2 fresh operators (any tree) for the 3-way plus the
    // original, i.e. 3.
    assert!(
        p.state().placements().len() <= 2,
        "expected sub-join reuse, got {:?}",
        p.state().placements()
    );
}

#[test]
fn rejects_when_cpu_exhausted_and_keeps_existing() {
    // Each host fits the cheap join (cost 20) but not the expensive one
    // (cost 120): the second query must be rejected and the first kept.
    let mut c = Catalog::uniform(
        2,
        HostSpec::new(25.0, 1000.0),
        10_000.0,
        CostModel::default(),
    );
    let b0 = c.add_base_stream(HostId(0), 10.0, 0);
    let b1 = c.add_base_stream(HostId(1), 10.0, 1);
    let b2 = c.add_base_stream(HostId(0), 60.0, 2);
    let b3 = c.add_base_stream(HostId(1), 60.0, 3);
    let mut p = planner(c);
    assert!(p.submit(&[b0, b1]).expect("valid bases").admitted);
    let before = p.num_admitted();
    let o = p.submit(&[b2, b3]).expect("valid bases");
    assert!(!o.admitted, "{o:?}");
    assert_eq!(p.num_admitted(), before, "existing queries must survive");
    assert!(p.state().is_valid(p.catalog()));
}

#[test]
fn remove_query_garbage_collects() {
    let (c, b) = system(2, 2, 100.0, 100.0, 1000.0);
    let mut p = planner(c);
    let o = p.submit(&[b[0], b[1]]).expect("valid bases");
    assert!(o.admitted);
    let q = o.query;
    assert!(p.remove_query(q));
    assert_eq!(p.num_admitted(), 0);
    assert!(
        p.state().placements().is_empty(),
        "{:?}",
        p.state().placements()
    );
    assert!(p.state().flows().is_empty());
    assert!(p.state().is_valid(p.catalog()));
}

#[test]
fn shared_provision_survives_partial_removal() {
    let (c, b) = system(2, 2, 100.0, 100.0, 1000.0);
    let mut p = planner(c);
    let o1 = p.submit(&[b[0], b[1]]).expect("valid bases");
    let o2 = p.submit(&[b[0], b[1]]).expect("valid bases");
    assert!(o1.admitted && o2.admitted);
    assert!(p.remove_query(o1.query));
    // The second query still needs the stream: nothing may be collected.
    assert_eq!(p.num_admitted(), 1);
    assert_eq!(p.state().placements().len(), 1);
    assert!(p.state().is_valid(p.catalog()));
}

#[test]
fn batch_submission_admits_multiple() {
    let (c, b) = system(3, 4, 1000.0, 1000.0, 10_000.0);
    let mut p = planner(c);
    let outcomes = p
        .submit_batch(&[vec![b[0], b[1]], vec![b[2], b[3]]])
        .expect("valid bases");
    assert_eq!(outcomes.len(), 2);
    assert!(outcomes.iter().all(|o| o.admitted), "{outcomes:?}");
    assert_eq!(p.num_admitted(), 2);
    assert!(p.state().is_valid(p.catalog()));
}

#[test]
fn adaptive_replans_on_drift() {
    let (c, b) = system(2, 2, 100.0, 100.0, 1000.0);
    let mut p = planner(c);
    assert!(p.submit(&[b[0], b[1]]).expect("valid bases").admitted);
    // Rate of b0 triples: the join costs more CPU now (30+10 -> 40 <= 100,
    // still feasible) and must be re-planned.
    let report = adapt_to_observed_rates(&mut p, &[(b[0], 30.0)], 0.2);
    assert_eq!(report.drifted_streams, vec![b[0]]);
    assert_eq!(report.replanned.len(), 1);
    assert_eq!(report.readmitted.len(), 1);
    assert!(report.dropped.is_empty());
    assert!(p.state().is_valid(p.catalog()));
    assert_eq!(p.num_admitted(), 1);
}

#[test]
fn adaptive_drops_infeasible_after_drift() {
    // Tight CPU: a rate increase makes the join infeasible everywhere.
    let (c, b) = system(2, 2, 25.0, 1000.0, 10_000.0);
    let mut p = planner(c);
    assert!(p.submit(&[b[0], b[1]]).expect("valid bases").admitted); // cost 20 <= 25
    let report = adapt_to_observed_rates(&mut p, &[(b[0], 100.0)], 0.2);
    // cost now 110 > 25: the query must be dropped.
    assert_eq!(report.dropped.len(), 1);
    assert_eq!(p.num_admitted(), 0);
    assert!(p.state().is_valid(p.catalog()));
}

#[test]
fn three_way_join_with_scarce_network_uses_plan_flexibility() {
    // Bases on three different hosts, links tight enough that plan shape
    // matters but generous CPU: the planner must find some placement.
    let (c, b) = system(3, 3, 1000.0, 60.0, 40.0);
    let mut p = planner(c);
    let o = p.submit(&[b[0], b[1], b[2]]).expect("valid bases");
    assert!(o.admitted, "{o:?}");
    assert!(p.state().is_valid(p.catalog()));
}
