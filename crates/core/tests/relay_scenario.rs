//! The §II-C relay scenario: "By propagating a stream to another host with
//! potentially more spare network resources, the planner can support more
//! reuse with future queries" — a hot source whose outgoing bandwidth
//! cannot feed every consumer directly, but can via a relay chain.

use sqpr_core::{PlannerConfig, RelayPolicy, SolveBudget, SqprPlanner};
use sqpr_dsps::{Catalog, CostModel, HostId, HostSpec, StreamId};

/// h0 sources a hot stream but has little outgoing bandwidth; h1 and h2
/// each source a local stream and want to join it with the hot one.
/// Serving both consumers directly from h0 exceeds its uplink; relaying
/// through h1 makes both queries feasible.
fn scenario() -> (Catalog, StreamId, StreamId, StreamId) {
    let mut hot_host = HostSpec::new(100.0, 100.0);
    // Hot stream rate 8; two direct sends (16) exceed the uplink of 13,
    // but one send (8) plus slack fits.
    hot_host.bandwidth_out = 13.0;
    let consumer = HostSpec::new(100.0, 100.0);
    let mut c = Catalog::new(
        vec![hot_host, consumer.clone(), consumer],
        sqpr_dsps::NetworkTopology::full_mesh(3, 100.0),
        CostModel::default(),
    );
    let hot = c.add_base_stream(HostId(0), 8.0, 0);
    let l1 = c.add_base_stream(HostId(1), 2.0, 1);
    let l2 = c.add_base_stream(HostId(2), 2.0, 2);
    (c, hot, l1, l2)
}

fn planner(c: Catalog, relay: RelayPolicy) -> SqprPlanner {
    let mut cfg = PlannerConfig::new(&c);
    cfg.budget = SolveBudget::nodes(300);
    cfg.relay_policy = relay;
    SqprPlanner::new(c, cfg)
}

#[test]
fn relaying_admits_what_direct_sends_cannot() {
    // With relays (the paper's model) both joins are admissible: the hot
    // stream goes h0 -> h1 once, and h1 can forward it to h2.
    let (c, hot, l1, l2) = scenario();
    let mut p = planner(c, RelayPolicy::All);
    let o1 = p.submit(&[hot, l1]).expect("valid bases");
    let o2 = p.submit(&[hot, l2]).expect("valid bases");
    assert!(o1.admitted, "first consumer must fit: {o1:?}");
    assert!(
        o2.admitted,
        "relaying must rescue the second consumer: {o2:?}"
    );
    assert!(p.state().is_valid(p.catalog()));
    // The hot source must not be sending twice (its uplink cannot).
    let direct_sends = p
        .state()
        .flows()
        .iter()
        .filter(|&&(from, _, s)| from == HostId(0) && s == hot)
        .count();
    assert!(direct_sends <= 1, "flows: {:?}", p.state().flows());
}

#[test]
fn producers_only_policy_cannot_rescue_the_second_consumer() {
    let (c, hot, l1, l2) = scenario();
    let mut p = planner(c, RelayPolicy::ProducersOnly);
    let o1 = p.submit(&[hot, l1]).expect("valid bases");
    assert!(o1.admitted);
    let o2 = p.submit(&[hot, l2]).expect("valid bases");
    // Without relays the hot stream can only leave its source host, whose
    // uplink is exhausted — unless the planner co-locates both joins at a
    // single receiving host. Co-location is possible here (h1 runs both
    // joins, receiving l2 from h2), so check the weaker, still meaningful
    // property: whatever happens stays valid, and if the query was
    // admitted, no host relays the hot stream.
    assert!(p.state().is_valid(p.catalog()));
    if o2.admitted {
        for &(from, _, s) in p.state().flows() {
            if s == hot {
                assert_eq!(from, HostId(0), "non-producer relayed under ProducersOnly");
            }
        }
    }
}
