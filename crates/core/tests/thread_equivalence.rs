//! End-to-end determinism across the `lp_threads` knob: a planner driven
//! with parallel branch & bound must make the *same* decisions as the
//! sequential one — not merely admit the same number of queries, but
//! produce identical admit/reject sequences, search-tree sizes, simplex
//! work counters, and bit-identical deployment objectives at every thread
//! count. Parallelism is a wall-clock knob, never a decision knob.

use sqpr_core::{PlannerConfig, SqprPlanner};
use sqpr_dsps::{Catalog, CostModel, HostId, HostSpec, StreamId};

fn system(
    n_hosts: usize,
    n_bases: usize,
    cpu: f64,
    bw: f64,
    link: f64,
) -> (Catalog, Vec<StreamId>) {
    let mut c = Catalog::uniform(n_hosts, HostSpec::new(cpu, bw), link, CostModel::default());
    let bases = (0..n_bases)
        .map(|i| c.add_base_stream(HostId((i % n_hosts) as u32), 10.0, i as u64))
        .collect();
    (c, bases)
}

/// A moderately tight system (some admits, some rejects — both decision
/// paths exercised) planned under thread counts 1/2/4/8: every observable
/// of every round must match the single-threaded reference exactly.
#[test]
fn planner_decisions_are_invariant_in_lp_threads() {
    let submissions: Vec<Vec<usize>> = vec![
        vec![0, 1],
        vec![1, 2, 3],
        vec![2, 3],
        vec![0, 2, 4],
        vec![3, 4, 5],
        vec![1, 3],
        vec![0, 4],
        vec![2, 4, 5],
        vec![1, 4],
        vec![0, 3, 5],
        vec![5, 1],
        vec![4, 0, 2],
    ];

    let run = |threads: usize| -> SqprPlanner {
        let (c, b) = system(4, 6, 45.0, 40.0, 400.0);
        let mut cfg = PlannerConfig::new(&c);
        cfg.budget.max_nodes = 200;
        cfg.lp_threads = threads;
        let mut planner = SqprPlanner::new(c, cfg);
        for q in &submissions {
            let streams: Vec<_> = q.iter().map(|&i| b[i]).collect();
            planner.submit(&streams).expect("valid bases");
        }
        planner
    };

    let base = run(1);
    let admitted_base: Vec<bool> = base.outcomes().iter().map(|o| o.admitted).collect();
    // The workload must exercise both decisions, otherwise the test is
    // vacuous for one of the paths.
    assert!(
        admitted_base.iter().any(|&a| a),
        "no admissions in workload"
    );
    assert!(
        admitted_base.iter().any(|&a| !a),
        "no rejections in workload"
    );
    // ... and at least one rejection proof must grow a tree deep enough to
    // spawn the worker pool, so the parallel path is exercised end to end.
    assert!(
        base.outcomes().iter().any(|o| o.nodes > 16),
        "no round outlived the pool spawn threshold"
    );

    for threads in [2usize, 4, 8] {
        let p = run(threads);
        assert_eq!(base.outcomes().len(), p.outcomes().len());
        for (i, (a, b)) in base.outcomes().iter().zip(p.outcomes()).enumerate() {
            assert_eq!(
                a.admitted, b.admitted,
                "round {i}: admit/reject diverged at lp_threads = {threads}"
            );
            assert_eq!(
                a.nodes, b.nodes,
                "round {i}: tree size diverged at lp_threads = {threads}"
            );
            assert_eq!(
                a.lp_iterations, b.lp_iterations,
                "round {i}: simplex work diverged at lp_threads = {threads}"
            );
            assert_eq!(
                a.lp_pivots, b.lp_pivots,
                "round {i}: pivot breakdown diverged at lp_threads = {threads}"
            );
        }
        assert_eq!(base.num_admitted(), p.num_admitted());
        assert_eq!(
            base.deployment_objective().to_bits(),
            p.deployment_objective().to_bits(),
            "deployment objective bits diverged at lp_threads = {threads}"
        );
        assert!(p.state().is_valid(p.catalog()));
    }
}
