//! The system catalog: hosts, streams, operators, and base-stream placement.
//!
//! The catalog is the shared vocabulary of the planner and the baselines. It
//! *interns* composite streams and operators by their semantic signature
//! (see [`crate::stream::StreamSignature`]), which is what makes cross-query
//! reuse discoverable: when a new query joins the same base streams as an
//! old one, interning returns the already-registered stream/operator ids and
//! the planner sees the overlap for free (paper §II-C: equivalence discovery
//! "by traversing their query plans").

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::cost::CostModel;
use crate::ids::{HostId, OperatorId, StreamId};
use crate::operator::{OperatorDef, OperatorKind};
use crate::stream::{StreamDef, StreamSignature};
use crate::topology::{HostSpec, NetworkTopology};

/// Central registry for one DSPS instance.
#[derive(Debug, Clone)]
pub struct Catalog {
    hosts: Vec<HostSpec>,
    /// Configured (pre-fault) host specs; [`Self::restore_host`] copies
    /// from here.
    nominal_hosts: Vec<HostSpec>,
    /// Hosts currently failed ([`Self::fail_host`]).
    failed: BTreeSet<HostId>,
    topology: NetworkTopology,
    cost: CostModel,
    streams: Vec<StreamDef>,
    by_signature: HashMap<StreamSignature, StreamId>,
    operators: Vec<OperatorDef>,
    op_dedup: HashMap<(OperatorKind, Vec<StreamId>), OperatorId>,
    /// `S0_h`: base streams available at each host.
    base_at_host: Vec<Vec<StreamId>>,
    /// Source host of each base stream. Ordered because
    /// [`Self::rehome_orphaned_sources`] iterates it to pick migration
    /// targets; `by_signature`/`op_dedup`/`producers` stay hashed — they are
    /// point-lookup only and never iterated.
    base_host: BTreeMap<StreamId, HostId>,
    /// Operators producing each stream (multiple join trees may produce the
    /// same interned stream).
    producers: HashMap<StreamId, Vec<OperatorId>>,
}

impl Catalog {
    /// Creates a catalog with the given hosts, topology and cost model.
    pub fn new(hosts: Vec<HostSpec>, topology: NetworkTopology, cost: CostModel) -> Self {
        assert_eq!(
            hosts.len(),
            topology.num_hosts(),
            "topology size must match host count"
        );
        let n = hosts.len();
        Catalog {
            nominal_hosts: hosts.clone(),
            hosts,
            failed: BTreeSet::new(),
            topology,
            cost,
            streams: Vec::new(),
            by_signature: HashMap::new(),
            operators: Vec::new(),
            op_dedup: HashMap::new(),
            base_at_host: vec![Vec::new(); n],
            base_host: BTreeMap::new(),
            producers: HashMap::new(),
        }
    }

    /// Convenience constructor: `n` identical hosts, full-mesh links.
    pub fn uniform(n: usize, host: HostSpec, link_capacity: f64, cost: CostModel) -> Self {
        Catalog::new(
            vec![host; n],
            NetworkTopology::full_mesh(n, link_capacity),
            cost,
        )
    }

    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    pub fn hosts(&self) -> impl Iterator<Item = HostId> {
        (0..self.hosts.len()).map(HostId::from_index)
    }

    pub fn host(&self, h: HostId) -> &HostSpec {
        &self.hosts[h.index()]
    }

    pub fn topology(&self) -> &NetworkTopology {
        &self.topology
    }

    // ----- fault model ----------------------------------------------------

    /// Fails host `h`: its effective CPU, bandwidth and memory capacities
    /// drop to zero and every link touching it goes dark
    /// ([`NetworkTopology::fail_host`]). Idempotent; returns whether the
    /// host was up. The configured capacities are kept for
    /// [`Self::restore_host`].
    ///
    /// Base streams sourced at a failed host stop being available there —
    /// [`crate::DeploymentState::derive_availability`] skips failed hosts'
    /// base seeds — so every derivation rooted at the host collapses.
    pub fn fail_host(&mut self, h: HostId) -> bool {
        if !self.failed.insert(h) {
            return false;
        }
        let nominal = &self.nominal_hosts[h.index()];
        self.hosts[h.index()] = HostSpec {
            cpu_capacity: 0.0,
            bandwidth_out: 0.0,
            bandwidth_in: 0.0,
            // Keep an unbounded memory unbounded: the planner only builds
            // memory rows for finitely-provisioned hosts, and a zero cap
            // is indistinguishable from "no row" once CPU is zero anyway.
            memory_capacity: if nominal.memory_capacity.is_finite() {
                0.0
            } else {
                f64::INFINITY
            },
        };
        self.topology.fail_host(h);
        true
    }

    /// Restores host `h` to its configured capacities (and its links to the
    /// nominal topology). Idempotent; returns whether the host was failed.
    pub fn restore_host(&mut self, h: HostId) -> bool {
        if !self.failed.remove(&h) {
            return false;
        }
        self.hosts[h.index()] = self.nominal_hosts[h.index()].clone();
        self.topology.restore_host(h);
        true
    }

    /// Degrades the directed link `h -> m` to the given effective capacity.
    pub fn degrade_link(&mut self, h: HostId, m: HostId, capacity: f64) {
        self.topology.degrade_link(h, m, capacity);
    }

    /// Restores the directed link `h -> m` to its configured capacity.
    pub fn restore_link(&mut self, h: HostId, m: HostId) {
        self.topology.restore_link(h, m);
    }

    /// Re-homes base stream `s` to ingest host `to`: the external feed
    /// reconnects to a different gateway (e.g. after its original ingest
    /// host failed). Derived streams are unaffected — only where the raw
    /// feed enters the system changes.
    ///
    /// # Panics
    /// Panics if `s` is not a base stream or `to` is out of range.
    pub fn rehome_base_stream(&mut self, s: StreamId, to: HostId) {
        assert!(
            self.streams[s.index()].is_base(),
            "{s} is not a base stream"
        );
        assert!(to.index() < self.hosts.len(), "unknown host {to}");
        let from = self.base_host[&s];
        if from == to {
            return;
        }
        self.base_at_host[from.index()].retain(|&x| x != s);
        self.base_at_host[to.index()].push(s);
        self.base_host.insert(s, to);
    }

    /// Reconnects every base stream whose ingest host is currently failed
    /// to a surviving host, round-robin across the surviving hosts in
    /// ascending order (deterministic). Returns the moves performed as
    /// `(stream, from, to)`, ascending by stream id; empty when no host
    /// survives (nowhere to reconnect) or nothing is orphaned.
    pub fn rehome_orphaned_sources(&mut self) -> Vec<(StreamId, HostId, HostId)> {
        let survivors: Vec<HostId> = self.hosts().filter(|&h| !self.is_host_failed(h)).collect();
        if survivors.is_empty() {
            return Vec::new();
        }
        let mut orphaned: Vec<(StreamId, HostId)> = self
            .base_host
            .iter()
            .filter(|&(_, &h)| self.failed.contains(&h))
            .map(|(&s, &h)| (s, h))
            .collect();
        orphaned.sort();
        let mut moves = Vec::with_capacity(orphaned.len());
        for (i, (s, from)) in orphaned.into_iter().enumerate() {
            let to = survivors[i % survivors.len()];
            self.rehome_base_stream(s, to);
            moves.push((s, from, to));
        }
        moves
    }

    /// Whether host `h` is currently failed.
    pub fn is_host_failed(&self, h: HostId) -> bool {
        self.failed.contains(&h)
    }

    /// Currently failed hosts, ascending.
    pub fn failed_hosts(&self) -> impl Iterator<Item = HostId> + '_ {
        self.failed.iter().copied()
    }

    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }

    pub fn num_operators(&self) -> usize {
        self.operators.len()
    }

    pub fn stream(&self, s: StreamId) -> &StreamDef {
        &self.streams[s.index()]
    }

    pub fn operator(&self, o: OperatorId) -> &OperatorDef {
        &self.operators[o.index()]
    }

    pub fn streams(&self) -> impl Iterator<Item = &StreamDef> {
        self.streams.iter()
    }

    pub fn operators(&self) -> impl Iterator<Item = &OperatorDef> {
        self.operators.iter()
    }

    /// Base streams available at host `h` (paper `S0_h`).
    pub fn base_streams_at(&self, h: HostId) -> &[StreamId] {
        &self.base_at_host[h.index()]
    }

    /// The source host of a base stream, `None` for composites.
    pub fn source_host(&self, s: StreamId) -> Option<HostId> {
        self.base_host.get(&s).copied()
    }

    /// Whether base stream `s` is locally available at `h`.
    pub fn is_base_at(&self, s: StreamId, h: HostId) -> bool {
        self.base_host.get(&s) == Some(&h)
    }

    /// Operators whose output is `s`.
    pub fn producers_of(&self, s: StreamId) -> &[OperatorId] {
        self.producers.get(&s).map_or(&[], Vec::as_slice)
    }

    /// Looks up a stream by signature without creating it.
    pub fn find_stream(&self, sig: &StreamSignature) -> Option<StreamId> {
        self.by_signature.get(sig).copied()
    }

    /// Registers a base stream injected at `host` with the given average
    /// rate. `source` tags the external source; re-registering the same tag
    /// returns the existing stream.
    ///
    /// # Panics
    /// Panics if re-registered with a different host or rate.
    pub fn add_base_stream(&mut self, host: HostId, rate: f64, source: u64) -> StreamId {
        assert!(rate > 0.0, "base stream rate must be positive");
        let sig = StreamSignature::Base { source };
        if let Some(&id) = self.by_signature.get(&sig) {
            assert_eq!(self.base_host[&id], host, "source {source} re-homed");
            assert_eq!(
                self.streams[id.index()].rate,
                rate,
                "source {source} rate changed"
            );
            return id;
        }
        let id = StreamId::from_index(self.streams.len());
        self.streams.push(StreamDef {
            id,
            signature: sig.clone(),
            rate,
            factor: 1.0,
        });
        self.by_signature.insert(sig, id);
        self.base_at_host[host.index()].push(id);
        self.base_host.insert(id, host);
        id
    }

    /// The set of base streams underlying `s` (identity for base streams,
    /// the join base-set for joins, the input's set for filter/project).
    pub fn base_set(&self, s: StreamId) -> BTreeSet<StreamId> {
        match &self.streams[s.index()].signature {
            StreamSignature::Base { .. } => [s].into_iter().collect(),
            StreamSignature::Join { bases, .. } => bases.clone(),
            StreamSignature::Filter { input, .. } | StreamSignature::Project { input, .. } => {
                self.base_set(*input)
            }
        }
    }

    /// Interns the join-result stream over a set of base streams, computing
    /// its order-independent rate from the cost model.
    ///
    /// # Panics
    /// Panics unless `bases` has at least two distinct *base* streams.
    pub fn intern_join_stream(&mut self, bases: &BTreeSet<StreamId>) -> StreamId {
        self.intern_join_stream_tagged(bases, 0)
    }

    /// Like [`Self::intern_join_stream`], but with a privacy tag: streams
    /// with different tags never unify. Tag 0 is the shared space; the
    /// reuse-off ablation uses per-query tags.
    pub fn intern_join_stream_tagged(&mut self, bases: &BTreeSet<StreamId>, tag: u64) -> StreamId {
        assert!(bases.len() >= 2, "a join needs at least two base streams");
        for &b in bases {
            assert!(
                self.streams[b.index()].is_base(),
                "join base sets contain base streams only"
            );
        }
        let sig = StreamSignature::Join {
            bases: bases.clone(),
            tag,
        };
        if let Some(&id) = self.by_signature.get(&sig) {
            return id;
        }
        let rate = self.cost.join_rate(bases, |b| self.streams[b.index()].rate);
        let id = StreamId::from_index(self.streams.len());
        self.streams.push(StreamDef {
            id,
            signature: sig.clone(),
            rate,
            factor: 1.0,
        });
        self.by_signature.insert(sig, id);
        id
    }

    /// Interns the binary join operator combining streams `left` and
    /// `right` (whose base sets must be disjoint); also interns the output
    /// stream. Returns the operator id.
    pub fn intern_join_operator(&mut self, left: StreamId, right: StreamId) -> OperatorId {
        self.intern_join_operator_tagged(left, right, 0)
    }

    /// Like [`Self::intern_join_operator`] with a privacy tag (see
    /// [`Self::intern_join_stream_tagged`]).
    pub fn intern_join_operator_tagged(
        &mut self,
        left: StreamId,
        right: StreamId,
        tag: u64,
    ) -> OperatorId {
        let lb = self.base_set(left);
        let rb = self.base_set(right);
        assert!(
            lb.is_disjoint(&rb),
            "join inputs must cover disjoint base sets ({left} vs {right})"
        );
        let mut inputs = vec![left, right];
        inputs.sort();
        // The tag participates in operator identity through the output
        // stream below; include it in the dedup key via a synthetic id.
        let key = (OperatorKind::Join, {
            let mut k = inputs.clone();
            if tag != 0 {
                k.push(StreamId(u32::MAX - (tag as u32 % 1_000_000)));
            }
            k
        });
        if let Some(&id) = self.op_dedup.get(&key) {
            return id;
        }
        let union: BTreeSet<StreamId> = lb.union(&rb).copied().collect();
        let output = self.intern_join_stream_tagged(&union, tag);
        let rates = [
            self.streams[left.index()].rate,
            self.streams[right.index()].rate,
        ];
        let cpu = self.cost.join_cpu(&rates);
        let memory = self.cost.join_memory(&rates);
        let id = OperatorId::from_index(self.operators.len());
        self.operators.push(OperatorDef {
            id,
            kind: OperatorKind::Join,
            inputs,
            output,
            cpu_cost: cpu,
            memory_cost: memory,
        });
        self.op_dedup.insert(key, id);
        self.producers.entry(output).or_default().push(id);
        id
    }

    /// Interns a filter over `input` with the given predicate tag and
    /// selectivity (output rate = input rate × selectivity).
    pub fn intern_filter(
        &mut self,
        input: StreamId,
        predicate: u64,
        selectivity: f64,
    ) -> OperatorId {
        assert!(
            selectivity > 0.0 && selectivity <= 1.0,
            "filter selectivity in (0, 1]"
        );
        let key = (OperatorKind::Filter { predicate }, vec![input]);
        if let Some(&id) = self.op_dedup.get(&key) {
            return id;
        }
        let sig = StreamSignature::Filter { input, predicate };
        let output = if let Some(&s) = self.by_signature.get(&sig) {
            s
        } else {
            let rate = self.streams[input.index()].rate * selectivity;
            let s = StreamId::from_index(self.streams.len());
            self.streams.push(StreamDef {
                id: s,
                signature: sig.clone(),
                rate,
                factor: selectivity,
            });
            self.by_signature.insert(sig, s);
            s
        };
        let cpu = self.cost.stateless_cpu(self.streams[input.index()].rate);
        let id = OperatorId::from_index(self.operators.len());
        self.operators.push(OperatorDef {
            id,
            kind: OperatorKind::Filter { predicate },
            inputs: vec![input],
            output,
            cpu_cost: cpu,
            memory_cost: 0.0,
        });
        self.op_dedup.insert(key, id);
        self.producers.entry(output).or_default().push(id);
        id
    }

    /// Interns a projection over `input`; `keep_fraction` scales the output
    /// rate (narrower tuples).
    pub fn intern_project(
        &mut self,
        input: StreamId,
        projection: u64,
        keep_fraction: f64,
    ) -> OperatorId {
        assert!(
            keep_fraction > 0.0 && keep_fraction <= 1.0,
            "projection keeps a positive fraction"
        );
        let key = (OperatorKind::Project { projection }, vec![input]);
        if let Some(&id) = self.op_dedup.get(&key) {
            return id;
        }
        let sig = StreamSignature::Project { input, projection };
        let output = if let Some(&s) = self.by_signature.get(&sig) {
            s
        } else {
            let rate = self.streams[input.index()].rate * keep_fraction;
            let s = StreamId::from_index(self.streams.len());
            self.streams.push(StreamDef {
                id: s,
                signature: sig.clone(),
                rate,
                factor: keep_fraction,
            });
            self.by_signature.insert(sig, s);
            s
        };
        let cpu = self.cost.stateless_cpu(self.streams[input.index()].rate);
        let id = OperatorId::from_index(self.operators.len());
        self.operators.push(OperatorDef {
            id,
            kind: OperatorKind::Project { projection },
            inputs: vec![input],
            output,
            cpu_cost: cpu,
            memory_cost: 0.0,
        });
        self.op_dedup.insert(key, id);
        self.producers.entry(output).or_default().push(id);
        id
    }

    /// Updates a base stream's observed average rate and refreshes every
    /// derived stream rate and operator CPU cost (paper §IV-B: adaptive
    /// re-planning reacts to rate drift).
    ///
    /// # Panics
    /// Panics if `s` is not a base stream or the rate is non-positive.
    pub fn update_base_rate(&mut self, s: StreamId, rate: f64) {
        assert!(rate > 0.0, "rate must be positive");
        assert!(
            self.streams[s.index()].is_base(),
            "{s} is not a base stream"
        );
        self.streams[s.index()].rate = rate;
        self.refresh_derived();
    }

    /// Recomputes composite stream rates and operator CPU costs bottom-up.
    /// Streams are interned inputs-before-outputs, so a single pass in id
    /// order is a valid topological sweep.
    pub fn refresh_derived(&mut self) {
        for i in 0..self.streams.len() {
            let (sig, new_rate) = {
                let def = &self.streams[i];
                match &def.signature {
                    StreamSignature::Base { .. } => continue,
                    StreamSignature::Join { bases, .. } => {
                        let r = self.cost.join_rate(bases, |b| self.streams[b.index()].rate);
                        (None, r)
                    }
                    StreamSignature::Filter { input, .. }
                    | StreamSignature::Project { input, .. } => {
                        let in_rate = self.streams[input.index()].rate;
                        (Some(def.factor), in_rate * def.factor)
                    }
                }
            };
            let _ = sig;
            self.streams[i].rate = new_rate;
        }
        for i in 0..self.operators.len() {
            let rates: Vec<f64> = self.operators[i]
                .inputs
                .iter()
                .map(|&s| self.streams[s.index()].rate)
                .collect();
            self.operators[i].cpu_cost = match self.operators[i].kind {
                OperatorKind::Join => self.cost.join_cpu(&rates),
                OperatorKind::Filter { .. } | OperatorKind::Project { .. } => {
                    self.cost.stateless_cpu(rates.iter().sum())
                }
            };
            self.operators[i].memory_cost = match self.operators[i].kind {
                OperatorKind::Join => self.cost.join_memory(&rates),
                _ => 0.0,
            };
        }
    }

    /// Total CPU capacity across hosts (for the optimistic bound and the
    /// paper's weight normalisations).
    pub fn total_cpu(&self) -> f64 {
        self.hosts.iter().map(|h| h.cpu_capacity).sum()
    }

    /// Total outgoing bandwidth across hosts (`Σ β_h`, used for λ2).
    pub fn total_bandwidth_out(&self) -> f64 {
        self.hosts.iter().map(|h| h.bandwidth_out).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog2() -> Catalog {
        Catalog::uniform(2, HostSpec::new(10.0, 100.0), 1000.0, CostModel::default())
    }

    #[test]
    fn base_streams_register_and_dedup() {
        let mut c = catalog2();
        let a = c.add_base_stream(HostId(0), 10.0, 1);
        let a2 = c.add_base_stream(HostId(0), 10.0, 1);
        assert_eq!(a, a2);
        assert_eq!(c.num_streams(), 1);
        assert_eq!(c.base_streams_at(HostId(0)), &[a]);
        assert!(c.base_streams_at(HostId(1)).is_empty());
        assert_eq!(c.source_host(a), Some(HostId(0)));
    }

    #[test]
    fn join_operators_share_interned_output() {
        let mut c = catalog2();
        let a = c.add_base_stream(HostId(0), 10.0, 1);
        let b = c.add_base_stream(HostId(0), 10.0, 2);
        let d = c.add_base_stream(HostId(1), 10.0, 3);
        // (a ⋈ b) ⋈ d  vs  (a ⋈ d) ⋈ b: final outputs must coincide.
        let ab = c.intern_join_operator(a, b);
        let ab_s = c.operator(ab).output;
        let abd1 = c.intern_join_operator(ab_s, d);
        let ad = c.intern_join_operator(a, d);
        let ad_s = c.operator(ad).output;
        let abd2 = c.intern_join_operator(ad_s, b);
        assert_ne!(abd1, abd2, "different trees are different operators");
        assert_eq!(
            c.operator(abd1).output,
            c.operator(abd2).output,
            "same base set -> same interned stream"
        );
        let out = c.operator(abd1).output;
        assert_eq!(c.producers_of(out).len(), 2);
    }

    #[test]
    fn join_rate_matches_cost_model() {
        let mut c = catalog2();
        let a = c.add_base_stream(HostId(0), 10.0, 1);
        let b = c.add_base_stream(HostId(1), 20.0, 2);
        let op = c.intern_join_operator(a, b);
        let out = c.operator(op).output;
        let expected = 10.0 * 20.0 * c.cost_model().default_selectivity;
        assert!((c.stream(out).rate - expected).abs() < 1e-12);
        // CPU linear in input rates.
        assert!((c.operator(op).cpu_cost - 30.0).abs() < 1e-12);
    }

    #[test]
    fn join_operator_dedup() {
        let mut c = catalog2();
        let a = c.add_base_stream(HostId(0), 10.0, 1);
        let b = c.add_base_stream(HostId(1), 20.0, 2);
        let o1 = c.intern_join_operator(a, b);
        let o2 = c.intern_join_operator(b, a); // commuted
        assert_eq!(o1, o2);
        assert_eq!(c.num_operators(), 1);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_join_inputs_rejected() {
        let mut c = catalog2();
        let a = c.add_base_stream(HostId(0), 10.0, 1);
        let b = c.add_base_stream(HostId(1), 20.0, 2);
        let ab = c.intern_join_operator(a, b);
        let ab_s = c.operator(ab).output;
        c.intern_join_operator(ab_s, a); // `a` already inside ab
    }

    #[test]
    fn filters_and_projects_intern() {
        let mut c = catalog2();
        let a = c.add_base_stream(HostId(0), 10.0, 1);
        let f1 = c.intern_filter(a, 42, 0.5);
        let f2 = c.intern_filter(a, 42, 0.5);
        assert_eq!(f1, f2);
        let fs = c.operator(f1).output;
        assert!((c.stream(fs).rate - 5.0).abs() < 1e-12);
        let p = c.intern_project(fs, 7, 0.25);
        let ps = c.operator(p).output;
        assert!((c.stream(ps).rate - 1.25).abs() < 1e-12);
        assert_eq!(c.base_set(ps), [a].into_iter().collect());
    }

    #[test]
    fn rate_update_propagates_to_derived() {
        let mut c = catalog2();
        let a = c.add_base_stream(HostId(0), 10.0, 1);
        let b = c.add_base_stream(HostId(1), 20.0, 2);
        let op = c.intern_join_operator(a, b);
        let out = c.operator(op).output;
        let f = c.intern_filter(out, 9, 0.5);
        let fs = c.operator(f).output;
        let sel = c.cost_model().default_selectivity;
        c.update_base_rate(a, 30.0);
        assert!((c.stream(out).rate - 30.0 * 20.0 * sel).abs() < 1e-9);
        assert!((c.stream(fs).rate - 30.0 * 20.0 * sel * 0.5).abs() < 1e-9);
        assert!((c.operator(op).cpu_cost - 50.0).abs() < 1e-9);
    }

    #[test]
    fn rehoming_moves_the_ingest_point() {
        let mut c = catalog2();
        let a = c.add_base_stream(HostId(0), 10.0, 1);
        c.rehome_base_stream(a, HostId(1));
        assert_eq!(c.source_host(a), Some(HostId(1)));
        assert!(c.base_streams_at(HostId(0)).is_empty());
        assert_eq!(c.base_streams_at(HostId(1)), &[a]);
        assert!(c.is_base_at(a, HostId(1)));
        assert!(!c.is_base_at(a, HostId(0)));
    }

    #[test]
    fn orphaned_sources_reconnect_round_robin_to_survivors() {
        let mut c = Catalog::uniform(4, HostSpec::new(10.0, 100.0), 1000.0, CostModel::default());
        let a = c.add_base_stream(HostId(0), 10.0, 1);
        let b = c.add_base_stream(HostId(0), 10.0, 2);
        let d = c.add_base_stream(HostId(1), 10.0, 3);
        c.fail_host(HostId(0));
        let moves = c.rehome_orphaned_sources();
        // a -> survivor 1, b -> survivor 2 (round-robin over {1, 2, 3}).
        assert_eq!(
            moves,
            vec![(a, HostId(0), HostId(1)), (b, HostId(0), HostId(2)),]
        );
        assert_eq!(c.source_host(d), Some(HostId(1)));
        assert!(c.base_streams_at(HostId(0)).is_empty());
        // Idempotent: nothing left to move.
        assert!(c.rehome_orphaned_sources().is_empty());
        // All hosts down: nowhere to reconnect.
        for h in 1..4 {
            c.fail_host(HostId(h));
        }
        assert!(c.rehome_orphaned_sources().is_empty());
    }

    #[test]
    fn totals() {
        let c = catalog2();
        assert_eq!(c.total_cpu(), 20.0);
        assert_eq!(c.total_bandwidth_out(), 200.0);
    }
}
