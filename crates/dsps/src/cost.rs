//! Rate and CPU cost model (paper §II-B).
//!
//! The paper assumes "a simple cost model where the required processing
//! resources for operators and the output stream network consumptions are
//! linear functions of the rates of input streams", and the evaluation uses
//! joins with selectivities in 0.1%–0.5%.
//!
//! To make k-way join results *order independent* (so that every join tree
//! over the same base set produces the same stream, enabling the semantic
//! reuse of §II-C), each unordered pair of base streams `{a, b}` carries a
//! pairwise selectivity `σ_ab`, and
//!
//! ```text
//! rate(join over base set U) = Π_{a∈U} rate(a) · Π_{{a,b}⊆U} σ_ab
//! ```
//!
//! which depends only on `U`, never on the tree shape. Operator CPU cost is
//! `cpu_per_rate · (sum of input rates)`.

use crate::ids::StreamId;
use std::collections::{BTreeMap, BTreeSet};

/// Cost model parameters and the pairwise selectivity table.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// CPU units consumed per unit of total input rate (joins).
    pub cpu_per_rate_join: f64,
    /// CPU units per unit input rate for stateless operators (filter/project).
    pub cpu_per_rate_stateless: f64,
    /// Memory units of window state per unit of total input rate (joins
    /// buffer a moving window over each input; paper §VII lists memory as
    /// a planned resource extension).
    pub memory_per_rate_join: f64,
    /// Selectivity used when a pair has no explicit entry.
    pub default_selectivity: f64,
    selectivities: BTreeMap<(StreamId, StreamId), f64>,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cpu_per_rate_join: 1.0,
            cpu_per_rate_stateless: 0.25,
            memory_per_rate_join: 0.5,
            default_selectivity: 0.003, // middle of the paper's 0.1%–0.5%
            selectivities: BTreeMap::new(),
        }
    }
}

impl CostModel {
    pub fn new(cpu_per_rate_join: f64, cpu_per_rate_stateless: f64, default_sel: f64) -> Self {
        CostModel {
            cpu_per_rate_join,
            cpu_per_rate_stateless,
            memory_per_rate_join: 0.5,
            default_selectivity: default_sel,
            selectivities: BTreeMap::new(),
        }
    }

    fn key(a: StreamId, b: StreamId) -> (StreamId, StreamId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Sets the selectivity for an unordered base-stream pair.
    pub fn set_selectivity(&mut self, a: StreamId, b: StreamId, sigma: f64) {
        assert!(sigma > 0.0, "selectivity must be positive");
        self.selectivities.insert(Self::key(a, b), sigma);
    }

    /// Selectivity of an unordered base-stream pair.
    pub fn selectivity(&self, a: StreamId, b: StreamId) -> f64 {
        self.selectivities
            .get(&Self::key(a, b))
            .copied()
            .unwrap_or(self.default_selectivity)
    }

    /// Rate of the join result over a base set, given per-base rates.
    ///
    /// Order independent: depends only on the set `bases`.
    pub fn join_rate(
        &self,
        bases: &BTreeSet<StreamId>,
        base_rate: impl Fn(StreamId) -> f64,
    ) -> f64 {
        let mut rate = 1.0;
        for &b in bases {
            rate *= base_rate(b);
        }
        let v: Vec<StreamId> = bases.iter().copied().collect();
        for i in 0..v.len() {
            for j in i + 1..v.len() {
                rate *= self.selectivity(v[i], v[j]);
            }
        }
        rate
    }

    /// CPU cost `γ_o` of a join operator with the given input rates.
    pub fn join_cpu(&self, input_rates: &[f64]) -> f64 {
        self.cpu_per_rate_join * input_rates.iter().sum::<f64>()
    }

    /// CPU cost of a stateless (filter/project/relay-side) operator.
    pub fn stateless_cpu(&self, input_rate: f64) -> f64 {
        self.cpu_per_rate_stateless * input_rate
    }

    /// Memory cost (window state) of a join over the given input rates;
    /// stateless operators hold no window state.
    pub fn join_memory(&self, input_rates: &[f64]) -> f64 {
        self.memory_per_rate_join * input_rates.iter().sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> BTreeSet<StreamId> {
        ids.iter().map(|&i| StreamId(i)).collect()
    }

    #[test]
    fn pairwise_selectivity_is_symmetric() {
        let mut cm = CostModel::default();
        cm.set_selectivity(StreamId(1), StreamId(2), 0.01);
        assert_eq!(cm.selectivity(StreamId(2), StreamId(1)), 0.01);
        assert_eq!(cm.selectivity(StreamId(1), StreamId(2)), 0.01);
        assert_eq!(cm.selectivity(StreamId(1), StreamId(3)), 0.003);
    }

    #[test]
    fn join_rate_depends_only_on_base_set() {
        let mut cm = CostModel::default();
        cm.set_selectivity(StreamId(0), StreamId(1), 0.002);
        cm.set_selectivity(StreamId(0), StreamId(2), 0.004);
        cm.set_selectivity(StreamId(1), StreamId(2), 0.001);
        let rate = |_s: StreamId| 10.0;
        let r = cm.join_rate(&set(&[0, 1, 2]), rate);
        // 10^3 * 0.002 * 0.004 * 0.001
        assert!((r - 1000.0 * 0.002 * 0.004 * 0.001).abs() < 1e-12);
    }

    #[test]
    fn two_way_join_rate() {
        let mut cm = CostModel::default();
        cm.set_selectivity(StreamId(5), StreamId(6), 0.005);
        let rate = |s: StreamId| if s == StreamId(5) { 10.0 } else { 20.0 };
        let r = cm.join_rate(&set(&[5, 6]), rate);
        assert!((r - 10.0 * 20.0 * 0.005).abs() < 1e-12);
    }

    #[test]
    fn cpu_costs_linear_in_rates() {
        let cm = CostModel::new(2.0, 0.5, 0.003);
        assert_eq!(cm.join_cpu(&[3.0, 4.0]), 14.0);
        assert_eq!(cm.stateless_cpu(8.0), 4.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_selectivity() {
        let mut cm = CostModel::default();
        cm.set_selectivity(StreamId(0), StreamId(1), 0.0);
    }
}
