//! Global deployment state: the live counterpart of the decision variables
//! `(d, x, y, z)` of the optimisation model (paper §III-B).
//!
//! Tracks which host provides each demanded stream (`d`), the inter-host
//! stream flows (`x`), stream availability per host (`y`) and operator
//! placements (`z`), together with residual-resource accounting against the
//! catalog's capacities. [`DeploymentState::validate`] re-derives
//! availability as a least fixpoint from base streams and placed operators,
//! which simultaneously checks the availability constraints (III.5) and
//! causality — a self-sustaining flow cycle is underivable, mirroring the
//! role of the paper's acyclicity constraints (III.7).

use std::collections::{BTreeMap, BTreeSet};

use crate::catalog::Catalog;
use crate::ids::{HostId, OperatorId, QueryId, StreamId};

/// Live allocation state of the whole DSPS.
#[derive(Debug, Clone, Default)]
pub struct DeploymentState {
    /// `d`: serving host per demanded stream (III.4b: at most one).
    provided: BTreeMap<StreamId, HostId>,
    /// `x`: inter-host flows.
    flows: BTreeSet<(HostId, HostId, StreamId)>,
    /// `y`: stream availability per host.
    available: BTreeSet<(HostId, StreamId)>,
    /// `z`: operator placements.
    placements: BTreeSet<(HostId, OperatorId)>,
    /// Admitted queries and their demanded streams.
    admitted: BTreeMap<QueryId, StreamId>,
}

/// Violations reported by [`DeploymentState::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum DeployError {
    /// An availability claim could not be derived from sources/operators
    /// (covers III.5a and causality).
    Underivable { host: HostId, stream: StreamId },
    /// An operator is placed where an input stream is unavailable (III.5b).
    InputUnavailable { host: HostId, operator: OperatorId },
    /// A flow sends a stream its sender does not have (III.5c).
    FlowWithoutStream { from: HostId, stream: StreamId },
    /// A demanded stream is served by a host that does not have it (III.4a).
    ProvidedUnavailable { host: HostId, stream: StreamId },
    /// Link capacity exceeded (III.6a).
    LinkOverload {
        from: HostId,
        to: HostId,
        used: f64,
        cap: f64,
    },
    /// Incoming host bandwidth exceeded (III.6b).
    InBandwidthOverload { host: HostId, used: f64, cap: f64 },
    /// Outgoing host bandwidth exceeded (III.6c).
    OutBandwidthOverload { host: HostId, used: f64, cap: f64 },
    /// CPU capacity exceeded (III.6d).
    CpuOverload { host: HostId, used: f64, cap: f64 },
    /// Memory capacity exceeded (the §VII memory extension).
    MemoryOverload { host: HostId, used: f64, cap: f64 },
    /// An admitted query's stream has no serving host.
    QueryUnserved { query: QueryId, stream: StreamId },
}

/// Per-host resource usage snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct HostUsage {
    pub cpu: f64,
    pub memory: f64,
    pub net_out: f64,
    pub net_in: f64,
}

impl DeploymentState {
    pub fn new() -> Self {
        Self::default()
    }

    // ----- mutation -------------------------------------------------------

    pub fn set_provided(&mut self, stream: StreamId, host: HostId) {
        self.provided.insert(stream, host);
    }

    pub fn clear_provided(&mut self, stream: StreamId) {
        self.provided.remove(&stream);
    }

    pub fn add_flow(&mut self, from: HostId, to: HostId, stream: StreamId) {
        assert!(from != to, "flows connect distinct hosts");
        self.flows.insert((from, to, stream));
    }

    pub fn remove_flow(&mut self, from: HostId, to: HostId, stream: StreamId) {
        self.flows.remove(&(from, to, stream));
    }

    pub fn add_available(&mut self, host: HostId, stream: StreamId) {
        self.available.insert((host, stream));
    }

    pub fn add_placement(&mut self, host: HostId, op: OperatorId) {
        self.placements.insert((host, op));
    }

    pub fn remove_placement(&mut self, host: HostId, op: OperatorId) {
        self.placements.remove(&(host, op));
    }

    pub fn admit_query(&mut self, q: QueryId, stream: StreamId) {
        self.admitted.insert(q, stream);
    }

    pub fn remove_query(&mut self, q: QueryId) -> Option<StreamId> {
        self.admitted.remove(&q)
    }

    /// Replaces the allocation variables wholesale (used when the planner
    /// decodes a fresh MILP solution). Admitted queries are preserved.
    pub fn replace_allocation(
        &mut self,
        provided: BTreeMap<StreamId, HostId>,
        flows: BTreeSet<(HostId, HostId, StreamId)>,
        available: BTreeSet<(HostId, StreamId)>,
        placements: BTreeSet<(HostId, OperatorId)>,
    ) {
        self.provided = provided;
        self.flows = flows;
        self.available = available;
        self.placements = placements;
    }

    // ----- accessors ------------------------------------------------------

    pub fn provider_of(&self, stream: StreamId) -> Option<HostId> {
        self.provided.get(&stream).copied()
    }

    pub fn provided(&self) -> &BTreeMap<StreamId, HostId> {
        &self.provided
    }

    pub fn flows(&self) -> &BTreeSet<(HostId, HostId, StreamId)> {
        &self.flows
    }

    pub fn available(&self) -> &BTreeSet<(HostId, StreamId)> {
        &self.available
    }

    pub fn is_available(&self, host: HostId, stream: StreamId) -> bool {
        self.available.contains(&(host, stream))
    }

    pub fn placements(&self) -> &BTreeSet<(HostId, OperatorId)> {
        &self.placements
    }

    pub fn is_placed(&self, host: HostId, op: OperatorId) -> bool {
        self.placements.contains(&(host, op))
    }

    pub fn admitted(&self) -> &BTreeMap<QueryId, StreamId> {
        &self.admitted
    }

    pub fn num_admitted(&self) -> usize {
        self.admitted.len()
    }

    /// Hosts that currently have stream `s`.
    pub fn hosts_with(&self, s: StreamId) -> impl Iterator<Item = HostId> + '_ {
        self.available
            .iter()
            .filter(move |&&(_, st)| st == s)
            .map(|&(h, _)| h)
    }

    // ----- resource accounting --------------------------------------------

    /// Per-host CPU usage from operator placements.
    pub fn cpu_usage(&self, catalog: &Catalog) -> Vec<f64> {
        let mut cpu = vec![0.0; catalog.num_hosts()];
        for &(h, o) in &self.placements {
            cpu[h.index()] += catalog.operator(o).cpu_cost;
        }
        cpu
    }

    /// Per-host window-state memory usage from operator placements.
    pub fn memory_usage(&self, catalog: &Catalog) -> Vec<f64> {
        let mut mem = vec![0.0; catalog.num_hosts()];
        for &(h, o) in &self.placements {
            mem[h.index()] += catalog.operator(o).memory_cost;
        }
        mem
    }

    /// Per-host network usage: `(out, in)` aggregated over flows and client
    /// deliveries (the `d` terms of III.6c).
    pub fn net_usage(&self, catalog: &Catalog) -> Vec<(f64, f64)> {
        let mut net = vec![(0.0, 0.0); catalog.num_hosts()];
        for &(from, to, s) in &self.flows {
            let rate = catalog.stream(s).rate;
            net[from.index()].0 += rate;
            net[to.index()].1 += rate;
        }
        for (&s, &h) in &self.provided {
            net[h.index()].0 += catalog.stream(s).rate;
        }
        net
    }

    /// Per-link usage keyed by `(from, to)`.
    pub fn link_usage(&self, catalog: &Catalog) -> BTreeMap<(HostId, HostId), f64> {
        let mut links: BTreeMap<(HostId, HostId), f64> = BTreeMap::new();
        for &(from, to, s) in &self.flows {
            *links.entry((from, to)).or_default() += catalog.stream(s).rate;
        }
        links
    }

    /// Combined usage snapshot per host.
    pub fn host_usage(&self, catalog: &Catalog) -> Vec<HostUsage> {
        let cpu = self.cpu_usage(catalog);
        let mem = self.memory_usage(catalog);
        let net = self.net_usage(catalog);
        cpu.into_iter()
            .zip(mem)
            .zip(net)
            .map(|((cpu, memory), (net_out, net_in))| HostUsage {
                cpu,
                memory,
                net_out,
                net_in,
            })
            .collect()
    }

    // ----- validation -----------------------------------------------------

    /// Recomputes the availability least fixpoint from base-stream sources,
    /// placed operators and flows. Anything derivable is returned; claimed
    /// availability outside this set is bogus (acausal).
    pub fn derive_availability(&self, catalog: &Catalog) -> BTreeSet<(HostId, StreamId)> {
        let mut derived: BTreeSet<(HostId, StreamId)> = BTreeSet::new();
        for h in catalog.hosts() {
            // A failed host sources nothing: its base seeds are dark until
            // restoration, so derivations rooted there collapse.
            if catalog.is_host_failed(h) {
                continue;
            }
            for &s in catalog.base_streams_at(h) {
                derived.insert((h, s));
            }
        }
        loop {
            let mut changed = false;
            // Operators produce outputs where all inputs are derivable.
            for &(h, o) in &self.placements {
                let op = catalog.operator(o);
                if derived.contains(&(h, op.output)) {
                    continue;
                }
                if op.inputs.iter().all(|&i| derived.contains(&(h, i))) {
                    derived.insert((h, op.output));
                    changed = true;
                }
            }
            // Flows deliver streams their senders can derive.
            for &(from, to, s) in &self.flows {
                if derived.contains(&(from, s)) && !derived.contains(&(to, s)) {
                    derived.insert((to, s));
                    changed = true;
                }
            }
            if !changed {
                return derived;
            }
        }
    }

    /// Full validation against the catalog: availability closure (III.5 +
    /// causality), demand constraints (III.4), resource limits (III.6) and
    /// admitted-query service. Returns all violations found.
    pub fn validate(&self, catalog: &Catalog) -> Vec<DeployError> {
        let mut errs = Vec::new();
        let derived = self.derive_availability(catalog);

        for &(h, s) in &self.available {
            if !derived.contains(&(h, s)) {
                errs.push(DeployError::Underivable { host: h, stream: s });
            }
        }
        for &(h, o) in &self.placements {
            let op = catalog.operator(o);
            for &i in &op.inputs {
                if !derived.contains(&(h, i)) {
                    errs.push(DeployError::InputUnavailable {
                        host: h,
                        operator: o,
                    });
                    break;
                }
            }
        }
        for &(from, _, s) in &self.flows {
            if !derived.contains(&(from, s)) {
                errs.push(DeployError::FlowWithoutStream { from, stream: s });
            }
        }
        for (&s, &h) in &self.provided {
            if !derived.contains(&(h, s)) {
                errs.push(DeployError::ProvidedUnavailable { host: h, stream: s });
            }
        }
        for (&q, &s) in &self.admitted {
            if !self.provided.contains_key(&s) {
                errs.push(DeployError::QueryUnserved {
                    query: q,
                    stream: s,
                });
            }
        }

        // Resources.
        const TOL: f64 = 1e-6;
        let cpu = self.cpu_usage(catalog);
        for h in catalog.hosts() {
            let cap = catalog.host(h).cpu_capacity;
            if cpu[h.index()] > cap * (1.0 + TOL) + TOL {
                errs.push(DeployError::CpuOverload {
                    host: h,
                    used: cpu[h.index()],
                    cap,
                });
            }
        }
        let mem = self.memory_usage(catalog);
        for h in catalog.hosts() {
            let cap = catalog.host(h).memory_capacity;
            if cap.is_finite() && mem[h.index()] > cap * (1.0 + TOL) + TOL {
                errs.push(DeployError::MemoryOverload {
                    host: h,
                    used: mem[h.index()],
                    cap,
                });
            }
        }
        let net = self.net_usage(catalog);
        for h in catalog.hosts() {
            let spec = catalog.host(h);
            let (out, inn) = net[h.index()];
            if out > spec.bandwidth_out * (1.0 + TOL) + TOL {
                errs.push(DeployError::OutBandwidthOverload {
                    host: h,
                    used: out,
                    cap: spec.bandwidth_out,
                });
            }
            if inn > spec.bandwidth_in * (1.0 + TOL) + TOL {
                errs.push(DeployError::InBandwidthOverload {
                    host: h,
                    used: inn,
                    cap: spec.bandwidth_in,
                });
            }
        }
        for ((from, to), used) in self.link_usage(catalog) {
            let cap = catalog.topology().link(from, to);
            if used > cap * (1.0 + TOL) + TOL {
                errs.push(DeployError::LinkOverload {
                    from,
                    to,
                    used,
                    cap,
                });
            }
        }
        errs
    }

    /// Convenience: true when [`Self::validate`] reports nothing.
    pub fn is_valid(&self, catalog: &Catalog) -> bool {
        self.validate(catalog).is_empty()
    }

    // ----- failure audit --------------------------------------------------

    /// Maps the catalog's current failures onto this deployment: strips
    /// every allocation piece the failures break and reports which admitted
    /// queries lost their provision as a result.
    ///
    /// The sweep is deterministic: (1) placements and availability on
    /// failed hosts go, as do flows touching them; (2) flows over links
    /// whose surviving load exceeds the (possibly degraded) capacity are
    /// dropped in key order until the link fits; (3) availability claims,
    /// flows and provisions are restricted to the re-derived fixpoint; (4)
    /// admitted queries whose demanded stream lost its provider are the
    /// *displaced* set, removed from the survivor's admissions so they can
    /// re-enter admission.
    ///
    /// The survivor state may still hold pieces that no longer serve
    /// anything (e.g. a partial join tree upstream of a dead flow); callers
    /// reclaim those with their usual garbage collection.
    pub fn audit_failures(&self, catalog: &Catalog) -> FailureAudit {
        const TOL: f64 = 1e-6;
        let failed: BTreeSet<HostId> = catalog.failed_hosts().collect();
        let mut s = self.clone();

        // (1) Everything on or through a failed host is gone.
        s.placements.retain(|(h, _)| !failed.contains(h));
        s.available.retain(|(h, _)| !failed.contains(h));
        s.flows
            .retain(|(h, m, _)| !failed.contains(h) && !failed.contains(m));

        // (2) Degraded links: shed flows (ascending key order) until the
        // surviving load fits the effective capacity.
        let mut load: BTreeMap<(HostId, HostId), f64> = BTreeMap::new();
        for &(h, m, st) in &s.flows {
            *load.entry((h, m)).or_default() += catalog.stream(st).rate;
        }
        let mut shed: Vec<(HostId, HostId, StreamId)> = Vec::new();
        for (&(h, m), load) in &mut load {
            let cap = catalog.topology().link(h, m);
            for &(fh, fm, st) in &s.flows {
                if *load <= cap * (1.0 + TOL) + TOL {
                    break;
                }
                if fh == h && fm == m {
                    shed.push((fh, fm, st));
                    *load -= catalog.stream(st).rate;
                }
            }
        }
        for f in shed {
            s.flows.remove(&f);
        }

        // (3) Fixpoint restriction: claims that no longer derive are bogus.
        let derived = s.derive_availability(catalog);
        s.available.retain(|k| derived.contains(k));
        s.flows
            .retain(|&(from, _, st)| derived.contains(&(from, st)));
        s.provided.retain(|&st, &mut h| derived.contains(&(h, st)));

        // (4) Displaced queries lost their provider.
        let displaced: Vec<QueryId> = s
            .admitted
            .iter()
            .filter(|(_, st)| !s.provided.contains_key(st))
            .map(|(&q, _)| q)
            .collect();
        for q in &displaced {
            s.admitted.remove(q);
        }

        FailureAudit {
            failed_hosts: failed.into_iter().collect(),
            lost_placements: self.placements.len() - s.placements.len(),
            lost_flows: self.flows.len() - s.flows.len(),
            displaced,
            survivor: s,
        }
    }
}

/// Result of [`DeploymentState::audit_failures`]: what a failure broke and
/// the deployment that survives it.
#[derive(Debug, Clone)]
pub struct FailureAudit {
    /// Hosts failed in the catalog at audit time, ascending.
    pub failed_hosts: Vec<HostId>,
    /// Admitted queries whose demanded stream lost its provider, ascending
    /// by id (the re-admission order of the recovery storm).
    pub displaced: Vec<QueryId>,
    /// Operator placements stripped by the audit.
    pub lost_placements: usize,
    /// Flows stripped (failed endpoints, shed on degraded links, or
    /// underivable senders).
    pub lost_flows: usize,
    /// The deployment with every broken piece removed and displaced
    /// queries un-admitted. Always [`DeploymentState::is_valid`] for a
    /// previously valid input.
    pub survivor: DeploymentState,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::topology::HostSpec;

    fn setup() -> (Catalog, StreamId, StreamId, OperatorId, StreamId) {
        let mut c = Catalog::uniform(3, HostSpec::new(100.0, 100.0), 50.0, CostModel::default());
        let a = c.add_base_stream(HostId(0), 10.0, 1);
        let b = c.add_base_stream(HostId(1), 10.0, 2);
        let op = c.intern_join_operator(a, b);
        let ab = c.operator(op).output;
        (c, a, b, op, ab)
    }

    #[test]
    fn empty_state_is_valid() {
        let (c, ..) = setup();
        let d = DeploymentState::new();
        assert!(d.is_valid(&c));
        assert_eq!(d.num_admitted(), 0);
    }

    #[test]
    fn derivation_through_flow_and_operator() {
        let (c, a, b, op, ab) = setup();
        let mut d = DeploymentState::new();
        // Ship b from h1 to h0, join at h0.
        d.add_flow(HostId(1), HostId(0), b);
        d.add_placement(HostId(0), op);
        d.add_available(HostId(0), ab);
        d.set_provided(ab, HostId(0));
        let _ = a;
        assert!(d.is_valid(&c), "{:?}", d.validate(&c));
        let derived = d.derive_availability(&c);
        assert!(derived.contains(&(HostId(0), ab)));
        assert!(derived.contains(&(HostId(0), b)));
    }

    #[test]
    fn relay_chain_derives() {
        let (c, a, _, _, _) = setup();
        let mut d = DeploymentState::new();
        // a: h0 -> h2 -> h1 (h2 relays).
        d.add_flow(HostId(0), HostId(2), a);
        d.add_flow(HostId(2), HostId(1), a);
        assert!(d.is_valid(&c));
        let derived = d.derive_availability(&c);
        assert!(derived.contains(&(HostId(1), a)));
    }

    #[test]
    fn acausal_cycle_rejected() {
        let (c, _, b, op, ab) = setup();
        let _ = (b, op);
        let mut d = DeploymentState::new();
        // ab circulates between h1 and h2 but nobody produces it.
        d.add_flow(HostId(1), HostId(2), ab);
        d.add_flow(HostId(2), HostId(1), ab);
        let errs = d.validate(&c);
        assert!(
            errs.iter()
                .any(|e| matches!(e, DeployError::FlowWithoutStream { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn operator_without_inputs_rejected() {
        let (c, _, _, op, _) = setup();
        let mut d = DeploymentState::new();
        d.add_placement(HostId(2), op); // h2 has neither a nor b
        let errs = d.validate(&c);
        assert!(errs
            .iter()
            .any(|e| matches!(e, DeployError::InputUnavailable { .. })));
    }

    #[test]
    fn memory_overload_detected() {
        let mut host = HostSpec::new(1000.0, 1e9);
        host.memory_capacity = 1.0;
        let mut c = Catalog::new(
            vec![host],
            crate::topology::NetworkTopology::full_mesh(1, 1e9),
            CostModel::default(),
        );
        let a = c.add_base_stream(HostId(0), 10.0, 1);
        let b = c.add_base_stream(HostId(0), 10.0, 2);
        let op = c.intern_join_operator(a, b); // memory = 0.5 * 20 = 10 > 1
        let mut d = DeploymentState::new();
        d.add_placement(HostId(0), op);
        let errs = d.validate(&c);
        assert!(errs
            .iter()
            .any(|e| matches!(e, DeployError::MemoryOverload { .. })));
    }

    #[test]
    fn cpu_overload_detected() {
        let mut c = Catalog::uniform(1, HostSpec::new(0.5, 1e9), 1e9, CostModel::default());
        let a = c.add_base_stream(HostId(0), 10.0, 1);
        let b = c.add_base_stream(HostId(0), 10.0, 2);
        let op = c.intern_join_operator(a, b); // cpu = 20 > 0.5
        let mut d = DeploymentState::new();
        d.add_placement(HostId(0), op);
        let errs = d.validate(&c);
        assert!(errs
            .iter()
            .any(|e| matches!(e, DeployError::CpuOverload { .. })));
    }

    #[test]
    fn bandwidth_and_link_overload_detected() {
        let mut c = Catalog::uniform(2, HostSpec::new(100.0, 5.0), 5.0, CostModel::default());
        let a = c.add_base_stream(HostId(0), 10.0, 1); // rate 10 > caps of 5
        let mut d = DeploymentState::new();
        d.add_flow(HostId(0), HostId(1), a);
        let errs = d.validate(&c);
        assert!(errs
            .iter()
            .any(|e| matches!(e, DeployError::LinkOverload { .. })));
        assert!(errs
            .iter()
            .any(|e| matches!(e, DeployError::OutBandwidthOverload { .. })));
        assert!(errs
            .iter()
            .any(|e| matches!(e, DeployError::InBandwidthOverload { .. })));
    }

    #[test]
    fn provided_stream_counts_against_out_bandwidth() {
        let mut c = Catalog::uniform(1, HostSpec::new(100.0, 15.0), 1e9, CostModel::default());
        let a = c.add_base_stream(HostId(0), 10.0, 1);
        let mut d = DeploymentState::new();
        d.set_provided(a, HostId(0));
        let net = d.net_usage(&c);
        assert_eq!(net[0].0, 10.0);
        assert!(d.is_valid(&c));
    }

    #[test]
    fn host_failure_displaces_served_query() {
        let (mut c, _, b, op, ab) = setup();
        let mut d = DeploymentState::new();
        d.add_flow(HostId(1), HostId(0), b);
        d.add_placement(HostId(0), op);
        d.add_available(HostId(0), ab);
        d.set_provided(ab, HostId(0));
        d.admit_query(QueryId(7), ab);
        assert!(d.is_valid(&c));

        // Failing the join host breaks the placement and the provision.
        assert!(c.fail_host(HostId(0)));
        let audit = d.audit_failures(&c);
        assert_eq!(audit.failed_hosts, vec![HostId(0)]);
        assert_eq!(audit.displaced, vec![QueryId(7)]);
        assert_eq!(audit.lost_placements, 1);
        assert_eq!(audit.lost_flows, 1);
        assert!(audit.survivor.placements().is_empty());
        assert!(audit.survivor.provided().is_empty());
        assert!(audit.survivor.admitted().is_empty());
        assert!(audit.survivor.is_valid(&c), "survivor must validate");

        // Restoration brings the substrate back; the old state validates
        // again (recovery is the planner's job, the audit is read-only).
        assert!(c.restore_host(HostId(0)));
        assert!(d.is_valid(&c));
    }

    #[test]
    fn source_failure_collapses_downstream_derivations() {
        let (mut c, _, b, op, ab) = setup();
        let mut d = DeploymentState::new();
        d.add_flow(HostId(1), HostId(0), b);
        d.add_placement(HostId(0), op);
        d.set_provided(ab, HostId(0));
        d.admit_query(QueryId(1), ab);
        // Failing b's *source* (h1) kills the flow and thus the join.
        c.fail_host(HostId(1));
        let audit = d.audit_failures(&c);
        assert_eq!(audit.displaced, vec![QueryId(1)]);
        // The stranded placement at h0 survives the audit (it is not on a
        // failed host) but has underivable inputs; GC reclaims it later.
        assert!(audit.survivor.provided().is_empty());
    }

    #[test]
    fn degraded_link_sheds_flows_deterministically() {
        let mut c = Catalog::uniform(2, HostSpec::new(100.0, 100.0), 50.0, CostModel::default());
        let a = c.add_base_stream(HostId(0), 10.0, 1);
        let b = c.add_base_stream(HostId(0), 10.0, 2);
        let mut d = DeploymentState::new();
        d.add_flow(HostId(0), HostId(1), a);
        d.add_flow(HostId(0), HostId(1), b);
        assert!(d.is_valid(&c));
        // Room for exactly one flow: the smallest key (stream a) is shed
        // first, keeping the audit deterministic.
        c.degrade_link(HostId(0), HostId(1), 12.0);
        let audit = d.audit_failures(&c);
        assert_eq!(audit.lost_flows, 1);
        assert!(!audit.survivor.flows().contains(&(HostId(0), HostId(1), a)));
        assert!(audit.survivor.flows().contains(&(HostId(0), HostId(1), b)));
        assert!(audit.survivor.is_valid(&c));
        c.restore_link(HostId(0), HostId(1));
        assert_eq!(d.audit_failures(&c).lost_flows, 0);
    }

    #[test]
    fn unserved_query_reported() {
        let (c, _, _, _, ab) = setup();
        let mut d = DeploymentState::new();
        d.admit_query(QueryId(0), ab);
        let errs = d.validate(&c);
        assert!(errs
            .iter()
            .any(|e| matches!(e, DeployError::QueryUnserved { .. })));
    }
}
