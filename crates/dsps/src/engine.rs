//! DISSP-style execution engine: a discrete-time fluid simulator.
//!
//! The paper's cluster experiments (§V-B) run a prototype DSPS (DISSP) on
//! Emulab and measure per-host CPU utilisation and network usage. We do not
//! have Emulab; this engine substitutes a deterministic discrete-time
//! simulation of tuple flow: stream volumes are fluid quantities produced by
//! sources, consumed by operator instances under per-host CPU budgets, and
//! shipped across links under bandwidth budgets. Each consumer (operator
//! input, inter-host flow, client delivery) reads the stream independently —
//! streams are broadcast, so consumers track private offsets against the
//! cumulative volume that has arrived at their host.
//!
//! The simulator reports what the paper's resource monitors report: per-host
//! CPU utilisation and network usage, plus backlog diagnostics that expose
//! overload (growing queues) when a planner has oversubscribed a host.

use std::collections::BTreeMap;

use crate::catalog::Catalog;
use crate::deployment::DeploymentState;
use crate::ids::{HostId, OperatorId, StreamId};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Simulated seconds per tick.
    pub tick_seconds: f64,
    /// Ticks discarded before measurement starts.
    pub warmup_ticks: usize,
    /// Ticks measured.
    pub measure_ticks: usize,
    /// Multiplicative CPU-cost noise amplitude (0 disables; 0.05 = ±5%).
    pub cpu_noise: f64,
    /// RNG seed for the noise process.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            tick_seconds: 1.0,
            warmup_ticks: 10,
            measure_ticks: 50,
            cpu_noise: 0.0,
            seed: 0xC0FFEE,
        }
    }
}

/// Measurement output of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Mean CPU utilisation per host, as a fraction of `ζ_h` in `[0, 1]`.
    pub cpu_utilization: Vec<f64>,
    /// Mean network usage per host (sent + received, rate units).
    pub net_usage: Vec<f64>,
    /// Mean outgoing rate per host.
    pub net_out: Vec<f64>,
    /// Mean incoming rate per host.
    pub net_in: Vec<f64>,
    /// Total volume delivered to clients over the measurement window.
    pub delivered: f64,
    /// Final total backlog across all consumers (should stay bounded when
    /// the deployment is feasible).
    pub final_backlog: f64,
    /// Mean total backlog over the measurement window.
    pub mean_backlog: f64,
    /// Little's-law latency estimate in seconds: mean backlog divided by
    /// total consumption throughput (volume drained per second across all
    /// consumers). Grows without bound for overloaded deployments; small
    /// and roughly constant for feasible ones. The paper's §II discussion
    /// ties load balancing to processing latency — this is the measurable
    /// counterpart.
    pub latency_estimate: f64,
    /// Ticks simulated (warmup + measurement).
    pub ticks: usize,
}

/// Tiny xorshift64* generator so the substrate stays dependency-free.
#[derive(Debug, Clone)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in `[-1, 1]`.
    fn next_signed(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }
}

/// Consumer identity for offset bookkeeping. `Ord` because consumers key a
/// `BTreeMap`: `total_backlog` sums floats in iteration order, and that sum
/// must not depend on hash state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Consumer {
    /// Operator instance input: (host, operator, input stream).
    OpInput(HostId, OperatorId, StreamId),
    /// Inter-host flow: (from, to, stream).
    Flow(HostId, HostId, StreamId),
    /// Client delivery of a provided stream from a host.
    Client(HostId, StreamId),
}

/// Runs the engine over a deployment and reports resource measurements.
pub fn run(catalog: &Catalog, deployment: &DeploymentState, cfg: &EngineConfig) -> SimReport {
    let n = catalog.num_hosts();
    let tick = cfg.tick_seconds;
    let mut rng = XorShift::new(cfg.seed);

    // Cumulative arrived volume per (host, stream).
    let mut arrived: BTreeMap<(HostId, StreamId), f64> = BTreeMap::new();
    // Private offsets per consumer.
    let mut consumed: BTreeMap<Consumer, f64> = BTreeMap::new();

    // Operators per host, ordered by stream derivation depth so upstream
    // operators run first within a tick.
    let depth = stream_depths(catalog);
    let mut host_ops: Vec<Vec<OperatorId>> = vec![Vec::new(); n];
    for &(h, o) in deployment.placements() {
        host_ops[h.index()].push(o);
    }
    for ops in &mut host_ops {
        ops.sort_by_key(|&o| depth[catalog.operator(o).output.index()]);
    }
    let flows: Vec<(HostId, HostId, StreamId)> = deployment.flows().iter().copied().collect();

    let mut cpu_acc = vec![0.0; n];
    let mut out_acc = vec![0.0; n];
    let mut in_acc = vec![0.0; n];
    let mut delivered = 0.0;
    let mut backlog_acc = 0.0;
    let mut backlog_samples = 0usize;
    let mut consumed_acc = 0.0;

    let total_ticks = cfg.warmup_ticks + cfg.measure_ticks;
    for t in 0..total_ticks {
        let measuring = t >= cfg.warmup_ticks;

        // 1. Sources inject base streams at their hosts.
        for h in catalog.hosts() {
            for &s in catalog.base_streams_at(h) {
                *arrived.entry((h, s)).or_default() += catalog.stream(s).rate * tick;
            }
        }

        // 2. Operators process under per-host CPU budgets.
        for h in catalog.hosts() {
            let mut budget = catalog.host(h).cpu_capacity * tick;
            let mut used = 0.0;
            for &o in &host_ops[h.index()] {
                let op = catalog.operator(o);
                // Fraction of a full-rate tick this operator can process,
                // limited by available input volume on every input.
                let mut frac: f64 = 2.0; // allow catch-up processing
                for &inp in &op.inputs {
                    let have = arrived.get(&(h, inp)).copied().unwrap_or(0.0)
                        - consumed
                            .get(&Consumer::OpInput(h, o, inp))
                            .copied()
                            .unwrap_or(0.0);
                    let want = catalog.stream(inp).rate * tick;
                    frac = frac.min(if want > 0.0 { have / want } else { 0.0 });
                }
                frac = frac.max(0.0);
                let noise = 1.0 + cfg.cpu_noise * rng.next_signed();
                let cost_full = op.cpu_cost * tick * noise.max(0.1);
                let mut need = cost_full * frac;
                if need > budget {
                    frac *= budget / need;
                    need = budget;
                }
                budget -= need;
                used += need;
                if frac > 0.0 {
                    for &inp in &op.inputs {
                        let amount = catalog.stream(inp).rate * tick * frac;
                        *consumed.entry(Consumer::OpInput(h, o, inp)).or_default() += amount;
                        if measuring {
                            consumed_acc += amount;
                        }
                    }
                    *arrived.entry((h, op.output)).or_default() +=
                        catalog.stream(op.output).rate * tick * frac;
                }
            }
            if measuring {
                cpu_acc[h.index()] += used / (catalog.host(h).cpu_capacity * tick);
            }
        }

        // 3. Flows ship backlog under link and host bandwidth budgets.
        let mut out_budget: Vec<f64> = catalog
            .hosts()
            .map(|h| catalog.host(h).bandwidth_out * tick)
            .collect();
        let mut in_budget: Vec<f64> = catalog
            .hosts()
            .map(|h| catalog.host(h).bandwidth_in * tick)
            .collect();
        let mut link_budget: BTreeMap<(HostId, HostId), f64> = BTreeMap::new();
        for &(from, to, s) in &flows {
            let backlog = arrived.get(&(from, s)).copied().unwrap_or(0.0)
                - consumed
                    .get(&Consumer::Flow(from, to, s))
                    .copied()
                    .unwrap_or(0.0);
            let link = link_budget
                .entry((from, to))
                .or_insert_with(|| catalog.topology().link(from, to) * tick);
            let v = backlog
                .min(*link)
                .min(out_budget[from.index()])
                .min(in_budget[to.index()])
                .max(0.0);
            if v > 0.0 {
                *consumed.entry(Consumer::Flow(from, to, s)).or_default() += v;
                *arrived.entry((to, s)).or_default() += v;
                if measuring {
                    consumed_acc += v;
                }
                *link -= v;
                out_budget[from.index()] -= v;
                in_budget[to.index()] -= v;
                if measuring {
                    out_acc[from.index()] += v / tick;
                    in_acc[to.index()] += v / tick;
                }
            }
        }

        // Sample total backlog while measuring (before deliveries drain
        // the window's production).
        if measuring {
            backlog_acc += total_backlog(&arrived, &consumed);
            backlog_samples += 1;
        }

        // 4. Client deliveries of provided (demanded) streams.
        for (&s, &h) in deployment.provided() {
            let backlog = arrived.get(&(h, s)).copied().unwrap_or(0.0)
                - consumed
                    .get(&Consumer::Client(h, s))
                    .copied()
                    .unwrap_or(0.0);
            let v = backlog.min(out_budget[h.index()]).max(0.0);
            if v > 0.0 {
                *consumed.entry(Consumer::Client(h, s)).or_default() += v;
                out_budget[h.index()] -= v;
                if measuring {
                    consumed_acc += v;
                }
                if measuring {
                    out_acc[h.index()] += v / tick;
                    delivered += v;
                }
            }
        }
    }

    let backlog = total_backlog(&arrived, &consumed);
    let mean_backlog = if backlog_samples > 0 {
        backlog_acc / backlog_samples as f64
    } else {
        0.0
    };
    let throughput = consumed_acc / (cfg.measure_ticks.max(1) as f64 * tick);
    let latency_estimate = if throughput > 0.0 {
        mean_backlog / throughput.max(1e-12)
    } else {
        f64::INFINITY
    };

    let m = cfg.measure_ticks.max(1) as f64;
    SimReport {
        mean_backlog,
        latency_estimate,
        cpu_utilization: cpu_acc.iter().map(|v| v / m).collect(),
        net_out: out_acc.iter().map(|v| v / m).collect(),
        net_in: in_acc.iter().map(|v| v / m).collect(),
        net_usage: out_acc
            .iter()
            .zip(&in_acc)
            .map(|(o, i)| (o + i) / m)
            .collect(),
        delivered,
        final_backlog: backlog,
        ticks: total_ticks,
    }
}

/// Sum over consumers of unconsumed arrived volume. The maps are ordered so
/// this float sum is a pure function of the deployment, not of hash state.
fn total_backlog(
    arrived: &BTreeMap<(HostId, StreamId), f64>,
    consumed: &BTreeMap<Consumer, f64>,
) -> f64 {
    let mut backlog = 0.0;
    for (c, done) in consumed {
        let key = match *c {
            Consumer::OpInput(h, _, s) => (h, s),
            Consumer::Flow(from, _, s) => (from, s),
            Consumer::Client(h, s) => (h, s),
        };
        backlog += (arrived.get(&key).copied().unwrap_or(0.0) - done).max(0.0);
    }
    backlog
}

/// Depth of each stream in the derivation DAG (bases at 0).
fn stream_depths(catalog: &Catalog) -> Vec<usize> {
    let mut depth = vec![0usize; catalog.num_streams()];
    // Streams are interned bottom-up (inputs before outputs), so a single
    // forward pass over operators in id order suffices.
    for op in catalog.operators() {
        let d = op
            .inputs
            .iter()
            .map(|&i| depth[i.index()] + 1)
            .max()
            .unwrap_or(1);
        if d > depth[op.output.index()] {
            depth[op.output.index()] = d;
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::topology::HostSpec;

    /// a@h0, b@h1; flow b to h0; join at h0; provide result from h0.
    fn small_deployment() -> (Catalog, DeploymentState) {
        let mut c = Catalog::uniform(2, HostSpec::new(50.0, 100.0), 100.0, CostModel::default());
        let a = c.add_base_stream(HostId(0), 10.0, 1);
        let b = c.add_base_stream(HostId(1), 10.0, 2);
        let op = c.intern_join_operator(a, b);
        let ab = c.operator(op).output;
        let mut d = DeploymentState::new();
        d.add_flow(HostId(1), HostId(0), b);
        d.add_placement(HostId(0), op);
        d.add_available(HostId(0), ab);
        d.set_provided(ab, HostId(0));
        assert!(d.is_valid(&c));
        (c, d)
    }

    #[test]
    fn steady_state_matches_planned_usage() {
        let (c, d) = small_deployment();
        let report = run(&c, &d, &EngineConfig::default());
        // Operator cpu = 20 units on a 50-unit host -> 40% utilisation.
        assert!((report.cpu_utilization[0] - 0.4).abs() < 0.05, "{report:?}");
        assert!(report.cpu_utilization[1] < 1e-9);
        // Host1 sends b (rate 10); host0 receives it.
        assert!((report.net_out[1] - 10.0).abs() < 1.0, "{report:?}");
        assert!((report.net_in[0] - 10.0).abs() < 1.0);
        // Result stream is delivered.
        assert!(report.delivered > 0.0);
        // Feasible deployment: backlog is bounded pipeline fill (a couple of
        // ticks of input rate), not unbounded queue growth.
        assert!(report.final_backlog < 3.0 * 20.0, "{report:?}");
        // Doubling the simulated time must not grow the backlog (steady state).
        let longer = EngineConfig {
            measure_ticks: 150,
            ..EngineConfig::default()
        };
        let report2 = run(&c, &d, &longer);
        assert!(
            (report2.final_backlog - report.final_backlog).abs() < 1.0,
            "backlog grew: {} -> {}",
            report.final_backlog,
            report2.final_backlog
        );
    }

    #[test]
    fn overloaded_host_saturates_and_backlogs() {
        // Tiny CPU: the join cannot keep up; utilisation pins at ~1 and
        // backlog grows.
        let mut c = Catalog::uniform(2, HostSpec::new(1.0, 100.0), 100.0, CostModel::default());
        let a = c.add_base_stream(HostId(0), 10.0, 1);
        let b = c.add_base_stream(HostId(1), 10.0, 2);
        let op = c.intern_join_operator(a, b); // cpu 20 >> 1
        let ab = c.operator(op).output;
        let mut d = DeploymentState::new();
        d.add_flow(HostId(1), HostId(0), b);
        d.add_placement(HostId(0), op);
        d.add_available(HostId(0), ab);
        d.set_provided(ab, HostId(0));
        let report = run(&c, &d, &EngineConfig::default());
        assert!(report.cpu_utilization[0] > 0.95, "{report:?}");
        assert!(report.final_backlog > 100.0, "{report:?}");
    }

    #[test]
    fn relay_chain_delivers_across_hops() {
        let mut c = Catalog::uniform(3, HostSpec::new(10.0, 100.0), 100.0, CostModel::default());
        let a = c.add_base_stream(HostId(0), 5.0, 1);
        let mut d = DeploymentState::new();
        d.add_flow(HostId(0), HostId(1), a);
        d.add_flow(HostId(1), HostId(2), a);
        d.set_provided(a, HostId(2));
        let report = run(&c, &d, &EngineConfig::default());
        assert!((report.net_out[0] - 5.0).abs() < 1.0);
        assert!((report.net_out[1] - 5.0).abs() < 1.0);
        assert!(report.delivered > 0.0);
    }

    #[test]
    fn latency_estimate_separates_feasible_from_overloaded() {
        let (c, d) = small_deployment();
        let ok = run(&c, &d, &EngineConfig::default());
        assert!(ok.latency_estimate.is_finite());
        assert!(ok.latency_estimate < 5.0, "{ok:?}");

        // Overloaded variant: starve the CPU.
        let mut c2 = Catalog::uniform(2, HostSpec::new(1.0, 100.0), 100.0, CostModel::default());
        let a = c2.add_base_stream(HostId(0), 10.0, 1);
        let b = c2.add_base_stream(HostId(1), 10.0, 2);
        let op = c2.intern_join_operator(a, b);
        let ab = c2.operator(op).output;
        let mut d2 = DeploymentState::new();
        d2.add_flow(HostId(1), HostId(0), b);
        d2.add_placement(HostId(0), op);
        d2.add_available(HostId(0), ab);
        d2.set_provided(ab, HostId(0));
        let bad = run(&c2, &d2, &EngineConfig::default());
        assert!(
            bad.mean_backlog > 10.0 * ok.mean_backlog,
            "overload must grow queues: {} vs {}",
            bad.mean_backlog,
            ok.mean_backlog
        );
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let (c, d) = small_deployment();
        let mut cfg = EngineConfig {
            cpu_noise: 0.1,
            seed: 42,
            ..EngineConfig::default()
        };
        let r1 = run(&c, &d, &cfg);
        let r2 = run(&c, &d, &cfg);
        assert_eq!(r1.cpu_utilization, r2.cpu_utilization);
        cfg.seed = 43;
        let r3 = run(&c, &d, &cfg);
        assert_ne!(r1.cpu_utilization, r3.cpu_utilization);
    }

    #[test]
    fn empty_deployment_reports_zero() {
        let c = Catalog::uniform(2, HostSpec::new(10.0, 10.0), 10.0, CostModel::default());
        let d = DeploymentState::new();
        let report = run(&c, &d, &EngineConfig::default());
        assert!(report.cpu_utilization.iter().all(|&v| v == 0.0));
        assert_eq!(report.delivered, 0.0);
    }
}
