//! Typed identifiers for hosts, streams, operators and queries.
//!
//! All ids are dense indices into the owning [`crate::catalog::Catalog`]
//! arenas; newtypes prevent cross-wiring (e.g. indexing hosts by a stream).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            #[inline]
            pub fn from_index(i: usize) -> Self {
                // sqpr::allow(hot-path-panic): id-space exhaustion past u32::MAX is a caller-contract breach with no recoverable planning answer; catalogs cap out far below this
                $name(u32::try_from(i).expect("id overflow"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A processing host in the DSPS (paper: `h ∈ H`).
    HostId,
    "h"
);
id_type!(
    /// A base or composite data stream (paper: `s ∈ S`).
    StreamId,
    "s"
);
id_type!(
    /// A query operator (paper: `o ∈ O`).
    OperatorId,
    "o"
);
id_type!(
    /// A submitted continuous query.
    QueryId,
    "q"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_format() {
        let h = HostId::from_index(3);
        assert_eq!(h.index(), 3);
        assert_eq!(format!("{h}"), "h3");
        assert_eq!(format!("{h:?}"), "h3");
        let s = StreamId(7);
        assert_eq!(format!("{s}"), "s7");
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(HostId(1) < HostId(2));
        assert!(QueryId(0) < QueryId(9));
    }
}
