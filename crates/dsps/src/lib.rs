//! # sqpr-dsps
//!
//! The distributed stream processing substrate for the SQPR reproduction:
//! hosts and network topology, streams with semantic equivalence signatures,
//! operators, the interning catalog that makes cross-query reuse
//! discoverable, query-plan trees with the paper's C1–C4 validity
//! conditions, global deployment state with resource accounting and
//! causality checking, and a discrete-time execution engine standing in for
//! the paper's DISSP prototype.
//!
//! ```
//! use sqpr_dsps::{Catalog, CostModel, DeploymentState, HostId, HostSpec};
//!
//! // Two hosts, one base stream each, one shared join.
//! let mut catalog = Catalog::uniform(2, HostSpec::new(50.0, 100.0), 1000.0,
//!                                    CostModel::default());
//! let a = catalog.add_base_stream(HostId(0), 10.0, 1);
//! let b = catalog.add_base_stream(HostId(1), 10.0, 2);
//! let join = catalog.intern_join_operator(a, b);
//! let result = catalog.operator(join).output;
//!
//! let mut state = DeploymentState::new();
//! state.add_flow(HostId(1), HostId(0), b);   // ship b to h0
//! state.add_placement(HostId(0), join);      // join at h0
//! state.set_provided(result, HostId(0));     // serve clients from h0
//! assert!(state.is_valid(&catalog));
//! ```

pub mod catalog;
pub mod cost;
pub mod deployment;
pub mod engine;
pub mod ids;
pub mod metrics;
pub mod operator;
pub mod plan;
pub mod stream;
pub mod topology;

pub use catalog::Catalog;
pub use cost::CostModel;
pub use deployment::{DeployError, DeploymentState, FailureAudit, HostUsage};
pub use engine::{run as run_engine, EngineConfig, SimReport};
pub use ids::{HostId, OperatorId, QueryId, StreamId};
pub use metrics::{Cdf, RateSketch};
pub use operator::{OperatorDef, OperatorKind};
pub use plan::{PlanError, PlanNode, PlanNodeKind, QueryPlan};
pub use stream::{StreamDef, StreamSignature};
pub use topology::{HostSpec, NetworkTopology};
