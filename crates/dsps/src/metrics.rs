//! Measurement utilities: empirical CDFs, summary statistics (used to
//! reproduce the distribution plots of the paper's Figures 7(b) and 7(c)),
//! and the bounded per-stream [`RateSketch`] that feeds observed rates
//! back into adaptive re-planning (paper §IV-B).

/// An empirical cumulative distribution over a finite sample.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.retain(|v| !v.is_nan());
        samples.sort_by(|a, b| a.total_cmp(b));
        Cdf { sorted: samples }
    }

    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `P[X <= x]`.
    pub fn fraction_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`q` in `[0, 1]`), by nearest-rank.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile in [0,1]");
        assert!(!self.sorted.is_empty(), "empty CDF has no quantiles");
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[rank - 1]
    }

    /// Step points `(value, cumulative fraction)` suitable for plotting.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n))
            .collect()
    }

    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }
}

/// A bounded sliding-window sketch of one stream's observed rate.
///
/// The metrics layer samples rates continuously; the planner only wants a
/// robust point estimate per adaptation round. The sketch keeps the last
/// `window` valid samples (NaN and non-positive readings are dropped at
/// ingest — a dead probe must not poison the estimate) and reports the
/// window *median*, which ignores isolated outliers that would make a mean
/// trigger spurious re-planning.
#[derive(Debug, Clone)]
pub struct RateSketch {
    window: usize,
    /// Ring buffer of the last `window` samples, in arrival order.
    samples: Vec<f64>,
    /// Next write position once the ring is full.
    head: usize,
    /// Total valid samples ever observed (can exceed `window`).
    observed: usize,
}

impl RateSketch {
    /// A sketch retaining the last `window` samples (`window >= 1`).
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "a sketch needs a positive window");
        RateSketch {
            window,
            samples: Vec::new(),
            head: 0,
            observed: 0,
        }
    }

    /// Ingests one rate sample. NaN and non-positive readings are dropped:
    /// rates are strictly positive by definition and a failed probe
    /// reports junk, not zero traffic.
    pub fn observe(&mut self, rate: f64) {
        if rate.is_nan() || rate <= 0.0 {
            return;
        }
        if self.samples.len() < self.window {
            self.samples.push(rate);
        } else {
            self.samples[self.head] = rate;
            self.head = (self.head + 1) % self.window;
        }
        self.observed += 1;
    }

    /// Valid samples currently retained (at most the window size).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total valid samples ever ingested.
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// The window median, or `None` before the first valid sample.
    pub fn estimate(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(Cdf::from_samples(self.samples.clone()).quantile(0.5))
        }
    }
}

/// Mean of a sample (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Jain's fairness index: 1 means perfectly balanced load, `1/n` means one
/// host carries everything. Used to quantify load-balance objectives (O4).
pub fn jain_fairness(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let s: f64 = xs.iter().sum();
    let s2: f64 = xs.iter().map(|x| x * x).sum();
    if s2 == 0.0 {
        return 1.0;
    }
    s * s / (xs.len() as f64 * s2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_fractions_and_quantiles() {
        let c = Cdf::from_samples(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.fraction_at(0.5), 0.0);
        assert_eq!(c.fraction_at(2.0), 0.5);
        assert_eq!(c.fraction_at(10.0), 1.0);
        assert_eq!(c.quantile(0.5), 2.0);
        assert_eq!(c.quantile(1.0), 4.0);
        assert_eq!(c.min(), Some(1.0));
        assert_eq!(c.max(), Some(4.0));
        assert_eq!(c.mean(), Some(2.5));
    }

    #[test]
    fn cdf_points_monotone() {
        let c = Cdf::from_samples(vec![5.0, 1.0, 9.0]);
        let pts = c.points();
        assert_eq!(pts.len(), 3);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn fairness_index_bounds() {
        assert_eq!(jain_fairness(&[1.0, 1.0, 1.0]), 1.0);
        let skew = jain_fairness(&[1.0, 0.0, 0.0]);
        assert!((skew - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn stats_basic() {
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }

    #[test]
    fn cdf_drops_nans() {
        let c = Cdf::from_samples(vec![1.0, f64::NAN, 2.0]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn sketch_reports_window_median() {
        let mut s = RateSketch::new(8);
        assert_eq!(s.estimate(), None);
        for v in [10.0, 12.0, 11.0] {
            s.observe(v);
        }
        assert_eq!(s.estimate(), Some(11.0));
        assert_eq!(s.len(), 3);
        assert_eq!(s.observed(), 3);
    }

    #[test]
    fn sketch_window_slides() {
        let mut s = RateSketch::new(3);
        for v in [1.0, 2.0, 3.0, 100.0, 100.0] {
            s.observe(v);
        }
        // Window holds {3, 100, 100}; the old low samples fell out.
        assert_eq!(s.len(), 3);
        assert_eq!(s.estimate(), Some(100.0));
        assert_eq!(s.observed(), 5);
    }

    #[test]
    fn sketch_rejects_invalid_samples() {
        let mut s = RateSketch::new(4);
        s.observe(f64::NAN);
        s.observe(0.0);
        s.observe(-5.0);
        assert!(s.is_empty());
        assert_eq!(s.observed(), 0);
        s.observe(7.0);
        assert_eq!(s.estimate(), Some(7.0));
    }

    #[test]
    fn sketch_median_is_outlier_robust() {
        let mut s = RateSketch::new(5);
        for v in [10.0, 10.5, 9.5, 10.2, 1000.0] {
            s.observe(v);
        }
        assert_eq!(s.estimate(), Some(10.2), "one outlier must not swing it");
    }
}
