//! Query operators (paper §II-A): `o = (S_o, s_o, γ_o)`.

use crate::ids::{OperatorId, StreamId};

/// Operator semantics. The relay operator `µ` of §II-C is *not* an
/// [`OperatorDef`]: relaying is a property of plans/flows, not of the
/// operator catalog (it consumes network, not meaningful CPU).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatorKind {
    /// Windowed equi-join of two streams.
    Join,
    /// Stateless filter tagged by predicate id.
    Filter { predicate: u64 },
    /// Stateless projection tagged by column-set id.
    Project { projection: u64 },
}

/// A registered operator: input streams `S_o`, single output stream `s_o`,
/// and CPU cost `γ_o` (units of computational resource while running).
#[derive(Debug, Clone)]
pub struct OperatorDef {
    pub id: OperatorId,
    pub kind: OperatorKind,
    pub inputs: Vec<StreamId>,
    pub output: StreamId,
    pub cpu_cost: f64,
    /// Window-state memory held while running (0 for stateless operators).
    pub memory_cost: f64,
}

impl OperatorDef {
    /// Whether `s` is one of this operator's inputs.
    pub fn consumes(&self, s: StreamId) -> bool {
        self.inputs.contains(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consumes_checks_inputs() {
        let op = OperatorDef {
            id: OperatorId(0),
            kind: OperatorKind::Join,
            inputs: vec![StreamId(1), StreamId(2)],
            output: StreamId(3),
            cpu_cost: 1.5,
            memory_cost: 0.75,
        };
        assert!(op.consumes(StreamId(1)));
        assert!(!op.consumes(StreamId(3)));
    }

    #[test]
    fn operator_kinds_compare() {
        assert_ne!(
            OperatorKind::Filter { predicate: 1 },
            OperatorKind::Filter { predicate: 2 }
        );
        assert_eq!(OperatorKind::Join, OperatorKind::Join);
    }
}
