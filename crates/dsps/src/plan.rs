//! Query plan trees (paper §III-A).
//!
//! A query plan is a tree whose nodes are labelled `⟨h, o⟩` (host `h` runs
//! operator `o`, or the relay operator `µ`) and whose arcs are labelled with
//! stream ids. The root's outgoing arc carries the query's result stream to
//! the client; leaves receive base streams from their sources.
//!
//! Validation enforces the paper's plan conditions:
//! - **C1** the root's outgoing arc is the query stream;
//! - **C2** an operator node's incoming arcs form a superset of `S_o` and
//!   its outgoing arc is `s_o`;
//! - **C3** a relay node has exactly one incoming arc, same label as its
//!   outgoing arc;
//! - **C4** base-stream arcs entering a node require the stream's source to
//!   be that node's host (`s ∈ S0_h`).

use crate::catalog::Catalog;
use crate::ids::{HostId, OperatorId, StreamId};

/// Node payload: a real operator or the relay pseudo-operator `µ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanNodeKind {
    Operator(OperatorId),
    /// Relay (`µ`): forwards its single input stream unchanged.
    Relay,
}

/// One node in the plan tree.
#[derive(Debug, Clone)]
pub struct PlanNode {
    pub host: HostId,
    pub kind: PlanNodeKind,
    /// Stream carried on the outgoing arc.
    pub output: StreamId,
    /// Child node indices (their outputs are this node's incoming arcs).
    pub children: Vec<usize>,
    /// Base streams consumed directly from local sources (extra incoming
    /// arcs from outside the tree; must satisfy C4).
    pub source_inputs: Vec<StreamId>,
}

/// A complete query plan: an arena of nodes plus the root index.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    nodes: Vec<PlanNode>,
    root: usize,
}

/// Violations reported by [`QueryPlan::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// C1: root output differs from the demanded stream.
    RootMismatch { expected: StreamId, got: StreamId },
    /// C2: node's incoming arcs do not cover the operator's inputs.
    MissingInput { node: usize, stream: StreamId },
    /// C2: node output is not the operator's output stream.
    WrongOutput { node: usize },
    /// C3: relay node must have exactly one input, same stream as output.
    BadRelay { node: usize },
    /// C4: a base stream is consumed at a host that is not its source.
    BaseNotLocal { node: usize, stream: StreamId },
    /// A `source_inputs` entry is not a base stream.
    NotABaseStream { node: usize, stream: StreamId },
    /// Tree structure broken (dangling child index or a cycle).
    Malformed,
}

impl QueryPlan {
    /// Builds a plan from an arena; `root` indexes into `nodes`.
    pub fn new(nodes: Vec<PlanNode>, root: usize) -> Self {
        QueryPlan { nodes, root }
    }

    pub fn root(&self) -> &PlanNode {
        &self.nodes[self.root]
    }

    pub fn node(&self, i: usize) -> &PlanNode {
        &self.nodes[i]
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn nodes(&self) -> impl Iterator<Item = (usize, &PlanNode)> {
        self.nodes.iter().enumerate()
    }

    /// All `(host, operator)` placements in the plan (relays excluded).
    pub fn placements(&self) -> impl Iterator<Item = (HostId, OperatorId)> + '_ {
        self.nodes.iter().filter_map(|n| match n.kind {
            PlanNodeKind::Operator(o) => Some((n.host, o)),
            PlanNodeKind::Relay => None,
        })
    }

    /// All inter-host flows `(from, to, stream)` implied by tree arcs whose
    /// endpoints live on different hosts.
    pub fn flows(&self) -> Vec<(HostId, HostId, StreamId)> {
        let mut out = Vec::new();
        for node in &self.nodes {
            for &c in &node.children {
                let child = &self.nodes[c];
                if child.host != node.host {
                    out.push((child.host, node.host, child.output));
                }
            }
        }
        out
    }

    /// Validates conditions C1–C4 against the catalog.
    pub fn validate(&self, catalog: &Catalog, query_stream: StreamId) -> Result<(), PlanError> {
        if self.nodes.is_empty() || self.root >= self.nodes.len() {
            return Err(PlanError::Malformed);
        }
        // Structural check: every node reachable at most once (tree).
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.root];
        while let Some(i) = stack.pop() {
            if i >= self.nodes.len() || seen[i] {
                return Err(PlanError::Malformed);
            }
            seen[i] = true;
            stack.extend(self.nodes[i].children.iter().copied());
        }

        // C1.
        let root = &self.nodes[self.root];
        if root.output != query_stream {
            return Err(PlanError::RootMismatch {
                expected: query_stream,
                got: root.output,
            });
        }

        for (i, node) in self.nodes.iter().enumerate() {
            if !seen[i] {
                continue; // unreachable nodes are tolerated but ignored
            }
            // Incoming arcs: child outputs + local source inputs.
            let mut incoming: Vec<StreamId> = node
                .children
                .iter()
                .map(|&c| self.nodes[c].output)
                .collect();
            for &s in &node.source_inputs {
                if !catalog.stream(s).is_base() {
                    return Err(PlanError::NotABaseStream { node: i, stream: s });
                }
                // C4: source arcs require local availability.
                if !catalog.is_base_at(s, node.host) {
                    return Err(PlanError::BaseNotLocal { node: i, stream: s });
                }
                incoming.push(s);
            }
            match node.kind {
                PlanNodeKind::Operator(o) => {
                    let op = catalog.operator(o);
                    // C2: incoming ⊇ S_o, output = s_o.
                    for &inp in &op.inputs {
                        if !incoming.contains(&inp) {
                            return Err(PlanError::MissingInput {
                                node: i,
                                stream: inp,
                            });
                        }
                    }
                    if node.output != op.output {
                        return Err(PlanError::WrongOutput { node: i });
                    }
                }
                PlanNodeKind::Relay => {
                    // C3: exactly one incoming arc, identical label.
                    if incoming.len() != 1 || incoming[0] != node.output {
                        return Err(PlanError::BadRelay { node: i });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::topology::HostSpec;

    /// Two hosts, bases a@h0 b@h0 c@h1; interns (a⋈b) and ((a⋈b)⋈c).
    fn setup() -> (
        Catalog,
        StreamId,
        StreamId,
        StreamId,
        OperatorId,
        OperatorId,
    ) {
        let mut c = Catalog::uniform(2, HostSpec::new(10.0, 100.0), 1000.0, CostModel::default());
        let a = c.add_base_stream(HostId(0), 10.0, 1);
        let b = c.add_base_stream(HostId(0), 10.0, 2);
        let d = c.add_base_stream(HostId(1), 10.0, 3);
        let o_ab = c.intern_join_operator(a, b);
        let ab = c.operator(o_ab).output;
        let o_abd = c.intern_join_operator(ab, d);
        (c, a, b, d, o_ab, o_abd)
    }

    #[test]
    fn valid_single_host_leaf_plan() {
        let (c, a, b, _, o_ab, _) = setup();
        let ab = c.operator(o_ab).output;
        let plan = QueryPlan::new(
            vec![PlanNode {
                host: HostId(0),
                kind: PlanNodeKind::Operator(o_ab),
                output: ab,
                children: vec![],
                source_inputs: vec![a, b],
            }],
            0,
        );
        assert_eq!(plan.validate(&c, ab), Ok(()));
        assert!(plan.flows().is_empty());
        assert_eq!(plan.placements().count(), 1);
    }

    #[test]
    fn valid_distributed_plan_with_relay() {
        let (c, a, b, d, o_ab, o_abd) = setup();
        let ab = c.operator(o_ab).output;
        let abd = c.operator(o_abd).output;
        // node0: join(a,b) at h0; node1: relay ab at h1? No -- relay carries
        // ab from h0 to h1 conceptually; tree arcs already encode the move.
        // Here: root joins (ab, d) at h1, child produces ab at h0.
        let plan = QueryPlan::new(
            vec![
                PlanNode {
                    host: HostId(1),
                    kind: PlanNodeKind::Operator(o_abd),
                    output: abd,
                    children: vec![1],
                    source_inputs: vec![d],
                },
                PlanNode {
                    host: HostId(0),
                    kind: PlanNodeKind::Operator(o_ab),
                    output: ab,
                    children: vec![],
                    source_inputs: vec![a, b],
                },
            ],
            0,
        );
        assert_eq!(plan.validate(&c, abd), Ok(()));
        assert_eq!(plan.flows(), vec![(HostId(0), HostId(1), ab)]);
    }

    #[test]
    fn relay_node_validates() {
        let (c, a, b, _, o_ab, _) = setup();
        let ab = c.operator(o_ab).output;
        // h0 computes ab, relays via h1 back to... just check C3 shape:
        // root = relay at h1 of stream ab (demanded stream = ab).
        let plan = QueryPlan::new(
            vec![
                PlanNode {
                    host: HostId(1),
                    kind: PlanNodeKind::Relay,
                    output: ab,
                    children: vec![1],
                    source_inputs: vec![],
                },
                PlanNode {
                    host: HostId(0),
                    kind: PlanNodeKind::Operator(o_ab),
                    output: ab,
                    children: vec![],
                    source_inputs: vec![a, b],
                },
            ],
            0,
        );
        assert_eq!(plan.validate(&c, ab), Ok(()));
    }

    #[test]
    fn c1_root_mismatch() {
        let (c, a, b, _, o_ab, _) = setup();
        let ab = c.operator(o_ab).output;
        let plan = QueryPlan::new(
            vec![PlanNode {
                host: HostId(0),
                kind: PlanNodeKind::Operator(o_ab),
                output: ab,
                children: vec![],
                source_inputs: vec![a, b],
            }],
            0,
        );
        assert!(matches!(
            plan.validate(&c, a),
            Err(PlanError::RootMismatch { .. })
        ));
    }

    #[test]
    fn c2_missing_input() {
        let (c, a, _, _, o_ab, _) = setup();
        let ab = c.operator(o_ab).output;
        let plan = QueryPlan::new(
            vec![PlanNode {
                host: HostId(0),
                kind: PlanNodeKind::Operator(o_ab),
                output: ab,
                children: vec![],
                source_inputs: vec![a], // b missing
            }],
            0,
        );
        assert!(matches!(
            plan.validate(&c, ab),
            Err(PlanError::MissingInput { .. })
        ));
    }

    #[test]
    fn c4_base_not_local() {
        let (c, a, b, _, o_ab, _) = setup();
        let ab = c.operator(o_ab).output;
        // Host 1 does not have base streams a, b.
        let plan = QueryPlan::new(
            vec![PlanNode {
                host: HostId(1),
                kind: PlanNodeKind::Operator(o_ab),
                output: ab,
                children: vec![],
                source_inputs: vec![a, b],
            }],
            0,
        );
        assert!(matches!(
            plan.validate(&c, ab),
            Err(PlanError::BaseNotLocal { .. })
        ));
    }

    #[test]
    fn c3_bad_relay() {
        let (c, a, _, _, o_ab, _) = setup();
        let ab = c.operator(o_ab).output;
        let plan = QueryPlan::new(
            vec![PlanNode {
                host: HostId(0),
                kind: PlanNodeKind::Relay,
                output: ab,
                children: vec![],
                source_inputs: vec![a], // wrong stream, and base at that
            }],
            0,
        );
        assert!(matches!(
            plan.validate(&c, ab),
            Err(PlanError::BadRelay { .. })
        ));
    }

    #[test]
    fn malformed_cycle_detected() {
        let (c, a, b, _, o_ab, _) = setup();
        let ab = c.operator(o_ab).output;
        let plan = QueryPlan::new(
            vec![PlanNode {
                host: HostId(0),
                kind: PlanNodeKind::Operator(o_ab),
                output: ab,
                children: vec![0], // self-loop
                source_inputs: vec![a, b],
            }],
            0,
        );
        assert_eq!(plan.validate(&c, ab), Err(PlanError::Malformed));
    }
}
