//! Streams and their equivalence signatures (paper §II-A, §II-C).
//!
//! Two streams are equivalent — and therefore *reusable* across queries — if
//! they are "produced by the same operators using the same input streams".
//! We lift this to join commutativity: a join result is identified by the
//! *set* of base streams it combines, so every join tree over the same base
//! set yields one interned stream (exactly the sharing the paper's Fig. 2
//! exploits). Filters and projections are identified by their input stream
//! plus a caller-supplied function tag.

use crate::ids::StreamId;
use std::collections::BTreeSet;

/// Canonical identity of a stream, used for interning in the catalog.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StreamSignature {
    /// An externally injected base stream, identified by a source tag.
    Base { source: u64 },
    /// The join of a set of *base* streams (order independent).
    ///
    /// `tag` is 0 for shared (reusable) streams; the reuse-off ablation
    /// registers per-query private copies with a nonzero tag so that
    /// otherwise-equivalent streams do not unify.
    Join { bases: BTreeSet<StreamId>, tag: u64 },
    /// A filtered stream: `predicate` tags the (deterministic) predicate.
    Filter { input: StreamId, predicate: u64 },
    /// A projected stream: `projection` tags the column set.
    Project { input: StreamId, projection: u64 },
}

impl StreamSignature {
    pub fn is_base(&self) -> bool {
        matches!(self, StreamSignature::Base { .. })
    }
}

/// A registered stream: identity plus its (estimated) average data rate
/// `̺_s` (paper assumes constant average rates with small variance).
#[derive(Debug, Clone)]
pub struct StreamDef {
    pub id: StreamId,
    pub signature: StreamSignature,
    /// Average data rate in bandwidth units (e.g. Mbps).
    pub rate: f64,
    /// Rate factor relative to the input stream (filter selectivity or
    /// projection keep-fraction); 1.0 for base and join streams, whose
    /// rates are derived differently.
    pub factor: f64,
}

impl StreamDef {
    pub fn is_base(&self) -> bool {
        self.signature.is_base()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_signature_is_order_independent() {
        let a: BTreeSet<StreamId> = [StreamId(2), StreamId(0), StreamId(1)]
            .into_iter()
            .collect();
        let b: BTreeSet<StreamId> = [StreamId(1), StreamId(2), StreamId(0)]
            .into_iter()
            .collect();
        assert_eq!(
            StreamSignature::Join { bases: a, tag: 0 },
            StreamSignature::Join { bases: b, tag: 0 }
        );
    }

    #[test]
    fn distinct_predicates_distinct_signatures() {
        let f1 = StreamSignature::Filter {
            input: StreamId(0),
            predicate: 1,
        };
        let f2 = StreamSignature::Filter {
            input: StreamId(0),
            predicate: 2,
        };
        assert_ne!(f1, f2);
    }

    #[test]
    fn base_detection() {
        assert!(StreamSignature::Base { source: 9 }.is_base());
        assert!(!StreamSignature::Join {
            bases: BTreeSet::new(),
            tag: 0
        }
        .is_base());
        let a: BTreeSet<StreamId> = [StreamId(0)].into_iter().collect();
        assert_ne!(
            StreamSignature::Join {
                bases: a.clone(),
                tag: 0
            },
            StreamSignature::Join { bases: a, tag: 1 },
            "private tags must not unify"
        );
    }
}
