//! Hosts and the network topology (paper §II-B resource model).
//!
//! Three resource classes: per-host computational capacity `ζ_h`, per-host
//! outgoing bandwidth `β_h` (we also track incoming bandwidth for constraint
//! III.6b), and pairwise link bandwidth `κ_hm`. Memory is wired as an
//! optional fourth resource (listed as future work in §VII).

use crate::ids::HostId;

/// Static description of one host's resources.
#[derive(Debug, Clone, PartialEq)]
pub struct HostSpec {
    /// Computational capacity `ζ_h` (e.g. normalised cores).
    pub cpu_capacity: f64,
    /// Maximum outgoing bandwidth `β_h`.
    pub bandwidth_out: f64,
    /// Maximum incoming bandwidth (paper III.6b uses `β_m` for both sides).
    pub bandwidth_in: f64,
    /// Optional memory capacity; `f64::INFINITY` disables the constraint.
    pub memory_capacity: f64,
}

impl HostSpec {
    /// A host with symmetric in/out bandwidth and unbounded memory.
    pub fn new(cpu_capacity: f64, bandwidth: f64) -> Self {
        HostSpec {
            cpu_capacity,
            bandwidth_out: bandwidth,
            bandwidth_in: bandwidth,
            memory_capacity: f64::INFINITY,
        }
    }
}

/// Pairwise link capacities `κ_hm`. Self-links are infinite (local delivery
/// is free).
#[derive(Debug, Clone)]
pub struct NetworkTopology {
    n: usize,
    link: Vec<f64>,
}

impl NetworkTopology {
    /// Full mesh with uniform capacity on every ordered pair.
    pub fn full_mesh(n: usize, capacity: f64) -> Self {
        let mut link = vec![capacity; n * n];
        for h in 0..n {
            link[h * n + h] = f64::INFINITY;
        }
        NetworkTopology { n, link }
    }

    pub fn num_hosts(&self) -> usize {
        self.n
    }

    /// Capacity of the directed link `h -> m`.
    #[inline]
    pub fn link(&self, h: HostId, m: HostId) -> f64 {
        self.link[h.index() * self.n + m.index()]
    }

    /// Sets the capacity of the directed link `h -> m`.
    pub fn set_link(&mut self, h: HostId, m: HostId, capacity: f64) {
        assert!(h != m, "self links are always infinite");
        self.link[h.index() * self.n + m.index()] = capacity;
    }

    /// Sum of all finite link capacities (used for the paper's λ3 weight
    /// normalisation `1 / Σ κ_hm`).
    pub fn total_finite_capacity(&self) -> f64 {
        self.link.iter().filter(|c| c.is_finite()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mesh_links() {
        let t = NetworkTopology::full_mesh(3, 100.0);
        assert_eq!(t.link(HostId(0), HostId(1)), 100.0);
        assert_eq!(t.link(HostId(2), HostId(0)), 100.0);
        assert!(t.link(HostId(1), HostId(1)).is_infinite());
        assert_eq!(t.total_finite_capacity(), 600.0);
    }

    #[test]
    fn set_link_is_directional() {
        let mut t = NetworkTopology::full_mesh(2, 10.0);
        t.set_link(HostId(0), HostId(1), 5.0);
        assert_eq!(t.link(HostId(0), HostId(1)), 5.0);
        assert_eq!(t.link(HostId(1), HostId(0)), 10.0);
    }

    #[test]
    #[should_panic(expected = "self links")]
    fn rejects_self_link_updates() {
        let mut t = NetworkTopology::full_mesh(2, 10.0);
        t.set_link(HostId(0), HostId(0), 5.0);
    }

    #[test]
    fn host_spec_symmetric_constructor() {
        let h = HostSpec::new(4.0, 1000.0);
        assert_eq!(h.bandwidth_in, 1000.0);
        assert_eq!(h.bandwidth_out, 1000.0);
        assert!(h.memory_capacity.is_infinite());
    }
}
