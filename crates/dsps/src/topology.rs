//! Hosts and the network topology (paper §II-B resource model).
//!
//! Three resource classes: per-host computational capacity `ζ_h`, per-host
//! outgoing bandwidth `β_h` (we also track incoming bandwidth for constraint
//! III.6b), and pairwise link bandwidth `κ_hm`. Memory is wired as an
//! optional fourth resource (listed as future work in §VII).

use crate::ids::HostId;

/// Static description of one host's resources.
#[derive(Debug, Clone, PartialEq)]
pub struct HostSpec {
    /// Computational capacity `ζ_h` (e.g. normalised cores).
    pub cpu_capacity: f64,
    /// Maximum outgoing bandwidth `β_h`.
    pub bandwidth_out: f64,
    /// Maximum incoming bandwidth (paper III.6b uses `β_m` for both sides).
    pub bandwidth_in: f64,
    /// Optional memory capacity; `f64::INFINITY` disables the constraint.
    pub memory_capacity: f64,
}

impl HostSpec {
    /// A host with symmetric in/out bandwidth and unbounded memory.
    pub fn new(cpu_capacity: f64, bandwidth: f64) -> Self {
        HostSpec {
            cpu_capacity,
            bandwidth_out: bandwidth,
            bandwidth_in: bandwidth,
            memory_capacity: f64::INFINITY,
        }
    }
}

/// Pairwise link capacities `κ_hm`. Self-links are infinite (local delivery
/// is free).
///
/// The topology distinguishes *configured* capacities (set at construction
/// or via [`Self::set_link`]) from the *effective* ones returned by
/// [`Self::link`]: failures ([`Self::fail_host`]) and degradations
/// ([`Self::degrade_link`]) lower the effective capacity without touching
/// the configured value, and the matching `restore_*` calls bring the
/// effective capacity back to it.
#[derive(Debug, Clone)]
pub struct NetworkTopology {
    n: usize,
    link: Vec<f64>,
    /// Configured (pre-fault) capacities; `restore_*` copies from here.
    nominal: Vec<f64>,
}

impl NetworkTopology {
    /// Full mesh with uniform capacity on every ordered pair.
    pub fn full_mesh(n: usize, capacity: f64) -> Self {
        let mut link = vec![capacity; n * n];
        for h in 0..n {
            link[h * n + h] = f64::INFINITY;
        }
        NetworkTopology {
            n,
            nominal: link.clone(),
            link,
        }
    }

    pub fn num_hosts(&self) -> usize {
        self.n
    }

    /// Effective capacity of the directed link `h -> m` (0 after a failure
    /// of either endpoint, the degraded value after [`Self::degrade_link`]).
    #[inline]
    pub fn link(&self, h: HostId, m: HostId) -> f64 {
        self.link[h.index() * self.n + m.index()]
    }

    /// Configured (pre-fault) capacity of the directed link `h -> m`.
    #[inline]
    pub fn nominal_link(&self, h: HostId, m: HostId) -> f64 {
        self.nominal[h.index() * self.n + m.index()]
    }

    /// Sets the configured capacity of the directed link `h -> m` (also
    /// resets any degradation on it).
    pub fn set_link(&mut self, h: HostId, m: HostId, capacity: f64) {
        assert!(h != m, "self links are always infinite");
        self.link[h.index() * self.n + m.index()] = capacity;
        self.nominal[h.index() * self.n + m.index()] = capacity;
    }

    // ----- fault model ----------------------------------------------------

    /// Fails host `h`: every directed link into or out of it drops to zero
    /// effective capacity. Self-links stay infinite (they are never
    /// consulted — a failed host has no CPU to run anything locally).
    pub fn fail_host(&mut self, h: HostId) {
        for m in 0..self.n {
            if m != h.index() {
                self.link[h.index() * self.n + m] = 0.0;
                self.link[m * self.n + h.index()] = 0.0;
            }
        }
    }

    /// Restores every link touching `h` to its configured capacity. Note
    /// this also clears any independent [`Self::degrade_link`] on those
    /// links — restoration is to the nominal topology.
    pub fn restore_host(&mut self, h: HostId) {
        for m in 0..self.n {
            if m != h.index() {
                self.link[h.index() * self.n + m] = self.nominal[h.index() * self.n + m];
                self.link[m * self.n + h.index()] = self.nominal[m * self.n + h.index()];
            }
        }
    }

    /// Degrades the directed link `h -> m` to the given effective capacity
    /// (partial failure); the configured capacity is untouched.
    pub fn degrade_link(&mut self, h: HostId, m: HostId, capacity: f64) {
        assert!(h != m, "self links are always infinite");
        self.link[h.index() * self.n + m.index()] = capacity;
    }

    /// Restores the directed link `h -> m` to its configured capacity.
    pub fn restore_link(&mut self, h: HostId, m: HostId) {
        assert!(h != m, "self links are always infinite");
        self.link[h.index() * self.n + m.index()] = self.nominal[h.index() * self.n + m.index()];
    }

    /// Sum of all finite link capacities (used for the paper's λ3 weight
    /// normalisation `1 / Σ κ_hm`).
    pub fn total_finite_capacity(&self) -> f64 {
        self.link.iter().filter(|c| c.is_finite()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mesh_links() {
        let t = NetworkTopology::full_mesh(3, 100.0);
        assert_eq!(t.link(HostId(0), HostId(1)), 100.0);
        assert_eq!(t.link(HostId(2), HostId(0)), 100.0);
        assert!(t.link(HostId(1), HostId(1)).is_infinite());
        assert_eq!(t.total_finite_capacity(), 600.0);
    }

    #[test]
    fn set_link_is_directional() {
        let mut t = NetworkTopology::full_mesh(2, 10.0);
        t.set_link(HostId(0), HostId(1), 5.0);
        assert_eq!(t.link(HostId(0), HostId(1)), 5.0);
        assert_eq!(t.link(HostId(1), HostId(0)), 10.0);
    }

    #[test]
    #[should_panic(expected = "self links")]
    fn rejects_self_link_updates() {
        let mut t = NetworkTopology::full_mesh(2, 10.0);
        t.set_link(HostId(0), HostId(0), 5.0);
    }

    #[test]
    fn fail_and_restore_host_round_trips() {
        let mut t = NetworkTopology::full_mesh(3, 100.0);
        t.set_link(HostId(0), HostId(1), 40.0);
        t.fail_host(HostId(1));
        assert_eq!(t.link(HostId(0), HostId(1)), 0.0);
        assert_eq!(t.link(HostId(1), HostId(2)), 0.0);
        assert_eq!(t.link(HostId(2), HostId(1)), 0.0);
        assert_eq!(t.link(HostId(0), HostId(2)), 100.0, "untouched pair");
        assert!(t.link(HostId(1), HostId(1)).is_infinite());
        t.restore_host(HostId(1));
        assert_eq!(t.link(HostId(0), HostId(1)), 40.0, "configured value");
        assert_eq!(t.link(HostId(1), HostId(2)), 100.0);
    }

    #[test]
    fn degrade_and_restore_link() {
        let mut t = NetworkTopology::full_mesh(2, 10.0);
        t.degrade_link(HostId(0), HostId(1), 2.5);
        assert_eq!(t.link(HostId(0), HostId(1)), 2.5);
        assert_eq!(t.nominal_link(HostId(0), HostId(1)), 10.0);
        assert_eq!(t.link(HostId(1), HostId(0)), 10.0, "directional");
        t.restore_link(HostId(0), HostId(1));
        assert_eq!(t.link(HostId(0), HostId(1)), 10.0);
    }

    #[test]
    fn host_spec_symmetric_constructor() {
        let h = HostSpec::new(4.0, 1000.0);
        assert_eq!(h.bandwidth_in, 1000.0);
        assert_eq!(h.bandwidth_out, 1000.0);
        assert!(h.memory_capacity.is_infinite());
    }
}
