//! Property tests for the deployment substrate: the availability fixpoint
//! and validation must behave sanely on arbitrary (even nonsensical)
//! allocation states — validation reports errors, never panics, and the
//! derivation is monotone.
//!
//! Implemented as seeded random-case loops (the sanctioned dependency set
//! has no `proptest`); every case prints its seed on failure so it can be
//! replayed deterministically.

use sqpr_dsps::{Catalog, CostModel, DeploymentState, HostId, HostSpec, StreamId};
use sqpr_workload::rng::{Rng, StdRng};

#[derive(Debug, Clone)]
struct RandomAllocation {
    hosts: usize,
    n_bases: usize,
    flows: Vec<(u8, u8, u8)>,    // from, to, stream index
    placements: Vec<(u8, u8)>,   // host, operator index
    availability: Vec<(u8, u8)>, // host, stream index
}

fn random_allocation(rng: &mut StdRng) -> RandomAllocation {
    let hosts = rng.gen_index(3) + 2;
    let n_bases = rng.gen_index(4) + 3;
    let flows = (0..rng.gen_index(12))
        .map(|_| {
            (
                rng.gen_index(hosts) as u8,
                rng.gen_index(hosts) as u8,
                rng.gen_index(n_bases + 3) as u8,
            )
        })
        .collect();
    let placements = (0..rng.gen_index(6))
        .map(|_| (rng.gen_index(hosts) as u8, rng.gen_index(3) as u8))
        .collect();
    let availability = (0..rng.gen_index(8))
        .map(|_| (rng.gen_index(hosts) as u8, rng.gen_index(n_bases + 3) as u8))
        .collect();
    RandomAllocation {
        hosts,
        n_bases,
        flows,
        placements,
        availability,
    }
}

/// Builds a catalog with `n_bases` bases and 3 join operators (so operator
/// and composite-stream indices in the random allocation resolve).
fn build_catalog(hosts: usize, n_bases: usize) -> (Catalog, Vec<StreamId>) {
    let mut c = Catalog::uniform(
        hosts,
        HostSpec::new(50.0, 50.0),
        100.0,
        CostModel::default(),
    );
    let bases: Vec<StreamId> = (0..n_bases)
        .map(|i| c.add_base_stream(HostId((i % hosts) as u32), 5.0, i as u64))
        .collect();
    c.intern_join_operator(bases[0], bases[1]);
    c.intern_join_operator(bases[1], bases[2]);
    let ab = c
        .operator(c.producers_of(c.stream(StreamId(n_bases as u32)).id)[0])
        .output;
    let _ = c.intern_join_operator(ab, bases[2]);
    (c, bases)
}

#[test]
fn validation_never_panics_and_derivation_is_sound() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0xD5 ^ seed);
        let alloc = random_allocation(&mut rng);
        let (c, _) = build_catalog(alloc.hosts, alloc.n_bases);
        let n_streams = c.num_streams() as u8;
        let n_ops = c.num_operators() as u8;
        let mut d = DeploymentState::new();
        for (f, t, s) in &alloc.flows {
            if f != t && *s < n_streams {
                d.add_flow(HostId(*f as u32), HostId(*t as u32), StreamId(*s as u32));
            }
        }
        for (h, o) in &alloc.placements {
            if *o < n_ops {
                d.add_placement(HostId(*h as u32), sqpr_dsps::OperatorId(*o as u32));
            }
        }
        for (h, s) in &alloc.availability {
            if *s < n_streams {
                d.add_available(HostId(*h as u32), StreamId(*s as u32));
            }
        }
        // Validation must not panic regardless of how bogus the state is.
        let errs = d.validate(&c);
        let derived = d.derive_availability(&c);
        // Soundness: every derived (h, s) has a mechanism.
        for &(h, s) in &derived {
            let is_base = c.is_base_at(s, h);
            let via_flow = d
                .flows()
                .iter()
                .any(|&(g, m, fs)| m == h && fs == s && derived.contains(&(g, s)));
            let via_op = d.placements().iter().any(|&(ph, o)| {
                ph == h
                    && c.operator(o).output == s
                    && c.operator(o)
                        .inputs
                        .iter()
                        .all(|&i| derived.contains(&(h, i)))
            });
            assert!(
                is_base || via_flow || via_op,
                "seed {seed}: derived ({h}, {s}) without mechanism; errs: {errs:?}"
            );
        }
        // Claimed-but-underivable availability must be reported.
        for &(h, s) in d.available() {
            if !derived.contains(&(h, s)) {
                assert!(!errs.is_empty(), "seed {seed}: {alloc:?}");
            }
        }
    }
}

#[test]
fn derivation_monotone_under_added_flows() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0xF70 ^ (seed << 3));
        let alloc = random_allocation(&mut rng);
        let (c, _) = build_catalog(alloc.hosts, alloc.n_bases);
        let n_streams = c.num_streams() as u8;
        let mut d = DeploymentState::new();
        let before = d.derive_availability(&c);
        for (f, t, s) in &alloc.flows {
            if f != t && *s < n_streams {
                d.add_flow(HostId(*f as u32), HostId(*t as u32), StreamId(*s as u32));
            }
        }
        let after = d.derive_availability(&c);
        assert!(
            before.is_subset(&after),
            "seed {seed}: adding flows removed availability"
        );
    }
}
