//! Property tests for the fault model: arbitrary interleavings of host
//! failures, link degradations and restores must round-trip the catalog
//! back to its *exact* nominal capacities (f64 equality, not tolerance)
//! once everything is restored, and must maintain the fault invariants
//! at every intermediate step.
//!
//! Implemented as seeded random-case loops (the sanctioned dependency set
//! has no `proptest`); every case prints its seed on failure so it can be
//! replayed deterministically.

use sqpr_dsps::{Catalog, CostModel, HostId, HostSpec, StreamId};
use sqpr_workload::rng::{Rng, StdRng};

fn build_catalog(hosts: usize) -> Catalog {
    // Deliberately awkward capacities: exact round-trips must preserve
    // bit patterns, not just "close enough" values.
    let mut c = Catalog::uniform(
        hosts,
        HostSpec::new(0.1 + 1.0 / 3.0, 10.0 / 7.0),
        100.0 / 3.0,
        CostModel::default(),
    );
    for i in 0..hosts * 2 {
        c.add_base_stream(HostId((i % hosts) as u32), 0.07 * (i + 1) as f64, i as u64);
    }
    c
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Fail(usize),
    RestoreHost(usize),
    Degrade(usize, usize, f64),
    RestoreLink(usize, usize),
}

fn random_op(rng: &mut StdRng, hosts: usize) -> Op {
    match rng.gen_index(4) {
        0 => Op::Fail(rng.gen_index(hosts)),
        1 => Op::RestoreHost(rng.gen_index(hosts)),
        2 => {
            let h = rng.gen_index(hosts);
            let m = (h + 1 + rng.gen_index(hosts - 1)) % hosts;
            Op::Degrade(h, m, rng.gen_f64() * 5.0)
        }
        _ => {
            let h = rng.gen_index(hosts);
            let m = (h + 1 + rng.gen_index(hosts - 1)) % hosts;
            Op::RestoreLink(h, m)
        }
    }
}

/// A naive shadow of the effective topology: what every directed link and
/// host spec *should* be after each fault-model call, maintained with the
/// documented semantics (fail darkens all touching links; restore_host on
/// a failed host returns them to nominal; link ops overwrite
/// unconditionally, even on links touching a failed host).
struct Shadow {
    failed: Vec<bool>,
    link: Vec<Vec<f64>>,
    nominal_link: Vec<Vec<f64>>,
}

impl Shadow {
    fn new(nominal: &Catalog, hosts: usize) -> Self {
        let nominal_link: Vec<Vec<f64>> = (0..hosts)
            .map(|h| {
                (0..hosts)
                    .map(|m| nominal.topology().link(HostId(h as u32), HostId(m as u32)))
                    .collect()
            })
            .collect();
        Shadow {
            failed: vec![false; hosts],
            link: nominal_link.clone(),
            nominal_link,
        }
    }

    fn apply(&mut self, op: Op) {
        match op {
            Op::Fail(h) => {
                if !self.failed[h] {
                    self.failed[h] = true;
                    for m in 0..self.failed.len() {
                        if m != h {
                            self.link[h][m] = 0.0;
                            self.link[m][h] = 0.0;
                        }
                    }
                }
            }
            Op::RestoreHost(h) => {
                if self.failed[h] {
                    self.failed[h] = false;
                    for m in 0..self.failed.len() {
                        if m != h {
                            self.link[h][m] = self.nominal_link[h][m];
                            self.link[m][h] = self.nominal_link[m][h];
                        }
                    }
                }
            }
            Op::Degrade(h, m, cap) => self.link[h][m] = cap,
            Op::RestoreLink(h, m) => self.link[h][m] = self.nominal_link[h][m],
        }
    }
}

fn apply(c: &mut Catalog, op: Op) {
    match op {
        Op::Fail(h) => {
            c.fail_host(HostId(h as u32));
        }
        Op::RestoreHost(h) => {
            c.restore_host(HostId(h as u32));
        }
        Op::Degrade(h, m, cap) => c.degrade_link(HostId(h as u32), HostId(m as u32), cap),
        Op::RestoreLink(h, m) => c.restore_link(HostId(h as u32), HostId(m as u32)),
    }
}

/// The mid-flight invariants: failed hosts are fully dark on the host
/// spec, live hosts keep their nominal specs, and every directed link
/// exactly matches the shadow model.
fn check_fault_invariants(c: &Catalog, nominal: &Catalog, shadow: &Shadow, seed: u64) {
    for h in c.hosts() {
        assert_eq!(
            c.is_host_failed(h),
            shadow.failed[h.index()],
            "seed {seed}: {h}"
        );
        if c.is_host_failed(h) {
            assert_eq!(
                c.host(h).cpu_capacity,
                0.0,
                "seed {seed}: failed {h} has CPU"
            );
            assert_eq!(c.host(h).bandwidth_out, 0.0, "seed {seed}");
            assert_eq!(c.host(h).bandwidth_in, 0.0, "seed {seed}");
        } else {
            assert_eq!(c.host(h), nominal.host(h), "seed {seed}: live {h} drifted");
        }
        for m in c.hosts() {
            if h != m {
                let got = c.topology().link(h, m);
                let want = shadow.link[h.index()][m.index()];
                assert!(
                    got == want,
                    "seed {seed}: link {h}->{m} is {got}, shadow says {want}"
                );
            }
        }
    }
}

/// Restores everything: hosts first (which resets their links to nominal),
/// then every directed link (clearing independent degradations).
fn restore_all(c: &mut Catalog) {
    let hosts: Vec<HostId> = c.hosts().collect();
    for &h in &hosts {
        c.restore_host(h);
    }
    for &h in &hosts {
        for &m in &hosts {
            if h != m {
                c.restore_link(h, m);
            }
        }
    }
}

fn assert_exactly_nominal(c: &Catalog, nominal: &Catalog, seed: u64) {
    assert_eq!(
        c.failed_hosts().count(),
        0,
        "seed {seed}: hosts still failed"
    );
    for h in c.hosts() {
        assert_eq!(
            c.host(h),
            nominal.host(h),
            "seed {seed}: host {h} not nominal"
        );
        for m in c.hosts() {
            let got = c.topology().link(h, m);
            let want = nominal.topology().link(h, m);
            // Exact f64 round-trip; infinities compare equal to themselves.
            assert!(
                got == want || (got.is_infinite() && want.is_infinite()),
                "seed {seed}: link {h}->{m} is {got}, nominal {want}"
            );
        }
    }
}

#[test]
fn arbitrary_interleavings_round_trip_to_nominal() {
    for seed in 0..96u64 {
        let mut rng = StdRng::seed_from_u64(0xFA17 ^ seed);
        let hosts = rng.gen_index(4) + 2;
        let nominal = build_catalog(hosts);
        let mut c = build_catalog(hosts);
        let mut shadow = Shadow::new(&nominal, hosts);
        for _ in 0..rng.gen_index(40) + 5 {
            let op = random_op(&mut rng, hosts);
            apply(&mut c, op);
            shadow.apply(op);
            check_fault_invariants(&c, &nominal, &shadow, seed);
        }
        restore_all(&mut c);
        assert_exactly_nominal(&c, &nominal, seed);
    }
}

#[test]
fn fail_degrade_restore_order_does_not_matter_for_the_end_state() {
    // The same multiset of faults applied in random orders must land on
    // the same effective capacities once fully restored — and two
    // *different* full-restoration orders agree too.
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0x0DE8 ^ seed);
        let hosts = 4;
        let ops: Vec<Op> = (0..12).map(|_| random_op(&mut rng, hosts)).collect();
        let mut a = build_catalog(hosts);
        let mut b = build_catalog(hosts);
        for &op in &ops {
            apply(&mut a, op);
        }
        for &op in ops.iter().rev() {
            apply(&mut b, op);
        }
        restore_all(&mut a);
        // Reversed restoration order: links first, hosts second, links
        // again (restore_host resets the failed hosts' links anyway).
        let all: Vec<HostId> = b.hosts().collect();
        for &h in &all {
            for &m in &all {
                if h != m {
                    b.restore_link(h, m);
                }
            }
        }
        for &h in &all {
            b.restore_host(h);
        }
        let nominal = build_catalog(hosts);
        assert_exactly_nominal(&a, &nominal, seed);
        assert_exactly_nominal(&b, &nominal, seed);
    }
}

#[test]
fn failure_is_idempotent_and_flagged() {
    let mut c = build_catalog(3);
    assert!(c.fail_host(HostId(1)), "first failure reports the edge");
    assert!(!c.fail_host(HostId(1)), "second failure is a no-op");
    assert!(c.is_host_failed(HostId(1)));
    assert_eq!(c.failed_hosts().collect::<Vec<_>>(), vec![HostId(1)]);
    assert!(c.restore_host(HostId(1)));
    assert!(!c.restore_host(HostId(1)), "double restore is a no-op");
    assert_exactly_nominal(&c, &build_catalog(3), u64::MAX);
}

#[test]
fn degrade_then_fail_then_restore_host_clears_the_degradation() {
    // restore_host is documented to restore the *nominal* topology around
    // the host, wiping independent degradations on its links.
    let mut c = build_catalog(3);
    let (h0, h1) = (HostId(0), HostId(1));
    c.degrade_link(h0, h1, 0.25);
    c.fail_host(h1);
    assert_eq!(c.topology().link(h0, h1), 0.0);
    c.restore_host(h1);
    assert_eq!(
        c.topology().link(h0, h1),
        c.topology().nominal_link(h0, h1),
        "restore_host returns the link to nominal, not to the degraded value"
    );
}

#[test]
fn orphaned_sources_rehome_and_return() {
    // Failing a host orphans its base streams; rehoming moves them to
    // survivors; restoring the host does NOT move them back (feeds stay
    // where they reconnected) — but a second rehome pass is a no-op.
    let mut c = build_catalog(3);
    let orphans: Vec<StreamId> = c.base_streams_at(HostId(2)).to_vec();
    assert!(!orphans.is_empty());
    c.fail_host(HostId(2));
    let moves = c.rehome_orphaned_sources();
    assert_eq!(moves.len(), orphans.len());
    for (s, from, to) in &moves {
        assert_eq!(*from, HostId(2));
        assert!(!c.is_host_failed(*to));
        assert_eq!(c.source_host(*s), Some(*to));
    }
    c.restore_host(HostId(2));
    assert!(
        c.rehome_orphaned_sources().is_empty(),
        "nothing orphaned now"
    );
    assert!(
        c.base_streams_at(HostId(2)).is_empty(),
        "feeds stay rehomed"
    );
}
