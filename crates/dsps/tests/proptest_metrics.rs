//! Property tests for the metrics layer: `Cdf` and `RateSketch` on
//! seeded random samples.
//!
//! Implemented as seeded random-case loops (the sanctioned dependency set
//! has no `proptest`); every case prints its seed on failure so it can be
//! replayed deterministically.

use sqpr_dsps::{Cdf, RateSketch};
use sqpr_workload::rng::{Rng, StdRng};

/// A random sample mixing magnitudes, duplicates and (optionally) NaNs.
fn random_samples(rng: &mut StdRng, with_nans: bool) -> Vec<f64> {
    let n = rng.gen_index(40) + 1;
    let mut xs = Vec::with_capacity(n);
    for _ in 0..n {
        let v = match rng.gen_index(4) {
            0 => rng.gen_f64() * 10.0,
            1 => rng.gen_f64() * 1e6,
            // Deliberate duplicates: quantile/fraction round-trips must
            // survive ties.
            2 => (rng.gen_index(5) + 1) as f64,
            _ => -rng.gen_f64() * 100.0,
        };
        xs.push(v);
    }
    if with_nans {
        for _ in 0..rng.gen_index(5) {
            let at = rng.gen_index(xs.len());
            xs.insert(at, f64::NAN);
        }
    }
    xs
}

#[test]
fn fraction_at_is_monotone_in_x() {
    for seed in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(0xCDF0 ^ seed);
        let cdf = Cdf::from_samples(random_samples(&mut rng, false));
        let mut probes: Vec<f64> = (0..32)
            .map(|_| rng.gen_f64() * 2e6 - 1e6)
            .chain([f64::NEG_INFINITY, f64::INFINITY])
            .collect();
        probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let fracs: Vec<f64> = probes.iter().map(|&x| cdf.fraction_at(x)).collect();
        for w in fracs.windows(2) {
            assert!(
                w[0] <= w[1],
                "seed {seed}: fraction_at not monotone: {fracs:?}"
            );
        }
        assert!(fracs.iter().all(|f| (0.0..=1.0).contains(f)), "seed {seed}");
        assert_eq!(cdf.fraction_at(f64::INFINITY), 1.0, "seed {seed}");
    }
}

#[test]
fn nan_samples_are_filtered_everywhere() {
    for seed in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(0x7A17 ^ seed);
        let raw = random_samples(&mut rng, true);
        let clean: Vec<f64> = raw.iter().copied().filter(|v| !v.is_nan()).collect();
        let cdf = Cdf::from_samples(raw.clone());
        assert_eq!(cdf.len(), clean.len(), "seed {seed}: NaNs must drop");
        if !clean.is_empty() {
            // Quantiles over the NaN-polluted input equal quantiles over
            // the clean input, and are always finite sample members.
            let clean_cdf = Cdf::from_samples(clean);
            for q in [0.0, 0.01, 0.25, 0.5, 0.9, 1.0] {
                let v = cdf.quantile(q);
                assert!(!v.is_nan(), "seed {seed}: quantile({q}) is NaN");
                assert_eq!(v, clean_cdf.quantile(q), "seed {seed}");
            }
        }
    }
}

#[test]
fn quantile_of_fraction_round_trips_sample_members() {
    for seed in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(0xF00D ^ seed);
        let xs = random_samples(&mut rng, false);
        let cdf = Cdf::from_samples(xs.clone());
        for &x in &xs {
            // Nearest-rank round trip, up to the one-ulp rank wobble of
            // computing ceil((k/n)*n): the quantile at P[X <= x] lands
            // back on x or on its immediate successor sample — it never
            // skips over a sample value, and never moves below x.
            let q = cdf.fraction_at(x);
            let v = cdf.quantile(q);
            assert!(
                xs.contains(&v),
                "seed {seed}: quantile({q}) = {v} is not a sample member"
            );
            assert!(v >= x, "seed {seed}: round trip moved below x={x}: {v}");
            assert!(
                !xs.iter().any(|&y| y > x && y < v),
                "seed {seed}: round trip skipped a sample between {x} and {v}"
            );
        }
    }
}

#[test]
fn fraction_of_quantile_dominates_q() {
    for seed in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(0xBEEF ^ seed);
        let cdf = Cdf::from_samples(random_samples(&mut rng, false));
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = cdf.quantile(q);
            // P[X <= quantile(q)] covers at least q of the mass...
            assert!(
                cdf.fraction_at(v) + 1e-12 >= q,
                "seed {seed}: fraction_at(quantile({q})) = {} < {q}",
                cdf.fraction_at(v)
            );
            // ...and quantiles are monotone in q.
            assert!(v >= prev, "seed {seed}: quantile not monotone at q={q}");
            prev = v;
        }
    }
}

#[test]
fn sketch_median_matches_naive_window_median() {
    for seed in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(0x5EE7 ^ seed);
        let window = rng.gen_index(7) + 1;
        let mut sketch = RateSketch::new(window);
        let mut valid: Vec<f64> = Vec::new();
        for _ in 0..rng.gen_index(30) + 1 {
            let v = match rng.gen_index(5) {
                0 => f64::NAN,
                1 => 0.0,
                2 => -rng.gen_f64(),
                _ => rng.gen_f64() * 100.0 + 1e-3,
            };
            sketch.observe(v);
            if !v.is_nan() && v > 0.0 {
                valid.push(v);
            }
        }
        let start = valid.len().saturating_sub(window);
        let tail = &valid[start..];
        assert_eq!(sketch.len(), tail.len(), "seed {seed}");
        assert_eq!(sketch.observed(), valid.len(), "seed {seed}");
        match sketch.estimate() {
            None => assert!(tail.is_empty(), "seed {seed}"),
            Some(est) => {
                let naive = Cdf::from_samples(tail.to_vec()).quantile(0.5);
                assert_eq!(est, naive, "seed {seed}: window median mismatch");
                assert!(tail.contains(&est), "seed {seed}: median not a sample");
            }
        }
    }
}
