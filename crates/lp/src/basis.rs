//! Simplex basis: factorisation lifecycle, FTRAN/BTRAN, column replacement.
//!
//! The basis consists of `m` variables out of the `n + m` total (structural
//! plus one slack per row). Slack `i` is represented as global column index
//! `n + i` with the single entry `(i, -1.0)`, matching the internal system
//! `A x - s = 0`.

use crate::eta::Eta;
use crate::lu::{ColumnOutcome, LuFactors, LuWorkspace};
use crate::sparse::CscMatrix;

/// Maximum eta count before a refactorisation is forced.
const MAX_ETAS: usize = 64;

/// Manages the basis matrix of the revised simplex method.
pub struct Basis<'a> {
    /// Structural columns (m x n).
    a: &'a CscMatrix,
    m: usize,
    n: usize,
    /// `basic[p]` = global column index occupying basis position `p`.
    basic: Vec<usize>,
    /// Processing order used at the last factorisation:
    /// `col_order[k]` = basis position processed k-th.
    col_order: Vec<usize>,
    /// `pos_to_order[p]` = k such that `col_order[k] == p`.
    pos_to_order: Vec<usize>,
    factors: LuFactors,
    etas: Vec<Eta>,
    ws: LuWorkspace,
    scratch: Vec<f64>,
    perm_buf: Vec<f64>,
    refactor_count: usize,
}

impl<'a> Basis<'a> {
    /// Creates a basis over the structural matrix with the given initial
    /// basic set (global column indices, one per row) and factorises it.
    pub fn new(a: &'a CscMatrix, basic: Vec<usize>) -> Self {
        let m = a.nrows();
        let n = a.ncols();
        assert_eq!(basic.len(), m, "basis must have one column per row");
        let mut b = Basis {
            a,
            m,
            n,
            basic,
            col_order: Vec::new(),
            pos_to_order: Vec::new(),
            factors: LuFactors::factorize(0, |_, _| {}, &mut LuWorkspace::new()).0,
            etas: Vec::new(),
            ws: LuWorkspace::new(),
            scratch: vec![0.0; m],
            perm_buf: vec![0.0; m],
            refactor_count: 0,
        };
        b.refactorize();
        b
    }

    pub fn m(&self) -> usize {
        self.m
    }

    /// Global column index at basis position `p`.
    #[inline]
    pub fn basic_at(&self, p: usize) -> usize {
        self.basic[p]
    }

    pub fn basic_columns(&self) -> &[usize] {
        &self.basic
    }

    /// How many times this basis has been refactorised (diagnostics).
    pub fn refactor_count(&self) -> usize {
        self.refactor_count
    }

    /// Scatters the global column `j` into a dense row-indexed vector.
    #[inline]
    pub fn scatter_column(&self, j: usize, out: &mut [f64]) {
        if j < self.n {
            for (r, v) in self.a.col_iter(j) {
                out[r] += v;
            }
        } else {
            out[j - self.n] -= 1.0;
        }
    }

    fn column_entries(&self, j: usize, out: &mut Vec<(usize, f64)>) {
        if j < self.n {
            out.extend(self.a.col_iter(j));
        } else {
            out.push((j - self.n, -1.0));
        }
    }

    /// Re-factorises from scratch, repairing singular positions by
    /// substituting slack columns of unpivoted rows. Returns the basis
    /// positions that were repaired (their previous variables left the
    /// basis implicitly).
    pub fn refactorize(&mut self) -> Vec<usize> {
        self.refactor_count += 1;
        self.etas.clear();
        // Order columns by sparsity: slacks (1 nonzero) first, then by nnz.
        let mut order: Vec<usize> = (0..self.m).collect();
        order.sort_by_key(|&p| {
            let j = self.basic[p];
            if j >= self.n {
                0
            } else {
                self.a.col_nnz(j)
            }
        });
        let mut repaired = Vec::new();
        loop {
            let basic = &self.basic;
            let n = self.n;
            let a = self.a;
            let (factors, outcomes) = LuFactors::factorize(
                self.m,
                |k, out| {
                    let j = basic[order[k]];
                    if j < n {
                        out.extend(a.col_iter(j));
                    } else {
                        out.push((j - n, -1.0));
                    }
                },
                &mut self.ws,
            );
            let singular: Vec<usize> = outcomes
                .iter()
                .enumerate()
                .filter(|(_, o)| matches!(o, ColumnOutcome::Singular))
                .map(|(k, _)| k)
                .collect();
            if singular.is_empty() {
                self.factors = factors;
                break;
            }
            // Repair: assign each singular position the slack of a row that
            // ended up unpivoted, then refactorise again.
            let mut unpivoted: Vec<usize> = (0..self.m)
                .filter(|&r| factors.pinv()[r] == usize::MAX)
                .collect();
            assert!(unpivoted.len() >= singular.len());
            for k in singular {
                let p = order[k];
                let row = unpivoted.pop().expect("row available for repair");
                self.basic[p] = self.n + row;
                repaired.push(p);
            }
        }
        self.col_order = order;
        self.pos_to_order = vec![0; self.m];
        for (k, &p) in self.col_order.iter().enumerate() {
            self.pos_to_order[p] = k;
        }
        repaired
    }

    /// Whether the eta file is long enough that the caller should refactorise.
    pub fn should_refactorize(&self) -> bool {
        self.etas.len() >= MAX_ETAS
            || self.etas.iter().map(Eta::nnz).sum::<usize>() > 2 * self.factors.nnz() + 64
    }

    /// Solves `B w = b`. `b` is row-indexed; the result is basis-position
    /// indexed (`w[p]` pairs with `basic[p]`).
    pub fn ftran(&mut self, b: &mut [f64]) {
        self.factors.ftran(b, &mut self.scratch);
        // b now holds z in *column processing order*; permute to positions.
        for k in 0..self.m {
            self.perm_buf[self.col_order[k]] = b[k];
        }
        b.copy_from_slice(&self.perm_buf[..self.m]);
        for eta in &self.etas {
            eta.apply_ftran(b);
        }
    }

    /// Solves `B^T y = c`. `c` is basis-position indexed; the result is
    /// row-indexed (dual values).
    pub fn btran(&mut self, c: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            eta.apply_btran(c);
        }
        // Permute positions -> column processing order for the LU transpose.
        for k in 0..self.m {
            self.perm_buf[k] = c[self.col_order[k]];
        }
        c.copy_from_slice(&self.perm_buf[..self.m]);
        self.factors.btran(c, &mut self.scratch);
    }

    /// Replaces the basic variable at position `p` with global column `j`.
    /// `w` must be the FTRAN image of column `j` under the *current* basis
    /// (basis-position indexed). Returns the outgoing global column.
    pub fn replace(&mut self, p: usize, j: usize, w: &[f64]) -> usize {
        let out = self.basic[p];
        self.basic[p] = j;
        self.etas.push(Eta::from_dense(p, w, 1e-13));
        out
    }

    /// Computes the FTRAN image of an arbitrary global column into `out`
    /// (which must be zeroed, length m). Leaves the image basis-position
    /// indexed.
    pub fn ftran_column(&mut self, j: usize, out: &mut [f64]) {
        self.scatter_column(j, out);
        self.ftran(out);
    }

    /// Verifies `B w = col_j` within `tol`, for numerical-drift checks.
    pub fn check_ftran(&self, j: usize, w: &[f64], tol: f64) -> bool {
        let mut lhs = vec![0.0; self.m];
        for (p, &wv) in w.iter().enumerate() {
            if wv != 0.0 {
                let col = self.basic[p];
                if col < self.n {
                    for (r, v) in self.a.col_iter(col) {
                        lhs[r] += v * wv;
                    }
                } else {
                    lhs[col - self.n] -= wv;
                }
            }
        }
        let mut rhs = vec![0.0; self.m];
        let mut entries = Vec::new();
        self.column_entries(j, &mut entries);
        for (r, v) in entries {
            rhs[r] += v;
        }
        lhs.iter()
            .zip(&rhs)
            .all(|(a, b)| (a - b).abs() <= tol * (1.0 + b.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Triplet;

    fn tri(row: usize, col: usize, value: f64) -> Triplet {
        Triplet { row, col, value }
    }

    /// 3x2 structural matrix; slack columns are globals 2, 3, 4.
    fn small_a() -> CscMatrix {
        CscMatrix::from_triplets(
            3,
            2,
            &[
                tri(0, 0, 1.0),
                tri(1, 0, 2.0),
                tri(0, 1, -1.0),
                tri(2, 1, 4.0),
            ],
        )
    }

    #[test]
    fn slack_basis_ftran_is_negation() {
        let a = small_a();
        let mut basis = Basis::new(&a, vec![2, 3, 4]);
        // B = -I, so B w = b -> w = -b.
        let mut b = vec![1.0, -2.0, 0.5];
        basis.ftran(&mut b);
        assert_eq!(b, vec![-1.0, 2.0, -0.5]);
        let mut c = vec![3.0, 1.0, -1.0];
        basis.btran(&mut c);
        assert_eq!(c, vec![-3.0, -1.0, 1.0]);
    }

    #[test]
    fn replace_and_solve_consistent() {
        let a = small_a();
        let mut basis = Basis::new(&a, vec![2, 3, 4]);
        // Bring structural column 0 into position 0.
        let mut w = vec![0.0; 3];
        basis.ftran_column(0, &mut w);
        assert_eq!(w, vec![-1.0, -2.0, 0.0]); // -(col 0)
        basis.replace(0, 0, &w);
        // Now B = [a0 | -e1 | -e2]. Solve B z = [1,2,0]^T => z = e0.
        let mut b = vec![1.0, 2.0, 0.0];
        basis.ftran(&mut b);
        assert!((b[0] - 1.0).abs() < 1e-12);
        assert!(b[1].abs() < 1e-12 && b[2].abs() < 1e-12);
        // BTRAN: solve B^T y = c with c = e0 -> col0 . y = 1, -y1 = 0, -y2 = 0.
        let mut c = vec![1.0, 0.0, 0.0];
        basis.btran(&mut c);
        assert!((c[0] * 1.0 + c[1] * 2.0 - 1.0).abs() < 1e-12);
        assert!(c[1].abs() < 1e-12 && c[2].abs() < 1e-12);
    }

    #[test]
    fn refactorize_after_replacements_matches_eta_solves() {
        let a = small_a();
        let mut basis = Basis::new(&a, vec![2, 3, 4]);
        let mut w = vec![0.0; 3];
        basis.ftran_column(0, &mut w);
        basis.replace(0, 0, &w);
        let mut w2 = vec![0.0; 3];
        basis.ftran_column(1, &mut w2);
        assert!(w2[2].abs() > 1e-12, "position 2 must be pivotable");
        basis.replace(2, 1, &w2);

        let rhs = vec![0.3, -1.2, 2.0];
        let mut via_eta = rhs.clone();
        basis.ftran(&mut via_eta);
        let repaired = basis.refactorize();
        assert!(repaired.is_empty());
        let mut via_lu = rhs.clone();
        basis.ftran(&mut via_lu);
        for (x, y) in via_eta.iter().zip(&via_lu) {
            assert!((x - y).abs() < 1e-9, "{via_eta:?} vs {via_lu:?}");
        }
    }

    #[test]
    fn repairs_singular_basis() {
        // Two copies of the same structural column cannot form a basis; the
        // repair should kick one out for a slack.
        let a = CscMatrix::from_triplets(2, 2, &[tri(0, 0, 1.0), tri(0, 1, 1.0)]);
        let mut basis = Basis::new(&a, vec![0, 1]);
        // After repair the basis must be solvable.
        let mut b = vec![1.0, 1.0];
        basis.ftran(&mut b);
        let cols = basis.basic_columns();
        assert!(
            cols.contains(&2) || cols.contains(&3),
            "slack substituted: {cols:?}"
        );
    }

    #[test]
    fn check_ftran_detects_garbage() {
        let a = small_a();
        let mut basis = Basis::new(&a, vec![2, 3, 4]);
        let mut w = vec![0.0; 3];
        basis.ftran_column(0, &mut w);
        assert!(basis.check_ftran(0, &w, 1e-9));
        let bad = vec![9.0, 9.0, 9.0];
        assert!(!basis.check_ftran(0, &bad, 1e-9));
    }
}
