//! Simplex basis: factorisation lifecycle, FTRAN/BTRAN, column replacement.
//!
//! The basis consists of `m` variables out of the `n + m` total (structural
//! plus one slack per row). Slack `i` is represented as global column index
//! `n + i` with the single entry `(i, -1.0)`, matching the internal system
//! `A x - s = 0`.
//!
//! ## The solve pipeline
//!
//! Every FTRAN runs `L solve → FT row etas → U solve → order permutation →
//! PFI etas` (BTRAN mirrors it in reverse). `L` is the static factor of the
//! last refactorisation ([`crate::lu::LuFactors`]); `U` lives in the
//! dynamic Forrest–Tomlin engine ([`crate::ft::UFactors`]) so basis changes
//! can edit it in place. Under [`BasisUpdate::ProductForm`] the FT stage is
//! inert and updates append classic PFI etas instead (the ablation
//! baseline, and the fallback when an FT update is numerically rejected).
//!
//! ## Hyper-sparsity
//!
//! Both directions exist in two flavours: dense (`O(m)` sweeps, the old
//! behaviour) and hyper-sparse over [`IndexedVec`] right-hand sides, which
//! use Gilbert–Peierls DFS reachability to visit only the solution's
//! pattern. The dispatch is automatic: a tracked input below the density
//! cutoff takes the sparse kernels, everything else falls back to dense.
//! [`SolveStats`] records which path ran and how dense the results were,
//! so the win is observable end-to-end.

use crate::eta::Eta;
use crate::ft::{FtOutcome, UFactors};
use crate::lu::{ColumnOutcome, LuFactors, LuWorkspace};
use crate::sparse::{CscMatrix, IndexedVec};

/// Maximum eta count before a refactorisation is forced (product-form
/// mode; Forrest–Tomlin keys on fill growth instead).
const MAX_ETAS: usize = 64;

/// Hard cap on Forrest–Tomlin updates between refactorisations: fill
/// growth is the primary trigger, this bounds numerical drift on models
/// whose factors barely fill in.
const FT_UPDATE_CAP: usize = 192;

/// Input density above which a solve takes the dense kernels: the DFS
/// bookkeeping only pays for itself while the right-hand side (and
/// therefore, usually, the solution) is genuinely sparse.
const SPARSE_CUTOFF: f64 = 0.22;

/// Result-density EWMA above which a solve channel stops trying the
/// hyper-sparse kernels. A sparse *input* says nothing about the
/// *solution* pattern — a phase-I entering column on a cold basis reaches
/// most of the factors, and there the DFS costs more than the dense sweep
/// it replaces. Each call site tracks the densities its results have been
/// coming out at and bails to dense while they stay high (the estimate
/// keeps updating either way, so channels re-enter the sparse path as the
/// basis cleans up).
const RESULT_DENSITY_CUTOFF: f64 = 0.30;

/// Smoothing factor of the per-channel result-density estimate.
const DENSITY_EWMA_ALPHA: f64 = 0.15;

/// How the basis representation absorbs a column replacement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BasisUpdate {
    /// Forrest–Tomlin updates of `U` (default): the factors stay sparse,
    /// refactorisation keys on measured fill growth.
    ForrestTomlin,
    /// Product-form-of-inverse eta file (the pre-FT behaviour; ablation).
    ProductForm,
}

/// Counters describing how the solve pipeline behaved (reset per
/// [`Basis`]; the simplex folds them into
/// [`crate::simplex::PivotCounts`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// FTRAN/BTRAN solves served by the hyper-sparse kernels.
    pub sparse_solves: usize,
    /// Solves that fell back to the dense kernels.
    pub dense_solves: usize,
    /// Sampling-weighted sum of result nonzeros (density numerator):
    /// sparse solves are counted exactly, dense solves are sampled every
    /// 4th and weighted by the stride, so the ratio to [`Self::solve_dim`]
    /// is an unbiased mean-density estimate — the sums themselves are
    /// estimators, not exact totals.
    pub solve_nnz: usize,
    /// Sampling-weighted sum of basis dimensions (density denominator;
    /// see [`Self::solve_nnz`]).
    pub solve_dim: usize,
    /// Forrest–Tomlin updates applied.
    pub ft_updates: usize,
    /// Product-form etas appended (mode or FT-rejection fallback).
    pub pfi_updates: usize,
}

/// Detached factorisation state, reusable across solves.
///
/// A branch & bound child starts from its parent's *exact* basic set —
/// only variable bounds moved — so the parent's factorisation is already
/// the child's. Callers stash the state in an
/// [`crate::simplex::LpWorkspace`] between solves; [`Basis::build`]
/// re-installs it when the requested basic set (and the caller's
/// matrix-generation `token`) matches, skipping the refactorisation that
/// otherwise dominates short warm re-solves.
///
/// The reuse scope is exactly the token's lifetime, which the caller
/// controls: claiming a fresh token per branch & bound tree scopes reuse
/// to that tree's node solves, while holding one token across consecutive
/// trees over a byte-identical matrix
/// ([`crate::simplex::LpWorkspace::resume_factor_generation`]) lets a
/// later tree's root re-attach the previous tree's final factorisation —
/// the cross-submission warm path of a caller whose compressed LP only
/// had its bounds patched between solves.
#[derive(Debug, Clone)]
pub struct FactorState {
    /// Caller-assigned matrix generation; a state only re-attaches under
    /// the same token (the caller guarantees the matrix is unchanged for
    /// the token's lifetime).
    pub(crate) token: u64,
    basic: Vec<usize>,
    update_mode: BasisUpdate,
    factors: LuFactors,
    uf: UFactors,
    etas: Vec<Eta>,
    col_order: Vec<usize>,
    pos_to_order: Vec<usize>,
    updates_since_refactor: usize,
    /// Scratch buffers ride along so a cache hit allocates nothing.
    ws: LuWorkspace,
    perm_buf: Vec<f64>,
    work: IndexedVec,
    zbuf: IndexedVec,
}

impl FactorState {
    /// The matrix generation this state was detached under.
    pub fn token(&self) -> u64 {
        self.token
    }
}

/// Manages the basis matrix of the revised simplex method.
pub struct Basis<'a> {
    /// Structural columns (m x n).
    a: &'a CscMatrix,
    m: usize,
    n: usize,
    /// `basic[p]` = global column index occupying basis position `p`.
    basic: Vec<usize>,
    /// Processing order used at the last factorisation:
    /// `col_order[k]` = basis position processed k-th.
    col_order: Vec<usize>,
    /// `pos_to_order[p]` = k such that `col_order[k] == p`.
    pos_to_order: Vec<usize>,
    /// The static `L` factor (plus permutations); `U` is moved out into
    /// the Forrest–Tomlin engine after every refactorisation.
    factors: LuFactors,
    uf: UFactors,
    /// PFI eta file: the update representation in [`BasisUpdate::ProductForm`]
    /// mode, and the fallback when an FT update is rejected.
    etas: Vec<Eta>,
    update_mode: BasisUpdate,
    /// Fill-growth ratio at which FT mode refactorises.
    fill_limit: f64,
    force_refactor: bool,
    ws: LuWorkspace,
    perm_buf: Vec<f64>,
    /// Ping-pong buffer for the sparse pipelines (pivot-order space).
    work: IndexedVec,
    /// Scratch for the FT update's `z` image (pivot-order space).
    zbuf: IndexedVec,
    refactor_count: usize,
    updates_since_refactor: usize,
    stats: SolveStats,
    check_lhs: Vec<f64>,
    check_rhs: Vec<f64>,
}

impl<'a> Basis<'a> {
    /// Creates a basis over the structural matrix with the given initial
    /// basic set (global column indices, one per row) and factorises it.
    pub fn new(a: &'a CscMatrix, basic: Vec<usize>, update_mode: BasisUpdate) -> Self {
        Self::with_fill_limit(a, basic, update_mode, 3.0)
    }

    /// Like [`Self::new`] with an explicit Forrest–Tomlin fill-growth
    /// refactorisation threshold.
    pub fn with_fill_limit(
        a: &'a CscMatrix,
        basic: Vec<usize>,
        update_mode: BasisUpdate,
        fill_limit: f64,
    ) -> Self {
        Self::build(a, basic, update_mode, fill_limit, None).0
    }

    /// Full-control constructor: like [`Self::with_fill_limit`], but a
    /// cached [`FactorState`] whose basic set, update mode and dimensions
    /// match is re-installed instead of refactorising. Returns whether the
    /// cache hit.
    pub fn build(
        a: &'a CscMatrix,
        basic: Vec<usize>,
        update_mode: BasisUpdate,
        fill_limit: f64,
        cache: Option<FactorState>,
    ) -> (Self, bool) {
        let m = a.nrows();
        let n = a.ncols();
        assert_eq!(basic.len(), m, "basis must have one column per row");
        if let Some(state) = cache {
            if state.update_mode == update_mode && state.factors.m() == m && state.basic == basic {
                let mut work = state.work;
                work.reset(m);
                let mut zbuf = state.zbuf;
                zbuf.reset(m);
                let mut perm_buf = state.perm_buf;
                perm_buf.clear();
                perm_buf.resize(m, 0.0);
                let b = Basis {
                    a,
                    m,
                    n,
                    basic,
                    col_order: state.col_order,
                    pos_to_order: state.pos_to_order,
                    factors: state.factors,
                    uf: state.uf,
                    etas: state.etas,
                    update_mode,
                    fill_limit,
                    force_refactor: false,
                    ws: state.ws,
                    perm_buf,
                    work,
                    zbuf,
                    refactor_count: 0,
                    updates_since_refactor: state.updates_since_refactor,
                    stats: SolveStats::default(),
                    check_lhs: Vec::new(),
                    check_rhs: Vec::new(),
                };
                return (b, true);
            }
        }
        let mut b = Basis {
            a,
            m,
            n,
            basic,
            col_order: Vec::new(),
            pos_to_order: Vec::new(),
            factors: LuFactors::factorize(0, |_, _| {}, &mut LuWorkspace::new()).0,
            uf: UFactors::new(),
            etas: Vec::new(),
            update_mode,
            fill_limit,
            force_refactor: false,
            ws: LuWorkspace::new(),
            perm_buf: vec![0.0; m],
            work: IndexedVec::zeros(m),
            zbuf: IndexedVec::zeros(m),
            refactor_count: 0,
            updates_since_refactor: 0,
            stats: SolveStats::default(),
            check_lhs: Vec::new(),
            check_rhs: Vec::new(),
        };
        b.refactorize();
        (b, false)
    }

    /// Detaches the factorisation for reuse by a later solve over the same
    /// matrix (see [`FactorState`]).
    pub fn into_state(self, token: u64) -> FactorState {
        FactorState {
            token,
            basic: self.basic,
            update_mode: self.update_mode,
            factors: self.factors,
            uf: self.uf,
            etas: self.etas,
            col_order: self.col_order,
            pos_to_order: self.pos_to_order,
            updates_since_refactor: self.updates_since_refactor,
            ws: self.ws,
            perm_buf: self.perm_buf,
            work: self.work,
            zbuf: self.zbuf,
        }
    }

    pub fn m(&self) -> usize {
        self.m
    }

    /// Global column index at basis position `p`.
    #[inline]
    pub fn basic_at(&self, p: usize) -> usize {
        self.basic[p]
    }

    pub fn basic_columns(&self) -> &[usize] {
        &self.basic
    }

    /// How many times this basis has been refactorised (diagnostics).
    pub fn refactor_count(&self) -> usize {
        self.refactor_count
    }

    /// Basis changes absorbed since the last refactorisation.
    pub fn updates_since_refactor(&self) -> usize {
        self.updates_since_refactor
    }

    /// Solve-path counters accumulated so far.
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// Scatters the global column `j` into a dense row-indexed vector.
    #[inline]
    pub fn scatter_column(&self, j: usize, out: &mut [f64]) {
        if j < self.n {
            for (r, v) in self.a.col_iter(j) {
                out[r] += v;
            }
        } else {
            out[j - self.n] -= 1.0;
        }
    }

    /// Scatters the global column `j` into an [`IndexedVec`] (row space),
    /// registering the pattern.
    #[inline]
    pub fn scatter_column_sp(&self, j: usize, out: &mut IndexedVec) {
        if j < self.n {
            for (r, v) in self.a.col_iter(j) {
                out.add(r, v);
            }
        } else {
            out.add(j - self.n, -1.0);
        }
    }

    fn column_entries(&self, j: usize, out: &mut Vec<(usize, f64)>) {
        if j < self.n {
            out.extend(self.a.col_iter(j));
        } else {
            out.push((j - self.n, -1.0));
        }
    }

    /// Re-factorises from scratch, repairing singular positions by
    /// substituting slack columns of unpivoted rows. Returns the basis
    /// positions that were repaired (their previous variables left the
    /// basis implicitly).
    pub fn refactorize(&mut self) -> Vec<usize> {
        self.refactor_count += 1;
        self.updates_since_refactor = 0;
        self.force_refactor = false;
        self.etas.clear();
        // Order columns by sparsity: slacks (1 nonzero) first, then by nnz.
        let mut order: Vec<usize> = (0..self.m).collect();
        order.sort_by_key(|&p| {
            let j = self.basic[p];
            if j >= self.n {
                0
            } else {
                self.a.col_nnz(j)
            }
        });
        let mut repaired = Vec::new();
        loop {
            let basic = &self.basic;
            let n = self.n;
            let a = self.a;
            let (factors, outcomes) = LuFactors::factorize(
                self.m,
                |k, out| {
                    let j = basic[order[k]];
                    if j < n {
                        out.extend(a.col_iter(j));
                    } else {
                        out.push((j - n, -1.0));
                    }
                },
                &mut self.ws,
            );
            let singular: Vec<usize> = outcomes
                .iter()
                .enumerate()
                .filter(|(_, o)| matches!(o, ColumnOutcome::Singular))
                .map(|(k, _)| k)
                .collect();
            if singular.is_empty() {
                self.factors = factors;
                break;
            }
            // Repair: assign each singular position the slack of a row that
            // ended up unpivoted, then refactorise again.
            let unpivoted: Vec<usize> = (0..self.m)
                .filter(|&r| factors.pinv()[r] == usize::MAX)
                .collect();
            assert!(unpivoted.len() >= singular.len());
            // Pair each singular position with an unpivoted row from the
            // back (same assignment as repeated pop), panic-free.
            for (k, row) in singular.into_iter().zip(unpivoted.into_iter().rev()) {
                let p = order[k];
                self.basic[p] = self.n + row;
                repaired.push(p);
            }
        }
        let (u, u_diag) = self.factors.take_u();
        self.uf.rebuild(&u, u_diag);
        self.col_order = order;
        self.pos_to_order = vec![0; self.m];
        for (k, &p) in self.col_order.iter().enumerate() {
            self.pos_to_order[p] = k;
        }
        repaired
    }

    /// Whether the update representation has degraded enough that the
    /// caller should refactorise: eta count / eta fill in product-form
    /// mode, measured fill growth (plus a drift-bounding update cap and
    /// any rejected-update fallback) in Forrest–Tomlin mode.
    pub fn should_refactorize(&self) -> bool {
        if self.force_refactor {
            return true;
        }
        match self.update_mode {
            BasisUpdate::ProductForm => {
                self.etas.len() >= MAX_ETAS
                    || self.etas.iter().map(Eta::nnz).sum::<usize>()
                        > 2 * (self.factors.l_nnz() + self.uf.fill_nnz()) + 64
            }
            BasisUpdate::ForrestTomlin => {
                !self.etas.is_empty() // an FT rejection fell back to PFI
                    || self.uf.fill_ratio() > self.fill_limit
                    || self.uf.updates() >= FT_UPDATE_CAP
            }
        }
    }

    /// Density-based kernel dispatch: the input must be tracked and
    /// sparse, and the channel's recent *results* must have been sparse
    /// too (see [`RESULT_DENSITY_CUTOFF`]).
    #[inline]
    fn sparse_eligible(&self, x: &IndexedVec, density_ewma: f64) -> bool {
        x.is_sparse()
            && (x.nnz() as f64) < SPARSE_CUTOFF * self.m as f64
            && density_ewma < RESULT_DENSITY_CUTOFF
    }

    #[inline]
    fn record_solve(&mut self, x: &IndexedVec, sparse: bool, density_ewma: &mut f64) {
        if sparse {
            self.stats.sparse_solves += 1;
        } else {
            self.stats.dense_solves += 1;
            // Counting a dense result is an O(m) scan; sample every 4th
            // dense solve instead of paying it on each one. The sampled
            // observation is weighted by the stride below so the
            // mean-density statistic stays unbiased between the (always
            // counted) sparse channel and the sampled dense channel.
            if self.stats.dense_solves % 4 != 1 {
                return;
            }
            let nnz = x.count_nonzeros();
            self.stats.solve_nnz += 4 * nnz;
            self.stats.solve_dim += 4 * self.m;
            if self.m > 0 {
                let density = nnz as f64 / self.m as f64;
                *density_ewma += DENSITY_EWMA_ALPHA * (density - *density_ewma);
            }
            return;
        }
        let nnz = x.count_nonzeros();
        self.stats.solve_nnz += nnz;
        self.stats.solve_dim += self.m;
        if self.m > 0 {
            let density = nnz as f64 / self.m as f64;
            *density_ewma += DENSITY_EWMA_ALPHA * (density - *density_ewma);
        }
    }

    /// Solves `B w = b`. `b` is row-indexed; the result is basis-position
    /// indexed (`w[p]` pairs with `basic[p]`). Dense entry point.
    pub fn ftran(&mut self, b: &mut [f64]) {
        self.ftran_dense_slice(b);
    }

    fn ftran_dense_slice(&mut self, b: &mut [f64]) {
        self.factors.l_solve_dense(b);
        let rowof = self.factors.rowof();
        for k in 0..self.m {
            self.perm_buf[k] = b[rowof[k]];
        }
        self.uf.ftran_upper_dense(&mut self.perm_buf);
        for k in 0..self.m {
            b[self.col_order[k]] = self.perm_buf[k];
        }
        for eta in &self.etas {
            eta.apply_ftran(b);
        }
    }

    /// Sparsity-aware FTRAN: `x` is row-indexed on entry (pattern tracked)
    /// and basis-position indexed on exit. Dispatches to the hyper-sparse
    /// kernels when the input is sparse enough *and* this channel's recent
    /// results were too; `density_ewma` is the caller-owned estimate (one
    /// per call site — entering columns, flip batches, … have very
    /// different density profiles).
    pub fn ftran_sp(&mut self, x: &mut IndexedVec, density_ewma: &mut f64) {
        debug_assert_eq!(x.len(), self.m);
        if !self.sparse_eligible(x, *density_ewma) {
            x.make_dense();
            let mut buf = std::mem::take(x);
            self.ftran_dense_slice(buf.as_mut_slice());
            *x = buf;
            self.record_solve(x, false, density_ewma);
            return;
        }
        self.factors.l_solve_sparse(x, &mut self.ws);
        // Permute row space -> pivot-order space.
        let mut work = std::mem::take(&mut self.work);
        work.clear();
        let pinv = self.factors.pinv();
        x.for_each_nonzero(|r, v| work.set(pinv[r], v));
        x.clear();
        self.uf.ftran_upper_sparse(&mut work, &mut self.ws);
        // Permute pivot-order space -> basis positions.
        work.for_each_nonzero(|k, v| x.set(self.col_order[k], v));
        work.clear();
        self.work = work;
        for eta in &self.etas {
            eta.apply_ftran_sp(x);
        }
        self.record_solve(x, true, density_ewma);
    }

    /// Solves `B^T y = c`. `c` is basis-position indexed; the result is
    /// row-indexed (dual values). Dense entry point.
    pub fn btran(&mut self, c: &mut [f64]) {
        self.btran_dense_slice(c);
    }

    fn btran_dense_slice(&mut self, c: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            eta.apply_btran(c);
        }
        for k in 0..self.m {
            self.perm_buf[k] = c[self.col_order[k]];
        }
        self.uf.btran_upper_dense(&mut self.perm_buf);
        c.iter_mut().for_each(|v| *v = 0.0);
        self.factors.lt_solve_dense(&self.perm_buf, c);
    }

    /// Sparsity-aware BTRAN: `c` is basis-position indexed on entry
    /// (pattern tracked) and row-indexed on exit. `density_ewma` as in
    /// [`Self::ftran_sp`].
    pub fn btran_sp(&mut self, c: &mut IndexedVec, density_ewma: &mut f64) {
        debug_assert_eq!(c.len(), self.m);
        if !self.sparse_eligible(c, *density_ewma) {
            c.make_dense();
            let mut buf = std::mem::take(c);
            self.btran_dense_slice(buf.as_mut_slice());
            *c = buf;
            self.record_solve(c, false, density_ewma);
            return;
        }
        for eta in self.etas.iter().rev() {
            eta.apply_btran_sp(c);
        }
        // Permute basis positions -> pivot-order space.
        let mut work = std::mem::take(&mut self.work);
        work.clear();
        c.for_each_nonzero(|p, v| work.set(self.pos_to_order[p], v));
        c.clear();
        self.uf.btran_upper_sparse(&mut work, &mut self.ws);
        self.factors.ensure_transpose();
        self.factors.lt_solve_sparse(&work, c, &mut self.ws);
        work.clear();
        self.work = work;
        self.record_solve(c, true, density_ewma);
    }

    /// Replaces the basic variable at position `p` with global column `j`.
    /// `w` must be the FTRAN image of column `j` under the *current* basis
    /// (basis-position indexed). Returns the outgoing global column.
    ///
    /// In Forrest–Tomlin mode the update edits `U` in place; a numerically
    /// rejected update falls back to a PFI eta and schedules a
    /// refactorisation (correctness is never at stake — the eta is exact).
    pub fn replace(&mut self, p: usize, j: usize, w: &IndexedVec) -> usize {
        let out = self.basic[p];
        self.basic[p] = j;
        self.updates_since_refactor += 1;
        if self.update_mode == BasisUpdate::ForrestTomlin && self.etas.is_empty() {
            let t = self.pos_to_order[p];
            let mut zbuf = std::mem::take(&mut self.zbuf);
            zbuf.clear();
            w.for_each_nonzero(|pp, v| zbuf.set(self.pos_to_order[pp], v));
            let outcome = self.uf.ft_update(t, &zbuf, &mut self.ws);
            self.zbuf = zbuf;
            match outcome {
                FtOutcome::Applied => {
                    self.stats.ft_updates += 1;
                    return out;
                }
                FtOutcome::Rejected => self.force_refactor = true,
            }
        }
        self.stats.pfi_updates += 1;
        self.etas.push(Eta::from_indexed(p, w, 1e-13));
        out
    }

    /// Computes the FTRAN image of an arbitrary global column into `out`
    /// (which must be zeroed, length m). Leaves the image basis-position
    /// indexed.
    pub fn ftran_column(&mut self, j: usize, out: &mut [f64]) {
        self.scatter_column(j, out);
        self.ftran(out);
    }

    /// [`Self::ftran_column`] over an [`IndexedVec`] (`out` must be
    /// cleared): the hyper-sparse entering-column solve.
    pub fn ftran_column_sp(&mut self, j: usize, out: &mut IndexedVec) {
        self.scatter_column_sp(j, out);
        let mut ewma = 0.0;
        self.ftran_sp(out, &mut ewma);
    }

    /// Verifies `B w = col_j` within `tol`, for numerical-drift checks.
    /// Scratch buffers live on the basis, so repeated checks do not
    /// allocate.
    pub fn check_ftran(&mut self, j: usize, w: &[f64], tol: f64) -> bool {
        self.check_lhs.clear();
        self.check_lhs.resize(self.m, 0.0);
        self.check_rhs.clear();
        self.check_rhs.resize(self.m, 0.0);
        for (p, &wv) in w.iter().enumerate() {
            if wv != 0.0 {
                let col = self.basic[p];
                if col < self.n {
                    for (r, v) in self.a.col_iter(col) {
                        self.check_lhs[r] += v * wv;
                    }
                } else {
                    self.check_lhs[col - self.n] -= wv;
                }
            }
        }
        let mut entries = Vec::new();
        self.column_entries(j, &mut entries);
        for (r, v) in entries {
            self.check_rhs[r] += v;
        }
        self.check_lhs
            .iter()
            .zip(&self.check_rhs)
            .all(|(a, b)| (a - b).abs() <= tol * (1.0 + b.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Triplet;

    fn tri(row: usize, col: usize, value: f64) -> Triplet {
        Triplet { row, col, value }
    }

    /// 3x2 structural matrix; slack columns are globals 2, 3, 4.
    fn small_a() -> CscMatrix {
        CscMatrix::from_triplets(
            3,
            2,
            &[
                tri(0, 0, 1.0),
                tri(1, 0, 2.0),
                tri(0, 1, -1.0),
                tri(2, 1, 4.0),
            ],
        )
    }

    fn iv(vals: &[f64]) -> IndexedVec {
        let mut v = IndexedVec::zeros(vals.len());
        for (i, &x) in vals.iter().enumerate() {
            if x != 0.0 {
                v.set(i, x);
            }
        }
        v
    }

    fn both_modes(a: &CscMatrix, basic: Vec<usize>) -> [Basis<'_>; 2] {
        [
            Basis::new(a, basic.clone(), BasisUpdate::ForrestTomlin),
            Basis::new(a, basic, BasisUpdate::ProductForm),
        ]
    }

    #[test]
    fn slack_basis_ftran_is_negation() {
        let a = small_a();
        for mut basis in both_modes(&a, vec![2, 3, 4]) {
            // B = -I, so B w = b -> w = -b.
            let mut b = vec![1.0, -2.0, 0.5];
            basis.ftran(&mut b);
            assert_eq!(b, vec![-1.0, 2.0, -0.5]);
            let mut c = vec![3.0, 1.0, -1.0];
            basis.btran(&mut c);
            assert_eq!(c, vec![-3.0, -1.0, 1.0]);
        }
    }

    #[test]
    fn replace_and_solve_consistent() {
        let a = small_a();
        for mut basis in both_modes(&a, vec![2, 3, 4]) {
            // Bring structural column 0 into position 0.
            let mut w = IndexedVec::zeros(3);
            basis.ftran_column_sp(0, &mut w);
            assert_eq!(w.as_slice(), &[-1.0, -2.0, 0.0]); // -(col 0)
            basis.replace(0, 0, &w);
            // Now B = [a0 | -e1 | -e2]. Solve B z = [1,2,0]^T => z = e0.
            let mut b = vec![1.0, 2.0, 0.0];
            basis.ftran(&mut b);
            assert!((b[0] - 1.0).abs() < 1e-12);
            assert!(b[1].abs() < 1e-12 && b[2].abs() < 1e-12);
            // BTRAN: solve B^T y = c with c = e0 -> col0 . y = 1, -y1 = 0.
            let mut c = vec![1.0, 0.0, 0.0];
            basis.btran(&mut c);
            assert!((c[0] * 1.0 + c[1] * 2.0 - 1.0).abs() < 1e-12);
            assert!(c[1].abs() < 1e-12 && c[2].abs() < 1e-12);
        }
    }

    #[test]
    fn sparse_and_dense_solves_agree_after_replacements() {
        let a = small_a();
        for mut basis in both_modes(&a, vec![2, 3, 4]) {
            let mut w = IndexedVec::zeros(3);
            basis.ftran_column_sp(0, &mut w);
            basis.replace(0, 0, &w);
            let mut w2 = IndexedVec::zeros(3);
            basis.ftran_column_sp(1, &mut w2);
            assert!(w2[2].abs() > 1e-12, "position 2 must be pivotable");
            basis.replace(2, 1, &w2);

            let rhs = [0.3, -1.2, 2.0];
            let mut dense = rhs.to_vec();
            basis.ftran(&mut dense);
            let mut sp = iv(&rhs);
            basis.ftran_sp(&mut sp, &mut 0.0);
            for i in 0..3 {
                assert!((dense[i] - sp[i]).abs() < 1e-10, "{dense:?} vs sparse");
            }

            let c = [1.0, 0.0, -0.5];
            let mut cd = c.to_vec();
            basis.btran(&mut cd);
            let mut cs = iv(&c);
            basis.btran_sp(&mut cs, &mut 0.0);
            for i in 0..3 {
                assert!((cd[i] - cs[i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn refactorize_after_replacements_matches_update_solves() {
        let a = small_a();
        for mut basis in both_modes(&a, vec![2, 3, 4]) {
            let mut w = IndexedVec::zeros(3);
            basis.ftran_column_sp(0, &mut w);
            basis.replace(0, 0, &w);
            let mut w2 = IndexedVec::zeros(3);
            basis.ftran_column_sp(1, &mut w2);
            basis.replace(2, 1, &w2);

            let rhs = vec![0.3, -1.2, 2.0];
            let mut via_update = rhs.clone();
            basis.ftran(&mut via_update);
            let repaired = basis.refactorize();
            assert!(repaired.is_empty());
            let mut via_lu = rhs.clone();
            basis.ftran(&mut via_lu);
            for (x, y) in via_update.iter().zip(&via_lu) {
                assert!((x - y).abs() < 1e-9, "{via_update:?} vs {via_lu:?}");
            }
        }
    }

    #[test]
    fn ft_updates_are_counted() {
        let a = small_a();
        let mut basis = Basis::new(&a, vec![2, 3, 4], BasisUpdate::ForrestTomlin);
        let mut w = IndexedVec::zeros(3);
        basis.ftran_column_sp(0, &mut w);
        basis.replace(0, 0, &w);
        let s = basis.stats();
        assert_eq!(s.ft_updates, 1);
        assert_eq!(s.pfi_updates, 0);
        // m = 3 sits below any useful density cutoff, so the solves are
        // recorded as dense — the sparse path is exercised on larger
        // systems in `sparse_path_engages_on_large_sparse_basis`. The
        // density sums are sampled (weight-corrected), so only their
        // presence and divisibility are meaningful here.
        assert!(s.sparse_solves + s.dense_solves >= 1);
        assert!(s.solve_dim >= 3 && s.solve_dim.is_multiple_of(3));
    }

    /// On a large, genuinely sparse basis the solve dispatch must pick the
    /// hyper-sparse kernels and agree with the dense ones.
    #[test]
    fn sparse_path_engages_on_large_sparse_basis() {
        let m = 60;
        // Banded structural matrix: column j covers rows j and j+1.
        let mut trips = Vec::new();
        for j in 0..m - 1 {
            trips.push(tri(j, j, 2.0 + (j % 3) as f64));
            trips.push(tri(j + 1, j, 1.0));
        }
        let a = CscMatrix::from_triplets(m, m - 1, &trips);
        // Mixed basis: alternating structurals and slacks.
        let basic: Vec<usize> = (0..m)
            .map(|i| {
                if i % 2 == 0 && i < m - 1 {
                    i
                } else {
                    m - 1 + i
                }
            })
            .collect();
        let mut ft = Basis::new(&a, basic.clone(), BasisUpdate::ForrestTomlin);
        let mut rhs = IndexedVec::zeros(m);
        rhs.set(7, 1.0);
        rhs.set(8, -2.0);
        let mut dense = rhs.as_slice().to_vec();
        ft.ftran_sp(&mut rhs, &mut 0.0);
        ft.ftran(&mut dense);
        for i in 0..m {
            assert!((rhs[i] - dense[i]).abs() < 1e-10);
        }
        let s = ft.stats();
        assert!(s.sparse_solves >= 1, "{s:?}");
        // BTRAN from a unit seed is the canonical hyper-sparse case.
        let mut c = IndexedVec::zeros(m);
        c.set(31, 1.0);
        let mut cd = c.as_slice().to_vec();
        ft.btran_sp(&mut c, &mut 0.0);
        ft.btran(&mut cd);
        for i in 0..m {
            assert!((c[i] - cd[i]).abs() < 1e-10);
        }
        assert!(ft.stats().sparse_solves >= 2, "{:?}", ft.stats());
    }

    #[test]
    fn repairs_singular_basis() {
        // Two copies of the same structural column cannot form a basis; the
        // repair should kick one out for a slack.
        let a = CscMatrix::from_triplets(2, 2, &[tri(0, 0, 1.0), tri(0, 1, 1.0)]);
        let mut basis = Basis::new(&a, vec![0, 1], BasisUpdate::ForrestTomlin);
        // After repair the basis must be solvable.
        let mut b = vec![1.0, 1.0];
        basis.ftran(&mut b);
        let cols = basis.basic_columns();
        assert!(
            cols.contains(&2) || cols.contains(&3),
            "slack substituted: {cols:?}"
        );
    }

    #[test]
    fn check_ftran_detects_garbage() {
        let a = small_a();
        let mut basis = Basis::new(&a, vec![2, 3, 4], BasisUpdate::ForrestTomlin);
        let mut w = vec![0.0; 3];
        basis.ftran_column(0, &mut w);
        assert!(basis.check_ftran(0, &w, 1e-9));
        let bad = vec![9.0, 9.0, 9.0];
        assert!(!basis.check_ftran(0, &bad, 1e-9));
    }
}
