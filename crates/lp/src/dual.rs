//! Bound-change-aware dual simplex for warm re-solves.
//!
//! A basis that was optimal for one set of bounds stays **dual feasible**
//! when only bounds move: reduced costs depend on the matrix, objective and
//! basis — not on bound values. That is exactly the re-solve signature of
//! branch & bound children (one variable's bounds tightened) and of the
//! planner's §IV-A reduction re-fixing over a persistent skeleton (many
//! variables' bounds flipped between fixed and free). For those, primal
//! feasibility can be recovered with *dual* pivots — each one kicks a
//! bound-violating basic variable out onto its violated bound — instead of
//! the composite phase-I plus primal-reoptimisation round trip.
//!
//! Entry contract (see [`Solver::try_dual_entry`]): the solve must have
//! started from a caller-provided basis hint, the repaired vertex must be
//! primal infeasible, and the reduced costs must be dual feasible within a
//! relaxed tolerance. Anything else falls through to the composite
//! phase-I, which remains the correctness backstop: the dual loop also
//! bails out (`FallBack`) on stalls or numerical trouble, so it can cost
//! pivots but never correctness.
//!
//! Row selection uses **devex reference weights** (Forrest–Goldfarb style):
//! rows are scored by `violation^2 / weight`, and the weights are updated
//! from the entering column's FTRAN image — which the basis update needs
//! anyway, so dual devex is essentially free. Reduced costs are maintained
//! incrementally from the pivot row (one BTRAN of the leaving row per
//! iteration, spread over a row-major mirror of the matrix), and recomputed
//! from scratch after each refactorisation.

use crate::problem::LpStatus;
use crate::simplex::{Solver, VarStatus};

/// Outcome of one dual-simplex run.
enum DualOutcome {
    /// Primal feasibility reached; the caller continues with primal
    /// phase-II (usually a single pricing pass, since dual feasibility was
    /// maintained throughout).
    PrimalFeasible,
    /// A row certified primal infeasibility (no sign-eligible entering
    /// column exists for a violated basic variable).
    Infeasible,
    /// Stall or numerical trouble: give up and let composite phase-I take
    /// over from the current (valid) basis.
    FallBack,
    /// The global iteration budget ran out mid-walk.
    IterationLimit,
}

impl Solver<'_> {
    /// Attempts the dual-simplex warm entry. Returns `Some(status)` when the
    /// dual loop terminally resolved the LP's feasibility question
    /// (infeasible / iteration limit); `None` means "continue with the
    /// primal loop" — either the point is now primal feasible or the dual
    /// path declined and phase-I should run.
    pub(crate) fn try_dual_entry(&mut self, max_iters: usize) -> Option<LpStatus> {
        if self.total_infeasibility() <= self.opts.tol_feas {
            return None; // already primal feasible: phase-I is skipped anyway
        }
        let mut d = vec![0.0; self.n + self.m];
        if !self.dual_feasible_reduced_costs(&mut d) {
            return None;
        }
        match self.dual_loop(&mut d, max_iters) {
            DualOutcome::Infeasible => Some(LpStatus::Infeasible),
            DualOutcome::IterationLimit => Some(LpStatus::IterationLimit),
            DualOutcome::PrimalFeasible | DualOutcome::FallBack => None,
        }
    }

    /// Computes phase-II reduced costs for every nonbasic variable into `d`
    /// and reports whether they are dual feasible within a relaxed
    /// tolerance (bound-fixed columns are exempt: they can never enter).
    fn dual_feasible_reduced_costs(&mut self, d: &mut [f64]) -> bool {
        self.compute_duals(false);
        self.duals_valid = false; // y is clobbered by ratio-test BTRANs below
        let tol = self.opts.tol_dual * 10.0;
        for j in 0..self.n + self.m {
            if self.status[j] == VarStatus::Basic || self.lb[j] == self.ub[j] {
                continue;
            }
            let dj = self.reduced_cost(j, false);
            d[j] = dj;
            let ok = match self.status[j] {
                VarStatus::AtLower => dj >= -tol,
                VarStatus::AtUpper => dj <= tol,
                VarStatus::FreeNb => dj.abs() <= tol,
                VarStatus::Basic => true,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Clamps a maintained reduced cost onto its dual-feasible side, so
    /// drift within tolerance cannot produce negative ratios.
    #[inline]
    fn clamped_dual(&self, j: usize, d: &[f64]) -> f64 {
        match self.status[j] {
            VarStatus::AtLower => d[j].max(0.0),
            VarStatus::AtUpper => d[j].min(0.0),
            _ => 0.0,
        }
    }

    /// The dual simplex loop. Maintains dual feasibility (within drift) and
    /// walks the total primal bound violation of basic variables to zero.
    fn dual_loop(&mut self, d: &mut [f64], max_iters: usize) -> DualOutcome {
        let n = self.n;
        let m = self.m;
        // Row-major mirror for pivot rows; cached on the Problem, so only
        // the first dual entry against a given matrix pays the transpose.
        let mirror = self.p.row_major();
        // Dual devex reference weights, one per basis *position*.
        let mut tau = vec![1.0f64; m];
        let mut rho = vec![0.0f64; m];
        let mut alpha = vec![0.0f64; n + m];
        let mut touched: Vec<usize> = Vec::with_capacity(128);
        let mut stall = 0usize;
        let mut last_total = f64::INFINITY;
        let mut retries = 0usize;
        let tol = self.opts.tol_feas;
        let piv_tol = self.opts.tol_pivot;

        loop {
            if self.iterations >= max_iters {
                return DualOutcome::IterationLimit;
            }

            // ---- leaving row: worst devex-weighted bound violation ----
            let mut pick: Option<(usize, f64, bool)> = None; // (pos, score, at_upper)
            let mut total_infeas = 0.0;
            for pos in 0..m {
                let j = self.basis.basic_at(pos);
                let v = self.x[j];
                let (viol, at_upper) = if v > self.ub[j] + tol {
                    (v - self.ub[j], true)
                } else if v < self.lb[j] - tol {
                    (self.lb[j] - v, false)
                } else {
                    continue;
                };
                total_infeas += viol;
                let score = viol * viol / tau[pos];
                if pick.is_none_or(|(_, s, _)| score > s) {
                    pick = Some((pos, score, at_upper));
                }
            }
            let Some((rpos, _, at_upper)) = pick else {
                return DualOutcome::PrimalFeasible;
            };
            if total_infeas < last_total - 1e-10 {
                stall = 0;
            } else {
                stall += 1;
                if stall > self.opts.stall_limit {
                    return DualOutcome::FallBack;
                }
            }
            last_total = total_infeas;

            self.iterations += 1;
            self.pivots.dual += 1;

            // ---- pivot row: alpha_j = (row rpos of B^-1) . a_j ----
            rho.iter_mut().for_each(|v| *v = 0.0);
            rho[rpos] = 1.0;
            self.basis.btran(&mut rho);
            for j in touched.drain(..) {
                alpha[j] = 0.0;
            }
            // Columns reached only through dropped (noise-level) rho
            // entries never make it into `touched`; if that happened, an
            // empty ratio test is NOT a trustworthy infeasibility
            // certificate and must fall back to phase-I instead.
            let mut rho_dropped = false;
            for (i, &rv) in rho.iter().enumerate() {
                if rv.abs() <= 1e-12 {
                    rho_dropped |= rv != 0.0;
                    continue;
                }
                for (jcol, av) in mirror.row_iter(i) {
                    if alpha[jcol] == 0.0 {
                        touched.push(jcol);
                    }
                    alpha[jcol] += rv * av;
                }
                // Slack column n + i is the single entry (i, -1).
                if alpha[n + i] == 0.0 {
                    touched.push(n + i);
                }
                alpha[n + i] -= rv;
            }

            // ---- dual ratio test ----
            // sigma = +1: the leaving basic sits above its upper bound and
            // must decrease; -1: below its lower bound and must increase.
            let sigma = if at_upper { 1.0 } else { -1.0 };
            let mut enter: Option<(usize, f64, f64)> = None; // (j, ratio, alpha_j)
            let mut saw_tiny = false;
            for &j in &touched {
                if self.status[j] == VarStatus::Basic || self.lb[j] == self.ub[j] {
                    continue;
                }
                let a = alpha[j];
                let eligible = match self.status[j] {
                    VarStatus::AtLower => sigma * a > 0.0,
                    VarStatus::AtUpper => sigma * a < 0.0,
                    VarStatus::FreeNb => a != 0.0,
                    VarStatus::Basic => false,
                };
                if !eligible {
                    continue;
                }
                if a.abs() <= piv_tol {
                    saw_tiny = true;
                    continue;
                }
                let ratio = self.clamped_dual(j, d).abs() / a.abs();
                let better = match enter {
                    None => true,
                    Some((_, r, ba)) => {
                        ratio < r - 1e-12 || (ratio <= r + 1e-12 && a.abs() > ba.abs())
                    }
                };
                if better {
                    enter = Some((j, ratio, a));
                }
            }
            let Some((q, _, aq)) = enter else {
                // No column can reduce this row's violation. With no
                // sign-eligible candidate at all — and the pivot row
                // computed exactly (no candidate skipped for a tiny alpha,
                // no rho entry dropped as noise) — this is a Farkas-style
                // infeasibility certificate; anything less certain stays
                // safe and falls back to composite phase-I.
                return if saw_tiny || rho_dropped {
                    DualOutcome::FallBack
                } else {
                    DualOutcome::Infeasible
                };
            };

            // ---- FTRAN the entering column, cross-check the pivot ----
            self.w.iter_mut().for_each(|v| *v = 0.0);
            self.basis.scatter_column(q, &mut self.w);
            self.basis.ftran(&mut self.w);
            let piv = self.w[rpos];
            if piv.abs() <= piv_tol || piv * aq < 0.0 {
                // The FTRAN image disagrees with the BTRAN row: numerical
                // drift. Refactorise once and retry; give up on repeats.
                retries += 1;
                if retries > 3 {
                    return DualOutcome::FallBack;
                }
                self.refactorize_and_repair();
                self.refresh_reduced_costs(d);
                last_total = f64::INFINITY;
                continue;
            }
            retries = 0;

            // ---- primal step: land the leaving variable on its bound ----
            let lj = self.basis.basic_at(rpos);
            let bound = if at_upper { self.ub[lj] } else { self.lb[lj] };
            let step = (self.x[lj] - bound) / piv;
            if step != 0.0 {
                self.x[q] += step;
                for pos in 0..m {
                    let wv = self.w[pos];
                    if wv != 0.0 {
                        let bj = self.basis.basic_at(pos);
                        self.x[bj] -= step * wv;
                    }
                }
            }
            self.x[lj] = bound;
            self.status[lj] = if at_upper {
                VarStatus::AtUpper
            } else {
                VarStatus::AtLower
            };

            // ---- dual step: maintain reduced costs incrementally ----
            let theta = self.clamped_dual(q, d) / aq;
            if theta != 0.0 {
                for &j in &touched {
                    if self.status[j] != VarStatus::Basic && j != q {
                        d[j] -= theta * alpha[j];
                    }
                }
            }
            d[lj] = -theta;
            d[q] = 0.0;

            // ---- dual devex update from the FTRAN image ----
            let tau_r = tau[rpos];
            let inv = 1.0 / (piv * piv);
            for (pos, &wv) in self.w.iter().enumerate() {
                if pos != rpos && wv != 0.0 {
                    let cand = wv * wv * inv * tau_r;
                    if cand > tau[pos] {
                        tau[pos] = cand;
                    }
                }
            }
            tau[rpos] = (tau_r * inv).max(1.0);

            // ---- basis update ----
            self.basis.replace(rpos, q, &self.w);
            self.status[q] = VarStatus::Basic;
            self.duals_valid = false;
            self.pivots_since_refactor += 1;
            if self.pivots_since_refactor >= self.opts.refactor_interval
                || self.basis.should_refactorize()
            {
                self.refactorize_and_repair();
                self.pivots_since_refactor = 0;
                self.refresh_reduced_costs(d);
                last_total = f64::INFINITY;
            }
        }
    }

    /// Recomputes every nonbasic reduced cost from fresh duals (used after
    /// refactorisation, where incremental updates would compound drift).
    fn refresh_reduced_costs(&mut self, d: &mut [f64]) {
        self.compute_duals(false);
        self.duals_valid = false;
        for j in 0..self.n + self.m {
            d[j] = if self.status[j] == VarStatus::Basic {
                0.0
            } else {
                self.reduced_cost(j, false)
            };
        }
    }
}
