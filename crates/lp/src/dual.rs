//! Bound-change-aware dual simplex for warm re-solves.
//!
//! A basis that was optimal for one set of bounds stays **dual feasible**
//! when only bounds move: reduced costs depend on the matrix, objective and
//! basis — not on bound values. That is exactly the re-solve signature of
//! branch & bound children (one variable's bounds tightened) and of the
//! planner's §IV-A reduction re-fixing over a persistent skeleton (many
//! variables' bounds flipped between fixed and free). For those, primal
//! feasibility can be recovered with *dual* pivots — each one kicks a
//! bound-violating basic variable out onto its violated bound — instead of
//! the composite phase-I plus primal-reoptimisation round trip.
//!
//! Entry contract (see `Solver::try_dual_entry`): the solve must have
//! started from a caller-provided basis hint, the repaired vertex must be
//! primal infeasible, and the reduced costs must be dual feasible within a
//! relaxed tolerance. Anything else falls through to the composite
//! phase-I, which remains the correctness backstop: the dual loop also
//! bails out (`FallBack`) on stalls or numerical trouble, so it can cost
//! pivots but never correctness.
//!
//! Row selection uses **devex reference weights** (Forrest–Goldfarb style):
//! rows are scored by `violation^2 / weight`, and the weights are updated
//! from the entering column's FTRAN image — which the basis update needs
//! anyway, so dual devex is essentially free. Reduced costs are maintained
//! incrementally from the pivot row (one BTRAN of the leaving row per
//! iteration, spread over a row-major mirror of the matrix), and recomputed
//! from scratch after each refactorisation.
//!
//! ## Ratio tests: Harris tolerances and bound-flipping long steps
//!
//! Under [`RatioTest::Harris`] and above, the dual ratio test runs the
//! two-pass Harris scheme: breakpoints are relaxed by the dual tolerance to
//! find the furthest admissible dual step, then the entering column is the
//! **largest pivot** among candidates within that relaxed step — degenerate
//! breakpoint ties stop dictating tiny, numerically poor pivots.
//!
//! Under [`RatioTest::LongStep`] (the default) the test additionally walks
//! **past** breakpoints whose column is *boxed* (finite lower and upper
//! bound): passing the breakpoint flips the column to its opposite bound —
//! its reduced cost changes sign there, so dual feasibility is kept — and
//! reduces the dual objective's slope by `|alpha_j| * (ub_j - lb_j)`. The
//! walk continues while the slope stays positive, then pivots once. On the
//! planner's mostly-boxed (binary-relaxation) models this amortises long
//! chains of degenerate dual pivots into a single BTRAN/FTRAN plus a batch
//! of bound flips, applied with **one** aggregated FTRAN
//! ([`PivotCounts::bound_flips`] counts them).
//!
//! [`RatioTest::Harris`]: crate::simplex::RatioTest::Harris
//! [`RatioTest::LongStep`]: crate::simplex::RatioTest::LongStep
//! [`PivotCounts::bound_flips`]: crate::simplex::PivotCounts::bound_flips

use crate::problem::LpStatus;
use crate::simplex::{RatioTest, Solver, VarStatus};
use crate::sparse::IndexedVec;

/// Outcome of one dual-simplex run.
enum DualOutcome {
    /// Primal feasibility reached; the caller continues with primal
    /// phase-II (usually a single pricing pass, since dual feasibility was
    /// maintained throughout).
    PrimalFeasible,
    /// A row certified primal infeasibility (no sign-eligible entering
    /// column exists for a violated basic variable).
    Infeasible,
    /// Stall or numerical trouble: give up and let composite phase-I take
    /// over from the current (valid) basis.
    FallBack,
    /// The global iteration budget ran out mid-walk.
    IterationLimit,
}

impl Solver<'_> {
    /// Attempts the dual-simplex warm entry. Returns `Some(status)` when the
    /// dual loop terminally resolved the LP's feasibility question
    /// (infeasible / iteration limit); `None` means "continue with the
    /// primal loop" — either the point is now primal feasible or the dual
    /// path declined and phase-I should run.
    pub(crate) fn try_dual_entry(&mut self, max_iters: usize) -> Option<LpStatus> {
        if self.max_bound_violation() <= self.opts.tol_feas {
            return None; // already primal feasible: phase-I is skipped anyway
        }
        // All dual-loop scratch is hoisted: the buffers live in the
        // LpWorkspace and survive across solves, so a B&B tree's hundreds
        // of dual re-solves allocate nothing here.
        let mut d = std::mem::take(&mut self.dual_d);
        d.clear();
        d.resize(self.n + self.m, 0.0);
        if !self.dual_feasible_reduced_costs(&mut d) {
            self.dual_d = d;
            return None;
        }
        let mut tau = std::mem::take(&mut self.dual_tau);
        tau.clear();
        tau.resize(self.m, 1.0);
        let mut flip_rhs = std::mem::take(&mut self.dual_flip_rhs);
        flip_rhs.reset(self.m);
        let mut cands = std::mem::take(&mut self.dual_cands);
        cands.clear();
        let mut viol = std::mem::take(&mut self.dual_viol);
        let mut in_viol = std::mem::take(&mut self.dual_in_viol);
        let outcome = self.dual_loop(
            &mut d,
            &mut tau,
            &mut flip_rhs,
            &mut cands,
            &mut viol,
            &mut in_viol,
            max_iters,
        );
        self.dual_d = d;
        self.dual_tau = tau;
        self.dual_flip_rhs = flip_rhs;
        self.dual_cands = cands;
        self.dual_viol = viol;
        self.dual_in_viol = in_viol;
        match outcome {
            DualOutcome::Infeasible => Some(LpStatus::Infeasible),
            DualOutcome::IterationLimit => Some(LpStatus::IterationLimit),
            DualOutcome::PrimalFeasible | DualOutcome::FallBack => None,
        }
    }

    /// Computes phase-II reduced costs for every nonbasic variable into `d`
    /// and reports whether they are dual feasible within a relaxed
    /// tolerance (bound-fixed columns are exempt: they can never enter).
    fn dual_feasible_reduced_costs(&mut self, d: &mut [f64]) -> bool {
        self.compute_duals(false);
        self.duals_valid = false; // y is clobbered by ratio-test BTRANs below
        let tol = self.opts.tol_dual * 10.0;
        for j in 0..self.n + self.m {
            if self.status[j] == VarStatus::Basic || self.lb[j] == self.ub[j] {
                continue;
            }
            let dj = self.reduced_cost(j, false);
            d[j] = dj;
            let ok = match self.status[j] {
                VarStatus::AtLower => dj >= -tol,
                VarStatus::AtUpper => dj <= tol,
                VarStatus::FreeNb => dj.abs() <= tol,
                VarStatus::Basic => true,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Clamps a maintained reduced cost onto its dual-feasible side, so
    /// drift within tolerance cannot produce negative ratios.
    #[inline]
    fn clamped_dual(&self, j: usize, d: &[f64]) -> f64 {
        match self.status[j] {
            VarStatus::AtLower => d[j].max(0.0),
            VarStatus::AtUpper => d[j].min(0.0),
            _ => 0.0,
        }
    }

    /// The dual simplex loop. Maintains dual feasibility (within drift) and
    /// walks the total primal bound violation of basic variables to zero.
    ///
    /// `tau` holds the dual devex reference weights (one per basis
    /// position), `flip_rhs` the aggregated bound-flip right-hand side,
    /// `cands` the ratio-test candidates `(column, breakpoint, alpha)`,
    /// and `viol`/`in_viol` the incrementally maintained candidate list of
    /// bound-violating basis positions — all caller-provided so re-solves
    /// do not allocate.
    ///
    /// The violation list replaces the former all-`m` leaving-row scan:
    /// basic values only move on the pivot column's FTRAN support and on
    /// flip batches, so those positions are (re-)enlisted after each pivot
    /// and everything else stays untouched. Members found feasible at scan
    /// time are pruned; a refactorisation (which recomputes every basic
    /// value) forces a full rebuild.
    #[allow(clippy::too_many_arguments)]
    fn dual_loop(
        &mut self,
        d: &mut [f64],
        tau: &mut [f64],
        flip_rhs: &mut IndexedVec,
        cands: &mut Vec<(usize, f64, f64)>,
        viol: &mut Vec<usize>,
        in_viol: &mut Vec<bool>,
        max_iters: usize,
    ) -> DualOutcome {
        let n = self.n;
        let m = self.m;
        // Row-major mirror for pivot rows; cached on the Problem, so only
        // the first dual entry against a given matrix pays the transpose.
        let mirror = self.p.row_major();
        let harris = self.opts.ratio_test != RatioTest::Classic;
        let long_step = self.opts.ratio_test == RatioTest::LongStep;
        let mut stall = 0usize;
        let mut last_total = f64::INFINITY;
        let mut retries = 0usize;
        let mut rebuild_list = true;
        let tol = self.opts.tol_feas;
        let tol_d = self.opts.tol_dual;
        let piv_tol = self.opts.tol_pivot;

        loop {
            if self.iterations >= max_iters {
                return DualOutcome::IterationLimit;
            }

            // ---- leaving row: worst devex-weighted bound violation ----
            // Scanned over the candidate list only; ties break on the
            // smaller position so the pick is independent of list order
            // (matching the ascending full scan this replaces).
            if rebuild_list {
                rebuild_list = false;
                viol.clear();
                viol.extend(0..m);
                in_viol.clear();
                in_viol.resize(m, true);
            }
            let mut pick: Option<(usize, f64, f64, bool)> = None; // (pos, score, viol, at_upper)
            let mut total_infeas = 0.0;
            let mut i = 0usize;
            while i < viol.len() {
                let pos = viol[i];
                let j = self.basis.basic_at(pos);
                let v = self.x[j];
                let (vv, at_upper) = if v > self.ub[j] + tol {
                    (v - self.ub[j], true)
                } else if v < self.lb[j] - tol {
                    (self.lb[j] - v, false)
                } else {
                    in_viol[pos] = false;
                    viol.swap_remove(i);
                    continue;
                };
                total_infeas += vv;
                let score = vv * vv / tau[pos];
                if pick.is_none_or(|(bp, s, _, _)| score > s || (score == s && pos < bp)) {
                    pick = Some((pos, score, vv, at_upper));
                }
                i += 1;
            }
            let Some((rpos, _, viol_amt, at_upper)) = pick else {
                return DualOutcome::PrimalFeasible;
            };
            if total_infeas < last_total - 1e-10 {
                stall = 0;
            } else {
                stall += 1;
                if stall > self.opts.stall_limit {
                    return DualOutcome::FallBack;
                }
            }
            last_total = total_infeas;

            self.iterations += 1;
            self.pivots.dual += 1;

            // ---- pivot row: alpha_j = (row rpos of B^-1) . a_j ----
            // A unit seed: the hyper-sparse BTRAN visits only its reach,
            // and the scatter below only rho's support.
            self.rho.clear();
            self.rho.set(rpos, 1.0);
            let mut ewma_rho = self.ewma_rho;
            self.basis.btran_sp(&mut self.rho, &mut ewma_rho);
            self.ewma_rho = ewma_rho;
            // Columns reached only through dropped (noise-level) rho
            // entries never make it into the touched list; if that
            // happened, an empty ratio test is NOT a trustworthy
            // infeasibility certificate and must fall back to phase-I.
            let rho_dropped = mirror.scatter_pivot_row(
                &self.rho,
                n,
                1e-12,
                &mut self.alpha,
                &mut self.alpha_touched,
            );

            // ---- gather dual ratio-test candidates ----
            // sigma = +1: the leaving basic sits above its upper bound and
            // must decrease; -1: below its lower bound and must increase.
            let sigma = if at_upper { 1.0 } else { -1.0 };
            let mut saw_tiny = false;
            cands.clear();
            for &j in &self.alpha_touched {
                if self.status[j] == VarStatus::Basic || self.lb[j] == self.ub[j] {
                    continue;
                }
                let a = self.alpha[j];
                let eligible = match self.status[j] {
                    VarStatus::AtLower => sigma * a > 0.0,
                    VarStatus::AtUpper => sigma * a < 0.0,
                    VarStatus::FreeNb => a != 0.0,
                    VarStatus::Basic => false,
                };
                if !eligible {
                    continue;
                }
                if a.abs() <= piv_tol {
                    saw_tiny = true;
                    continue;
                }
                cands.push((j, self.clamped_dual(j, d).abs() / a.abs(), a));
            }
            if cands.is_empty() {
                // No column can reduce this row's violation. With no
                // sign-eligible candidate at all — and the pivot row
                // computed exactly (no candidate skipped for a tiny alpha,
                // no rho entry dropped as noise) — this is a Farkas-style
                // infeasibility certificate; anything less certain stays
                // safe and falls back to composite phase-I.
                return if saw_tiny || rho_dropped {
                    DualOutcome::FallBack
                } else {
                    DualOutcome::Infeasible
                };
            }

            // ---- select the entering column (and the long-step flips) ----
            let mut nflips = 0usize;
            let (q, _ratio_q, aq) = if !harris {
                // Classic single pass: smallest ratio, ties by |pivot|.
                let mut best = cands[0];
                for &c in &cands[1..] {
                    if c.1 < best.1 - 1e-12 || (c.1 <= best.1 + 1e-12 && c.2.abs() > best.2.abs()) {
                        best = c;
                    }
                }
                best
            } else {
                cands.sort_unstable_by(|x, y| {
                    x.1.partial_cmp(&y.1).unwrap_or(std::cmp::Ordering::Equal)
                });
                if long_step {
                    // Bound-flipping walk: passing a boxed candidate's
                    // breakpoint flips it to its opposite bound and lowers
                    // the slope (this row's violation) by |alpha| * range;
                    // keep walking while the remaining slope stays
                    // nonnegative (the dual objective must not start
                    // *worsening* — flat is fine, and on the planner's
                    // unit-violation rows one flip typically zeroes the
                    // slope exactly) and an entering candidate remains.
                    let mut slope = viol_amt;
                    while nflips + 1 < cands.len() {
                        let (j, _, a) = cands[nflips];
                        let range = self.ub[j] - self.lb[j];
                        if !range.is_finite() {
                            break; // a free/one-sided column must enter
                        }
                        let gain = a.abs() * range;
                        if slope - gain < -1e-9 {
                            break;
                        }
                        slope -= gain;
                        nflips += 1;
                    }
                }
                // Harris two-pass over the remaining candidates. The
                // relaxation is a small fraction of the dual tolerance,
                // mirroring the primal test: wide windows admit reduced-cost
                // overruns whose clamping feeds degenerate zero-ratio
                // candidates back into later iterations.
                let relax = tol_d * 0.01;
                let rest = &cands[nflips..];
                let mut t_rel = f64::INFINITY;
                for &(_, ratio, a) in rest {
                    t_rel = t_rel.min(ratio + relax / a.abs());
                }
                let mut best: Option<(usize, f64, f64)> = None;
                for &(j, ratio, a) in rest {
                    if ratio <= t_rel
                        && best.is_none_or(|(_, _, ba): (_, _, f64)| a.abs() > ba.abs())
                    {
                        best = Some((j, ratio, a));
                    }
                }
                // `rest` is non-empty (the flip walk stops before the last
                // candidate), but selection coming up empty must degrade to
                // the composite phase-I rung, never panic mid-solve.
                let Some(chosen) = best else {
                    return DualOutcome::FallBack;
                };
                if nflips == 0 && chosen.1 > 1e-12 && rest[0].1 <= 1e-12 {
                    self.pivots.harris_degenerate_saved += 1;
                }
                chosen
            };
            // ---- FTRAN the entering column, cross-check the pivot ----
            self.w.clear();
            self.basis.scatter_column_sp(q, &mut self.w);
            let mut ewma_w = self.ewma_w;
            self.basis.ftran_sp(&mut self.w, &mut ewma_w);
            self.ewma_w = ewma_w;
            let piv = self.w[rpos];
            if piv.abs() <= piv_tol || piv * aq < 0.0 {
                // The FTRAN image disagrees with the BTRAN row: numerical
                // drift. Refactorise once and retry; give up on repeats.
                // (No flips have been applied yet, so retrying is clean.)
                retries += 1;
                if retries > 3 {
                    return DualOutcome::FallBack;
                }
                self.refactorize_and_repair();
                self.pivots_since_refactor = 0;
                self.refresh_reduced_costs(d);
                last_total = f64::INFINITY;
                rebuild_list = true; // every basic value was recomputed
                continue;
            }
            retries = 0;

            // ---- commit the long-step flips: one aggregated FTRAN ----
            // Every flipped column moves to its opposite bound; the basics
            // absorb the combined movement via x_B -= B^-1 (sum a_f d_f).
            // The dual step below crosses each flipped breakpoint, so the
            // flipped reduced costs change sign exactly as their new bound
            // requires — dual feasibility is preserved.
            if nflips > 0 {
                flip_rhs.clear();
                for &(j, _, _) in &cands[..nflips] {
                    let (to, st) = match self.status[j] {
                        VarStatus::AtLower => (self.ub[j], VarStatus::AtUpper),
                        VarStatus::AtUpper => (self.lb[j], VarStatus::AtLower),
                        _ => continue, // unreachable: walk stops at non-boxed
                    };
                    let delta = to - self.x[j];
                    if j < n {
                        for (r, v) in self.p.matrix().col_iter(j) {
                            flip_rhs.add(r, v * delta);
                        }
                    } else {
                        flip_rhs.add(j - n, -delta);
                    }
                    self.x[j] = to;
                    self.status[j] = st;
                    self.pivots.bound_flips += 1;
                }
                let mut ewma_flip = self.ewma_flip;
                self.basis.ftran_sp(flip_rhs, &mut ewma_flip);
                self.ewma_flip = ewma_flip;
                {
                    let Solver { x, basis, .. } = &mut *self;
                    flip_rhs.for_each_nonzero(|pos, fv| {
                        let bj = basis.basic_at(pos);
                        x[bj] -= fv;
                        if !in_viol[pos] {
                            in_viol[pos] = true;
                            viol.push(pos);
                        }
                    });
                }
                flip_rhs.clear();
            }

            // ---- primal step: land the leaving variable on its bound ----
            // (If the flips' true effect overshot the slope accounting by a
            // hair, the step comes out slightly negative and the entering
            // variable ends marginally infeasible *as a basic* — which the
            // dual loop keeps repairing; nothing special to do.)
            let lj = self.basis.basic_at(rpos);
            let bound = if at_upper { self.ub[lj] } else { self.lb[lj] };
            let step = (self.x[lj] - bound) / piv;
            if step != 0.0 {
                self.x[q] += step;
                let Solver { x, basis, w, .. } = &mut *self;
                w.for_each_nonzero(|pos, wv| {
                    let bj = basis.basic_at(pos);
                    x[bj] -= step * wv;
                    if !in_viol[pos] {
                        in_viol[pos] = true;
                        viol.push(pos);
                    }
                });
            }
            self.x[lj] = bound;
            self.status[lj] = if at_upper {
                VarStatus::AtUpper
            } else {
                VarStatus::AtLower
            };

            // ---- dual step: maintain reduced costs incrementally ----
            let theta = self.clamped_dual(q, d) / aq;
            if theta != 0.0 {
                for &j in &self.alpha_touched {
                    if self.status[j] != VarStatus::Basic && j != q {
                        d[j] -= theta * self.alpha[j];
                    }
                }
            }
            d[lj] = -theta;
            d[q] = 0.0;

            // ---- dual devex update from the FTRAN image ----
            let tau_r = tau[rpos];
            let inv = 1.0 / (piv * piv);
            self.w.for_each_nonzero(|pos, wv| {
                if pos != rpos {
                    let cand = wv * wv * inv * tau_r;
                    if cand > tau[pos] {
                        tau[pos] = cand;
                    }
                }
            });
            tau[rpos] = (tau_r * inv).max(1.0);

            // ---- basis update ----
            self.basis.replace(rpos, q, &self.w);
            self.status[q] = VarStatus::Basic;
            self.duals_valid = false;
            self.pivots_since_refactor += 1;
            // The dual loop keeps the *tight* refactor cadence even under
            // Forrest–Tomlin (the primal loop relaxes it): its reduced
            // costs are maintained incrementally and the refactorisation
            // refresh is what bounds their drift — stretching it trips the
            // pivot cross-check and regresses warm re-solves to phase-I.
            if self.pivots_since_refactor >= self.opts.refactor_interval
                || self.basis.should_refactorize()
            {
                self.refactorize_and_repair();
                self.pivots_since_refactor = 0;
                self.refresh_reduced_costs(d);
                last_total = f64::INFINITY;
                rebuild_list = true; // every basic value was recomputed
            }
        }
    }

    /// Recomputes every nonbasic reduced cost from fresh duals (used after
    /// refactorisation, where incremental updates would compound drift).
    fn refresh_reduced_costs(&mut self, d: &mut [f64]) {
        self.compute_duals(false);
        self.duals_valid = false;
        for j in 0..self.n + self.m {
            d[j] = if self.status[j] == VarStatus::Basic {
                0.0
            } else {
                self.reduced_cost(j, false)
            };
        }
    }
}
