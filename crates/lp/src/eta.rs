//! Product-form-of-inverse (PFI) eta updates.
//!
//! After a basis change that replaces the basic variable in position `p`
//! with a column whose FTRAN image is `w = B^{-1} a_j`, the new inverse is
//! `B_new^{-1} = E * B_old^{-1}` where `E` differs from the identity only in
//! column `p`. Applying `E` (FTRAN) or `E^T` (BTRAN) is linear in `nnz(w)`.

use crate::sparse::IndexedVec;

/// One eta transformation, stored sparsely.
#[derive(Debug, Clone)]
pub struct Eta {
    /// Basis position that was replaced.
    pub pos: usize,
    /// Pivot element `w[pos]` (guaranteed away from zero by the ratio test).
    pub pivot: f64,
    /// Off-pivot nonzeros of `w`: `(basis_position, value)`, excluding `pos`.
    pub offdiag: Vec<(usize, f64)>,
}

impl Eta {
    /// Builds an eta from the dense FTRAN image `w` of the entering column.
    pub fn from_dense(pos: usize, w: &[f64], drop_tol: f64) -> Self {
        let pivot = w[pos];
        debug_assert!(pivot != 0.0, "eta pivot must be nonzero");
        let offdiag = w
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != pos && v.abs() > drop_tol)
            .map(|(i, &v)| (i, v))
            .collect();
        Eta {
            pos,
            pivot,
            offdiag,
        }
    }

    /// In-place FTRAN application: `x <- E x`.
    ///
    /// `x_new[pos] = x[pos] / pivot`; `x_new[i] = x[i] - w[i] * x_new[pos]`.
    #[inline]
    pub fn apply_ftran(&self, x: &mut [f64]) {
        let t = x[self.pos] / self.pivot;
        if t == 0.0 {
            x[self.pos] = 0.0;
            return;
        }
        x[self.pos] = t;
        for &(i, v) in &self.offdiag {
            x[i] -= v * t;
        }
    }

    /// In-place BTRAN application: `y <- E^T y`.
    ///
    /// `y_new[pos] = (y[pos] - sum_i w[i] * y[i]) / pivot`, others unchanged.
    #[inline]
    pub fn apply_btran(&self, y: &mut [f64]) {
        let mut t = y[self.pos];
        for &(i, v) in &self.offdiag {
            t -= v * y[i];
        }
        y[self.pos] = t / self.pivot;
    }

    /// Builds an eta from an [`IndexedVec`] FTRAN image, visiting only its
    /// tracked pattern.
    pub fn from_indexed(pos: usize, w: &IndexedVec, drop_tol: f64) -> Self {
        let pivot = w[pos];
        debug_assert!(pivot != 0.0, "eta pivot must be nonzero");
        let mut offdiag = Vec::new();
        w.for_each_nonzero(|i, v| {
            if i != pos && v.abs() > drop_tol {
                offdiag.push((i, v));
            }
        });
        Eta {
            pos,
            pivot,
            offdiag,
        }
    }

    /// Pattern-tracking FTRAN application (see [`Self::apply_ftran`]).
    #[inline]
    pub fn apply_ftran_sp(&self, x: &mut IndexedVec) {
        let t = x[self.pos] / self.pivot;
        if t == 0.0 {
            return;
        }
        x.set(self.pos, t);
        for &(i, v) in &self.offdiag {
            x.set(i, x[i] - v * t);
        }
    }

    /// Pattern-tracking BTRAN application (see [`Self::apply_btran`]).
    #[inline]
    pub fn apply_btran_sp(&self, y: &mut IndexedVec) {
        let yp = y[self.pos];
        let mut t = yp;
        for &(i, v) in &self.offdiag {
            t -= v * y[i];
        }
        if t == 0.0 && yp == 0.0 {
            return; // structurally untouched: keep the pattern tight
        }
        y.set(self.pos, t / self.pivot);
    }

    pub fn nnz(&self) -> usize {
        self.offdiag.len() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense reference: build E explicitly and multiply.
    fn dense_e(eta: &Eta, m: usize) -> Vec<Vec<f64>> {
        let mut e = vec![vec![0.0; m]; m];
        for (i, row) in e.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        // Column `pos` of E: E[pos][pos] = 1/pivot, E[i][pos] = -w_i/pivot.
        for row in e.iter_mut() {
            row[eta.pos] = 0.0;
        }
        e[eta.pos][eta.pos] = 1.0 / eta.pivot;
        for &(i, v) in &eta.offdiag {
            e[i][eta.pos] = -v / eta.pivot;
        }
        e
    }

    fn matvec(a: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
        a.iter()
            .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    fn matvec_t(a: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
        let m = a.len();
        (0..m)
            .map(|j| (0..m).map(|i| a[i][j] * x[i]).sum())
            .collect()
    }

    #[test]
    fn ftran_matches_dense_reference() {
        let w = [0.5, 2.0, 0.0, -1.0];
        let eta = Eta::from_dense(1, &w, 0.0);
        let e = dense_e(&eta, 4);
        let x0 = [1.0, 3.0, -2.0, 0.25];
        let expect = matvec(&e, &x0);
        let mut x = x0;
        eta.apply_ftran(&mut x);
        for (a, b) in x.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12, "{x:?} vs {expect:?}");
        }
    }

    #[test]
    fn btran_matches_dense_reference() {
        let w = [0.5, 2.0, 0.0, -1.0];
        let eta = Eta::from_dense(1, &w, 0.0);
        let e = dense_e(&eta, 4);
        let y0 = [2.0, -1.0, 4.0, 1.0];
        let expect = matvec_t(&e, &y0);
        let mut y = y0;
        eta.apply_btran(&mut y);
        for (a, b) in y.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12, "{y:?} vs {expect:?}");
        }
    }

    #[test]
    fn ftran_then_inverse_roundtrip() {
        // E^{-1} has the same structure with w restored; applying E then
        // reconstructing the original vector validates the algebra.
        let w = [1.0, 0.0, 4.0];
        let eta = Eta::from_dense(2, &w, 0.0);
        let x0 = [3.0, -1.0, 2.0];
        let mut x = x0;
        eta.apply_ftran(&mut x);
        // Reverse: x_old[pos] = x_new[pos]*pivot; x_old[i] = x_new[i] + w_i*x_new[pos]
        let t = x[2];
        x[2] = t * eta.pivot;
        for &(i, v) in &eta.offdiag {
            x[i] += v * t;
        }
        for (a, b) in x.iter().zip(&x0) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn drop_tolerance_prunes_tiny_entries() {
        let w = [1e-14, 1.0, 0.5];
        let eta = Eta::from_dense(1, &w, 1e-12);
        assert_eq!(eta.offdiag.len(), 1);
        assert_eq!(eta.offdiag[0], (2, 0.5));
    }
}
