//! Forrest–Tomlin updates of the upper factor `U`.
//!
//! After a basis change, the product-form (PFI) update appends an eta
//! whose density is the density of the entering column's *FTRAN image* —
//! which fills in as the eta file grows, so long pivot runs degrade
//! towards dense etas and force frequent refactorisations (the fixed
//! 64-eta cap). The Forrest–Tomlin update instead edits `U` itself:
//!
//! 1. the leaving variable's `U` column `t` is replaced by the **spike**
//!    `g = U z` (the partial FTRAN of the entering column, i.e.
//!    `L̃^{-1} P a_q` where `L̃` absorbs all previous updates);
//! 2. position `t` is cyclically moved to the *end* of the pivot order,
//!    which leaves the matrix upper triangular except for the old row `t`;
//! 3. that row is eliminated against the trailing block — its multipliers
//!    `α` solve `Ũ^T α = r` (one hyper-sparse triangular solve over the
//!    row's reach) and are stored as a **row eta** applied between `L` and
//!    `U` in every subsequent solve. `U`'s new diagonal at `t` becomes
//!    `g_t − α^T g`.
//!
//! The factors therefore stay as sparse as `U` itself plus the (typically
//! tiny) row etas, and the refactorisation policy can key on *measured
//! fill growth* ([`UFactors::fill_ratio`]) instead of an update count.
//!
//! `U` is stored doubly — columns and rows, both position-indexed — in
//! segmented flat arenas: per-segment headroom over shared arrays, so the
//! dense solves sweep contiguous memory (a `Vec<Vec<_>>` would cost a
//! pointer chase and an allocation per column per rebuild) while updates
//! still get O(1) appends and O(segment) deletions, relocating a segment
//! to the arena tail only when its headroom runs out. The triangular
//! order is a doubly-linked list, so the cyclic permutation is O(1). The
//! same storage serves the hyper-sparse `U`/`U^T` solves (DFS reachability
//! over the column/row graphs, shared with `lu.rs` via
//! [`LuWorkspace::reach`]).
//!
//! [`LuWorkspace::reach`]: crate::lu::LuWorkspace

use crate::lu::LuWorkspace;
use crate::sparse::{ColumnStore, IndexedVec};

/// One Forrest–Tomlin row eta: the elimination multipliers of the spiked
/// row. FTRAN applies `g[pos] -= Σ α_k g[k]`; BTRAN applies the transpose
/// `w[k] -= α_k w[pos]`.
#[derive(Debug, Clone)]
pub struct RowEta {
    pub pos: usize,
    pub terms: Vec<(usize, f64)>,
}

/// Outcome of one [`UFactors::ft_update`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtOutcome {
    /// `U` and the eta file were updated in place.
    Applied,
    /// The new diagonal was numerically unusable; `U` is untouched and the
    /// caller must fall back (PFI eta + forced refactorisation).
    Rejected,
}

/// Entries smaller than this are dropped when a spike column is stored
/// (mirrors the PFI eta drop tolerance).
const SPIKE_DROP_TOL: f64 = 1e-13;

/// Relative floor for the updated diagonal `g_t − α^T g`: below this the
/// update is rejected as numerically unstable.
const DIAG_REL_TOL: f64 = 1e-10;

/// Headroom added to every segment at rebuild, absorbing the first few
/// update-time insertions without relocation.
const SEG_SLACK: usize = 2;

/// Segmented flat storage: `m` growable `(index, value)` segments packed
/// into two shared arrays. Reading a segment is a contiguous slice;
/// appending beyond a segment's capacity relocates just that segment to
/// the arena tail (the hole is reclaimed at the next rebuild).
#[derive(Debug, Clone, Default)]
struct SegArena {
    start: Vec<usize>,
    len: Vec<usize>,
    cap: Vec<usize>,
    idx: Vec<usize>,
    val: Vec<f64>,
}

impl SegArena {
    /// Lays the arena out for `sizes[s]`-entry segments (plus slack),
    /// leaving every segment empty. Reuses the backing allocations.
    fn reset(&mut self, sizes: &[usize]) {
        self.start.clear();
        self.len.clear();
        self.cap.clear();
        let mut acc = 0usize;
        for &s in sizes {
            self.start.push(acc);
            self.len.push(0);
            self.cap.push(s + SEG_SLACK);
            acc += s + SEG_SLACK;
        }
        self.idx.clear();
        self.idx.resize(acc, 0);
        self.val.clear();
        self.val.resize(acc, 0.0);
    }

    #[inline]
    fn seg(&self, s: usize) -> (&[usize], &[f64]) {
        let lo = self.start[s];
        let hi = lo + self.len[s];
        (&self.idx[lo..hi], &self.val[lo..hi])
    }

    /// `child`-th neighbour index of segment `s` (DFS resume access).
    #[inline]
    fn neighbor(&self, s: usize, child: usize) -> Option<usize> {
        if child < self.len[s] {
            Some(self.idx[self.start[s] + child])
        } else {
            None
        }
    }

    fn push(&mut self, s: usize, key: usize, v: f64) {
        if self.len[s] == self.cap[s] {
            let new_cap = (2 * self.cap[s]).max(4);
            let new_start = self.idx.len();
            for t in 0..self.len[s] {
                let p = self.start[s] + t;
                self.idx.push(self.idx[p]);
                self.val.push(self.val[p]);
            }
            self.idx.resize(new_start + new_cap, 0);
            self.val.resize(new_start + new_cap, 0.0);
            self.start[s] = new_start;
            self.cap[s] = new_cap;
        }
        let p = self.start[s] + self.len[s];
        self.idx[p] = key;
        self.val[p] = v;
        self.len[s] += 1;
    }

    /// Removes the entry with index `key` from segment `s` (swap-remove).
    fn remove_entry(&mut self, s: usize, key: usize) {
        let lo = self.start[s];
        for t in 0..self.len[s] {
            if self.idx[lo + t] == key {
                let last = lo + self.len[s] - 1;
                self.idx.swap(lo + t, last);
                self.val.swap(lo + t, last);
                self.len[s] -= 1;
                return;
            }
        }
    }

    #[inline]
    fn clear_seg(&mut self, s: usize) {
        self.len[s] = 0;
    }
}

/// The dynamic upper factor: `U` under a mutable pivot order, plus the
/// Forrest–Tomlin row-eta file. All indices are *pivot positions* (the
/// `k`-space of [`crate::lu::LuFactors`]); only the traversal order
/// changes across updates.
#[derive(Debug, Clone, Default)]
pub struct UFactors {
    m: usize,
    /// Off-diagonal column entries: segment `k` lists `(i, v)` with `i`
    /// earlier than `k` in the current order.
    cols: SegArena,
    /// Off-diagonal row entries: segment `i` lists `(k, v)` with `k` later
    /// than `i` in the current order. Exact transpose of `cols`; built
    /// lazily on the first use (`U^T` reachability or an FT update) —
    /// zero-pivot warm solves never pay for it.
    rows: SegArena,
    rows_built: bool,
    diag: Vec<f64>,
    /// Doubly-linked triangular order (`usize::MAX` terminates).
    next: Vec<usize>,
    prev: Vec<usize>,
    head: usize,
    tail: usize,
    etas: Vec<RowEta>,
    /// Off-diagonal entry count of `U` right after the last rebuild.
    base_nnz: usize,
    /// Current off-diagonal entry count of `U`.
    nnz: usize,
    eta_nnz: usize,
    updates: usize,
    /// Scratch: the spike `g = U z` of the update in progress.
    spike: IndexedVec,
    /// Scratch: the elimination multipliers `α`.
    alpha: IndexedVec,
    /// Scratch: per-segment sizes at rebuild.
    sizes: Vec<usize>,
}

impl UFactors {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn m(&self) -> usize {
        self.m
    }

    /// Rebuilds from a freshly factorised `U` (as produced by
    /// [`crate::lu::LuFactors::take_u`]): entries are `(pivot_position,
    /// value)` per column, diagonal separate, natural `0..m` order.
    pub fn rebuild(&mut self, u: &ColumnStore, diag: Vec<f64>) {
        let m = diag.len();
        self.m = m;
        self.diag = diag;
        self.sizes.clear();
        self.sizes.resize(m, 0);
        let mut nnz = 0usize;
        for k in 0..m {
            let c = u.col_nnz(k);
            self.sizes[k] = c;
            nnz += c;
        }
        self.cols.reset(&self.sizes);
        for k in 0..m {
            for (i, v) in u.col_iter(k) {
                self.cols.push(k, i, v);
            }
        }
        self.rows_built = false;
        self.nnz = nnz;
        self.base_nnz = nnz;
        self.eta_nnz = 0;
        self.updates = 0;
        self.etas.clear();
        self.next.clear();
        self.prev.clear();
        self.next
            .extend((0..m).map(|k| if k + 1 < m { k + 1 } else { usize::MAX }));
        self.prev
            .extend((0..m).map(|k| if k == 0 { usize::MAX } else { k - 1 }));
        self.head = if m == 0 { usize::MAX } else { 0 };
        self.tail = if m == 0 { usize::MAX } else { m - 1 };
        self.spike.reset(m);
        self.alpha.reset(m);
    }

    /// Builds the row mirror from the current columns if absent.
    fn ensure_rows(&mut self) {
        if self.rows_built {
            return;
        }
        self.rows_built = true;
        self.sizes.clear();
        self.sizes.resize(self.m, 0);
        for k in 0..self.m {
            let (ids, _) = self.cols.seg(k);
            for &i in ids {
                self.sizes[i] += 1;
            }
        }
        // Split borrows: fill `rows` while reading `cols`.
        let UFactors { rows, cols, .. } = self;
        rows.reset(&self.sizes);
        for k in 0..self.m {
            let (ids, vals) = cols.seg(k);
            for (i, v) in ids.iter().zip(vals) {
                rows.push(*i, k, *v);
            }
        }
    }

    /// Forrest–Tomlin updates applied since the last rebuild.
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// Total stored entries (U off-diagonals + diagonal + row etas).
    pub fn fill_nnz(&self) -> usize {
        self.nnz + self.m + self.eta_nnz
    }

    /// Measured fill growth since the last rebuild: current entries over
    /// the freshly-factorised baseline. The refactorisation policy keys on
    /// this instead of a fixed update cap.
    pub fn fill_ratio(&self) -> f64 {
        (self.nnz + self.m + self.eta_nnz) as f64 / (self.base_nnz + self.m).max(1) as f64
    }

    /// Solves `(row-eta product) · U x = g` in place: the FTRAN upper
    /// pipeline. `g` is position-indexed; dense fallback.
    pub fn ftran_upper_dense(&self, g: &mut [f64]) {
        for eta in &self.etas {
            let mut acc = 0.0;
            for &(k, v) in &eta.terms {
                acc += v * g[k];
            }
            g[eta.pos] -= acc;
        }
        let mut k = self.tail;
        while k != usize::MAX {
            let t = g[k] / self.diag[k];
            g[k] = t;
            if t != 0.0 {
                let (ids, vals) = self.cols.seg(k);
                for (i, v) in ids.iter().zip(vals) {
                    g[*i] -= v * t;
                }
            }
            k = self.prev[k];
        }
    }

    /// Hyper-sparse FTRAN upper pipeline: row etas over the tracked
    /// pattern, then a `U` solve visiting only the pattern's reach through
    /// the column graph.
    pub fn ftran_upper_sparse(&self, g: &mut IndexedVec, ws: &mut LuWorkspace) {
        debug_assert!(g.is_sparse());
        for eta in &self.etas {
            let mut acc = 0.0;
            for &(k, v) in &eta.terms {
                acc += v * g[k];
            }
            if acc != 0.0 {
                g.set(eta.pos, g[eta.pos] - acc);
            }
        }
        let topo = ws.reach(self.m, g.indices(), |k, child| self.cols.neighbor(k, child));
        g.adopt_pattern(topo);
        for i in (0..ws.topo_len()).rev() {
            let k = ws.topo_at(i);
            let t = g[k] / self.diag[k];
            g.set_tracked(k, t);
            if t != 0.0 {
                let (ids, vals) = self.cols.seg(k);
                for (i2, v) in ids.iter().zip(vals) {
                    g.set_tracked(*i2, g[*i2] - v * t);
                }
            }
        }
    }

    /// Solves `U^T w = c` in place along the current order (no etas).
    fn ut_solve_dense(&self, c: &mut [f64]) {
        let mut k = self.head;
        while k != usize::MAX {
            let mut t = c[k];
            let (ids, vals) = self.cols.seg(k);
            for (i, v) in ids.iter().zip(vals) {
                t -= v * c[*i];
            }
            c[k] = t / self.diag[k];
            k = self.next[k];
        }
    }

    /// Hyper-sparse `U^T w = c` over the pattern's reach through the row
    /// graph (no etas). Shared by BTRAN and the FT elimination solve; the
    /// caller has run [`Self::ensure_rows`].
    fn ut_solve_sparse(&self, c: &mut IndexedVec, ws: &mut LuWorkspace) {
        debug_assert!(self.rows_built);
        debug_assert!(c.is_sparse());
        let topo = ws.reach(self.m, c.indices(), |i, child| self.rows.neighbor(i, child));
        c.adopt_pattern(topo);
        for i in (0..ws.topo_len()).rev() {
            let k = ws.topo_at(i);
            let mut t = c[k];
            let (ids, vals) = self.cols.seg(k);
            for (i2, v) in ids.iter().zip(vals) {
                t -= v * c[*i2];
            }
            c.set_tracked(k, t / self.diag[k]);
        }
    }

    /// The BTRAN upper pipeline: `U^T` solve, then the row etas transposed
    /// in reverse. Dense fallback.
    pub fn btran_upper_dense(&self, c: &mut [f64]) {
        self.ut_solve_dense(c);
        for eta in self.etas.iter().rev() {
            let t = c[eta.pos];
            if t != 0.0 {
                for &(k, v) in &eta.terms {
                    c[k] -= v * t;
                }
            }
        }
    }

    /// Hyper-sparse BTRAN upper pipeline.
    pub fn btran_upper_sparse(&mut self, c: &mut IndexedVec, ws: &mut LuWorkspace) {
        self.ensure_rows();
        self.ut_solve_sparse(c, ws);
        for eta in self.etas.iter().rev() {
            let t = c[eta.pos];
            if t != 0.0 {
                for &(k, v) in &eta.terms {
                    c.set(k, c[k] - v * t);
                }
            }
        }
    }

    /// Applies one Forrest–Tomlin update: position `t` leaves, the column
    /// whose *post-solve* FTRAN image (in position space) is `z` enters.
    /// `z` is the output of the full upper pipeline, so the spike is
    /// recovered as `g = U z` against the current `U` — exactly
    /// `L̃^{-1} P a_q` with every earlier update absorbed.
    ///
    /// On [`FtOutcome::Rejected`] nothing is mutated; the caller keeps the
    /// factors valid by other means (PFI eta) and refactorises soon.
    pub fn ft_update(&mut self, t: usize, z: &IndexedVec, ws: &mut LuWorkspace) -> FtOutcome {
        self.ensure_rows();
        // ---- spike g = U z (current U, current order) ----
        let mut spike = std::mem::take(&mut self.spike);
        spike.reset(self.m);
        z.for_each_nonzero(|k, zv| {
            spike.add(k, zv * self.diag[k]);
            let (ids, vals) = self.cols.seg(k);
            for (i, v) in ids.iter().zip(vals) {
                spike.add(*i, v * zv);
            }
        });

        // ---- eliminate the spiked row: α solves Ũ^T α = r ----
        // r = row t of U. Its support lies strictly "later" in the order,
        // so the plain U^T solve stays inside the trailing block (position
        // t is unreachable through the row graph and its α is zero).
        let mut alpha = std::mem::take(&mut self.alpha);
        alpha.reset(self.m);
        {
            let (ids, vals) = self.rows.seg(t);
            for (k, v) in ids.iter().zip(vals) {
                alpha.set(*k, *v);
            }
        }
        if alpha.nnz() > 0 {
            self.ut_solve_sparse(&mut alpha, ws);
        }

        // ---- new diagonal d = g_t − α^T g ----
        let mut d_new = spike[t];
        let mut scale = d_new.abs();
        alpha.for_each_nonzero(|k, av| {
            d_new -= av * spike[k];
            scale = scale.max(spike[k].abs());
        });
        if !d_new.is_finite() || d_new.abs() <= DIAG_REL_TOL * scale.max(1.0) {
            self.spike = spike;
            self.alpha = alpha;
            return FtOutcome::Rejected;
        }

        // ---- commit: column/row surgery, eta, order rotation ----
        // Old column t disappears (the leaving variable's column).
        {
            let lo = self.cols.start[t];
            for p in lo..lo + self.cols.len[t] {
                let i = self.cols.idx[p];
                self.rows.remove_entry(i, t);
            }
        }
        self.nnz -= self.cols.len[t];
        self.cols.clear_seg(t);
        // Old row t is eliminated into the eta; its entries leave U.
        {
            let lo = self.rows.start[t];
            for p in lo..lo + self.rows.len[t] {
                let k = self.rows.idx[p];
                self.cols.remove_entry(k, t);
            }
        }
        self.nnz -= self.rows.len[t];
        self.rows.clear_seg(t);
        // The spike becomes the new column t (diagonal d_new).
        spike.for_each_nonzero(|i, gv| {
            if i != t && gv.abs() > SPIKE_DROP_TOL {
                self.cols.push(t, i, gv);
                self.rows.push(i, t, gv);
                self.nnz += 1;
            }
        });
        self.diag[t] = d_new;
        let terms: Vec<(usize, f64)> = {
            let mut v = Vec::new();
            alpha.for_each_nonzero(|k, av| {
                if av.abs() > SPIKE_DROP_TOL {
                    v.push((k, av));
                }
            });
            v
        };
        if !terms.is_empty() {
            self.eta_nnz += terms.len();
            self.etas.push(RowEta { pos: t, terms });
        }
        // Rotate t to the end of the order.
        if self.tail != t {
            let (p, n) = (self.prev[t], self.next[t]);
            if p == usize::MAX {
                self.head = n;
            } else {
                self.next[p] = n;
            }
            self.prev[n] = p; // n != MAX because t != tail
            self.next[self.tail] = t;
            self.prev[t] = self.tail;
            self.next[t] = usize::MAX;
            self.tail = t;
        }
        self.updates += 1;
        self.spike = spike;
        self.alpha = alpha;
        FtOutcome::Applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::ColumnStore;

    /// Dense reference: solve `M x = b` by Gaussian elimination with
    /// partial pivoting.
    fn dense_solve(mat: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
        let m = mat.len();
        let mut a: Vec<Vec<f64>> = (0..m)
            .map(|r| (0..m).map(|c| mat[c][r]).collect())
            .collect(); // row-major from column-major input
        let mut x = b.to_vec();
        for col in 0..m {
            let piv = (col..m)
                .max_by(|&a1, &a2| a[a1][col].abs().partial_cmp(&a[a2][col].abs()).unwrap())
                .unwrap();
            a.swap(col, piv);
            x.swap(col, piv);
            for r in col + 1..m {
                let f = a[r][col] / a[col][col];
                if f != 0.0 {
                    for c in col..m {
                        a[r][c] -= f * a[col][c];
                    }
                    x[r] -= f * x[col];
                }
            }
        }
        for col in (0..m).rev() {
            x[col] /= a[col][col];
            for r in 0..col {
                x[r] -= a[r][col] * x[col];
            }
        }
        x
    }

    /// Builds a small upper-triangular U as (ColumnStore, diag) plus its
    /// dense column-major copy.
    fn small_u() -> (ColumnStore, Vec<f64>, Vec<Vec<f64>>) {
        // U = [2 1 0 3; 0 4 0 1; 0 0 1 2; 0 0 0 5] (column-major below).
        let mut cs = ColumnStore::new();
        cs.seal_column(); // col 0: diag only
        cs.push(0, 1.0);
        cs.seal_column();
        cs.seal_column(); // col 2: diag only
        cs.push(0, 3.0);
        cs.push(1, 1.0);
        cs.push(2, 2.0);
        cs.seal_column();
        let diag = vec![2.0, 4.0, 1.0, 5.0];
        let dense = vec![
            vec![2.0, 0.0, 0.0, 0.0],
            vec![1.0, 4.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, 0.0],
            vec![3.0, 1.0, 2.0, 5.0],
        ];
        (cs, diag, dense)
    }

    #[test]
    fn solves_match_dense_reference() {
        let (cs, diag, dense) = small_u();
        let mut uf = UFactors::new();
        uf.rebuild(&cs, diag);
        let b = [1.0, -2.0, 0.5, 3.0];
        let mut g = b.to_vec();
        uf.ftran_upper_dense(&mut g);
        let want = dense_solve(&dense, &b);
        for (a, w) in g.iter().zip(&want) {
            assert!((a - w).abs() < 1e-12, "{g:?} vs {want:?}");
        }
        // Sparse agrees with dense.
        let mut ws = LuWorkspace::new();
        let mut sv = IndexedVec::zeros(4);
        for (i, &v) in b.iter().enumerate() {
            sv.set(i, v);
        }
        uf.ftran_upper_sparse(&mut sv, &mut ws);
        for i in 0..4 {
            assert!((sv[i] - want[i]).abs() < 1e-12);
        }
        // Transpose solve: U^T w = c  =>  column_k . w = c_k.
        let c = [2.0, 1.0, -1.0, 0.25];
        let mut w = c.to_vec();
        uf.btran_upper_dense(&mut w);
        for k in 0..4 {
            let dot: f64 = (0..4).map(|r| dense[k][r] * w[r]).sum();
            assert!((dot - c[k]).abs() < 1e-12);
        }
        let mut swv = IndexedVec::zeros(4);
        for (i, &v) in c.iter().enumerate() {
            swv.set(i, v);
        }
        uf.btran_upper_sparse(&mut swv, &mut ws);
        for i in 0..4 {
            assert!((swv[i] - w[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn ft_update_matches_column_replacement() {
        let (cs, diag, mut dense) = small_u();
        let mut uf = UFactors::new();
        uf.rebuild(&cs, diag);
        let mut ws = LuWorkspace::new();

        // Entering "column" with spike g; its post-solve image z solves
        // U z = g, so feed z through ft_update and compare against dense
        // solves of U-with-column-1-replaced-by-g.
        let g = [1.0, 2.0, 0.0, 4.0];
        let mut z = IndexedVec::zeros(4);
        for (i, &v) in g.iter().enumerate() {
            z.set(i, v);
        }
        uf.ftran_upper_sparse(&mut z, &mut ws); // z = U^{-1} g
        assert_eq!(uf.ft_update(1, &z, &mut ws), FtOutcome::Applied);
        assert_eq!(uf.updates(), 1);

        dense[1] = g.to_vec(); // replace column 1 by the spike
        let b = [0.3, -1.0, 2.0, 0.7];
        let want = dense_solve(&dense, &b);
        let mut got = b.to_vec();
        uf.ftran_upper_dense(&mut got);
        for (a, w) in got.iter().zip(&want) {
            assert!((a - w).abs() < 1e-9, "{got:?} vs {want:?}");
        }
        // Sparse path agrees after the update too.
        let mut sv = IndexedVec::zeros(4);
        for (i, &v) in b.iter().enumerate() {
            sv.set(i, v);
        }
        uf.ftran_upper_sparse(&mut sv, &mut ws);
        for i in 0..4 {
            assert!((sv[i] - want[i]).abs() < 1e-9);
        }
        // BTRAN: (U')^T w = c  =>  column_k . w = c_k for the new matrix.
        let c = [1.0, 0.0, -2.0, 0.5];
        let mut w = c.to_vec();
        uf.btran_upper_dense(&mut w);
        for k in 0..4 {
            let dot: f64 = (0..4).map(|r| dense[k][r] * w[r]).sum();
            assert!((dot - c[k]).abs() < 1e-9, "col {k}");
        }
        let mut swv = IndexedVec::zeros(4);
        for (i, &v) in c.iter().enumerate() {
            swv.set(i, v);
        }
        uf.btran_upper_sparse(&mut swv, &mut ws);
        for i in 0..4 {
            assert!((swv[i] - w[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn chained_updates_stay_consistent() {
        let (cs, diag, mut dense) = small_u();
        let mut uf = UFactors::new();
        uf.rebuild(&cs, diag);
        let mut ws = LuWorkspace::new();
        let spikes = [
            (2usize, [0.5, 0.0, 3.0, 1.0]),
            (0usize, [1.5, 1.0, 0.0, 0.0]),
            (2usize, [0.0, 2.0, 1.0, 0.5]),
        ];
        for (t, g) in spikes {
            let mut z = IndexedVec::zeros(4);
            for (i, &v) in g.iter().enumerate() {
                if v != 0.0 {
                    z.set(i, v);
                }
            }
            uf.ftran_upper_sparse(&mut z, &mut ws);
            assert_eq!(uf.ft_update(t, &z, &mut ws), FtOutcome::Applied);
            dense[t] = g.to_vec();
            let b = [1.0, 0.5, -0.5, 2.0];
            let want = dense_solve(&dense, &b);
            let mut got = b.to_vec();
            uf.ftran_upper_dense(&mut got);
            for (a, w) in got.iter().zip(&want) {
                assert!((a - w).abs() < 1e-8, "t={t}: {got:?} vs {want:?}");
            }
        }
        assert!(uf.fill_ratio() >= 1.0);
    }

    #[test]
    fn singular_spike_is_rejected() {
        let (cs, diag, _) = small_u();
        let mut uf = UFactors::new();
        uf.rebuild(&cs, diag);
        let mut ws = LuWorkspace::new();
        // The zero spike: the degenerate extreme, must be refused.
        let z = IndexedVec::zeros(4);
        assert_eq!(uf.ft_update(3, &z, &mut ws), FtOutcome::Rejected);
        assert_eq!(uf.updates(), 0);
    }
}
