//! # sqpr-lp
//!
//! A self-contained sparse linear-programming solver: bounded-variable
//! revised primal simplex with sparse LU basis factorisation and
//! product-form-of-inverse updates.
//!
//! This crate exists because the SQPR reproduction needs a MILP solver (the
//! paper uses CPLEX) and no LP/MILP engine is available in the sanctioned
//! dependency set. It is written for the moderately sized, mostly-binary
//! models produced by the SQPR query planner, but is a general LP solver:
//!
//! ## Warm starts and the basis-repair contract
//!
//! Every solve reports its final basis as a [`BasisState`] snapshot
//! ([`problem::LpSolution::basis`]). Passing that snapshot to
//! [`solve_from`] / [`solve_with_bounds_from`] starts the simplex from the
//! captured vertex instead of the slack identity. The hint is *advisory*,
//! never trusted:
//!
//! - **Appended columns** (the hinted problem was smaller) enter nonbasic
//!   at their bound nearest zero; **appended rows** contribute their slack
//!   to the basis so it stays square.
//! - **Dropped columns** are patched out by slack substitution — the same
//!   repair the LU factorisation applies to singular bases.
//! - **Changed bounds** (branch & bound, the planner's variable fixing):
//!   nonbasic statuses referring to a bound that no longer exists are
//!   re-derived; if the repaired vertex is primal infeasible, the ordinary
//!   composite phase-I walks it feasible (usually a handful of pivots
//!   when the hint is close).
//! - A hinted vertex that is already primal feasible **skips phase-I
//!   entirely**; one that is also dual feasible terminates after a single
//!   pricing pass.
//!
//! Arbitrarily malformed hints (wrong dimensions, duplicate basics,
//! statuses contradicting the bounds) degrade to a cold start — they can
//! cost pivots, never correctness. Re-solves additionally benefit from
//! bound-flip-aware partial pricing (see [`SimplexOptions::pricing_window`]):
//! only a rotating window plus a short-list of recently attractive columns
//! is priced per iteration, and bound-fixed columns are skipped outright.
//!
//! ```
//! use sqpr_lp::{ProblemBuilder, SimplexOptions, LpStatus, solve, INF};
//!
//! // maximise 3x + 5y  subject to  x <= 4, 2y <= 12, 3x + 2y <= 18
//! let mut b = ProblemBuilder::new();
//! let x = b.add_col(-3.0, 0.0, INF); // minimisation form: negate
//! let y = b.add_col(-5.0, 0.0, INF);
//! let r0 = b.add_row(-INF, 4.0);
//! b.set_coeff(r0, x, 1.0);
//! let r1 = b.add_row(-INF, 12.0);
//! b.set_coeff(r1, y, 2.0);
//! let r2 = b.add_row(-INF, 18.0);
//! b.set_coeff(r2, x, 3.0);
//! b.set_coeff(r2, y, 2.0);
//! let solution = solve(&b.build(), &SimplexOptions::default());
//! assert_eq!(solution.status, LpStatus::Optimal);
//! assert!((solution.objective - -36.0).abs() < 1e-6);
//! ```

// Numeric kernels index several parallel arrays at once; iterator
// refactors would obscure the algebra.
#![allow(clippy::needless_range_loop)]

pub mod basis;
pub mod eta;
pub mod lu;
pub mod oracle;
pub mod problem;
pub mod simplex;
pub mod sparse;

pub use problem::{LpSolution, LpStatus, Problem, ProblemBuilder, INF};
pub use simplex::{
    solve, solve_from, solve_with_bounds, solve_with_bounds_from, BasisState, SimplexOptions,
    VarBasisStatus,
};
pub use sparse::{CscMatrix, Triplet};
