//! # sqpr-lp
//!
//! A self-contained sparse linear-programming solver: bounded-variable
//! revised primal simplex with sparse LU basis factorisation and
//! product-form-of-inverse updates.
//!
//! This crate exists because the SQPR reproduction needs a MILP solver (the
//! paper uses CPLEX) and no LP/MILP engine is available in the sanctioned
//! dependency set. It is written for the moderately sized, mostly-binary
//! models produced by the SQPR query planner, but is a general LP solver:
//!
//! ## The basis lifecycle: snapshot → validate/repair → entry choice
//!
//! Every solve reports its final basis as a [`BasisState`] snapshot
//! ([`problem::LpSolution::basis`]). Passing that snapshot to
//! [`solve_from`] / [`solve_with_bounds_from`] starts the simplex from the
//! captured vertex instead of the slack identity. A warm solve then moves
//! through three stages:
//!
//! 1. **Validate & repair.** The hint is *advisory*, never trusted.
//!    Appended columns (the hinted problem was smaller) enter nonbasic at
//!    their bound nearest zero; appended rows contribute their slack so
//!    the basis stays square; dropped columns are patched out by slack
//!    substitution — the same repair the LU factorisation applies to
//!    singular bases; nonbasic statuses referring to a bound that no
//!    longer exists are re-derived from the current bounds. Arbitrarily
//!    malformed hints (wrong dimensions, duplicate basics, statuses
//!    contradicting the bounds) degrade to a cold start — they can cost
//!    pivots, never correctness.
//! 2. **Entry choice.** The repaired vertex is classified:
//!    - *primal feasible* — phase-I is skipped and the primal phase-II
//!      loop optimises directly (a vertex that is also dual feasible
//!      terminates after a single pricing pass);
//!    - *primal infeasible but dual feasible* — the signature of a
//!      re-solve where only bounds moved (branch & bound children, the
//!      planner's §IV-A re-fixing): the **dual simplex** ([`dual`]) walks
//!      primal feasibility back with dual pivots, each one landing a
//!      bound-violating basic variable on its violated bound;
//!    - *neither* — the composite phase-I minimises total bound violation
//!      from wherever the repair left the point, exactly as a cold start
//!      would.
//! 3. **Fallbacks.** The dual loop bails back to composite phase-I on
//!    stalls or numerical trouble, so the warm machinery is strictly an
//!    optimisation layer: every path ends in the same phase-I/phase-II
//!    loop with the same tolerances.
//!
//! Re-solves additionally benefit from bound-flip-aware partial pricing
//! (see [`SimplexOptions::pricing_window`]): only a rotating window plus a
//! short-list of recently attractive columns is priced per iteration, and
//! bound-fixed columns are skipped outright.
//!
//! ## Pricing and ratio tests
//!
//! Both loops price with **devex reference weights** (`d^2 / w`,
//! [`PricingRule::Devex`], the default): the primal loop runs the full
//! pivot-row Forrest–Goldfarb update over the row-major matrix mirror, the
//! dual loop scores rows by `violation^2 / weight` with weights updated
//! from the entering column's FTRAN image. [`PricingRule::Dantzig`] is the
//! ablation (all weights pinned at 1).
//!
//! The ratio tests default to **Harris two-pass tolerances** plus the
//! **bound-flipping dual long step** ([`RatioTest::LongStep`]): degenerate
//! blocking ties resolve onto the largest available pivot instead of a
//! zero-length step, and the dual test amortises runs of degenerate pivots
//! over boxed columns into one pivot plus a batch of bound flips.
//! [`RatioTest::Classic`] keeps the textbook single-pass test as the
//! ablation baseline. [`LpSolution::pivots`] reports iterations per phase
//! plus the `bound_flips` / `harris_degenerate_saved` side-counters, which
//! is how callers verify that bound-change re-solves really ran as (few)
//! dual pivots.
//!
//! ```
//! use sqpr_lp::{ProblemBuilder, SimplexOptions, LpStatus, solve, INF};
//!
//! // maximise 3x + 5y  subject to  x <= 4, 2y <= 12, 3x + 2y <= 18
//! let mut b = ProblemBuilder::new();
//! let x = b.add_col(-3.0, 0.0, INF); // minimisation form: negate
//! let y = b.add_col(-5.0, 0.0, INF);
//! let r0 = b.add_row(-INF, 4.0);
//! b.set_coeff(r0, x, 1.0);
//! let r1 = b.add_row(-INF, 12.0);
//! b.set_coeff(r1, y, 2.0);
//! let r2 = b.add_row(-INF, 18.0);
//! b.set_coeff(r2, x, 3.0);
//! b.set_coeff(r2, y, 2.0);
//! let solution = solve(&b.build(), &SimplexOptions::default());
//! assert_eq!(solution.status, LpStatus::Optimal);
//! assert!((solution.objective - -36.0).abs() < 1e-6);
//! ```

// Numeric kernels index several parallel arrays at once; iterator
// refactors would obscure the algebra.
#![allow(clippy::needless_range_loop)]

pub mod basis;
pub mod dual;
pub mod eta;
pub mod ft;
pub mod lu;
pub mod oracle;
pub mod problem;
pub mod simplex;
pub mod sparse;

pub use basis::{BasisUpdate, FactorState, SolveStats};
pub use problem::{LpSolution, LpStatus, Problem, ProblemBuilder, INF};
pub use simplex::{
    solve, solve_from, solve_with_bounds, solve_with_bounds_from, solve_with_bounds_from_ws,
    solve_with_bounds_recovering_ws, BasisState, LpWorkspace, PivotCounts, PricingRule, RatioTest,
    SimplexOptions, VarBasisStatus,
};
pub use sparse::{CscMatrix, IndexedVec, Triplet};
