//! Sparse LU factorisation of a simplex basis.
//!
//! Left-looking (Gilbert–Peierls) factorisation with partial pivoting by
//! magnitude. Columns are processed in a caller-supplied order (the simplex
//! basis sorts columns by sparsity first, a cheap Markowitz approximation).
//!
//! The factorisation computes `P * B' = L * U` where `B'` is the basis matrix
//! with columns permuted by the processing order, `P` is the row permutation
//! chosen by pivoting, `L` is unit lower triangular and `U` upper triangular.
//! Row indices inside `L` columns are kept in *original* row space; `pinv`
//! maps an original row to its pivot position (the row of `L`/`U` it became).

use crate::sparse::{ColumnStore, IndexedVec};

/// Result of factorising one basis column: either it received pivot `row`,
/// or it was linearly dependent on earlier columns (singular).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnOutcome {
    Pivoted { row: usize },
    Singular,
}

/// A sparse LU factorisation with permutation bookkeeping.
#[derive(Debug, Clone)]
pub struct LuFactors {
    m: usize,
    /// L columns (strictly below-diagonal part, unit diagonal implicit).
    /// Row indices are original rows.
    l: ColumnStore,
    /// U columns; entries are `(pivot_position, value)` with the diagonal
    /// stored separately in `u_diag`.
    u: ColumnStore,
    u_diag: Vec<f64>,
    /// `pinv[original_row] = pivot position`, or `usize::MAX` while unpivoted.
    pinv: Vec<usize>,
    /// `rowof[pivot_position] = original_row` (inverse of `pinv`).
    rowof: Vec<usize>,
    /// Transpose of `L` in *pivot-position* space: column `i` lists
    /// `(k, v)` for every `L` column `k` holding row `rowof[i]`. Built on
    /// demand by [`Self::ensure_transpose`]; the hyper-sparse `L^T` solve
    /// needs it for reachability.
    lt: ColumnStore,
}

/// Workspace reused across factorisations and triangular solves to avoid
/// per-call allocation (the simplex refactorises frequently).
#[derive(Debug, Clone, Default)]
pub struct LuWorkspace {
    /// Dense numeric scatter space, original-row indexed.
    x: Vec<f64>,
    /// DFS stack of rows.
    stack: Vec<(usize, usize)>,
    /// Output pattern in topological order.
    topo: Vec<usize>,
    /// Visit marks, epoch-based so clearing is O(1).
    mark: Vec<u64>,
    epoch: u64,
}

impl LuWorkspace {
    pub fn new() -> Self {
        Self::default()
    }

    fn prepare(&mut self, m: usize) {
        if self.x.len() < m {
            self.x.resize(m, 0.0);
            self.mark.resize(m, 0);
        }
        self.epoch += 1;
    }

    #[inline]
    fn visited(&self, r: usize) -> bool {
        self.mark[r] == self.epoch
    }

    #[inline]
    fn visit(&mut self, r: usize) {
        self.mark[r] = self.epoch;
    }

    /// Generic sparse reachability: DFS from `seeds` over the graph given
    /// by `nbr(node, child_index) -> Option<neighbor>`, filling `self.topo`
    /// in post-order. Iterating `topo` in *reverse* yields a topological
    /// order (every edge source before its target), which is exactly the
    /// processing order the hyper-sparse triangular solves need: updaters
    /// run before the entries they update.
    ///
    /// The marks are epoch-based, so the whole call is O(visited edges) —
    /// this is the Gilbert–Peierls symbolic step, shared by factorisation
    /// and the hyper-sparse FTRAN/BTRAN kernels.
    pub(crate) fn reach<F>(&mut self, dim: usize, seeds: &[usize], mut nbr: F) -> &[usize]
    where
        F: FnMut(usize, usize) -> Option<usize>,
    {
        self.prepare(dim);
        self.topo.clear();
        for &s in seeds {
            if self.visited(s) {
                continue;
            }
            self.visit(s);
            self.stack.push((s, 0));
            while let Some((node, mut child)) = self.stack.pop() {
                let mut descended = false;
                while let Some(next) = nbr(node, child) {
                    child += 1;
                    if !self.visited(next) {
                        self.visit(next);
                        self.stack.push((node, child));
                        self.stack.push((next, 0));
                        descended = true;
                        break;
                    }
                }
                if !descended {
                    self.topo.push(node);
                }
            }
        }
        &self.topo
    }

    /// Length of the reach set computed by the last [`Self::reach`] call.
    #[inline]
    pub(crate) fn topo_len(&self) -> usize {
        self.topo.len()
    }

    /// Entry `i` of the last reach set.
    #[inline]
    pub(crate) fn topo_at(&self, i: usize) -> usize {
        self.topo[i]
    }
}

impl LuFactors {
    /// Factorises an `m x m` basis whose `k`-th column (in processing order)
    /// is produced by `column(k, &mut out)` pushing `(row, value)` pairs.
    ///
    /// Columns found to be singular are reported through the returned vector
    /// so the caller can repair the basis (substitute slack columns) and
    /// retry. In a successfully repaired basis every row is pivotal.
    pub fn factorize<F>(m: usize, mut column: F, ws: &mut LuWorkspace) -> (Self, Vec<ColumnOutcome>)
    where
        F: FnMut(usize, &mut Vec<(usize, f64)>),
    {
        let mut lu = LuFactors {
            m,
            l: ColumnStore::with_capacity(m, 4 * m),
            u: ColumnStore::with_capacity(m, 4 * m),
            u_diag: Vec::with_capacity(m),
            pinv: vec![usize::MAX; m],
            rowof: vec![usize::MAX; m],
            lt: ColumnStore::new(),
        };
        let mut outcomes = Vec::with_capacity(m);
        let mut col_entries: Vec<(usize, f64)> = Vec::new();
        for k in 0..m {
            col_entries.clear();
            column(k, &mut col_entries);
            let outcome = lu.factorize_column(k, &col_entries, ws);
            outcomes.push(outcome);
        }
        (lu, outcomes)
    }

    /// Processes column `k`: sparse solve `L y = b`, pick pivot, emit L/U.
    fn factorize_column(
        &mut self,
        k: usize,
        b: &[(usize, f64)],
        ws: &mut LuWorkspace,
    ) -> ColumnOutcome {
        ws.prepare(self.m);
        ws.topo.clear();
        // Symbolic: find the pattern of y = L^{-1} b by DFS through pivoted
        // columns of L, producing topological order.
        for &(r, _) in b {
            if !ws.visited(r) {
                self.dfs(r, ws);
            }
        }
        // Numeric scatter of b.
        for &idx in &ws.topo {
            ws.x[idx] = 0.0;
        }
        for &(r, v) in b {
            ws.x[r] = v;
        }
        // Numeric elimination in topological order (reverse of the stack
        // emission order: `topo` is built so that dependencies come first).
        for i in (0..ws.topo.len()).rev() {
            let r = ws.topo[i];
            let piv = self.pinv[r];
            if piv == usize::MAX {
                continue; // not yet pivotal: below the "diagonal", no elimination
            }
            let xr = ws.x[r];
            if xr == 0.0 {
                continue;
            }
            let lo = self.l.col_iter(piv);
            for (lr, lv) in lo {
                ws.x[lr] -= lv * xr;
            }
        }
        // Pivot: the largest magnitude among unpivoted rows.
        let mut pivot_row = usize::MAX;
        let mut pivot_val = 0.0f64;
        for i in (0..ws.topo.len()).rev() {
            let r = ws.topo[i];
            if self.pinv[r] == usize::MAX {
                let v = ws.x[r];
                if v.abs() > pivot_val.abs() {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
        }
        const PIVOT_TOL: f64 = 1e-11;
        if pivot_row == usize::MAX || pivot_val.abs() <= PIVOT_TOL {
            // Dependent column: emit empty L/U columns with unit diagonal so
            // positions stay aligned; caller must repair.
            self.l.seal_column();
            self.u.seal_column();
            self.u_diag.push(1.0);
            return ColumnOutcome::Singular;
        }
        // Emit U column (entries on already-pivoted rows) and L column
        // (remaining unpivoted rows scaled by the pivot).
        for i in (0..ws.topo.len()).rev() {
            let r = ws.topo[i];
            let v = ws.x[r];
            if v == 0.0 {
                continue;
            }
            let piv = self.pinv[r];
            if piv != usize::MAX {
                self.u.push(piv, v);
            } else if r != pivot_row {
                self.l.push(r, v / pivot_val);
            }
        }
        self.l.seal_column();
        self.u.seal_column();
        self.u_diag.push(pivot_val);
        self.pinv[pivot_row] = k;
        self.rowof[k] = pivot_row;
        ColumnOutcome::Pivoted { row: pivot_row }
    }

    /// Iterative DFS from row `r` through pivoted L columns; appends rows to
    /// `ws.topo` in post-order (so reverse iteration is topological).
    fn dfs(&self, root: usize, ws: &mut LuWorkspace) {
        ws.visit(root);
        ws.stack.push((root, 0));
        while let Some((r, mut child)) = ws.stack.pop() {
            let piv = self.pinv[r];
            let mut descended = false;
            if piv != usize::MAX {
                let lo = self.l.col_iter(piv).skip(child);
                for (lr, _) in lo {
                    child += 1;
                    if !ws.visited(lr) {
                        ws.visit(lr);
                        ws.stack.push((r, child));
                        ws.stack.push((lr, 0));
                        descended = true;
                        break;
                    }
                }
            }
            if !descended {
                ws.topo.push(r);
            }
        }
    }

    pub fn m(&self) -> usize {
        self.m
    }

    /// Total entries in L + U (diagnostics / refactorisation policy).
    pub fn nnz(&self) -> usize {
        self.l.nnz() + self.u.nnz() + self.u_diag.len()
    }

    /// Maps original row -> pivot position.
    pub fn pinv(&self) -> &[usize] {
        &self.pinv
    }

    /// Maps pivot position -> original row.
    pub fn rowof(&self) -> &[usize] {
        &self.rowof
    }

    /// Builds the pivot-position-space transpose of `L` (see the `lt`
    /// field) unless it is already present. Called lazily on the first
    /// hyper-sparse `L^T` solve — many warm node LPs terminate without one
    /// and skip the build entirely.
    pub fn ensure_transpose(&mut self) {
        if self.lt.ncols() == self.m && self.lt.nnz() == self.l.nnz() {
            return;
        }
        self.build_transpose();
    }

    /// Unconditional transpose build (see [`Self::ensure_transpose`]).
    fn build_transpose(&mut self) {
        let mut counts = vec![0usize; self.m + 1];
        for k in 0..self.m {
            for (r, _) in self.l.col_iter(k) {
                counts[self.pinv[r] + 1] += 1;
            }
        }
        for i in 0..self.m {
            counts[i + 1] += counts[i];
        }
        let mut cursor = counts[..self.m].to_vec();
        let nnz = counts[self.m];
        let mut idx = vec![0usize; nnz];
        let mut val = vec![0f64; nnz];
        for k in 0..self.m {
            for (r, v) in self.l.col_iter(k) {
                let slot = cursor[self.pinv[r]];
                idx[slot] = k;
                val[slot] = v;
                cursor[self.pinv[r]] += 1;
            }
        }
        self.lt = ColumnStore::from_parts(counts, idx, val);
    }

    /// Moves the `U` factor out (for the dynamic Forrest–Tomlin engine),
    /// leaving this struct as an L-only solver. [`Self::ftran`] /
    /// [`Self::btran`] must not be called afterwards.
    pub fn take_u(&mut self) -> (ColumnStore, Vec<f64>) {
        (
            std::mem::replace(&mut self.u, ColumnStore::new()),
            std::mem::take(&mut self.u_diag),
        )
    }

    /// Entry count of the `L` factor alone (excluding the unit diagonal).
    pub fn l_nnz(&self) -> usize {
        self.l.nnz()
    }

    /// Dense forward solve `L g = P b` in place: `b` is original-row
    /// indexed on entry and exit (the permutation to pivot-position space
    /// is the caller's job — `g[k]` lives at `b[rowof[k]]`).
    pub fn l_solve_dense(&self, b: &mut [f64]) {
        for k in 0..self.m {
            let t = b[self.rowof[k]];
            if t != 0.0 {
                for (r, v) in self.l.col_iter(k) {
                    b[r] -= v * t;
                }
            }
        }
    }

    /// Hyper-sparse forward solve `L g = P b`: visits only the rows
    /// reachable from `b`'s pattern through `L` (Gilbert–Peierls DFS).
    /// `b` stays original-row indexed; its pattern is replaced by the
    /// reach set.
    pub fn l_solve_sparse(&self, b: &mut IndexedVec, ws: &mut LuWorkspace) {
        debug_assert!(b.is_sparse());
        ws.reach(self.m, b.indices(), |r, child| {
            let piv = self.pinv[r];
            if piv == usize::MAX {
                None
            } else {
                self.l.col(piv).0.get(child).copied()
            }
        });
        b.adopt_pattern(&ws.topo);
        for i in (0..ws.topo.len()).rev() {
            let r = ws.topo[i];
            let piv = self.pinv[r];
            if piv == usize::MAX {
                continue;
            }
            let xr = b[r];
            if xr == 0.0 {
                continue;
            }
            let (rows, vals) = self.l.col(piv);
            for (lr, lv) in rows.iter().zip(vals) {
                b.set_tracked(*lr, b[*lr] - lv * xr);
            }
        }
    }

    /// Dense backward solve `L^T q = w`, mapping pivot-position space to
    /// original-row space: `c` is position-indexed on entry, `out` must be
    /// zeroed and receives the row-indexed result.
    pub fn lt_solve_dense(&self, c: &[f64], out: &mut [f64]) {
        for k in (0..self.m).rev() {
            let mut t = c[k];
            for (r, v) in self.l.col_iter(k) {
                t -= v * out[r];
            }
            out[self.rowof[k]] = t;
        }
    }

    /// Hyper-sparse backward solve `L^T q = w`: `c` is position-indexed,
    /// `out` (zeroed, row-indexed) receives the result over the reach set
    /// only. Requires [`Self::ensure_transpose`] to have run.
    pub fn lt_solve_sparse(&self, c: &IndexedVec, out: &mut IndexedVec, ws: &mut LuWorkspace) {
        debug_assert!(c.is_sparse());
        debug_assert_eq!(self.lt.ncols(), self.m, "build_transpose not run");
        ws.reach(self.m, c.indices(), |i, child| {
            self.lt.col(i).0.get(child).copied()
        });
        for i in (0..ws.topo.len()).rev() {
            let k = ws.topo[i];
            let mut t = c[k];
            let (rows, vals) = self.l.col(k);
            for (r, v) in rows.iter().zip(vals) {
                t -= v * out[*r];
            }
            out.set(self.rowof[k], t);
        }
    }

    /// Solves `B' z = b` in place, where `b` is original-row indexed on
    /// entry and `z` is *column-position* indexed on exit: `z[k]` is the
    /// multiplier of the `k`-th processed column.
    ///
    /// `scratch` must be a zeroed dense vector of length `m`; it is returned
    /// zeroed.
    pub fn ftran(&self, b: &mut [f64], scratch: &mut [f64]) {
        debug_assert_eq!(b.len(), self.m);
        // Forward: L g = P b, working in original-row space.
        for k in 0..self.m {
            let t = b[self.rowof[k]];
            if t != 0.0 {
                for (r, v) in self.l.col_iter(k) {
                    b[r] -= v * t;
                }
            }
        }
        // Backward: U z = g; z in pivot-position space via scratch.
        for k in (0..self.m).rev() {
            let t = b[self.rowof[k]] / self.u_diag[k];
            scratch[k] = t;
            if t != 0.0 {
                for (i, v) in self.u.col_iter(k) {
                    b[self.rowof[i]] -= v * t;
                }
            }
        }
        // Copy back: b[k] = z[k] (position space) and zero the scratch.
        for k in 0..self.m {
            b[k] = scratch[k];
            scratch[k] = 0.0;
        }
    }

    /// Solves `B'^T q = c` in place, where `c` is column-position indexed on
    /// entry (`c[k]` pairs with the `k`-th processed column) and the result
    /// is original-row indexed on exit (dual values per constraint row).
    ///
    /// `scratch` must be a zeroed dense vector of length `m`; it is returned
    /// zeroed.
    pub fn btran(&self, c: &mut [f64], scratch: &mut [f64]) {
        debug_assert_eq!(c.len(), self.m);
        // Forward: U^T w = c' in pivot-position space.
        // w[k] = (c'[k] - sum_{i<k} U[i,k] * w[i]) / U[k,k]
        for k in 0..self.m {
            let mut t = c[k];
            for (i, v) in self.u.col_iter(k) {
                t -= v * c[i];
            }
            c[k] = t / self.u_diag[k];
        }
        // Backward: L^T q = w. q[k] = w[k] - sum_{(r,v) in Lcol k} v * q[pinv[r]].
        // Store q in original-row space via scratch.
        for k in (0..self.m).rev() {
            let mut t = c[k];
            for (r, v) in self.l.col_iter(k) {
                t -= v * scratch[r];
            }
            scratch[self.rowof[k]] = t;
        }
        for r in 0..self.m {
            c[r] = scratch[r];
            scratch[r] = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Factorise a dense matrix given column-major, solve, and compare.
    fn factorize_dense(a: &[Vec<f64>]) -> (LuFactors, Vec<ColumnOutcome>) {
        let m = a.len();
        let mut ws = LuWorkspace::new();
        LuFactors::factorize(
            m,
            |k, out| {
                for (r, &v) in a[k].iter().enumerate() {
                    if v != 0.0 {
                        out.push((r, v));
                    }
                }
            },
            &mut ws,
        )
    }

    fn mat_vec(a: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
        let m = a.len();
        let mut y = vec![0.0; m];
        for (k, col) in a.iter().enumerate() {
            for r in 0..m {
                y[r] += col[r] * x[k];
            }
        }
        y
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn identity_solve() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let (lu, out) = factorize_dense(&a);
        assert!(out
            .iter()
            .all(|o| matches!(o, ColumnOutcome::Pivoted { .. })));
        let mut b = vec![3.0, -4.0];
        let mut s = vec![0.0; 2];
        lu.ftran(&mut b, &mut s);
        assert_close(&b, &[3.0, -4.0]);
    }

    #[test]
    fn ftran_general_3x3() {
        // Columns of B
        let a = vec![
            vec![2.0, 1.0, 0.0],
            vec![0.0, 3.0, 1.0],
            vec![1.0, 0.0, 4.0],
        ];
        let (lu, out) = factorize_dense(&a);
        assert!(out
            .iter()
            .all(|o| matches!(o, ColumnOutcome::Pivoted { .. })));
        // Solve B z = b then check B z == b (z in column space = original
        // column order here since we processed in order 0,1,2).
        let b = vec![5.0, -1.0, 2.5];
        let mut rhs = b.clone();
        let mut s = vec![0.0; 3];
        lu.ftran(&mut rhs, &mut s);
        let back = mat_vec(&a, &rhs);
        assert_close(&back, &b);
        assert!(s.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn btran_general_3x3() {
        let a = vec![
            vec![2.0, 1.0, 0.0],
            vec![0.0, 3.0, 1.0],
            vec![1.0, 0.0, 4.0],
        ];
        let (lu, _) = factorize_dense(&a);
        // Solve B^T y = c; check c[k] == column_k . y.
        let c = vec![1.0, 2.0, 3.0];
        let mut rhs = c.clone();
        let mut s = vec![0.0; 3];
        lu.btran(&mut rhs, &mut s);
        for k in 0..3 {
            let dot: f64 = (0..3).map(|r| a[k][r] * rhs[r]).sum();
            assert!((dot - c[k]).abs() < 1e-9);
        }
    }

    #[test]
    fn requires_pivoting_matrix() {
        // First column has zero on the diagonal; pivoting must pick row 1.
        let a = vec![vec![0.0, 5.0], vec![1.0, 1.0]];
        let (lu, out) = factorize_dense(&a);
        assert!(out
            .iter()
            .all(|o| matches!(o, ColumnOutcome::Pivoted { .. })));
        let b = vec![2.0, 7.0];
        let mut rhs = b.clone();
        let mut s = vec![0.0; 2];
        lu.ftran(&mut rhs, &mut s);
        let back = mat_vec(&a, &rhs);
        assert_close(&back, &b);
    }

    #[test]
    fn detects_singularity() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]]; // rank 1
        let (_, out) = factorize_dense(&a);
        assert_eq!(out[0], ColumnOutcome::Pivoted { row: 1 }); // |2| > |1|
        assert_eq!(out[1], ColumnOutcome::Singular);
    }

    #[test]
    fn random_roundtrip_many_sizes() {
        // Deterministic pseudo-random dense matrices; diagonally dominated so
        // they are comfortably nonsingular.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        for m in [1usize, 2, 5, 13, 40] {
            let mut a = vec![vec![0.0; m]; m];
            for (k, col) in a.iter_mut().enumerate() {
                for slot in col.iter_mut() {
                    let v = next();
                    *slot = if v.abs() < 0.4 { 0.0 } else { v };
                }
                col[k] += 3.0 + m as f64; // diagonal dominance
            }
            let (lu, out) = factorize_dense(&a);
            assert!(
                out.iter()
                    .all(|o| matches!(o, ColumnOutcome::Pivoted { .. })),
                "m={m}"
            );
            let b: Vec<f64> = (0..m).map(|i| (i as f64) - 1.5).collect();
            let mut rhs = b.clone();
            let mut s = vec![0.0; m];
            lu.ftran(&mut rhs, &mut s);
            let back = mat_vec(&a, &rhs);
            for (x, y) in back.iter().zip(&b) {
                assert!((x - y).abs() < 1e-8, "m={m}");
            }
            // btran consistency
            let c: Vec<f64> = (0..m).map(|i| 0.25 * i as f64 + 1.0).collect();
            let mut yv = c.clone();
            lu.btran(&mut yv, &mut s);
            for k in 0..m {
                let dot: f64 = (0..m).map(|r| a[k][r] * yv[r]).sum();
                assert!((dot - c[k]).abs() < 1e-8, "m={m} k={k}");
            }
        }
    }
}
