//! Brute-force LP oracle for testing.
//!
//! For small problems whose variables all have finite bounds, the feasible
//! region is a polytope and the optimum (if the problem is feasible) is
//! attained at a basic solution: choose `m` basic columns out of the `n + m`
//! columns of `[A | -I]`, park every nonbasic column at one of its bounds,
//! and solve the square system. Enumerating every combination yields the
//! exact optimum, entirely independently of the simplex implementation.
//!
//! Exponential in problem size — only use with `n + m` around ten or less.

use crate::problem::Problem;

/// Exhaustively computes the optimal objective and a witness point, or
/// `None` if the problem is infeasible.
///
/// # Panics
/// Panics if any column bound is infinite (the polytope must be bounded).
pub fn brute_force_optimum(p: &Problem, tol: f64) -> Option<(f64, Vec<f64>)> {
    let n = p.ncols();
    let m = p.nrows();
    let (col_lb, col_ub) = p.col_bounds();
    let (row_lb, row_ub) = p.row_bounds();
    for j in 0..n {
        assert!(
            col_lb[j].is_finite() && col_ub[j].is_finite(),
            "oracle requires finite column bounds"
        );
    }
    // Effective bounds over [x; s].
    let lb: Vec<f64> = col_lb.iter().chain(row_lb.iter()).copied().collect();
    let ub: Vec<f64> = col_ub.iter().chain(row_ub.iter()).copied().collect();
    let total = n + m;

    // Dense copy of [A | -I].
    let mut cols = vec![vec![0.0; m]; total];
    for j in 0..n {
        for (r, v) in p.matrix().col_iter(j) {
            cols[j][r] = v;
        }
    }
    for i in 0..m {
        cols[n + i][i] = -1.0;
    }

    let mut best: Option<(f64, Vec<f64>)> = None;
    let mut basis = Vec::with_capacity(m);
    enumerate_bases(total, m, &mut basis, &mut |basis| {
        let nonbasic: Vec<usize> = (0..total).filter(|j| !basis.contains(j)).collect();
        // Skip nonbasics with infinite bounds on rows (can't park them);
        // instead enumerate only finite sides. A row with an infinite side
        // simply offers fewer parking choices.
        let mut choices: Vec<Vec<f64>> = Vec::with_capacity(nonbasic.len());
        for &j in &nonbasic {
            let mut c = Vec::new();
            if lb[j].is_finite() {
                c.push(lb[j]);
            }
            if ub[j].is_finite() && ub[j] != lb[j] {
                c.push(ub[j]);
            }
            if c.is_empty() {
                return; // a free nonbasic can sit anywhere; vertex needs a bound
            }
            choices.push(c);
        }
        let mut pick = vec![0usize; nonbasic.len()];
        loop {
            // Solve B x_B = -sum_j x_j col_j for the current parking.
            let mut rhs = vec![0.0; m];
            for (k, &j) in nonbasic.iter().enumerate() {
                let v = choices[k][pick[k]];
                if v != 0.0 {
                    for r in 0..m {
                        rhs[r] -= cols[j][r] * v;
                    }
                }
            }
            if let Some(xb) = dense_solve(basis.iter().map(|&j| &cols[j]), &rhs, m) {
                // Assemble the full point and check bounds on basics.
                let mut z = vec![0.0; total];
                for (k, &j) in nonbasic.iter().enumerate() {
                    z[j] = choices[k][pick[k]];
                }
                let mut ok = true;
                for (p_, &j) in basis.iter().enumerate() {
                    z[j] = xb[p_];
                    if z[j] < lb[j] - tol || z[j] > ub[j] + tol {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    let obj = p.objective_value(&z[..n]);
                    if best.as_ref().is_none_or(|(b, _)| obj < *b) {
                        best = Some((obj, z[..n].to_vec()));
                    }
                }
            }
            // Advance the mixed-radix counter over parking choices.
            let mut k = 0;
            loop {
                if k == pick.len() {
                    return;
                }
                pick[k] += 1;
                if pick[k] < choices[k].len() {
                    break;
                }
                pick[k] = 0;
                k += 1;
            }
        }
    });
    best
}

fn enumerate_bases(total: usize, m: usize, cur: &mut Vec<usize>, f: &mut impl FnMut(&[usize])) {
    fn rec(
        start: usize,
        total: usize,
        m: usize,
        cur: &mut Vec<usize>,
        f: &mut impl FnMut(&[usize]),
    ) {
        if cur.len() == m {
            f(cur);
            return;
        }
        for j in start..total {
            cur.push(j);
            rec(j + 1, total, m, cur, f);
            cur.pop();
        }
    }
    rec(0, total, m, cur, f);
}

/// Gaussian elimination with partial pivoting; returns `None` if singular.
fn dense_solve<'a>(
    cols: impl Iterator<Item = &'a Vec<f64>>,
    rhs: &[f64],
    m: usize,
) -> Option<Vec<f64>> {
    // Build the augmented row-major matrix.
    let cols: Vec<&Vec<f64>> = cols.collect();
    if cols.len() != m {
        return None;
    }
    let mut a = vec![vec![0.0; m + 1]; m];
    for (r, row) in a.iter_mut().enumerate() {
        for (c, col) in cols.iter().enumerate() {
            row[c] = col[r];
        }
        row[m] = rhs[r];
    }
    for k in 0..m {
        // Pivot.
        let mut piv = k;
        for r in k + 1..m {
            if a[r][k].abs() > a[piv][k].abs() {
                piv = r;
            }
        }
        if a[piv][k].abs() < 1e-10 {
            return None;
        }
        a.swap(k, piv);
        let d = a[k][k];
        for c in k..=m {
            a[k][c] /= d;
        }
        for r in 0..m {
            if r != k && a[r][k] != 0.0 {
                let f = a[r][k];
                for c in k..=m {
                    a[r][c] -= f * a[k][c];
                }
            }
        }
    }
    Some((0..m).map(|r| a[r][m]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ProblemBuilder;
    use crate::simplex::{solve, SimplexOptions};
    use crate::LpStatus;

    #[test]
    fn oracle_matches_simplex_on_small_lp() {
        // min -x - 2y s.t. x + y <= 3, x in [0,2], y in [0,2].
        let mut b = ProblemBuilder::new();
        let x = b.add_col(-1.0, 0.0, 2.0);
        let y = b.add_col(-2.0, 0.0, 2.0);
        let r = b.add_row(f64::NEG_INFINITY, 3.0);
        b.set_coeff(r, x, 1.0);
        b.set_coeff(r, y, 1.0);
        let p = b.build();
        let (obj, _) = brute_force_optimum(&p, 1e-9).expect("feasible");
        assert!((obj - -5.0).abs() < 1e-9);
        let s = solve(&p, &SimplexOptions::default());
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - obj).abs() < 1e-6);
    }

    #[test]
    fn oracle_detects_infeasibility() {
        let mut b = ProblemBuilder::new();
        let x = b.add_col(0.0, 0.0, 1.0);
        let r0 = b.add_row(2.0, 3.0); // x in [2,3] impossible for x <= 1
        b.set_coeff(r0, x, 1.0);
        let p = b.build();
        assert!(brute_force_optimum(&p, 1e-9).is_none());
    }
}
