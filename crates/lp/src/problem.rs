//! Linear-program definition shared by the revised and dense solvers.

use std::sync::OnceLock;

use crate::sparse::{CscMatrix, RowMajor, Triplet};

/// Positive infinity shorthand used for absent bounds.
pub const INF: f64 = f64::INFINITY;

/// A linear program in the form
///
/// ```text
/// minimise    c' x
/// subject to  row_lb <= A x <= row_ub
///             col_lb <=  x  <= col_ub
/// ```
///
/// Equality rows set `row_lb == row_ub`; one-sided rows use `±INF`.
#[derive(Debug, Clone)]
pub struct Problem {
    pub(crate) a: CscMatrix,
    pub(crate) obj: Vec<f64>,
    pub(crate) col_lb: Vec<f64>,
    pub(crate) col_ub: Vec<f64>,
    pub(crate) row_lb: Vec<f64>,
    pub(crate) row_ub: Vec<f64>,
    /// Lazily built row-major mirror of `a` (the dual simplex's pivot-row
    /// access); discarded whenever the matrix itself changes.
    pub(crate) row_major: OnceLock<RowMajor>,
}

impl Problem {
    /// Assembles and validates a problem.
    ///
    /// # Panics
    /// Panics on dimension mismatches or crossed bounds (`lb > ub`).
    pub fn new(
        a: CscMatrix,
        obj: Vec<f64>,
        col_lb: Vec<f64>,
        col_ub: Vec<f64>,
        row_lb: Vec<f64>,
        row_ub: Vec<f64>,
    ) -> Self {
        assert_eq!(obj.len(), a.ncols(), "objective length != ncols");
        assert_eq!(col_lb.len(), a.ncols());
        assert_eq!(col_ub.len(), a.ncols());
        assert_eq!(row_lb.len(), a.nrows());
        assert_eq!(row_ub.len(), a.nrows());
        for j in 0..a.ncols() {
            assert!(
                col_lb[j] <= col_ub[j],
                "column {j} has crossed bounds [{}, {}]",
                col_lb[j],
                col_ub[j]
            );
        }
        for i in 0..a.nrows() {
            assert!(
                row_lb[i] <= row_ub[i],
                "row {i} has crossed bounds [{}, {}]",
                row_lb[i],
                row_ub[i]
            );
        }
        Problem {
            a,
            obj,
            col_lb,
            col_ub,
            row_lb,
            row_ub,
            row_major: OnceLock::new(),
        }
    }

    /// Row-major mirror of the constraint matrix, built on first use and
    /// cached for the problem's lifetime (solves share it; warm B&B
    /// re-solves would otherwise rebuild it per node).
    pub fn row_major(&self) -> &RowMajor {
        self.row_major.get_or_init(|| RowMajor::build(&self.a))
    }

    pub fn ncols(&self) -> usize {
        self.a.ncols()
    }

    pub fn nrows(&self) -> usize {
        self.a.nrows()
    }

    pub fn matrix(&self) -> &CscMatrix {
        &self.a
    }

    pub fn objective(&self) -> &[f64] {
        &self.obj
    }

    pub fn col_bounds(&self) -> (&[f64], &[f64]) {
        (&self.col_lb, &self.col_ub)
    }

    pub fn row_bounds(&self) -> (&[f64], &[f64]) {
        (&self.row_lb, &self.row_ub)
    }

    /// Evaluates `c' x`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.obj.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Evaluates row activities `A x`.
    pub fn activities(&self, x: &[f64]) -> Vec<f64> {
        self.a.mul_dense(x)
    }

    /// Replaces one column's bounds in place (used by LP caches that patch
    /// a lowered problem between solves instead of rebuilding it).
    ///
    /// # Panics
    /// Panics on crossed bounds.
    pub fn set_col_bounds(&mut self, j: usize, lb: f64, ub: f64) {
        assert!(lb <= ub, "column {j} crossed bounds [{lb}, {ub}]");
        self.col_lb[j] = lb;
        self.col_ub[j] = ub;
    }

    /// Replaces one row's bounds in place.
    ///
    /// # Panics
    /// Panics on crossed bounds.
    pub fn set_row_bounds(&mut self, i: usize, lb: f64, ub: f64) {
        assert!(lb <= ub, "row {i} crossed bounds [{lb}, {ub}]");
        self.row_lb[i] = lb;
        self.row_ub[i] = ub;
    }

    /// Appends rows to the problem: `bounds` holds one `(lb, ub)` pair per
    /// appended row and `entries` the coefficients, indexed in the *new*
    /// (appended) row range. Existing columns, rows and the objective are
    /// untouched, so a [`crate::BasisState`] captured before the append
    /// stays a valid warm-start hint (appended rows contribute their slack
    /// to the basis on repair).
    pub fn append_rows(&mut self, bounds: &[(f64, f64)], entries: &[Triplet]) {
        let new_nrows = self.nrows() + bounds.len();
        for (k, &(lb, ub)) in bounds.iter().enumerate() {
            assert!(lb <= ub, "appended row {k} crossed bounds [{lb}, {ub}]");
        }
        self.a.append_rows(new_nrows, entries);
        self.row_major.take(); // the mirror no longer matches the matrix
        for &(lb, ub) in bounds {
            self.row_lb.push(lb);
            self.row_ub.push(ub);
        }
    }

    /// Checks primal feasibility of `x` within `tol` (columns and rows).
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.ncols() {
            return false;
        }
        for j in 0..self.ncols() {
            if x[j] < self.col_lb[j] - tol || x[j] > self.col_ub[j] + tol {
                return false;
            }
        }
        let act = self.activities(x);
        for i in 0..self.nrows() {
            if act[i] < self.row_lb[i] - tol || act[i] > self.row_ub[i] + tol {
                return false;
            }
        }
        true
    }
}

/// Incremental builder used by the MILP layer and tests.
#[derive(Debug, Default, Clone)]
pub struct ProblemBuilder {
    obj: Vec<f64>,
    col_lb: Vec<f64>,
    col_ub: Vec<f64>,
    row_lb: Vec<f64>,
    row_ub: Vec<f64>,
    triplets: Vec<Triplet>,
}

impl ProblemBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a column; returns its index.
    pub fn add_col(&mut self, obj: f64, lb: f64, ub: f64) -> usize {
        let j = self.obj.len();
        self.obj.push(obj);
        self.col_lb.push(lb);
        self.col_ub.push(ub);
        j
    }

    /// Adds a row with the given bounds; returns its index. Coefficients are
    /// attached with [`Self::set_coeff`].
    pub fn add_row(&mut self, lb: f64, ub: f64) -> usize {
        let i = self.row_lb.len();
        self.row_lb.push(lb);
        self.row_ub.push(ub);
        i
    }

    pub fn set_coeff(&mut self, row: usize, col: usize, value: f64) {
        if value != 0.0 {
            self.triplets.push(Triplet { row, col, value });
        }
    }

    pub fn ncols(&self) -> usize {
        self.obj.len()
    }

    pub fn nrows(&self) -> usize {
        self.row_lb.len()
    }

    pub fn build(self) -> Problem {
        let a = CscMatrix::from_triplets(self.nrows(), self.ncols(), &self.triplets);
        Problem::new(
            a,
            self.obj,
            self.col_lb,
            self.col_ub,
            self.row_lb,
            self.row_ub,
        )
    }
}

/// Solver termination status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// Proven optimal within tolerances.
    Optimal,
    /// No feasible point exists (phase I ended with residual infeasibility).
    Infeasible,
    /// The objective is unbounded below over the feasible region.
    Unbounded,
    /// The iteration limit was hit before convergence.
    IterationLimit,
}

/// Solution report.
#[derive(Debug, Clone)]
pub struct LpSolution {
    pub status: LpStatus,
    /// `c' x` of the returned point (meaningful for `Optimal`, best-effort
    /// otherwise).
    pub objective: f64,
    /// Structural variable values.
    pub x: Vec<f64>,
    /// Dual values per row (sign convention: minimisation, `A x - s = 0`).
    pub duals: Vec<f64>,
    /// Row activities `A x`.
    pub row_activity: Vec<f64>,
    /// Simplex iterations used (total over all phases).
    pub iterations: usize,
    /// Iterations broken down by phase (composite phase-I, primal
    /// phase-II, dual). `pivots.total() == iterations`.
    pub pivots: crate::simplex::PivotCounts,
    /// Final basis snapshot, reusable as a warm-start hint for related
    /// solves via [`crate::solve_from`] / [`crate::solve_with_bounds_from`].
    pub basis: Option<crate::simplex::BasisState>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let mut b = ProblemBuilder::new();
        let x = b.add_col(1.0, 0.0, 10.0);
        let y = b.add_col(-2.0, 0.0, INF);
        let r = b.add_row(-INF, 5.0);
        b.set_coeff(r, x, 1.0);
        b.set_coeff(r, y, 1.0);
        let p = b.build();
        assert_eq!(p.ncols(), 2);
        assert_eq!(p.nrows(), 1);
        assert_eq!(p.objective_value(&[1.0, 2.0]), -3.0);
        assert_eq!(p.activities(&[1.0, 2.0]), vec![3.0]);
        assert!(p.is_feasible(&[1.0, 2.0], 1e-9));
        assert!(!p.is_feasible(&[4.0, 2.0], 1e-9));
    }

    #[test]
    #[should_panic(expected = "crossed bounds")]
    fn rejects_crossed_bounds() {
        let mut b = ProblemBuilder::new();
        b.add_col(0.0, 1.0, -1.0);
        b.build();
    }
}
