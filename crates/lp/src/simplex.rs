//! Bounded-variable revised primal simplex with a composite phase-I.
//!
//! Internally the problem `row_lb <= A x <= row_ub` is rewritten as
//! `A x - s = 0` with slack bounds `[row_lb, row_ub]`, giving the square
//! system `[A | -I] z = 0` over `n + m` bounded variables. The initial basis
//! is the slack identity; if slack bounds are violated at the start (e.g.
//! equality rows), a phase-I objective that minimises the total bound
//! violation of basic variables drives the point feasible, after which the
//! same loop continues with the true objective.
//!
//! Warm starts: [`solve_from`] / [`solve_with_bounds_from`] accept a
//! [`BasisState`] captured from a previous solve (possibly of a *smaller*
//! problem) and start from that vertex instead of the slack identity. The
//! hint is validated and repaired against the current dimensions — see
//! [`BasisState`] for the exact contract. When the hinted vertex is primal
//! feasible, phase-I is skipped entirely and the solve goes straight to
//! optimising the true objective; when it is primal infeasible but still
//! dual feasible (bounds moved under an optimal basis), the dual simplex
//! in [`crate::dual`] recovers feasibility with dual pivots instead of
//! phase-I.
//!
//! Pricing: Dantzig over all columns for small systems; for larger systems
//! a bound-flip-aware *partial* pricing scheme (rotating candidate window +
//! a short-list of recently attractive columns) prices only a fraction of
//! the `n + m` columns per iteration. Bland's rule (full scan) engages
//! after a stall is detected, preserving the anti-cycling guarantee.

use crate::basis::{Basis, BasisUpdate, FactorState};
use crate::problem::{LpSolution, LpStatus, Problem};
use crate::sparse::IndexedVec;

/// Simplex iteration counts broken down by phase, plus the ratio-test
/// side-counters that explain *why* the iteration counts are what they are.
///
/// `phase1` counts composite phase-I iterations (feasibility recovery from
/// a cold or badly stale start), `primal` counts phase-II primal
/// iterations, and `dual` counts dual-simplex iterations (warm re-solves
/// whose basis stayed dual feasible under bound changes — see
/// [`crate::dual`]). The sum equals [`LpSolution::iterations`].
///
/// `bound_flips` counts nonbasic variables moved from one finite bound to
/// the other *without* a basis change: primal ratio tests whose entering
/// variable hit its own opposite bound first, and — the big contributor on
/// warm re-solves — boxed nonbasics flipped by the dual simplex's
/// long-step ratio test ([`RatioTest::LongStep`]), where many would-be
/// degenerate dual pivots are amortised into one real pivot.
/// `harris_degenerate_saved` counts iterations where the textbook ratio
/// test would have taken a zero-length (degenerate) step but the Harris
/// two-pass test found a strictly positive one within the feasibility
/// tolerance. Neither side-counter contributes to [`Self::total`].
///
/// The sparsity block mirrors [`crate::basis::SolveStats`]: how many
/// FTRAN/BTRAN solves ran the hyper-sparse kernels vs. the dense
/// fallbacks ([`Self::sparse_hit_rate`]), how dense the solve results were
/// ([`Self::mean_solve_density`]), and how the basis absorbed updates
/// (Forrest–Tomlin vs. product-form etas vs. full refactorisations).
///
/// ```
/// use sqpr_lp::PivotCounts;
///
/// let mut total = PivotCounts::default();
/// let node = PivotCounts { dual: 7, bound_flips: 12, sparse_solves: 30,
///                          dense_solves: 10, ..PivotCounts::default() };
/// total.merge(&node);
/// assert_eq!(total.total(), 7); // side-counters don't count as iterations
/// assert_eq!(total.bound_flips, 12);
/// assert!((total.sparse_hit_rate() - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PivotCounts {
    pub phase1: usize,
    pub primal: usize,
    pub dual: usize,
    /// Nonbasic bound-to-bound moves without a basis change (primal ratio
    /// test short-circuits plus dual long-step flips).
    pub bound_flips: usize,
    /// Degenerate pivots avoided by the Harris two-pass ratio test.
    pub harris_degenerate_saved: usize,
    /// FTRAN/BTRAN solves served by the hyper-sparse kernels.
    pub sparse_solves: usize,
    /// FTRAN/BTRAN solves that fell back to the dense kernels.
    pub dense_solves: usize,
    /// Sum of solve-result nonzeros (density numerator).
    pub solve_nnz: usize,
    /// Sum of basis dimensions over solves (density denominator).
    pub solve_dim: usize,
    /// Forrest–Tomlin basis updates applied.
    pub ft_updates: usize,
    /// Product-form etas appended (ablation mode or FT-rejection fallback).
    pub pfi_updates: usize,
    /// Basis refactorisations performed.
    pub refactorizations: usize,
    /// Solves that re-installed a cached [`crate::basis::FactorState`]
    /// instead of refactorising (the workspace's factor cache hit: the
    /// requested basic set, update mode and matrix generation all matched).
    pub factor_reattaches: usize,
    /// Numerical-distress ladder, rung 1: solves retried warm from their
    /// own final basis with the cached factors dropped (forced fresh
    /// factorisation) after an iteration-limit exit. See
    /// [`crate::solve_with_bounds_recovering_ws`].
    pub distress_refactors: usize,
    /// Distress ladder, rung 2: retries under escalated pivot/feasibility
    /// tolerances and a raised stall limit.
    pub distress_escalations: usize,
    /// Distress ladder, rung 3: cold restarts from the slack basis with an
    /// enlarged iteration budget — the last resort before surfacing
    /// [`crate::LpStatus::IterationLimit`] to the caller.
    pub distress_cold_restarts: usize,
}

impl PivotCounts {
    /// Total simplex iterations (side-counters excluded).
    pub fn total(&self) -> usize {
        self.phase1 + self.primal + self.dual
    }

    /// Fraction of FTRAN/BTRAN solves that ran hyper-sparse (0 when no
    /// solves were recorded).
    pub fn sparse_hit_rate(&self) -> f64 {
        let total = self.sparse_solves + self.dense_solves;
        if total == 0 {
            0.0
        } else {
            self.sparse_solves as f64 / total as f64
        }
    }

    /// Mean density of solve results: nonzeros over basis dimension,
    /// averaged across every recorded solve (0 when none).
    pub fn mean_solve_density(&self) -> f64 {
        if self.solve_dim == 0 {
            0.0
        } else {
            self.solve_nnz as f64 / self.solve_dim as f64
        }
    }

    /// Accumulates another counter set into this one. Field-wise addition:
    /// merging per-solve (or per-worker) counters in any order yields the
    /// same totals, which is what lets a multi-threaded branch & bound
    /// reconcile its workers' counts deterministically.
    /// Exhaustively destructured so a newly added counter is a compile
    /// error here, not a silently dropped stat.
    pub fn merge(&mut self, other: &PivotCounts) {
        let PivotCounts {
            phase1,
            primal,
            dual,
            bound_flips,
            harris_degenerate_saved,
            sparse_solves,
            dense_solves,
            solve_nnz,
            solve_dim,
            ft_updates,
            pfi_updates,
            refactorizations,
            factor_reattaches,
            distress_refactors,
            distress_escalations,
            distress_cold_restarts,
        } = *other;
        self.phase1 += phase1;
        self.primal += primal;
        self.dual += dual;
        self.bound_flips += bound_flips;
        self.harris_degenerate_saved += harris_degenerate_saved;
        self.sparse_solves += sparse_solves;
        self.dense_solves += dense_solves;
        self.solve_nnz += solve_nnz;
        self.solve_dim += solve_dim;
        self.ft_updates += ft_updates;
        self.pfi_updates += pfi_updates;
        self.refactorizations += refactorizations;
        self.factor_reattaches += factor_reattaches;
        self.distress_refactors += distress_refactors;
        self.distress_escalations += distress_escalations;
        self.distress_cold_restarts += distress_cold_restarts;
    }

    /// Deprecated spelling of [`Self::merge`], kept for downstream callers.
    pub fn add(&mut self, other: &PivotCounts) {
        self.merge(other);
    }
}

/// Public basis-status of one variable (structural or slack) in a
/// [`BasisState`] snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarBasisStatus {
    /// In the basis; its value is determined by `B x_B = -N x_N`.
    Basic,
    /// Nonbasic at its lower bound.
    AtLower,
    /// Nonbasic at its upper bound.
    AtUpper,
    /// Nonbasic free variable parked at zero.
    Free,
}

/// A snapshot of a simplex basis, detached from any particular solver
/// instance, used to warm-start later solves.
///
/// Variables are indexed globally: structural columns `0..ncols`, then one
/// slack per row at `ncols..ncols + nrows`.
///
/// ## Warm-start / repair contract
///
/// A `BasisState` captured from a solve of an `m x n` problem may be
/// replayed against a problem of *different* dimensions `m' x n'`
/// (the planner appends query columns/rows between submissions):
///
/// - structural columns `j < min(n, n')` keep their status; **appended**
///   columns (`j >= n`) enter nonbasic at their bound nearest zero;
/// - **dropped** structural columns (`j >= n'`) are patched out of the
///   basis — the vacated basis position is filled with the slack of a row
///   not already covered (slack substitution), exactly the repair the
///   factorisation itself performs on singular bases;
/// - slack statuses are remapped from `n + i` to `n' + i`; slacks of
///   **appended** rows (`i >= m`) enter the basis so the basis stays square;
/// - a nonbasic status pointing at an infinite bound (the bounds may have
///   changed between solves) is re-derived from the current bounds.
///
/// After repair the basis is refactorised (with the standard singularity
/// repair) and basic values are recomputed. If the resulting vertex is
/// primal feasible within `tol_feas`, phase-I is skipped.
#[derive(Debug, Clone)]
pub struct BasisState {
    /// Structural column count at capture time.
    pub ncols: usize,
    /// Row count at capture time.
    pub nrows: usize,
    /// Global column index occupying each basis position (`len == nrows`).
    pub basic: Vec<usize>,
    /// Status per global variable (`len == ncols + nrows`).
    pub status: Vec<VarBasisStatus>,
}

/// Which ratio test the primal and dual loops run.
///
/// The planner's assignment-style models are massively degenerate: many
/// basics sit exactly on a bound, so the textbook smallest-ratio test keeps
/// returning zero-length steps and the solver burns iterations shuffling
/// the basis without moving. The refined tests attack exactly that:
///
/// - **Harris two-pass** (primal and dual): pass one computes the largest
///   step allowed when every blocking bound is relaxed by the feasibility
///   tolerance; pass two picks, among the blockers within that relaxed
///   step, the one with the **largest pivot magnitude**. Degenerate ties
///   become real (tolerance-sized) steps on a numerically better pivot;
///   the per-variable bound violation this admits is capped by the
///   feasibility tolerance, i.e. by the solver's own optimality contract.
/// - **Bound-flipping long steps** (dual only): when the dual ratio test's
///   cheapest blocker is a *boxed* nonbasic (finite lower and upper
///   bound), the dual step may walk **past** its breakpoint by flipping it
///   to its opposite bound, and keep walking while the dual objective's
///   slope stays positive. Many degenerate dual pivots collapse into one
///   BTRAN/FTRAN plus a batch of bound flips (reported as
///   [`PivotCounts::bound_flips`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RatioTest {
    /// Textbook single-pass bounded ratio test (smallest ratio, ties by
    /// largest pivot). The ablation baseline; also what Bland's
    /// anti-cycling rule always uses regardless of this setting.
    Classic,
    /// Harris two-pass tolerances, no dual long steps.
    Harris,
    /// Harris two-pass plus the bound-flipping dual long step. Default.
    LongStep,
}

/// Primal pricing rule.
///
/// Devex maintains approximate steepest-edge reference weights `w_j` and
/// scores candidates by `d_j^2 / w_j`; Dantzig is the `w_j = 1` special
/// case. With the full pivot-row update (one BTRAN of the leaving row per
/// pivot, spread over the row-major mirror shared with the dual simplex)
/// devex is accurate enough to engage from cold starts too, so it is the
/// default and Dantzig is the ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PricingRule {
    /// Exact reduced-cost magnitude (`w_j = 1` forever).
    Dantzig,
    /// Reference-framework devex with full pivot-row weight updates.
    Devex,
}

/// Options controlling a simplex solve.
///
/// ```
/// use sqpr_lp::{RatioTest, SimplexOptions};
///
/// // The planner's settings: a light cost perturbation on top of the
/// // defaults (Harris + long-step ratio tests, devex pricing).
/// let opts = SimplexOptions { perturb: 1e-7, ..SimplexOptions::default() };
/// assert_eq!(opts.ratio_test, RatioTest::LongStep);
/// ```
#[derive(Debug, Clone)]
pub struct SimplexOptions {
    /// Hard cap on simplex iterations; 0 means `40 * (n + m) + 2000`.
    pub max_iters: usize,
    /// Primal feasibility tolerance (absolute, on variable bounds).
    pub tol_feas: f64,
    /// Dual feasibility / reduced-cost tolerance.
    pub tol_dual: f64,
    /// Smallest pivot magnitude accepted by the ratio test.
    pub tol_pivot: f64,
    /// Refactorise at least every this many pivots.
    pub refactor_interval: usize,
    /// Iterations without objective progress before Bland's rule engages.
    pub stall_limit: usize,
    /// Relative magnitude of the anti-degeneracy cost perturbation
    /// (0 disables). The perturbation is removed before termination, so
    /// reported optima are exact for the true objective.
    pub perturb: f64,
    /// Partial-pricing window: how many columns are scanned per pricing
    /// round before settling on the best candidate seen. `0` selects
    /// automatically (full Dantzig pricing for systems with
    /// `n + m <= 600`, a window of `max(256, (n + m) / 8)` beyond that);
    /// `usize::MAX` forces full pricing. Bland's anti-cycling rule always
    /// scans fully regardless of this setting.
    pub pricing_window: usize,
    /// Ratio-test refinement level (see [`RatioTest`]).
    pub ratio_test: RatioTest,
    /// Primal pricing rule (see [`PricingRule`]).
    pub pricing: PricingRule,
    /// Basis update representation (see [`BasisUpdate`]). Under
    /// Forrest–Tomlin the primal loop's `refactor_interval` pivot cap is
    /// relaxed 2x — the fill-growth policy ([`Self::ft_fill_limit`]) is
    /// the primary refactorisation trigger, the cap only bounds numerical
    /// drift. (The dual loop keeps the tight cap: its incrementally
    /// maintained reduced costs rely on the refactorisation refresh.)
    pub basis_update: BasisUpdate,
    /// Fill-growth ratio (current factor entries over freshly-factorised
    /// entries) at which Forrest–Tomlin mode refactorises.
    pub ft_fill_limit: f64,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            max_iters: 0,
            tol_feas: 1e-7,
            tol_dual: 1e-7,
            tol_pivot: 1e-8,
            refactor_interval: 64,
            stall_limit: 256,
            perturb: 0.0,
            pricing_window: 0,
            ratio_test: RatioTest::LongStep,
            pricing: PricingRule::Devex,
            basis_update: BasisUpdate::ForrestTomlin,
            ft_fill_limit: 3.0,
        }
    }
}

/// Reusable scratch buffers shared across solves.
///
/// A branch & bound tree solves hundreds of closely-related LPs; without a
/// workspace every solver construction re-allocates a dozen
/// `O(n + m)` vectors (and the dual loop two more per entry). Passing the
/// same `LpWorkspace` to the `_ws` entry points
/// ([`solve_with_bounds_from_ws`]) reuses those allocations; the plain
/// entry points create a throwaway workspace internally.
#[derive(Debug, Default)]
pub struct LpWorkspace {
    lb: Vec<f64>,
    ub: Vec<f64>,
    status: Vec<VarStatus>,
    x: Vec<f64>,
    work_obj: Vec<f64>,
    y: IndexedVec,
    w: IndexedVec,
    rho: IndexedVec,
    rhs: Vec<f64>,
    banned: Vec<bool>,
    devex: Vec<f64>,
    alpha: Vec<f64>,
    alpha_touched: Vec<usize>,
    candidates: Vec<usize>,
    /// Dual-loop buffers (hoisted from per-entry allocations).
    dual_d: Vec<f64>,
    dual_tau: Vec<f64>,
    dual_flip_rhs: IndexedVec,
    dual_cands: Vec<(usize, f64, f64)>,
    dual_viol: Vec<usize>,
    dual_in_viol: Vec<bool>,
    /// Detached basis factorisation of the previous solve (see
    /// [`FactorState`]) plus the caller's current matrix generation.
    factor_cache: Option<FactorState>,
    factor_token: u64,
}

impl LpWorkspace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a new matrix generation for basis-factorisation reuse:
    /// solves issued after this call may re-install the previous solve's
    /// factors when their basic sets coincide (the branch & bound
    /// child-node pattern). The caller asserts the constraint matrix stays
    /// unchanged until the next `begin_factor_generation` call; passing a
    /// fresh unique value per matrix (a tree-level counter) is what makes
    /// stale reuse impossible. Generation 0 disables reuse.
    pub fn begin_factor_generation(&mut self, token: u64) {
        self.factor_token = token;
        self.factor_cache = None;
    }

    /// Like [`Self::begin_factor_generation`], but keeps the cached factors
    /// when `token` matches the workspace's current generation: the caller
    /// asserts the constraint matrix is *still the same one* the cached
    /// factors were built for. This is the cross-solve entry point — a
    /// caller that owns both the matrix and the workspace (e.g. a
    /// compressed-LP cache slot whose matrix survived a refresh untouched)
    /// can let consecutive branch & bound trees re-attach each other's
    /// root factorisations instead of refactorising. A differing token
    /// behaves exactly like [`Self::begin_factor_generation`].
    pub fn resume_factor_generation(&mut self, token: u64) {
        if self.factor_token != token {
            self.factor_cache = None;
        }
        self.factor_token = token;
    }

    /// The workspace's current matrix-generation token (0 = reuse disabled).
    pub fn factor_generation(&self) -> u64 {
        self.factor_token
    }

    /// Detaches and returns the cached basis factorisation, leaving the
    /// workspace without one (the generation token is untouched). Together
    /// with [`Self::install_factor_state`] this lets a caller route factor
    /// states explicitly — e.g. a parallel branch & bound that seeds every
    /// node solve with its *parent's* final factorisation, so the numbers a
    /// node produces no longer depend on which solve the workspace ran
    /// last (or on which worker ran it).
    pub fn take_factor_state(&mut self) -> Option<FactorState> {
        self.factor_cache.take()
    }

    /// Installs `state` as the workspace's cached factorisation and sets
    /// the matrix generation to `token`. A state detached under a
    /// *different* generation is discarded rather than installed — the
    /// token contract of [`Self::begin_factor_generation`] must hold, and
    /// silently re-attaching foreign factors would break it.
    pub fn install_factor_state(&mut self, token: u64, state: Option<FactorState>) {
        self.factor_token = token;
        self.factor_cache = state.filter(|s| s.token() == token);
    }
}

/// Variable status in the current basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VarStatus {
    Basic,
    AtLower,
    AtUpper,
    /// Nonbasic free variable parked at zero.
    FreeNb,
}

/// Solves `problem` with its built-in column bounds.
pub fn solve(problem: &Problem, opts: &SimplexOptions) -> LpSolution {
    let (lb, ub) = problem.col_bounds();
    solve_with_bounds(problem, lb, ub, opts)
}

/// Solves `problem` with the column bounds overridden (the matrix, rows and
/// objective are shared). This is the entry point used by branch & bound.
pub fn solve_with_bounds(
    problem: &Problem,
    col_lb: &[f64],
    col_ub: &[f64],
    opts: &SimplexOptions,
) -> LpSolution {
    solve_with_bounds_from(problem, col_lb, col_ub, None, opts)
}

/// Warm-started solve: like [`solve`], but starts from `basis_hint`
/// (captured from a previous [`LpSolution::basis`]) instead of the slack
/// identity. The hint may come from a differently-sized problem — see the
/// [`BasisState`] repair contract. Passing `None` is identical to [`solve`].
pub fn solve_from(
    problem: &Problem,
    basis_hint: Option<&BasisState>,
    opts: &SimplexOptions,
) -> LpSolution {
    let (lb, ub) = problem.col_bounds();
    solve_with_bounds_from(problem, lb, ub, basis_hint, opts)
}

/// Warm-started solve with overridden column bounds: the branch & bound
/// entry point for re-solving a node LP from its parent's optimal basis.
pub fn solve_with_bounds_from(
    problem: &Problem,
    col_lb: &[f64],
    col_ub: &[f64],
    basis_hint: Option<&BasisState>,
    opts: &SimplexOptions,
) -> LpSolution {
    let mut ws = LpWorkspace::new();
    solve_with_bounds_from_ws(problem, col_lb, col_ub, basis_hint, opts, &mut ws)
}

/// [`solve_with_bounds_from`] with caller-provided scratch buffers: the
/// hot entry point for solvers (branch & bound, diving heuristics) that
/// issue many related solves and want to amortise the per-solve
/// allocations away.
pub fn solve_with_bounds_from_ws(
    problem: &Problem,
    col_lb: &[f64],
    col_ub: &[f64],
    basis_hint: Option<&BasisState>,
    opts: &SimplexOptions,
    ws: &mut LpWorkspace,
) -> LpSolution {
    Solver::new(problem, col_lb, col_ub, basis_hint, opts, ws).run(ws)
}

/// [`solve_with_bounds_from_ws`] wrapped in the numerical-distress ladder:
/// a solve that exits with [`LpStatus::IterationLimit`] (the umbrella
/// status for stalls, tolerance-starved ratio tests and bases the
/// singularity repair keeps patching) is retried through escalating
/// recovery rungs instead of surfacing the limit to the caller.
///
/// 1. **Refactorise** — drop the workspace's cached factors (forcing a
///    fresh factorisation, which discards any accumulated Forrest–Tomlin
///    update drift) and re-solve warm from the failed solve's own final
///    basis ([`PivotCounts::distress_refactors`]).
/// 2. **Tolerance escalation** — same warm restart, but with the pivot
///    tolerance relaxed `100x`, the feasibility/dual tolerances `10x`, and
///    the stall limit `4x`: degenerate vertices that starve the Harris
///    ratio test of acceptable pivots become traversable
///    ([`PivotCounts::distress_escalations`]).
/// 3. **Cold restart** — discard the (possibly poisoned) basis entirely
///    and re-solve from the slack identity under the *original*
///    tolerances with a `4x` iteration budget
///    ([`PivotCounts::distress_cold_restarts`]).
///
/// The returned solution aggregates iterations and [`PivotCounts`] across
/// every attempt, preserving the `pivots.total() == iterations` contract.
/// The ladder is a pure function of its arguments (the workspace's factor
/// cache only seeds rung 0, exactly as in the plain entry point), so
/// callers that require replayed solves to be bit-identical to speculative
/// ones — the parallel branch & bound — can adopt it without weakening
/// their determinism invariant.
pub fn solve_with_bounds_recovering_ws(
    problem: &Problem,
    col_lb: &[f64],
    col_ub: &[f64],
    basis_hint: Option<&BasisState>,
    opts: &SimplexOptions,
    ws: &mut LpWorkspace,
) -> LpSolution {
    let mut sol = solve_with_bounds_from_ws(problem, col_lb, col_ub, basis_hint, opts, ws);
    if sol.status != LpStatus::IterationLimit {
        return sol;
    }
    let token = ws.factor_generation();
    let mut iterations = sol.iterations;
    let mut pivots = sol.pivots;

    // Rung 1: fresh factorisation, warm from the failed solve's last basis.
    ws.install_factor_state(token, None);
    let basis = sol.basis.clone();
    let mut retry = solve_with_bounds_from_ws(problem, col_lb, col_ub, basis.as_ref(), opts, ws);
    iterations += retry.iterations;
    pivots.merge(&retry.pivots);
    pivots.distress_refactors += 1;

    if retry.status == LpStatus::IterationLimit {
        // Rung 2: escalated tolerances, warm from the latest basis.
        ws.install_factor_state(token, None);
        let escalated = SimplexOptions {
            tol_pivot: opts.tol_pivot * 1e2,
            tol_feas: opts.tol_feas * 10.0,
            tol_dual: opts.tol_dual * 10.0,
            stall_limit: opts.stall_limit.saturating_mul(4),
            ..opts.clone()
        };
        let basis = retry.basis.clone().or(basis);
        retry = solve_with_bounds_from_ws(problem, col_lb, col_ub, basis.as_ref(), &escalated, ws);
        iterations += retry.iterations;
        pivots.merge(&retry.pivots);
        pivots.distress_escalations += 1;
    }

    if retry.status == LpStatus::IterationLimit {
        // Rung 3: cold restart from the slack basis, original tolerances,
        // 4x iteration budget.
        ws.install_factor_state(token, None);
        let base_iters = if opts.max_iters == 0 {
            40 * (problem.ncols() + problem.nrows()) + 2000
        } else {
            opts.max_iters
        };
        let cold = SimplexOptions {
            max_iters: base_iters.saturating_mul(4),
            ..opts.clone()
        };
        retry = solve_with_bounds_from_ws(problem, col_lb, col_ub, None, &cold, ws);
        iterations += retry.iterations;
        pivots.merge(&retry.pivots);
        pivots.distress_cold_restarts += 1;
    }

    sol = retry;
    sol.iterations = iterations;
    sol.pivots = pivots;
    sol
}

pub(crate) struct Solver<'a> {
    pub(crate) p: &'a Problem,
    pub(crate) opts: &'a SimplexOptions,
    /// Working objective (possibly perturbed); trimmed back to the true
    /// costs before final convergence.
    pub(crate) work_obj: Vec<f64>,
    pub(crate) perturbed: bool,
    pub(crate) n: usize,
    pub(crate) m: usize,
    /// Effective bounds over all `n + m` variables (structural then slack).
    pub(crate) lb: Vec<f64>,
    pub(crate) ub: Vec<f64>,
    pub(crate) status: Vec<VarStatus>,
    /// Current value of every variable.
    pub(crate) x: Vec<f64>,
    pub(crate) basis: Basis<'a>,
    /// Duals of the active basis/phase (row-indexed after BTRAN); built
    /// sparsely from the basic cost pattern.
    pub(crate) y: IndexedVec,
    /// FTRAN image of the entering column (basis-position indexed, pattern
    /// tracked — the hyper-sparse hot path).
    pub(crate) w: IndexedVec,
    pub(crate) rhs: Vec<f64>,
    /// Columns excluded from pricing this round (failed pivots).
    pub(crate) banned: Vec<bool>,
    pub(crate) iterations: usize,
    /// Per-phase iteration counters (phase-I / primal / dual).
    pub(crate) pivots: PivotCounts,
    /// Effective partial-pricing window (`n + m` disables partial pricing).
    pub(crate) window: usize,
    /// Rotating scan position for partial pricing.
    pub(crate) price_cursor: usize,
    /// Short-list of recently attractive columns, re-priced before any
    /// window scan. Stays valid across bound flips (duals unchanged).
    pub(crate) candidates: Vec<usize>,
    /// Whether `self.y` currently holds the duals of the active basis and
    /// phase (bound flips leave phase-2 duals intact).
    pub(crate) duals_valid: bool,
    /// Devex reference weights per global column, shared by primal pricing
    /// (score `d^2 / weight`) and seeded from 1.0 at (re)entry into a
    /// reference framework. The dual loop keeps its own row-indexed set.
    pub(crate) devex: Vec<f64>,
    /// Whether this solve started from a caller-provided basis hint (the
    /// precondition for attempting a dual-simplex entry).
    pub(crate) hinted: bool,
    /// Pivots applied since the last refactorisation (shared between the
    /// primal and dual loops so the refactor cadence is global).
    pub(crate) pivots_since_refactor: usize,
    /// Effective pivot cap between refactorisations (mode-dependent; see
    /// [`SimplexOptions::basis_update`]).
    pub(crate) refactor_every: usize,
    /// Pivot-row workspaces shared by the full primal devex update and the
    /// dual loop: BTRAN image of the leaving row (`rho`, row-indexed,
    /// pattern tracked), its scatter over all `n + m` columns (`alpha`),
    /// and the columns the scatter touched.
    pub(crate) rho: IndexedVec,
    pub(crate) alpha: Vec<f64>,
    pub(crate) alpha_touched: Vec<usize>,
    /// Per-channel result-density estimates driving the sparse/dense
    /// kernel dispatch (entering-column FTRANs, pivot-row BTRANs, dual
    /// BTRANs and flip-batch FTRANs have very different profiles).
    pub(crate) ewma_w: f64,
    pub(crate) ewma_rho: f64,
    pub(crate) ewma_duals: f64,
    pub(crate) ewma_flip: f64,
    /// Dual-loop scratch hoisted from per-entry allocations (see
    /// [`LpWorkspace`]).
    pub(crate) dual_d: Vec<f64>,
    pub(crate) dual_tau: Vec<f64>,
    pub(crate) dual_flip_rhs: IndexedVec,
    pub(crate) dual_cands: Vec<(usize, f64, f64)>,
    pub(crate) dual_viol: Vec<usize>,
    pub(crate) dual_in_viol: Vec<bool>,
}

/// Outcome of one pricing step.
enum Pricing {
    Optimal,
    Enter { j: usize, dir: f64 },
}

/// Outcome of one ratio test.
enum Ratio {
    Unbounded,
    BoundFlip {
        t: f64,
    },
    Pivot {
        t: f64,
        pos: usize,
        to_upper: bool,
    },
    /// All candidate pivots were numerically unusable.
    Stuck,
}

impl<'a> Solver<'a> {
    fn new(
        p: &'a Problem,
        col_lb: &[f64],
        col_ub: &[f64],
        hint: Option<&BasisState>,
        opts: &'a SimplexOptions,
        ws: &mut LpWorkspace,
    ) -> Self {
        let n = p.ncols();
        let m = p.nrows();
        assert_eq!(col_lb.len(), n);
        assert_eq!(col_ub.len(), n);
        let (row_lb, row_ub) = p.row_bounds();
        let mut lb = std::mem::take(&mut ws.lb);
        let mut ub = std::mem::take(&mut ws.ub);
        lb.clear();
        ub.clear();
        lb.extend_from_slice(col_lb);
        ub.extend_from_slice(col_ub);
        lb.extend_from_slice(row_lb);
        ub.extend_from_slice(row_ub);

        // Nonbasic structural variables start at the finite bound closest to
        // zero; free variables park at zero. Slacks form the initial basis —
        // unless a basis hint overrides both below.
        let mut status = std::mem::take(&mut ws.status);
        let mut x = std::mem::take(&mut ws.x);
        status.clear();
        x.clear();
        for j in 0..n {
            let (s, v) = initial_nonbasic(lb[j], ub[j]);
            status.push(s);
            x.push(v);
        }
        for _ in 0..m {
            status.push(VarStatus::Basic);
            x.push(0.0);
        }
        let basic = match hint {
            Some(h) => adapt_hint(h, n, m, &lb, &ub, &mut status, &mut x),
            None => (n..n + m).collect(),
        };
        let cached = if ws.factor_token != 0
            && ws
                .factor_cache
                .as_ref()
                .is_some_and(|c| c.token == ws.factor_token)
        {
            ws.factor_cache.take()
        } else {
            None
        };
        let (basis, factor_hit) = Basis::build(
            p.matrix(),
            basic,
            opts.basis_update,
            opts.ft_fill_limit,
            cached,
        );
        // Deterministic multiplicative cost perturbation: breaks the massive
        // dual degeneracy of big-M models without changing the optimal basis
        // meaningfully; removed before termination.
        let mut work_obj = std::mem::take(&mut ws.work_obj);
        work_obj.clear();
        work_obj.extend_from_slice(p.objective());
        let mut perturbed = false;
        if opts.perturb > 0.0 {
            let mut seed = 0x9E3779B97F4A7C15u64;
            for (j, c) in work_obj.iter_mut().enumerate() {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                seed = seed.wrapping_add(j as u64);
                let u = (seed >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
                *c += opts.perturb * (0.5 + u) * (1.0 + c.abs());
                perturbed = true;
            }
        }
        let mut y = std::mem::take(&mut ws.y);
        y.reset(m);
        let mut w = std::mem::take(&mut ws.w);
        w.reset(m);
        let mut rho = std::mem::take(&mut ws.rho);
        rho.reset(m);
        let mut rhs = std::mem::take(&mut ws.rhs);
        rhs.clear();
        rhs.resize(m, 0.0);
        let mut banned = std::mem::take(&mut ws.banned);
        banned.clear();
        banned.resize(n + m, false);
        let mut devex = std::mem::take(&mut ws.devex);
        devex.clear();
        devex.resize(n + m, 1.0);
        let mut alpha = std::mem::take(&mut ws.alpha);
        alpha.clear();
        alpha.resize(n + m, 0.0);
        let mut alpha_touched = std::mem::take(&mut ws.alpha_touched);
        alpha_touched.clear();
        let mut candidates = std::mem::take(&mut ws.candidates);
        candidates.clear();
        // The pivot cap between refactorisations: Forrest–Tomlin keys on
        // fill growth, so the cap is relaxed to a drift bound.
        let refactor_every = match opts.basis_update {
            BasisUpdate::ProductForm => opts.refactor_interval,
            BasisUpdate::ForrestTomlin => opts.refactor_interval.saturating_mul(2),
        };
        let carried_updates = basis.updates_since_refactor();
        let mut s = Solver {
            p,
            opts,
            work_obj,
            perturbed,
            n,
            m,
            lb,
            ub,
            status,
            x,
            basis,
            y,
            w,
            rhs,
            banned,
            iterations: 0,
            pivots: PivotCounts::default(),
            window: effective_window(opts.pricing_window, n + m),
            price_cursor: 0,
            candidates,
            duals_valid: false,
            devex,
            hinted: hint.is_some(),
            pivots_since_refactor: carried_updates,
            refactor_every,
            rho,
            alpha,
            alpha_touched,
            ewma_w: 0.0,
            ewma_rho: 0.0,
            ewma_duals: 0.0,
            ewma_flip: 0.0,
            dual_d: std::mem::take(&mut ws.dual_d),
            dual_tau: std::mem::take(&mut ws.dual_tau),
            dual_flip_rhs: std::mem::take(&mut ws.dual_flip_rhs),
            dual_cands: std::mem::take(&mut ws.dual_cands),
            dual_viol: std::mem::take(&mut ws.dual_viol),
            dual_in_viol: std::mem::take(&mut ws.dual_in_viol),
        };
        s.pivots.factor_reattaches = factor_hit as usize;
        // A hinted basis may have been repaired during factorisation
        // (slack substitution for singular/dropped columns); reconcile the
        // statuses with what the basis actually holds.
        if hint.is_some() {
            s.reconcile_statuses();
        }
        s.recompute_basics();
        s
    }

    /// Snapshots the current basis for reuse by a later solve.
    fn capture_basis(&self) -> BasisState {
        BasisState {
            ncols: self.n,
            nrows: self.m,
            basic: self.basis.basic_columns().to_vec(),
            status: self
                .status
                .iter()
                .map(|s| match s {
                    VarStatus::Basic => VarBasisStatus::Basic,
                    VarStatus::AtLower => VarBasisStatus::AtLower,
                    VarStatus::AtUpper => VarBasisStatus::AtUpper,
                    VarStatus::FreeNb => VarBasisStatus::Free,
                })
                .collect(),
        }
    }

    /// Rewrites `self.status`/`self.x` to agree with the basis content:
    /// every variable the basis holds becomes `Basic`; variables the basis
    /// dropped (factorisation repair) are parked at their nearest bound.
    fn reconcile_statuses(&mut self) {
        let mut is_basic = vec![false; self.n + self.m];
        for pos in 0..self.m {
            is_basic[self.basis.basic_at(pos)] = true;
        }
        for j in 0..self.n + self.m {
            match (is_basic[j], self.status[j]) {
                (true, _) => self.status[j] = VarStatus::Basic,
                (false, VarStatus::Basic) => {
                    let (s, v) = nearest_bound(self.x[j], self.lb[j], self.ub[j]);
                    self.status[j] = s;
                    self.x[j] = v;
                }
                _ => {}
            }
        }
    }

    /// Recomputes basic variable values from the nonbasic point:
    /// `B x_B = -N x_N`.
    fn recompute_basics(&mut self) {
        self.rhs.iter_mut().for_each(|v| *v = 0.0);
        for j in 0..self.n + self.m {
            if self.status[j] != VarStatus::Basic && self.x[j] != 0.0 {
                // rhs -= x_j * col_j
                let xv = self.x[j];
                if j < self.n {
                    for (r, v) in self.p.matrix().col_iter(j) {
                        self.rhs[r] -= v * xv;
                    }
                } else {
                    self.rhs[j - self.n] += xv;
                }
            }
        }
        self.basis.ftran(&mut self.rhs);
        for pos in 0..self.m {
            let j = self.basis.basic_at(pos);
            self.x[j] = self.rhs[pos];
        }
    }

    /// Total and largest single bound violation over basic variables, in
    /// one scan. The *max* — not the total — is the phase-I trigger: the
    /// solve's feasibility contract is per-variable (`tol_feas` each,
    /// matching [`Problem::is_feasible`] and the phase-I pricing
    /// gradient), and the Harris ratio test deliberately admits
    /// per-variable violations up to the tolerance whose sum may exceed
    /// it while every phase-I gradient entry is zero. The total drives
    /// stall detection.
    pub(crate) fn infeasibility_extents(&self) -> (f64, f64) {
        let mut total = 0.0;
        let mut worst = 0.0f64;
        for pos in 0..self.m {
            let j = self.basis.basic_at(pos);
            let v = self.x[j];
            let viol = if v < self.lb[j] {
                self.lb[j] - v
            } else if v > self.ub[j] {
                v - self.ub[j]
            } else {
                continue;
            };
            total += viol;
            worst = worst.max(viol);
        }
        (total, worst)
    }

    /// Largest single bound violation (see [`Self::infeasibility_extents`]).
    pub(crate) fn max_bound_violation(&self) -> f64 {
        self.infeasibility_extents().1
    }

    fn objective_now(&self) -> f64 {
        self.work_obj.iter().zip(&self.x).map(|(c, v)| c * v).sum()
    }

    /// Cost of global variable `j` under the active phase.
    #[inline]
    fn phase_cost(&self, j: usize, phase1: bool) -> f64 {
        if phase1 {
            0.0 // nonbasic variables are always within bounds
        } else if j < self.n {
            self.work_obj[j]
        } else {
            0.0
        }
    }

    /// Reduced cost of nonbasic `j`: `c_j - y' a_j`.
    #[inline]
    pub(crate) fn reduced_cost(&self, j: usize, phase1: bool) -> f64 {
        let cy = if j < self.n {
            self.p.matrix().dot_col(j, self.y.as_slice())
        } else {
            -self.y[j - self.n]
        };
        self.phase_cost(j, phase1) - cy
    }

    /// Computes duals for the active phase into `self.y`. The basic-cost
    /// vector is assembled with its pattern tracked — phase-I costs near
    /// feasibility and warm phase-II costs over slack-heavy bases are
    /// sparse, which lets the BTRAN take the hyper-sparse kernels.
    pub(crate) fn compute_duals(&mut self, phase1: bool) {
        let mut y = std::mem::take(&mut self.y);
        y.clear();
        for pos in 0..self.m {
            let j = self.basis.basic_at(pos);
            let c = if phase1 {
                let v = self.x[j];
                if v < self.lb[j] - self.opts.tol_feas {
                    -1.0
                } else if v > self.ub[j] + self.opts.tol_feas {
                    1.0
                } else {
                    0.0
                }
            } else {
                self.phase_cost(j, false)
            };
            if c != 0.0 {
                y.set(pos, c);
            }
        }
        self.basis.btran_sp(&mut y, &mut self.ewma_duals);
        self.y = y;
    }

    /// Prices one nonbasic column: `Some((dir, score))` when attractive.
    #[inline]
    fn price_one(&self, j: usize, phase1: bool) -> Option<(f64, f64)> {
        if self.banned[j] {
            return None;
        }
        // Fixed columns (lb == ub) have zero travel range: entering them
        // can only produce a degenerate bound flip. Models with many
        // bound-fixed variables (the planner's reduction fixing) would
        // otherwise waste most pricing work on them.
        if self.lb[j] == self.ub[j] {
            return None;
        }
        let tol = self.opts.tol_dual;
        // Devex reference-weight score: d^2 / w_j approximates the improvement
        // per unit step in the reference framework, demoting columns whose
        // basis image has grown large (the classic degenerate-model failure
        // of pure Dantzig pricing).
        let score = |d: f64| d * d / self.devex[j];
        match self.status[j] {
            VarStatus::Basic => None,
            VarStatus::AtLower => {
                let d = self.reduced_cost(j, phase1);
                (d < -tol).then_some((1.0, score(d)))
            }
            VarStatus::AtUpper => {
                let d = self.reduced_cost(j, phase1);
                (d > tol).then_some((-1.0, score(d)))
            }
            VarStatus::FreeNb => {
                let d = self.reduced_cost(j, phase1);
                if d < -tol {
                    Some((1.0, score(d)))
                } else if d > tol {
                    Some((-1.0, score(d)))
                } else {
                    None
                }
            }
        }
    }

    /// Pricing over nonbasic variables.
    ///
    /// - Bland mode: full scan, first attractive column by index
    ///   (anti-cycling requires it).
    /// - Full Dantzig (window >= n + m): best score over all columns.
    /// - Partial: re-price the candidate short-list first (still valid
    ///   after bound flips — the duals are unchanged), then scan a
    ///   rotating window; only an empty full rotation proves optimality.
    fn price(&mut self, phase1: bool, bland: bool) -> Pricing {
        let total = self.n + self.m;
        if bland {
            for j in 0..total {
                if let Some((dir, _)) = self.price_one(j, phase1) {
                    return Pricing::Enter { j, dir };
                }
            }
            return Pricing::Optimal;
        }

        let mut best: Option<(usize, f64, f64)> = None; // (j, dir, score)
        if self.window >= total {
            for j in 0..total {
                if let Some((dir, score)) = self.price_one(j, phase1) {
                    if best.is_none_or(|(_, _, s)| score > s) {
                        best = Some((j, dir, score));
                    }
                }
            }
            return match best {
                Some((j, dir, _)) => Pricing::Enter { j, dir },
                None => Pricing::Optimal,
            };
        }

        // Candidate short-list: re-price, drop stale entries, keep the best.
        let mut kept = 0;
        for k in 0..self.candidates.len() {
            let j = self.candidates[k];
            if let Some((dir, score)) = self.price_one(j, phase1) {
                self.candidates[kept] = j;
                kept += 1;
                if best.is_none_or(|(_, _, s)| score > s) {
                    best = Some((j, dir, score));
                }
            }
        }
        self.candidates.truncate(kept);
        if let Some((j, dir, _)) = best {
            return Pricing::Enter { j, dir };
        }

        // Rotating window scan; a full empty rotation proves optimality.
        let mut scanned = 0usize;
        while scanned < total {
            let j = self.price_cursor;
            self.price_cursor = (self.price_cursor + 1) % total;
            scanned += 1;
            if let Some((dir, score)) = self.price_one(j, phase1) {
                if self.candidates.len() < MAX_CANDIDATES {
                    self.candidates.push(j);
                }
                if best.is_none_or(|(_, _, s)| score > s) {
                    best = Some((j, dir, score));
                }
            }
            if best.is_some() && scanned >= self.window {
                break;
            }
        }
        match best {
            Some((j, dir, _)) => Pricing::Enter { j, dir },
            None => Pricing::Optimal,
        }
    }

    /// Step limit that basic position `pos` imposes on an entering move in
    /// direction `dir` (the basic moves at rate `-dir * w[pos]`), or `None`
    /// when it imposes none — pivot below tolerance, unbounded side, or a
    /// phase-I pass-through (a basic already infeasible in the travel
    /// direction, whose worsening the phase-I gradient has priced in).
    /// Returns `(limit, at_upper)`: the nonnegative blocking ratio and the
    /// bound the basic would leave at.
    #[inline]
    fn ratio_limit(&self, pos: usize, dir: f64, phase1: bool) -> Option<(f64, bool)> {
        let wv = self.w[pos];
        if wv.abs() <= self.opts.tol_pivot {
            return None;
        }
        let tol = self.opts.tol_feas;
        let bj = self.basis.basic_at(pos);
        let xv = self.x[bj];
        let delta = dir * wv;
        let (dist, at_upper) = if delta > 0.0 {
            // Basic decreases.
            if phase1 && xv < self.lb[bj] - tol {
                return None;
            } else if phase1 && xv > self.ub[bj] + tol {
                // Infeasible above and improving: stop where it becomes
                // feasible at the upper bound.
                if self.ub[bj].is_finite() {
                    (xv - self.ub[bj], true)
                } else {
                    return None;
                }
            } else if self.lb[bj].is_finite() {
                ((xv - self.lb[bj]).max(0.0), false)
            } else {
                return None;
            }
        } else {
            // Basic increases.
            if phase1 && xv > self.ub[bj] + tol {
                return None;
            } else if phase1 && xv < self.lb[bj] - tol {
                if self.lb[bj].is_finite() {
                    (self.lb[bj] - xv, false)
                } else {
                    return None;
                }
            } else if self.ub[bj].is_finite() {
                (((self.ub[bj] - xv).max(0.0)), true)
            } else {
                return None;
            }
        };
        Some((dist / delta.abs(), at_upper))
    }

    /// Bounded-variable ratio test, phase-aware.
    ///
    /// Moving the entering variable by `t` in direction `dir` changes basic
    /// `pos` by `-t * dir * w[pos]`. Dispatches on [`SimplexOptions::ratio_test`];
    /// Bland mode always runs the classic single pass (the anti-cycling
    /// argument needs the deterministic smallest-ratio choice).
    fn ratio_test(&mut self, j: usize, dir: f64, phase1: bool, bland: bool) -> Ratio {
        if bland || self.opts.ratio_test == RatioTest::Classic {
            self.ratio_test_classic(j, dir, phase1, bland)
        } else {
            self.ratio_test_harris(j, dir, phase1)
        }
    }

    /// Textbook single-pass test: smallest ratio wins, ties by largest
    /// pivot magnitude (or smallest variable index under Bland's rule).
    /// Only positions in the entering column's FTRAN support can block
    /// (zero pivots never pass [`Self::ratio_limit`]), so a sparse `w`
    /// scans its pattern instead of all `m` rows.
    fn ratio_test_classic(&self, j: usize, dir: f64, phase1: bool, bland: bool) -> Ratio {
        if self.w.is_sparse() {
            self.ratio_test_classic_at(self.w.indices().iter().copied(), j, dir, phase1, bland)
        } else {
            self.ratio_test_classic_at(0..self.m, j, dir, phase1, bland)
        }
    }

    fn ratio_test_classic_at(
        &self,
        positions: impl Iterator<Item = usize>,
        j: usize,
        dir: f64,
        phase1: bool,
        bland: bool,
    ) -> Ratio {
        // Entering variable's own travel range (bound flip distance).
        let own_range = self.ub[j] - self.lb[j];
        let mut t_best = own_range; // may be +inf
        let mut blocking: Option<(usize, bool)> = None; // (pos, leaves_at_upper)

        for pos in positions {
            let Some((limit, at_upper)) = self.ratio_limit(pos, dir, phase1) else {
                continue;
            };
            let wv = self.w[pos];
            let better = if bland {
                // Bland: smallest ratio, ties by smallest variable index.
                limit < t_best - 1e-12
                    || (limit <= t_best + 1e-12
                        && blocking.map_or(own_range.is_finite(), |(bp, _)| {
                            self.basis.basic_at(pos) < self.basis.basic_at(bp)
                        })
                        && limit <= t_best)
            } else {
                // Dantzig: smallest ratio, ties by largest pivot magnitude.
                limit < t_best - 1e-12
                    || (limit <= t_best + 1e-12
                        && blocking.is_some_and(|(bp, _)| wv.abs() > self.w[bp].abs()))
            };
            if better {
                t_best = limit;
                blocking = Some((pos, at_upper));
            }
        }

        match blocking {
            None => {
                if t_best.is_finite() {
                    Ratio::BoundFlip { t: t_best }
                } else {
                    Ratio::Unbounded
                }
            }
            Some((pos, to_upper)) => {
                if self.w[pos].abs() <= self.opts.tol_pivot * 10.0 && t_best > 0.0 {
                    // Pivot too small to trust for a real step.
                    Ratio::Stuck
                } else {
                    Ratio::Pivot {
                        t: t_best.max(0.0),
                        pos,
                        to_upper,
                    }
                }
            }
        }
    }

    /// Harris two-pass test. Pass one finds the largest step `t_rel`
    /// allowed when every blocking bound is relaxed by `tol_feas`; pass two
    /// picks the blocker with the **largest pivot magnitude** among those
    /// whose strict ratio is within `t_rel`. The chosen step is that
    /// blocker's strict ratio, so any other blocker is overrun by at most
    /// the tolerance — massively degenerate vertices (the planner's
    /// assignment models) stop forcing zero-step pivots on whatever tiny
    /// pivot happens to sort first.
    fn ratio_test_harris(&mut self, j: usize, dir: f64, phase1: bool) -> Ratio {
        // Both passes scan only the entering column's FTRAN support when
        // it is tracked (see `ratio_test_classic`).
        let (ratio, saved) = if self.w.is_sparse() {
            let it = self.w.indices().iter().copied();
            self.ratio_test_harris_at(it, j, dir, phase1)
        } else {
            self.ratio_test_harris_at(0..self.m, j, dir, phase1)
        };
        if saved {
            self.pivots.harris_degenerate_saved += 1;
        }
        ratio
    }

    fn ratio_test_harris_at(
        &self,
        positions: impl Iterator<Item = usize> + Clone,
        j: usize,
        dir: f64,
        phase1: bool,
    ) -> (Ratio, bool) {
        let own_range = self.ub[j] - self.lb[j]; // may be +inf
                                                 // The relaxation is a small *fraction* of the feasibility
                                                 // tolerance: the admitted per-variable violation gets multiplied
                                                 // by λ1-scale objective coefficients in the planner's models, and
                                                 // downstream branch & bound prunes on bound-vs-incumbent ties —
                                                 // relaxing by the full tolerance would turn tie-pruning noise into
                                                 // hundreds of extra nodes. Exact degenerate ties (the dominant
                                                 // case on integer data) are already captured at any positive
                                                 // relaxation.
        let tol = self.opts.tol_feas * HARRIS_RELAX_FRAC;

        // Pass 1: relaxed maximum step.
        let mut t_rel = f64::INFINITY;
        for pos in positions.clone() {
            if let Some((limit, _)) = self.ratio_limit(pos, dir, phase1) {
                let relaxed = limit + tol / (dir * self.w[pos]).abs();
                t_rel = t_rel.min(relaxed);
            }
        }
        if own_range <= t_rel {
            // The entering variable's opposite bound is the cheapest
            // blocker: a bound flip, no basis change.
            return if own_range.is_finite() {
                (Ratio::BoundFlip { t: own_range }, false)
            } else {
                (Ratio::Unbounded, false)
            };
        }

        // Pass 2: largest pivot among blockers within the relaxed step.
        let mut best: Option<(usize, f64, bool)> = None; // (pos, strict, at_upper)
        let mut t_min_strict = f64::INFINITY;
        for pos in positions {
            if let Some((limit, at_upper)) = self.ratio_limit(pos, dir, phase1) {
                t_min_strict = t_min_strict.min(limit);
                if limit <= t_rel
                    && best.is_none_or(|(bp, _, _)| self.w[pos].abs() > self.w[bp].abs())
                {
                    best = Some((pos, limit, at_upper));
                }
            }
        }
        let Some((pos, strict, to_upper)) = best else {
            // t_rel < own_range implies at least one finite limit exists.
            return (Ratio::Stuck, false);
        };
        if self.w[pos].abs() <= self.opts.tol_pivot * 10.0 && strict > 0.0 {
            return (Ratio::Stuck, false);
        }
        let t = strict.max(0.0);
        let saved = t > 1e-12 && t_min_strict <= 1e-12;
        (Ratio::Pivot { t, pos, to_upper }, saved)
    }

    fn run(mut self, ws: &mut LpWorkspace) -> LpSolution {
        let max_iters = if self.opts.max_iters == 0 {
            40 * (self.n + self.m) + 2000
        } else {
            self.opts.max_iters
        };

        // Warm-start entry choice: a hinted basis that is primal infeasible
        // but still dual feasible (the bound-change re-solve signature of
        // B&B children and the planner's reduction re-fixing) is walked
        // back to feasibility by the dual simplex — no phase-I needed. On
        // stall or numerical trouble the dual loop bails out and the
        // composite phase-I below takes over unchanged.
        if self.hinted {
            if let Some(early) = self.try_dual_entry(max_iters) {
                return self.finish(early, ws);
            }
        }

        let mut stall = 0usize;
        let mut bland = false;
        let mut last_infeas = f64::INFINITY;
        let mut last_obj = f64::INFINITY;

        let status = loop {
            if self.iterations >= max_iters {
                break LpStatus::IterationLimit;
            }
            self.iterations += 1;

            let (infeas, worst_viol) = self.infeasibility_extents();
            let phase1 = worst_viol > self.opts.tol_feas;
            if phase1 {
                self.pivots.phase1 += 1;
            } else {
                self.pivots.primal += 1;
            }

            // Stall detection for anti-cycling.
            let progress = if phase1 {
                infeas < last_infeas - 1e-10
            } else {
                let obj = self.objective_now();
                let p = obj < last_obj - 1e-10;
                last_obj = obj;
                p
            };
            if phase1 {
                last_infeas = infeas;
            }
            if progress {
                stall = 0;
                bland = false;
                self.banned.iter_mut().for_each(|b| *b = false);
            } else {
                stall += 1;
                if stall > self.opts.stall_limit {
                    bland = true;
                }
            }

            // Phase-1 duals depend on the basic point (violation signs), so
            // only phase-2 duals survive a bound flip.
            if !self.duals_valid || phase1 {
                self.compute_duals(phase1);
            }
            self.duals_valid = !phase1;
            let (j, dir) = match self.price(phase1, bland) {
                Pricing::Optimal => {
                    if phase1 {
                        break LpStatus::Infeasible;
                    }
                    if self.perturbed {
                        // Optimal for the perturbed costs: strip the
                        // perturbation and keep iterating on the true
                        // objective (usually a handful of pivots).
                        self.perturbed = false;
                        self.work_obj.copy_from_slice(self.p.objective());
                        last_obj = f64::INFINITY;
                        self.duals_valid = false;
                        continue;
                    }
                    break LpStatus::Optimal;
                }
                Pricing::Enter { j, dir } => (j, dir),
            };

            // FTRAN the entering column (hyper-sparse: the column's few
            // entries seed the solve, only their reach is visited). The
            // pattern is sorted so the ratio tests' tie-breaking scans it
            // in the same ascending order a dense sweep would use.
            self.w.clear();
            self.basis.scatter_column_sp(j, &mut self.w);
            let mut ewma_w = self.ewma_w;
            self.basis.ftran_sp(&mut self.w, &mut ewma_w);
            self.ewma_w = ewma_w;
            self.w.sort_pattern();

            match self.ratio_test(j, dir, phase1, bland) {
                Ratio::Unbounded => {
                    if phase1 {
                        // Cannot happen for a consistent model: infeasibility
                        // is bounded below. Treat as numerical trouble.
                        self.banned[j] = true;
                        continue;
                    }
                    break LpStatus::Unbounded;
                }
                Ratio::Stuck => {
                    self.banned[j] = true;
                    continue;
                }
                Ratio::BoundFlip { t } => {
                    self.pivots.bound_flips += 1;
                    self.apply_step(j, dir, t);
                    self.status[j] = match self.status[j] {
                        VarStatus::AtLower => VarStatus::AtUpper,
                        VarStatus::AtUpper => VarStatus::AtLower,
                        s => s,
                    };
                    // Snap exactly onto the bound.
                    self.x[j] = if dir > 0.0 { self.ub[j] } else { self.lb[j] };
                }
                Ratio::Pivot { t, pos, to_upper } => {
                    self.apply_step(j, dir, t);
                    let leaving = self.basis.basic_at(pos);
                    self.x[leaving] = if to_upper {
                        self.ub[leaving]
                    } else {
                        self.lb[leaving]
                    };
                    self.status[leaving] = if to_upper {
                        VarStatus::AtUpper
                    } else {
                        VarStatus::AtLower
                    };
                    self.update_devex_primal(j, pos);
                    self.basis.replace(pos, j, &self.w);
                    self.status[j] = VarStatus::Basic;
                    self.duals_valid = false;
                    self.pivots_since_refactor += 1;

                    if self.pivots_since_refactor >= self.refactor_every
                        || self.basis.should_refactorize()
                    {
                        self.refactorize_and_repair();
                        self.pivots_since_refactor = 0;
                    }
                }
            }
        };

        self.finish(status, ws)
    }

    /// Devex reference-weight update for a primal pivot (entering `j` at
    /// basis position `pos`; `self.w` holds the entering column's FTRAN
    /// image). This is the **full pivot-row** Forrest–Goldfarb update: one
    /// BTRAN of the leaving row per pivot, scattered over the row-major
    /// mirror the dual loop already maintains, so *every* nonbasic column
    /// in the pivot row gets its reference weight refreshed — not just a
    /// candidate short-list. That accuracy is what lets devex engage from
    /// cold starts (the partial update it replaces mispriced ~15% extra
    /// iterations there and had to be gated to warm re-solves).
    fn update_devex_primal(&mut self, j: usize, pos: usize) {
        if self.opts.pricing == PricingRule::Dantzig {
            return; // weights stay at 1: exact Dantzig scores
        }
        // Amortisation heuristic: reference weights only start informing
        // pricing after enough pivot-row updates accumulate. Cold solves
        // run hundreds of iterations and gain ~20% from the framework;
        // hinted warm re-solves average a dozen iterations — the framework
        // never pays for itself before the solve ends, so they keep unit
        // weights, making the devex score exactly the Dantzig score.
        if self.hinted {
            return;
        }
        let alpha_q = self.w[pos];
        if alpha_q == 0.0 {
            return;
        }
        let leaving = self.basis.basic_at(pos);
        let wq = self.devex[j];
        let inv = 1.0 / (alpha_q * alpha_q);
        // rho = row `pos` of B^-1 (before the pivot is applied) — a unit
        // seed, the hyper-sparse BTRAN's best case.
        self.rho.clear();
        self.rho.set(pos, 1.0);
        let mut ewma_rho = self.ewma_rho;
        self.basis.btran_sp(&mut self.rho, &mut ewma_rho);
        self.ewma_rho = ewma_rho;
        let mirror = self.p.row_major();
        mirror.scatter_pivot_row(
            &self.rho,
            self.n,
            1e-12,
            &mut self.alpha,
            &mut self.alpha_touched,
        );
        for k in 0..self.alpha_touched.len() {
            let c = self.alpha_touched[k];
            if c == j || self.status[c] == VarStatus::Basic {
                continue;
            }
            let alpha_c = self.alpha[c];
            let cand = alpha_c * alpha_c * inv * wq;
            if cand > self.devex[c] {
                self.devex[c] = cand;
            }
        }
        self.devex[leaving] = (wq * inv).max(1.0);
        // Reference-framework reset: once weights grow past the threshold
        // the updates are dominated by staleness and the scores stop
        // approximating steepest-edge; restart the framework.
        if self.devex[leaving] > DEVEX_RESET {
            self.devex.iter_mut().for_each(|w| *w = 1.0);
        }
    }

    /// Moves the entering variable by `t` along `dir`, updating basics
    /// (only `w`'s support moves).
    fn apply_step(&mut self, j: usize, dir: f64, t: f64) {
        if t > 0.0 {
            self.x[j] += dir * t;
            let Solver { w, x, basis, .. } = self;
            w.for_each_nonzero(|pos, wv| {
                let bj = basis.basic_at(pos);
                x[bj] -= dir * t * wv;
            });
        }
    }

    pub(crate) fn refactorize_and_repair(&mut self) {
        // The repair may kick variables out for slacks; we cannot know
        // which from the return value alone, so statuses are reconciled
        // from the basis content itself.
        let _ = self.basis.refactorize();
        self.reconcile_statuses();
        self.recompute_basics();
        self.duals_valid = false;
    }

    pub(crate) fn finish(mut self, status: LpStatus, ws: &mut LpWorkspace) -> LpSolution {
        // Final duals under the true objective.
        self.compute_duals(false);
        let x: Vec<f64> = self.x[..self.n].to_vec();
        let row_activity: Vec<f64> = (0..self.m).map(|i| self.x[self.n + i]).collect();
        let objective = self.p.objective_value(&x);
        let basis = self.capture_basis();
        // Fold the basis's solve-path counters into the pivot report.
        let bstats = self.basis.stats();
        self.pivots.sparse_solves += bstats.sparse_solves;
        self.pivots.dense_solves += bstats.dense_solves;
        self.pivots.solve_nnz += bstats.solve_nnz;
        self.pivots.solve_dim += bstats.solve_dim;
        self.pivots.ft_updates += bstats.ft_updates;
        self.pivots.pfi_updates += bstats.pfi_updates;
        self.pivots.refactorizations += self.basis.refactor_count();
        let solution = LpSolution {
            status,
            objective,
            x,
            duals: self.y.as_slice().to_vec(),
            row_activity,
            iterations: self.iterations,
            pivots: self.pivots,
            basis: Some(basis),
        };
        // Hand the scratch buffers back for the next solve.
        ws.lb = self.lb;
        ws.ub = self.ub;
        ws.status = self.status;
        ws.x = self.x;
        ws.work_obj = self.work_obj;
        ws.y = self.y;
        ws.w = self.w;
        ws.rho = self.rho;
        ws.rhs = self.rhs;
        ws.banned = self.banned;
        ws.devex = self.devex;
        ws.alpha = self.alpha;
        ws.alpha_touched = self.alpha_touched;
        ws.candidates = self.candidates;
        ws.dual_d = self.dual_d;
        ws.dual_tau = self.dual_tau;
        ws.dual_flip_rhs = self.dual_flip_rhs;
        ws.dual_cands = self.dual_cands;
        ws.dual_viol = self.dual_viol;
        ws.dual_in_viol = self.dual_in_viol;
        if ws.factor_token != 0 {
            ws.factor_cache = Some(self.basis.into_state(ws.factor_token));
        }
        solution
    }
}

/// Resolves the partial-pricing window for a system of `total` columns.
fn effective_window(requested: usize, total: usize) -> usize {
    match requested {
        0 => {
            if total <= 600 {
                total
            } else {
                (total / 8).max(256)
            }
        }
        w => w.min(total),
    }
}

/// Maximum length of the pricing candidate short-list.
const MAX_CANDIDATES: usize = 64;

/// Devex weight magnitude at which the reference framework restarts.
const DEVEX_RESET: f64 = 1e4;

/// Fraction of `tol_feas` used as the Harris pass-one relaxation (see
/// [`Solver::ratio_test_harris`] for why it is deliberately much smaller
/// than the feasibility tolerance itself).
const HARRIS_RELAX_FRAC: f64 = 0.01;

/// Adapts a basis hint (possibly captured from a differently-sized
/// problem) to the current `m x n` dimensions, writing nonbasic statuses
/// and values into `status`/`x` and returning the repaired basic set.
/// See [`BasisState`] for the contract.
fn adapt_hint(
    h: &BasisState,
    n: usize,
    m: usize,
    lb: &[f64],
    ub: &[f64],
    status: &mut [VarStatus],
    x: &mut [f64],
) -> Vec<usize> {
    // Map a capture-time global index to a current one.
    let remap = |g: usize| -> Option<usize> {
        if g < h.ncols {
            (g < n).then_some(g)
        } else {
            let i = g - h.ncols;
            (i < m).then(|| n + i)
        }
    };

    // Statuses for surviving variables. A nonbasic status referring to an
    // infinite bound (bounds may have changed between solves) is
    // re-derived from the current bounds.
    let mut apply = |j: usize, s: VarBasisStatus| {
        let (st, v) = match s {
            VarBasisStatus::Basic => (VarStatus::Basic, 0.0),
            VarBasisStatus::AtLower if lb[j].is_finite() => (VarStatus::AtLower, lb[j]),
            VarBasisStatus::AtUpper if ub[j].is_finite() => (VarStatus::AtUpper, ub[j]),
            VarBasisStatus::Free if !lb[j].is_finite() && !ub[j].is_finite() => {
                (VarStatus::FreeNb, 0.0)
            }
            _ => initial_nonbasic(lb[j], ub[j]),
        };
        status[j] = st;
        x[j] = v;
    };
    for (g, &s) in h.status.iter().enumerate() {
        if let Some(j) = remap(g) {
            apply(j, s);
        }
    }

    // Basic set: surviving entries keep their order; slacks of appended
    // rows join; dropped columns leave holes filled by unused slacks
    // (slack substitution).
    let mut in_basis = vec![false; n + m];
    let mut basic = Vec::with_capacity(m);
    for &g in &h.basic {
        if basic.len() == m {
            break;
        }
        if let Some(j) = remap(g) {
            if !in_basis[j] {
                in_basis[j] = true;
                basic.push(j);
            }
        }
    }
    for i in h.nrows..m {
        if basic.len() == m {
            break;
        }
        if !in_basis[n + i] {
            in_basis[n + i] = true;
            basic.push(n + i);
        }
    }
    let mut next_slack = 0usize;
    while basic.len() < m {
        while in_basis[n + next_slack] {
            next_slack += 1;
        }
        in_basis[n + next_slack] = true;
        basic.push(n + next_slack);
    }

    // The basis owns these variables regardless of what the status map
    // said; anything claiming Basic without a seat is reseated after
    // factorisation by `reconcile_statuses`.
    for &j in &basic {
        status[j] = VarStatus::Basic;
    }
    basic
}

fn initial_nonbasic(lb: f64, ub: f64) -> (VarStatus, f64) {
    match (lb.is_finite(), ub.is_finite()) {
        (true, true) => {
            if lb.abs() <= ub.abs() {
                (VarStatus::AtLower, lb)
            } else {
                (VarStatus::AtUpper, ub)
            }
        }
        (true, false) => (VarStatus::AtLower, lb),
        (false, true) => (VarStatus::AtUpper, ub),
        (false, false) => (VarStatus::FreeNb, 0.0),
    }
}

fn nearest_bound(x: f64, lb: f64, ub: f64) -> (VarStatus, f64) {
    match (lb.is_finite(), ub.is_finite()) {
        (true, true) => {
            if (x - lb).abs() <= (ub - x).abs() {
                (VarStatus::AtLower, lb)
            } else {
                (VarStatus::AtUpper, ub)
            }
        }
        (true, false) => (VarStatus::AtLower, lb),
        (false, true) => (VarStatus::AtUpper, ub),
        (false, false) => (VarStatus::FreeNb, 0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ProblemBuilder, INF};

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn pivot_counts_merge_accumulates_every_field() {
        let a = PivotCounts {
            phase1: 1,
            primal: 2,
            dual: 3,
            bound_flips: 4,
            harris_degenerate_saved: 5,
            sparse_solves: 6,
            dense_solves: 7,
            solve_nnz: 8,
            solve_dim: 9,
            ft_updates: 10,
            pfi_updates: 11,
            refactorizations: 12,
            factor_reattaches: 13,
            distress_refactors: 14,
            distress_escalations: 15,
            distress_cold_restarts: 16,
        };
        let b = PivotCounts {
            phase1: 100,
            primal: 200,
            dual: 300,
            bound_flips: 400,
            harris_degenerate_saved: 500,
            sparse_solves: 600,
            dense_solves: 700,
            solve_nnz: 800,
            solve_dim: 900,
            ft_updates: 1000,
            pfi_updates: 1100,
            refactorizations: 1200,
            factor_reattaches: 1300,
            distress_refactors: 1400,
            distress_escalations: 1500,
            distress_cold_restarts: 1600,
        };
        // Commutative: worker counters may be merged in any order.
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        let expect = PivotCounts {
            phase1: 101,
            primal: 202,
            dual: 303,
            bound_flips: 404,
            harris_degenerate_saved: 505,
            sparse_solves: 606,
            dense_solves: 707,
            solve_nnz: 808,
            solve_dim: 909,
            ft_updates: 1010,
            pfi_updates: 1111,
            refactorizations: 1212,
            factor_reattaches: 1313,
            distress_refactors: 1414,
            distress_escalations: 1515,
            distress_cold_restarts: 1616,
        };
        assert_eq!(ab, expect);
        assert_eq!(ab.total(), 101 + 202 + 303);
    }

    #[test]
    fn workspace_factor_state_take_and_install() {
        let mut ws = LpWorkspace::new();
        ws.begin_factor_generation(7);
        assert!(ws.take_factor_state().is_none());
        // Run a solve so the workspace detaches a factor state.
        let mut b = ProblemBuilder::new();
        let x = b.add_col(-1.0, 0.0, 5.0);
        let y = b.add_col(-1.0, 0.0, 5.0);
        let r = b.add_row(-INF, 6.0);
        b.set_coeff(r, x, 1.0);
        b.set_coeff(r, y, 1.0);
        let p = b.build();
        let (lb, ub) = p.col_bounds();
        let _ = solve_with_bounds_from_ws(&p, lb, ub, None, &SimplexOptions::default(), &mut ws);
        let state = ws
            .take_factor_state()
            .expect("solve under a nonzero token detaches factors");
        assert_eq!(state.token(), 7);
        // Second take: the state is gone.
        assert!(ws.take_factor_state().is_none());
        // A mismatched token discards rather than installs.
        ws.install_factor_state(8, Some(state.clone()));
        assert!(ws.take_factor_state().is_none());
        assert_eq!(ws.factor_generation(), 8);
        // A matching token installs.
        ws.install_factor_state(7, Some(state));
        assert!(ws.take_factor_state().is_some());
    }

    #[test]
    fn distress_ladder_recovers_from_iteration_limit() {
        // Dantzig's example needs a handful of pivots; max_iters = 1 forces
        // an IterationLimit exit, and the ladder's warm retries (1 iteration
        // each) plus the 4x cold restart are enough to reach the optimum.
        let mut b = ProblemBuilder::new();
        let x = b.add_col(-3.0, 0.0, INF);
        let y = b.add_col(-5.0, 0.0, INF);
        let r0 = b.add_row(-INF, 4.0);
        b.set_coeff(r0, x, 1.0);
        let r1 = b.add_row(-INF, 12.0);
        b.set_coeff(r1, y, 2.0);
        let r2 = b.add_row(-INF, 18.0);
        b.set_coeff(r2, x, 3.0);
        b.set_coeff(r2, y, 2.0);
        let p = b.build();
        let (lb, ub) = p.col_bounds();
        let opts = SimplexOptions {
            max_iters: 1,
            ..SimplexOptions::default()
        };

        let mut ws = LpWorkspace::new();
        let limited = solve_with_bounds_from_ws(&p, lb, ub, None, &opts, &mut ws);
        assert_eq!(limited.status, LpStatus::IterationLimit, "precondition");

        let mut ws = LpWorkspace::new();
        let s = solve_with_bounds_recovering_ws(&p, lb, ub, None, &opts, &mut ws);
        assert_eq!(s.status, LpStatus::Optimal);
        approx(s.objective, -36.0);
        approx(s.x[0], 2.0);
        approx(s.x[1], 6.0);
        assert!(s.pivots.distress_refactors >= 1, "ladder engaged");
        assert_eq!(s.pivots.total(), s.iterations, "counters aggregated");

        // Determinism: a second run from a fresh workspace is bit-identical.
        let mut ws2 = LpWorkspace::new();
        let s2 = solve_with_bounds_recovering_ws(&p, lb, ub, None, &opts, &mut ws2);
        assert_eq!(s2.status, s.status);
        assert_eq!(s2.objective.to_bits(), s.objective.to_bits());
        assert_eq!(s2.iterations, s.iterations);
        assert_eq!(s2.pivots, s.pivots);
    }

    #[test]
    fn distress_ladder_exhausts_and_reports_every_rung() {
        // A longer pivot chain: even the cold restart's 4x budget (4
        // iterations at max_iters = 1) cannot finish, so the ladder runs
        // every rung and surfaces IterationLimit with the counters set.
        let mut b = ProblemBuilder::new();
        let n = 12;
        let cols: Vec<_> = (0..n).map(|_| b.add_col(-1.0, 0.0, INF)).collect();
        for (i, &c) in cols.iter().enumerate() {
            let r = b.add_row(-INF, 1.0 + i as f64);
            b.set_coeff(r, c, 1.0);
        }
        let p = b.build();
        let (lb, ub) = p.col_bounds();
        let opts = SimplexOptions {
            max_iters: 1,
            ..SimplexOptions::default()
        };
        let mut ws = LpWorkspace::new();
        let s = solve_with_bounds_recovering_ws(&p, lb, ub, None, &opts, &mut ws);
        assert_eq!(s.status, LpStatus::IterationLimit);
        assert_eq!(s.pivots.distress_refactors, 1);
        assert_eq!(s.pivots.distress_escalations, 1);
        assert_eq!(s.pivots.distress_cold_restarts, 1);
        assert_eq!(s.pivots.total(), s.iterations);
    }

    #[test]
    fn trivially_bounded_no_rows() {
        // min -x  s.t. 0 <= x <= 5  => x = 5.
        let mut b = ProblemBuilder::new();
        b.add_col(-1.0, 0.0, 5.0);
        let p = b.build();
        let s = solve(&p, &SimplexOptions::default());
        assert_eq!(s.status, LpStatus::Optimal);
        approx(s.objective, -5.0);
        approx(s.x[0], 5.0);
    }

    #[test]
    fn classic_two_var_lp() {
        // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0
        // (Dantzig's example) => x=2, y=6, obj = 36.
        let mut b = ProblemBuilder::new();
        let x = b.add_col(-3.0, 0.0, INF);
        let y = b.add_col(-5.0, 0.0, INF);
        let r0 = b.add_row(-INF, 4.0);
        b.set_coeff(r0, x, 1.0);
        let r1 = b.add_row(-INF, 12.0);
        b.set_coeff(r1, y, 2.0);
        let r2 = b.add_row(-INF, 18.0);
        b.set_coeff(r2, x, 3.0);
        b.set_coeff(r2, y, 2.0);
        let p = b.build();
        let s = solve(&p, &SimplexOptions::default());
        assert_eq!(s.status, LpStatus::Optimal);
        approx(s.objective, -36.0);
        approx(s.x[0], 2.0);
        approx(s.x[1], 6.0);
    }

    #[test]
    fn equality_rows_need_phase1() {
        // min x + y  s.t. x + y = 10, x - y = 2, x,y >= 0 => x=6, y=4.
        let mut b = ProblemBuilder::new();
        let x = b.add_col(1.0, 0.0, INF);
        let y = b.add_col(1.0, 0.0, INF);
        let r0 = b.add_row(10.0, 10.0);
        b.set_coeff(r0, x, 1.0);
        b.set_coeff(r0, y, 1.0);
        let r1 = b.add_row(2.0, 2.0);
        b.set_coeff(r1, x, 1.0);
        b.set_coeff(r1, y, -1.0);
        let p = b.build();
        let s = solve(&p, &SimplexOptions::default());
        assert_eq!(s.status, LpStatus::Optimal);
        approx(s.x[0], 6.0);
        approx(s.x[1], 4.0);
        approx(s.objective, 10.0);
    }

    #[test]
    fn detects_infeasibility() {
        // x >= 5 and x <= 3 via rows.
        let mut b = ProblemBuilder::new();
        let x = b.add_col(0.0, 0.0, INF);
        let r0 = b.add_row(5.0, INF);
        b.set_coeff(r0, x, 1.0);
        let r1 = b.add_row(-INF, 3.0);
        b.set_coeff(r1, x, 1.0);
        let p = b.build();
        let s = solve(&p, &SimplexOptions::default());
        assert_eq!(s.status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        // min -x, x >= 0, no upper limit.
        let mut b = ProblemBuilder::new();
        let x = b.add_col(-1.0, 0.0, INF);
        let r0 = b.add_row(0.0, INF); // x >= 0, redundant
        b.set_coeff(r0, x, 1.0);
        let p = b.build();
        let s = solve(&p, &SimplexOptions::default());
        assert_eq!(s.status, LpStatus::Unbounded);
    }

    #[test]
    fn handles_upper_bounded_structurals() {
        // min -x - 2y s.t. x + y <= 3, 0 <= x <= 2, 0 <= y <= 2 => (1, 2).
        let mut b = ProblemBuilder::new();
        let x = b.add_col(-1.0, 0.0, 2.0);
        let y = b.add_col(-2.0, 0.0, 2.0);
        let r = b.add_row(-INF, 3.0);
        b.set_coeff(r, x, 1.0);
        b.set_coeff(r, y, 1.0);
        let p = b.build();
        let s = solve(&p, &SimplexOptions::default());
        assert_eq!(s.status, LpStatus::Optimal);
        approx(s.objective, -5.0);
        approx(s.x[0], 1.0);
        approx(s.x[1], 2.0);
    }

    #[test]
    fn negative_lower_bounds_and_free_vars() {
        // min x + y with y free, x in [-5, 5], x + y >= -2, y <= 4.
        // Any point with x + y = -2 is optimal; check objective/feasibility.
        let mut b = ProblemBuilder::new();
        let x = b.add_col(1.0, -5.0, 5.0);
        let y = b.add_col(1.0, -INF, INF);
        let r0 = b.add_row(-2.0, INF);
        b.set_coeff(r0, x, 1.0);
        b.set_coeff(r0, y, 1.0);
        let r1 = b.add_row(-INF, 4.0);
        b.set_coeff(r1, y, 1.0);
        let p = b.build();
        let s = solve(&p, &SimplexOptions::default());
        assert_eq!(s.status, LpStatus::Optimal);
        approx(s.objective, -2.0);
        assert!(p.is_feasible(&s.x, 1e-7));
    }

    #[test]
    fn ranged_row() {
        // min x s.t. 2 <= x + y <= 4, y <= 1, x,y >= 0 => x = 1, y = 1.
        let mut b = ProblemBuilder::new();
        let x = b.add_col(1.0, 0.0, INF);
        let y = b.add_col(0.0, 0.0, 1.0);
        let r = b.add_row(2.0, 4.0);
        b.set_coeff(r, x, 1.0);
        b.set_coeff(r, y, 1.0);
        let p = b.build();
        let s = solve(&p, &SimplexOptions::default());
        assert_eq!(s.status, LpStatus::Optimal);
        approx(s.objective, 1.0);
    }

    #[test]
    fn fixed_variables_via_bounds() {
        // Branch-and-bound style: fix x = 1 by bounds.
        let mut b = ProblemBuilder::new();
        let x = b.add_col(-1.0, 0.0, 1.0);
        let y = b.add_col(-1.0, 0.0, 1.0);
        let r = b.add_row(-INF, 1.5);
        b.set_coeff(r, x, 1.0);
        b.set_coeff(r, y, 1.0);
        let p = b.build();
        let s = solve_with_bounds(&p, &[1.0, 0.0], &[1.0, 1.0], &SimplexOptions::default());
        assert_eq!(s.status, LpStatus::Optimal);
        approx(s.x[0], 1.0);
        approx(s.x[1], 0.5);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple redundant constraints through the same vertex.
        let mut b = ProblemBuilder::new();
        let x = b.add_col(-1.0, 0.0, INF);
        let y = b.add_col(-1.0, 0.0, INF);
        for _ in 0..6 {
            let r = b.add_row(-INF, 2.0);
            b.set_coeff(r, x, 1.0);
            b.set_coeff(r, y, 1.0);
        }
        let r = b.add_row(-INF, 2.0);
        b.set_coeff(r, x, 2.0);
        b.set_coeff(r, y, 2.0); // same face scaled
        let p = b.build();
        let s = solve(&p, &SimplexOptions::default());
        // 2x + 2y <= 2 dominates: x + y <= 1 -> obj -1.
        assert_eq!(s.status, LpStatus::Optimal);
        approx(s.objective, -1.0);
    }

    #[test]
    fn duals_satisfy_complementary_slackness_basics() {
        // min -x - y s.t. x + 2y <= 4, 3x + y <= 6 => vertex x=1.6, y=1.2.
        let mut b = ProblemBuilder::new();
        let x = b.add_col(-1.0, 0.0, INF);
        let y = b.add_col(-1.0, 0.0, INF);
        let r0 = b.add_row(-INF, 4.0);
        b.set_coeff(r0, x, 1.0);
        b.set_coeff(r0, y, 2.0);
        let r1 = b.add_row(-INF, 6.0);
        b.set_coeff(r1, x, 3.0);
        b.set_coeff(r1, y, 1.0);
        let p = b.build();
        let s = solve(&p, &SimplexOptions::default());
        assert_eq!(s.status, LpStatus::Optimal);
        approx(s.x[0], 1.6);
        approx(s.x[1], 1.2);
        // Both rows tight; duals should reconstruct the objective:
        // y' A = c for basic structurals.
        let d = &s.duals;
        approx(d[0] + 3.0 * d[1], -1.0);
        approx(2.0 * d[0] + d[1], -1.0);
    }
}

#[cfg(test)]
mod warm_start_tests {
    use super::*;
    use crate::problem::{ProblemBuilder, INF};

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    /// Dantzig's example: max 3x + 5y, optimum (2, 6), objective -36.
    fn dantzig() -> crate::problem::Problem {
        let mut b = ProblemBuilder::new();
        let x = b.add_col(-3.0, 0.0, INF);
        let y = b.add_col(-5.0, 0.0, INF);
        let r0 = b.add_row(-INF, 4.0);
        b.set_coeff(r0, x, 1.0);
        let r1 = b.add_row(-INF, 12.0);
        b.set_coeff(r1, y, 2.0);
        let r2 = b.add_row(-INF, 18.0);
        b.set_coeff(r2, x, 3.0);
        b.set_coeff(r2, y, 2.0);
        b.build()
    }

    #[test]
    fn resolve_from_own_basis_takes_one_iteration() {
        let p = dantzig();
        let opts = SimplexOptions::default();
        let cold = solve(&p, &opts);
        assert_eq!(cold.status, LpStatus::Optimal);
        let warm = solve_from(&p, cold.basis.as_ref(), &opts);
        assert_eq!(warm.status, LpStatus::Optimal);
        approx(warm.objective, cold.objective);
        // The hinted basis is already optimal: one pricing pass suffices.
        assert!(
            warm.iterations <= 1,
            "warm solve took {} iterations",
            warm.iterations
        );
    }

    #[test]
    fn warm_start_survives_added_column() {
        let p = dantzig();
        let opts = SimplexOptions::default();
        let cold = solve(&p, &opts);

        // Same rows, one extra (attractive) column: z with obj -4.
        let mut b = ProblemBuilder::new();
        let x = b.add_col(-3.0, 0.0, INF);
        let y = b.add_col(-5.0, 0.0, INF);
        let z = b.add_col(-4.0, 0.0, 1.0);
        let r0 = b.add_row(-INF, 4.0);
        b.set_coeff(r0, x, 1.0);
        let r1 = b.add_row(-INF, 12.0);
        b.set_coeff(r1, y, 2.0);
        let r2 = b.add_row(-INF, 18.0);
        b.set_coeff(r2, x, 3.0);
        b.set_coeff(r2, y, 2.0);
        b.set_coeff(r2, z, 1.0);
        let p2 = b.build();

        let cold2 = solve(&p2, &opts);
        let warm2 = solve_from(&p2, cold.basis.as_ref(), &opts);
        assert_eq!(warm2.status, LpStatus::Optimal);
        approx(warm2.objective, cold2.objective);
        assert!(p2.is_feasible(&warm2.x, 1e-7));
        assert!(
            warm2.iterations <= cold2.iterations,
            "warm {} > cold {}",
            warm2.iterations,
            cold2.iterations
        );
    }

    #[test]
    fn warm_start_survives_dropped_column() {
        // Solve the 3-column problem, then warm-start the 2-column one
        // with the stale basis: dropped columns are patched out via slack
        // substitution.
        let mut b = ProblemBuilder::new();
        let x = b.add_col(-3.0, 0.0, INF);
        let y = b.add_col(-5.0, 0.0, INF);
        let z = b.add_col(-4.0, 0.0, 1.0);
        let r0 = b.add_row(-INF, 4.0);
        b.set_coeff(r0, x, 1.0);
        let r1 = b.add_row(-INF, 12.0);
        b.set_coeff(r1, y, 2.0);
        let r2 = b.add_row(-INF, 18.0);
        b.set_coeff(r2, x, 3.0);
        b.set_coeff(r2, y, 2.0);
        b.set_coeff(r2, z, 1.0);
        let p3 = b.build();
        let opts = SimplexOptions::default();
        let sol3 = solve(&p3, &opts);
        assert_eq!(sol3.status, LpStatus::Optimal);
        // z is basic at the optimum of p3 (it is attractive and feasible),
        // so dropping it genuinely exercises the repair path.
        let p2 = dantzig();
        let warm = solve_from(&p2, sol3.basis.as_ref(), &opts);
        assert_eq!(warm.status, LpStatus::Optimal);
        approx(warm.objective, -36.0);
        assert!(p2.is_feasible(&warm.x, 1e-7));
    }

    #[test]
    fn warm_start_survives_added_row() {
        let p = dantzig();
        let opts = SimplexOptions::default();
        let cold = solve(&p, &opts);

        // Add a binding row x + y <= 7 (cuts off (2, 6)).
        let mut b = ProblemBuilder::new();
        let x = b.add_col(-3.0, 0.0, INF);
        let y = b.add_col(-5.0, 0.0, INF);
        let r0 = b.add_row(-INF, 4.0);
        b.set_coeff(r0, x, 1.0);
        let r1 = b.add_row(-INF, 12.0);
        b.set_coeff(r1, y, 2.0);
        let r2 = b.add_row(-INF, 18.0);
        b.set_coeff(r2, x, 3.0);
        b.set_coeff(r2, y, 2.0);
        let r3 = b.add_row(-INF, 7.0);
        b.set_coeff(r3, x, 1.0);
        b.set_coeff(r3, y, 1.0);
        let p2 = b.build();

        let cold2 = solve(&p2, &opts);
        let warm2 = solve_from(&p2, cold.basis.as_ref(), &opts);
        assert_eq!(warm2.status, LpStatus::Optimal);
        approx(warm2.objective, cold2.objective);
        assert!(p2.is_feasible(&warm2.x, 1e-7));
    }

    #[test]
    fn warm_start_with_tightened_bounds_mimics_bnb_child() {
        // Parent LP relaxation, then a child with x fixed — the B&B reuse
        // pattern: same matrix, different bounds, parent basis.
        let mut b = ProblemBuilder::new();
        let x = b.add_col(-1.0, 0.0, 1.0);
        let y = b.add_col(-1.0, 0.0, 1.0);
        let r = b.add_row(-INF, 1.5);
        b.set_coeff(r, x, 1.0);
        b.set_coeff(r, y, 1.0);
        let p = b.build();
        let opts = SimplexOptions::default();
        let parent = solve(&p, &opts);
        assert_eq!(parent.status, LpStatus::Optimal);
        let child =
            solve_with_bounds_from(&p, &[1.0, 0.0], &[1.0, 1.0], parent.basis.as_ref(), &opts);
        assert_eq!(child.status, LpStatus::Optimal);
        approx(child.x[0], 1.0);
        approx(child.x[1], 0.5);
    }

    #[test]
    fn garbage_hint_still_reaches_the_optimum() {
        // A wildly wrong hint (every structural claimed basic, absurd
        // capture dims) must be repaired, not trusted.
        let p = dantzig();
        let opts = SimplexOptions::default();
        let hint = BasisState {
            ncols: 7,
            nrows: 5,
            basic: vec![0, 0, 1, 6, 9],
            status: vec![VarBasisStatus::Basic; 12],
        };
        let s = solve_from(&p, Some(&hint), &opts);
        assert_eq!(s.status, LpStatus::Optimal);
        approx(s.objective, -36.0);
    }

    #[test]
    fn infeasible_hint_triggers_phase1_not_failure() {
        // min x + y s.t. x + y = 10 — the slack-identity start is
        // infeasible; hint it with a nonsense basis and verify phase-I
        // still runs.
        let mut b = ProblemBuilder::new();
        let x = b.add_col(1.0, 0.0, INF);
        let y = b.add_col(1.0, 0.0, INF);
        let r0 = b.add_row(10.0, 10.0);
        b.set_coeff(r0, x, 1.0);
        b.set_coeff(r0, y, 1.0);
        let p = b.build();
        let opts = SimplexOptions::default();
        let hint = BasisState {
            ncols: 2,
            nrows: 1,
            basic: vec![2],
            status: vec![
                VarBasisStatus::AtLower,
                VarBasisStatus::AtLower,
                VarBasisStatus::Basic,
            ],
        };
        let s = solve_from(&p, Some(&hint), &opts);
        assert_eq!(s.status, LpStatus::Optimal);
        approx(s.objective, 10.0);
    }

    #[test]
    fn partial_pricing_matches_full_pricing() {
        // Force a tiny window on a problem large enough to rotate.
        let mut b = ProblemBuilder::new();
        let n = 40;
        for j in 0..n {
            b.add_col(-((j % 7 + 1) as f64), 0.0, 2.0);
        }
        for i in 0..10 {
            let r = b.add_row(-INF, 5.0 + (i % 3) as f64);
            for j in 0..n {
                if (i + j) % 3 != 0 {
                    b.set_coeff(r, j, ((i * j) % 4 + 1) as f64);
                }
            }
        }
        let p = b.build();
        let full = solve(&p, &SimplexOptions::default());
        let opts = SimplexOptions {
            pricing_window: 4,
            ..SimplexOptions::default()
        };
        let partial = solve(&p, &opts);
        assert_eq!(full.status, LpStatus::Optimal);
        assert_eq!(partial.status, LpStatus::Optimal);
        approx(full.objective, partial.objective);
    }
}

#[cfg(test)]
mod perturbation_tests {
    use super::*;
    use crate::problem::{ProblemBuilder, INF};

    /// Perturbed solves must reach the same optimum as unperturbed ones
    /// (the perturbation is stripped before termination).
    #[test]
    fn perturbation_preserves_optimum() {
        let mut b = ProblemBuilder::new();
        let x = b.add_col(-3.0, 0.0, INF);
        let y = b.add_col(-5.0, 0.0, INF);
        let r0 = b.add_row(-INF, 4.0);
        b.set_coeff(r0, x, 1.0);
        let r1 = b.add_row(-INF, 12.0);
        b.set_coeff(r1, y, 2.0);
        let r2 = b.add_row(-INF, 18.0);
        b.set_coeff(r2, x, 3.0);
        b.set_coeff(r2, y, 2.0);
        let p = b.build();
        let plain = solve(&p, &SimplexOptions::default());
        let opts = SimplexOptions {
            perturb: 1e-6,
            ..SimplexOptions::default()
        };
        let pert = solve(&p, &opts);
        assert_eq!(plain.status, LpStatus::Optimal);
        assert_eq!(pert.status, LpStatus::Optimal);
        assert!(
            (plain.objective - pert.objective).abs() < 1e-6,
            "{} vs {}",
            plain.objective,
            pert.objective
        );
    }

    /// Degenerate problem: perturbation must not change feasibility status.
    #[test]
    fn perturbation_on_degenerate_equalities() {
        let mut b = ProblemBuilder::new();
        let x = b.add_col(1.0, 0.0, 10.0);
        let y = b.add_col(1.0, 0.0, 10.0);
        for _ in 0..4 {
            let r = b.add_row(5.0, 5.0);
            b.set_coeff(r, x, 1.0);
            b.set_coeff(r, y, 1.0);
        }
        let p = b.build();
        let opts = SimplexOptions {
            perturb: 1e-6,
            ..SimplexOptions::default()
        };
        let s = solve(&p, &opts);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 5.0).abs() < 1e-6);
    }
}
