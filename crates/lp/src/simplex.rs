//! Bounded-variable revised primal simplex with a composite phase-I.
//!
//! Internally the problem `row_lb <= A x <= row_ub` is rewritten as
//! `A x - s = 0` with slack bounds `[row_lb, row_ub]`, giving the square
//! system `[A | -I] z = 0` over `n + m` bounded variables. The initial basis
//! is the slack identity; if slack bounds are violated at the start (e.g.
//! equality rows), a phase-I objective that minimises the total bound
//! violation of basic variables drives the point feasible, after which the
//! same loop continues with the true objective.
//!
//! Anti-cycling: Dantzig pricing normally, falling back to Bland's rule
//! after a stall (no objective progress) is detected.

use crate::basis::Basis;
use crate::problem::{LpSolution, LpStatus, Problem};

/// Options controlling a simplex solve.
#[derive(Debug, Clone)]
pub struct SimplexOptions {
    /// Hard cap on simplex iterations; 0 means `40 * (n + m) + 2000`.
    pub max_iters: usize,
    /// Primal feasibility tolerance (absolute, on variable bounds).
    pub tol_feas: f64,
    /// Dual feasibility / reduced-cost tolerance.
    pub tol_dual: f64,
    /// Smallest pivot magnitude accepted by the ratio test.
    pub tol_pivot: f64,
    /// Refactorise at least every this many pivots.
    pub refactor_interval: usize,
    /// Iterations without objective progress before Bland's rule engages.
    pub stall_limit: usize,
    /// Relative magnitude of the anti-degeneracy cost perturbation
    /// (0 disables). The perturbation is removed before termination, so
    /// reported optima are exact for the true objective.
    pub perturb: f64,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            max_iters: 0,
            tol_feas: 1e-7,
            tol_dual: 1e-7,
            tol_pivot: 1e-8,
            refactor_interval: 64,
            stall_limit: 256,
            perturb: 0.0,
        }
    }
}

/// Variable status in the current basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarStatus {
    Basic,
    AtLower,
    AtUpper,
    /// Nonbasic free variable parked at zero.
    FreeNb,
}

/// Solves `problem` with its built-in column bounds.
pub fn solve(problem: &Problem, opts: &SimplexOptions) -> LpSolution {
    let (lb, ub) = problem.col_bounds();
    solve_with_bounds(problem, lb, ub, opts)
}

/// Solves `problem` with the column bounds overridden (the matrix, rows and
/// objective are shared). This is the entry point used by branch & bound.
pub fn solve_with_bounds(
    problem: &Problem,
    col_lb: &[f64],
    col_ub: &[f64],
    opts: &SimplexOptions,
) -> LpSolution {
    Solver::new(problem, col_lb, col_ub, opts).run()
}

struct Solver<'a> {
    p: &'a Problem,
    opts: &'a SimplexOptions,
    /// Working objective (possibly perturbed); trimmed back to the true
    /// costs before final convergence.
    work_obj: Vec<f64>,
    perturbed: bool,
    n: usize,
    m: usize,
    /// Effective bounds over all `n + m` variables (structural then slack).
    lb: Vec<f64>,
    ub: Vec<f64>,
    status: Vec<VarStatus>,
    /// Current value of every variable.
    x: Vec<f64>,
    basis: Basis<'a>,
    /// Workspaces.
    cb: Vec<f64>,
    y: Vec<f64>,
    w: Vec<f64>,
    rhs: Vec<f64>,
    /// Columns excluded from pricing this round (failed pivots).
    banned: Vec<bool>,
    iterations: usize,
}

/// Outcome of one pricing step.
enum Pricing {
    Optimal,
    Enter { j: usize, dir: f64 },
}

/// Outcome of one ratio test.
enum Ratio {
    Unbounded,
    BoundFlip {
        t: f64,
    },
    Pivot {
        t: f64,
        pos: usize,
        to_upper: bool,
    },
    /// All candidate pivots were numerically unusable.
    Stuck,
}

impl<'a> Solver<'a> {
    fn new(p: &'a Problem, col_lb: &[f64], col_ub: &[f64], opts: &'a SimplexOptions) -> Self {
        let n = p.ncols();
        let m = p.nrows();
        assert_eq!(col_lb.len(), n);
        assert_eq!(col_ub.len(), n);
        let (row_lb, row_ub) = p.row_bounds();
        let mut lb = Vec::with_capacity(n + m);
        let mut ub = Vec::with_capacity(n + m);
        lb.extend_from_slice(col_lb);
        ub.extend_from_slice(col_ub);
        lb.extend_from_slice(row_lb);
        ub.extend_from_slice(row_ub);

        // Nonbasic structural variables start at the finite bound closest to
        // zero; free variables park at zero. Slacks form the initial basis.
        let mut status = Vec::with_capacity(n + m);
        let mut x = Vec::with_capacity(n + m);
        for j in 0..n {
            let (s, v) = initial_nonbasic(lb[j], ub[j]);
            status.push(s);
            x.push(v);
        }
        for i in 0..m {
            status.push(VarStatus::Basic);
            x.push(0.0);
            let _ = i;
        }
        let basic: Vec<usize> = (n..n + m).collect();
        let basis = Basis::new(p.matrix(), basic);
        // Deterministic multiplicative cost perturbation: breaks the massive
        // dual degeneracy of big-M models without changing the optimal basis
        // meaningfully; removed before termination.
        let mut work_obj = p.objective().to_vec();
        let mut perturbed = false;
        if opts.perturb > 0.0 {
            let mut seed = 0x9E3779B97F4A7C15u64;
            for (j, c) in work_obj.iter_mut().enumerate() {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                seed = seed.wrapping_add(j as u64);
                let u = (seed >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
                *c += opts.perturb * (0.5 + u) * (1.0 + c.abs());
                perturbed = true;
            }
        }
        let mut s = Solver {
            p,
            opts,
            work_obj,
            perturbed,
            n,
            m,
            lb,
            ub,
            status,
            x,
            basis,
            cb: vec![0.0; m],
            y: vec![0.0; m],
            w: vec![0.0; m],
            rhs: vec![0.0; m],
            banned: vec![false; n + m],
            iterations: 0,
        };
        s.recompute_basics();
        s
    }

    /// Recomputes basic variable values from the nonbasic point:
    /// `B x_B = -N x_N`.
    fn recompute_basics(&mut self) {
        self.rhs.iter_mut().for_each(|v| *v = 0.0);
        for j in 0..self.n + self.m {
            if self.status[j] != VarStatus::Basic && self.x[j] != 0.0 {
                // rhs -= x_j * col_j
                let xv = self.x[j];
                if j < self.n {
                    for (r, v) in self.p.matrix().col_iter(j) {
                        self.rhs[r] -= v * xv;
                    }
                } else {
                    self.rhs[j - self.n] += xv;
                }
            }
        }
        self.basis.ftran(&mut self.rhs);
        for pos in 0..self.m {
            let j = self.basis.basic_at(pos);
            self.x[j] = self.rhs[pos];
        }
    }

    fn total_infeasibility(&self) -> f64 {
        let mut total = 0.0;
        for pos in 0..self.m {
            let j = self.basis.basic_at(pos);
            let v = self.x[j];
            if v < self.lb[j] {
                total += self.lb[j] - v;
            } else if v > self.ub[j] {
                total += v - self.ub[j];
            }
        }
        total
    }

    fn objective_now(&self) -> f64 {
        self.work_obj.iter().zip(&self.x).map(|(c, v)| c * v).sum()
    }

    /// Cost of global variable `j` under the active phase.
    #[inline]
    fn phase_cost(&self, j: usize, phase1: bool) -> f64 {
        if phase1 {
            0.0 // nonbasic variables are always within bounds
        } else if j < self.n {
            self.work_obj[j]
        } else {
            0.0
        }
    }

    /// Reduced cost of nonbasic `j`: `c_j - y' a_j`.
    #[inline]
    fn reduced_cost(&self, j: usize, phase1: bool) -> f64 {
        let cy = if j < self.n {
            self.p.matrix().dot_col(j, &self.y)
        } else {
            -self.y[j - self.n]
        };
        self.phase_cost(j, phase1) - cy
    }

    /// Computes duals for the active phase into `self.y`.
    fn compute_duals(&mut self, phase1: bool) {
        for pos in 0..self.m {
            let j = self.basis.basic_at(pos);
            self.cb[pos] = if phase1 {
                let v = self.x[j];
                if v < self.lb[j] - self.opts.tol_feas {
                    -1.0
                } else if v > self.ub[j] + self.opts.tol_feas {
                    1.0
                } else {
                    0.0
                }
            } else {
                self.phase_cost(j, false)
            };
        }
        self.y.copy_from_slice(&self.cb);
        self.basis.btran(&mut self.y);
    }

    /// Dantzig (or Bland) pricing over nonbasic variables.
    fn price(&mut self, phase1: bool, bland: bool) -> Pricing {
        let tol = self.opts.tol_dual;
        let mut best: Option<(usize, f64, f64)> = None; // (j, dir, score)
        for j in 0..self.n + self.m {
            if self.banned[j] {
                continue;
            }
            let (dir, score) = match self.status[j] {
                VarStatus::Basic => continue,
                VarStatus::AtLower => {
                    let d = self.reduced_cost(j, phase1);
                    if d < -tol {
                        (1.0, -d)
                    } else {
                        continue;
                    }
                }
                VarStatus::AtUpper => {
                    let d = self.reduced_cost(j, phase1);
                    if d > tol {
                        (-1.0, d)
                    } else {
                        continue;
                    }
                }
                VarStatus::FreeNb => {
                    let d = self.reduced_cost(j, phase1);
                    if d < -tol {
                        (1.0, -d)
                    } else if d > tol {
                        (-1.0, d)
                    } else {
                        continue;
                    }
                }
            };
            if bland {
                return Pricing::Enter { j, dir };
            }
            if best.is_none_or(|(_, _, s)| score > s) {
                best = Some((j, dir, score));
            }
        }
        match best {
            Some((j, dir, _)) => Pricing::Enter { j, dir },
            None => Pricing::Optimal,
        }
    }

    /// Bounded-variable ratio test, phase-aware.
    ///
    /// Moving the entering variable by `t` in direction `dir` changes basic
    /// `pos` by `-t * dir * w[pos]`.
    fn ratio_test(&self, j: usize, dir: f64, phase1: bool, bland: bool) -> Ratio {
        let tol = self.opts.tol_feas;
        let piv_tol = self.opts.tol_pivot;
        // Entering variable's own travel range (bound flip distance).
        let own_range = self.ub[j] - self.lb[j];
        let mut t_best = own_range; // may be +inf
        let mut blocking: Option<(usize, bool)> = None; // (pos, leaves_at_upper)

        for pos in 0..self.m {
            let wv = self.w[pos];
            if wv.abs() <= piv_tol {
                continue;
            }
            let bj = self.basis.basic_at(pos);
            let xv = self.x[bj];
            let delta = dir * wv; // basic moves at rate -delta
            let (limit, at_upper) = if delta > 0.0 {
                // Basic decreases.
                if phase1 && xv < self.lb[bj] - tol {
                    // Already below its lower bound and moving further away:
                    // no blocking bound in this direction (the phase-I
                    // gradient has priced the worsening in).
                    (f64::INFINITY, false)
                } else if phase1 && xv > self.ub[bj] + tol {
                    // Infeasible above and improving: stop where it becomes
                    // feasible at the upper bound.
                    if self.ub[bj].is_finite() {
                        ((xv - self.ub[bj]) / delta, true)
                    } else {
                        (f64::INFINITY, false)
                    }
                } else if self.lb[bj].is_finite() {
                    (((xv - self.lb[bj]).max(0.0)) / delta, false)
                } else {
                    (f64::INFINITY, false)
                }
            } else {
                // Basic increases.
                if phase1 && xv > self.ub[bj] + tol {
                    // Above its upper bound and moving further away.
                    (f64::INFINITY, false)
                } else if phase1 && xv < self.lb[bj] - tol {
                    // Infeasible below and improving: stop at the lower bound.
                    if self.lb[bj].is_finite() {
                        ((self.lb[bj] - xv) / -delta, false)
                    } else {
                        (f64::INFINITY, false)
                    }
                } else if self.ub[bj].is_finite() {
                    (((self.ub[bj] - xv).max(0.0)) / -delta, true)
                } else {
                    (f64::INFINITY, false)
                }
            };
            if !limit.is_finite() {
                continue;
            }
            let better = if bland {
                // Bland: smallest ratio, ties by smallest variable index.
                limit < t_best - 1e-12
                    || (limit <= t_best + 1e-12
                        && blocking.map_or(own_range.is_finite(), |(bp, _)| {
                            self.basis.basic_at(pos) < self.basis.basic_at(bp)
                        })
                        && limit <= t_best)
            } else {
                // Dantzig: smallest ratio, ties by largest pivot magnitude.
                limit < t_best - 1e-12
                    || (limit <= t_best + 1e-12
                        && blocking.is_some_and(|(bp, _)| wv.abs() > self.w[bp].abs()))
            };
            if better {
                t_best = limit;
                blocking = Some((pos, at_upper));
            }
        }

        match blocking {
            None => {
                if t_best.is_finite() {
                    Ratio::BoundFlip { t: t_best }
                } else {
                    Ratio::Unbounded
                }
            }
            Some((pos, to_upper)) => {
                if self.w[pos].abs() <= self.opts.tol_pivot * 10.0 && t_best > 0.0 {
                    // Pivot too small to trust for a real step.
                    Ratio::Stuck
                } else {
                    Ratio::Pivot {
                        t: t_best.max(0.0),
                        pos,
                        to_upper,
                    }
                }
            }
        }
    }

    fn run(mut self) -> LpSolution {
        let max_iters = if self.opts.max_iters == 0 {
            40 * (self.n + self.m) + 2000
        } else {
            self.opts.max_iters
        };
        let mut stall = 0usize;
        let mut bland = false;
        let mut last_infeas = f64::INFINITY;
        let mut last_obj = f64::INFINITY;
        let mut pivots_since_refactor = 0usize;

        let status = loop {
            if self.iterations >= max_iters {
                break LpStatus::IterationLimit;
            }
            self.iterations += 1;

            let infeas = self.total_infeasibility();
            let phase1 = infeas > self.opts.tol_feas;

            // Stall detection for anti-cycling.
            let progress = if phase1 {
                infeas < last_infeas - 1e-10
            } else {
                let obj = self.objective_now();
                let p = obj < last_obj - 1e-10;
                last_obj = obj;
                p
            };
            if phase1 {
                last_infeas = infeas;
            }
            if progress {
                stall = 0;
                bland = false;
                self.banned.iter_mut().for_each(|b| *b = false);
            } else {
                stall += 1;
                if stall > self.opts.stall_limit {
                    bland = true;
                }
            }

            self.compute_duals(phase1);
            let (j, dir) = match self.price(phase1, bland) {
                Pricing::Optimal => {
                    if phase1 {
                        break LpStatus::Infeasible;
                    }
                    if self.perturbed {
                        // Optimal for the perturbed costs: strip the
                        // perturbation and keep iterating on the true
                        // objective (usually a handful of pivots).
                        self.perturbed = false;
                        self.work_obj.copy_from_slice(self.p.objective());
                        last_obj = f64::INFINITY;
                        continue;
                    }
                    break LpStatus::Optimal;
                }
                Pricing::Enter { j, dir } => (j, dir),
            };

            // FTRAN the entering column.
            self.w.iter_mut().for_each(|v| *v = 0.0);
            self.basis.scatter_column(j, &mut self.w);
            self.basis.ftran(&mut self.w);

            match self.ratio_test(j, dir, phase1, bland) {
                Ratio::Unbounded => {
                    if phase1 {
                        // Cannot happen for a consistent model: infeasibility
                        // is bounded below. Treat as numerical trouble.
                        self.banned[j] = true;
                        continue;
                    }
                    break LpStatus::Unbounded;
                }
                Ratio::Stuck => {
                    self.banned[j] = true;
                    continue;
                }
                Ratio::BoundFlip { t } => {
                    self.apply_step(j, dir, t);
                    self.status[j] = match self.status[j] {
                        VarStatus::AtLower => VarStatus::AtUpper,
                        VarStatus::AtUpper => VarStatus::AtLower,
                        s => s,
                    };
                    // Snap exactly onto the bound.
                    self.x[j] = if dir > 0.0 { self.ub[j] } else { self.lb[j] };
                }
                Ratio::Pivot { t, pos, to_upper } => {
                    self.apply_step(j, dir, t);
                    let leaving = self.basis.basic_at(pos);
                    self.x[leaving] = if to_upper {
                        self.ub[leaving]
                    } else {
                        self.lb[leaving]
                    };
                    self.status[leaving] = if to_upper {
                        VarStatus::AtUpper
                    } else {
                        VarStatus::AtLower
                    };
                    self.basis.replace(pos, j, &self.w);
                    self.status[j] = VarStatus::Basic;
                    pivots_since_refactor += 1;

                    if pivots_since_refactor >= self.opts.refactor_interval
                        || self.basis.should_refactorize()
                    {
                        self.refactorize_and_repair();
                        pivots_since_refactor = 0;
                    }
                }
            }
        };

        self.finish(status)
    }

    /// Moves the entering variable by `t` along `dir`, updating basics.
    fn apply_step(&mut self, j: usize, dir: f64, t: f64) {
        if t > 0.0 {
            self.x[j] += dir * t;
            for pos in 0..self.m {
                let wv = self.w[pos];
                if wv != 0.0 {
                    let bj = self.basis.basic_at(pos);
                    self.x[bj] -= dir * t * wv;
                }
            }
        }
    }

    fn refactorize_and_repair(&mut self) {
        let repaired = self.basis.refactorize();
        for pos in repaired {
            // The repair kicked the previous occupant out for a slack; give
            // the evicted variable a nonbasic status at its nearest bound.
            // (We cannot know which variable was evicted here, so instead we
            // fix statuses from the basis itself below.)
            let _ = pos;
        }
        // Reconcile statuses with the (possibly repaired) basis.
        let mut is_basic = vec![false; self.n + self.m];
        for pos in 0..self.m {
            is_basic[self.basis.basic_at(pos)] = true;
        }
        for j in 0..self.n + self.m {
            match (is_basic[j], self.status[j]) {
                (true, _) => self.status[j] = VarStatus::Basic,
                (false, VarStatus::Basic) => {
                    // Evicted by repair: park at the nearest finite bound.
                    let (s, v) = nearest_bound(self.x[j], self.lb[j], self.ub[j]);
                    self.status[j] = s;
                    self.x[j] = v;
                }
                _ => {}
            }
        }
        self.recompute_basics();
    }

    fn finish(mut self, status: LpStatus) -> LpSolution {
        // Final duals under the true objective.
        self.compute_duals(false);
        let x: Vec<f64> = self.x[..self.n].to_vec();
        let row_activity: Vec<f64> = (0..self.m).map(|i| self.x[self.n + i]).collect();
        let objective = self.p.objective_value(&x);
        LpSolution {
            status,
            objective,
            x,
            duals: self.y.clone(),
            row_activity,
            iterations: self.iterations,
        }
    }
}

fn initial_nonbasic(lb: f64, ub: f64) -> (VarStatus, f64) {
    match (lb.is_finite(), ub.is_finite()) {
        (true, true) => {
            if lb.abs() <= ub.abs() {
                (VarStatus::AtLower, lb)
            } else {
                (VarStatus::AtUpper, ub)
            }
        }
        (true, false) => (VarStatus::AtLower, lb),
        (false, true) => (VarStatus::AtUpper, ub),
        (false, false) => (VarStatus::FreeNb, 0.0),
    }
}

fn nearest_bound(x: f64, lb: f64, ub: f64) -> (VarStatus, f64) {
    match (lb.is_finite(), ub.is_finite()) {
        (true, true) => {
            if (x - lb).abs() <= (ub - x).abs() {
                (VarStatus::AtLower, lb)
            } else {
                (VarStatus::AtUpper, ub)
            }
        }
        (true, false) => (VarStatus::AtLower, lb),
        (false, true) => (VarStatus::AtUpper, ub),
        (false, false) => (VarStatus::FreeNb, 0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ProblemBuilder, INF};

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn trivially_bounded_no_rows() {
        // min -x  s.t. 0 <= x <= 5  => x = 5.
        let mut b = ProblemBuilder::new();
        b.add_col(-1.0, 0.0, 5.0);
        let p = b.build();
        let s = solve(&p, &SimplexOptions::default());
        assert_eq!(s.status, LpStatus::Optimal);
        approx(s.objective, -5.0);
        approx(s.x[0], 5.0);
    }

    #[test]
    fn classic_two_var_lp() {
        // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0
        // (Dantzig's example) => x=2, y=6, obj = 36.
        let mut b = ProblemBuilder::new();
        let x = b.add_col(-3.0, 0.0, INF);
        let y = b.add_col(-5.0, 0.0, INF);
        let r0 = b.add_row(-INF, 4.0);
        b.set_coeff(r0, x, 1.0);
        let r1 = b.add_row(-INF, 12.0);
        b.set_coeff(r1, y, 2.0);
        let r2 = b.add_row(-INF, 18.0);
        b.set_coeff(r2, x, 3.0);
        b.set_coeff(r2, y, 2.0);
        let p = b.build();
        let s = solve(&p, &SimplexOptions::default());
        assert_eq!(s.status, LpStatus::Optimal);
        approx(s.objective, -36.0);
        approx(s.x[0], 2.0);
        approx(s.x[1], 6.0);
    }

    #[test]
    fn equality_rows_need_phase1() {
        // min x + y  s.t. x + y = 10, x - y = 2, x,y >= 0 => x=6, y=4.
        let mut b = ProblemBuilder::new();
        let x = b.add_col(1.0, 0.0, INF);
        let y = b.add_col(1.0, 0.0, INF);
        let r0 = b.add_row(10.0, 10.0);
        b.set_coeff(r0, x, 1.0);
        b.set_coeff(r0, y, 1.0);
        let r1 = b.add_row(2.0, 2.0);
        b.set_coeff(r1, x, 1.0);
        b.set_coeff(r1, y, -1.0);
        let p = b.build();
        let s = solve(&p, &SimplexOptions::default());
        assert_eq!(s.status, LpStatus::Optimal);
        approx(s.x[0], 6.0);
        approx(s.x[1], 4.0);
        approx(s.objective, 10.0);
    }

    #[test]
    fn detects_infeasibility() {
        // x >= 5 and x <= 3 via rows.
        let mut b = ProblemBuilder::new();
        let x = b.add_col(0.0, 0.0, INF);
        let r0 = b.add_row(5.0, INF);
        b.set_coeff(r0, x, 1.0);
        let r1 = b.add_row(-INF, 3.0);
        b.set_coeff(r1, x, 1.0);
        let p = b.build();
        let s = solve(&p, &SimplexOptions::default());
        assert_eq!(s.status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        // min -x, x >= 0, no upper limit.
        let mut b = ProblemBuilder::new();
        let x = b.add_col(-1.0, 0.0, INF);
        let r0 = b.add_row(0.0, INF); // x >= 0, redundant
        b.set_coeff(r0, x, 1.0);
        let p = b.build();
        let s = solve(&p, &SimplexOptions::default());
        assert_eq!(s.status, LpStatus::Unbounded);
    }

    #[test]
    fn handles_upper_bounded_structurals() {
        // min -x - 2y s.t. x + y <= 3, 0 <= x <= 2, 0 <= y <= 2 => (1, 2).
        let mut b = ProblemBuilder::new();
        let x = b.add_col(-1.0, 0.0, 2.0);
        let y = b.add_col(-2.0, 0.0, 2.0);
        let r = b.add_row(-INF, 3.0);
        b.set_coeff(r, x, 1.0);
        b.set_coeff(r, y, 1.0);
        let p = b.build();
        let s = solve(&p, &SimplexOptions::default());
        assert_eq!(s.status, LpStatus::Optimal);
        approx(s.objective, -5.0);
        approx(s.x[0], 1.0);
        approx(s.x[1], 2.0);
    }

    #[test]
    fn negative_lower_bounds_and_free_vars() {
        // min x + y with y free, x in [-5, 5], x + y >= -2, y <= 4.
        // Any point with x + y = -2 is optimal; check objective/feasibility.
        let mut b = ProblemBuilder::new();
        let x = b.add_col(1.0, -5.0, 5.0);
        let y = b.add_col(1.0, -INF, INF);
        let r0 = b.add_row(-2.0, INF);
        b.set_coeff(r0, x, 1.0);
        b.set_coeff(r0, y, 1.0);
        let r1 = b.add_row(-INF, 4.0);
        b.set_coeff(r1, y, 1.0);
        let p = b.build();
        let s = solve(&p, &SimplexOptions::default());
        assert_eq!(s.status, LpStatus::Optimal);
        approx(s.objective, -2.0);
        assert!(p.is_feasible(&s.x, 1e-7));
    }

    #[test]
    fn ranged_row() {
        // min x s.t. 2 <= x + y <= 4, y <= 1, x,y >= 0 => x = 1, y = 1.
        let mut b = ProblemBuilder::new();
        let x = b.add_col(1.0, 0.0, INF);
        let y = b.add_col(0.0, 0.0, 1.0);
        let r = b.add_row(2.0, 4.0);
        b.set_coeff(r, x, 1.0);
        b.set_coeff(r, y, 1.0);
        let p = b.build();
        let s = solve(&p, &SimplexOptions::default());
        assert_eq!(s.status, LpStatus::Optimal);
        approx(s.objective, 1.0);
    }

    #[test]
    fn fixed_variables_via_bounds() {
        // Branch-and-bound style: fix x = 1 by bounds.
        let mut b = ProblemBuilder::new();
        let x = b.add_col(-1.0, 0.0, 1.0);
        let y = b.add_col(-1.0, 0.0, 1.0);
        let r = b.add_row(-INF, 1.5);
        b.set_coeff(r, x, 1.0);
        b.set_coeff(r, y, 1.0);
        let p = b.build();
        let s = solve_with_bounds(&p, &[1.0, 0.0], &[1.0, 1.0], &SimplexOptions::default());
        assert_eq!(s.status, LpStatus::Optimal);
        approx(s.x[0], 1.0);
        approx(s.x[1], 0.5);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple redundant constraints through the same vertex.
        let mut b = ProblemBuilder::new();
        let x = b.add_col(-1.0, 0.0, INF);
        let y = b.add_col(-1.0, 0.0, INF);
        for _ in 0..6 {
            let r = b.add_row(-INF, 2.0);
            b.set_coeff(r, x, 1.0);
            b.set_coeff(r, y, 1.0);
        }
        let r = b.add_row(-INF, 2.0);
        b.set_coeff(r, x, 2.0);
        b.set_coeff(r, y, 2.0); // same face scaled
        let p = b.build();
        let s = solve(&p, &SimplexOptions::default());
        // 2x + 2y <= 2 dominates: x + y <= 1 -> obj -1.
        assert_eq!(s.status, LpStatus::Optimal);
        approx(s.objective, -1.0);
    }

    #[test]
    fn duals_satisfy_complementary_slackness_basics() {
        // min -x - y s.t. x + 2y <= 4, 3x + y <= 6 => vertex x=1.6, y=1.2.
        let mut b = ProblemBuilder::new();
        let x = b.add_col(-1.0, 0.0, INF);
        let y = b.add_col(-1.0, 0.0, INF);
        let r0 = b.add_row(-INF, 4.0);
        b.set_coeff(r0, x, 1.0);
        b.set_coeff(r0, y, 2.0);
        let r1 = b.add_row(-INF, 6.0);
        b.set_coeff(r1, x, 3.0);
        b.set_coeff(r1, y, 1.0);
        let p = b.build();
        let s = solve(&p, &SimplexOptions::default());
        assert_eq!(s.status, LpStatus::Optimal);
        approx(s.x[0], 1.6);
        approx(s.x[1], 1.2);
        // Both rows tight; duals should reconstruct the objective:
        // y' A = c for basic structurals.
        let d = &s.duals;
        approx(d[0] + 3.0 * d[1], -1.0);
        approx(2.0 * d[0] + d[1], -1.0);
    }
}

#[cfg(test)]
mod perturbation_tests {
    use super::*;
    use crate::problem::{ProblemBuilder, INF};

    /// Perturbed solves must reach the same optimum as unperturbed ones
    /// (the perturbation is stripped before termination).
    #[test]
    fn perturbation_preserves_optimum() {
        let mut b = ProblemBuilder::new();
        let x = b.add_col(-3.0, 0.0, INF);
        let y = b.add_col(-5.0, 0.0, INF);
        let r0 = b.add_row(-INF, 4.0);
        b.set_coeff(r0, x, 1.0);
        let r1 = b.add_row(-INF, 12.0);
        b.set_coeff(r1, y, 2.0);
        let r2 = b.add_row(-INF, 18.0);
        b.set_coeff(r2, x, 3.0);
        b.set_coeff(r2, y, 2.0);
        let p = b.build();
        let plain = solve(&p, &SimplexOptions::default());
        let mut opts = SimplexOptions::default();
        opts.perturb = 1e-6;
        let pert = solve(&p, &opts);
        assert_eq!(plain.status, LpStatus::Optimal);
        assert_eq!(pert.status, LpStatus::Optimal);
        assert!(
            (plain.objective - pert.objective).abs() < 1e-6,
            "{} vs {}",
            plain.objective,
            pert.objective
        );
    }

    /// Degenerate problem: perturbation must not change feasibility status.
    #[test]
    fn perturbation_on_degenerate_equalities() {
        let mut b = ProblemBuilder::new();
        let x = b.add_col(1.0, 0.0, 10.0);
        let y = b.add_col(1.0, 0.0, 10.0);
        for _ in 0..4 {
            let r = b.add_row(5.0, 5.0);
            b.set_coeff(r, x, 1.0);
            b.set_coeff(r, y, 1.0);
        }
        let p = b.build();
        let mut opts = SimplexOptions::default();
        opts.perturb = 1e-6;
        let s = solve(&p, &opts);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 5.0).abs() < 1e-6);
    }
}
