//! Compressed sparse column (CSC) matrices and triplet builders.
//!
//! The LP solver stores the structural constraint matrix in CSC form because
//! the revised simplex method works column-wise: pricing iterates columns,
//! and FTRAN needs fast access to the entering column.

/// A coordinate-form matrix entry used while assembling a matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triplet {
    pub row: usize,
    pub col: usize,
    pub value: f64,
}

/// An immutable sparse matrix in compressed sparse column form.
///
/// Invariants: `col_ptr.len() == ncols + 1`, `col_ptr` is non-decreasing,
/// row indices within a column are strictly increasing, and no explicit
/// zeros are stored.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Builds a CSC matrix from triplets. Duplicate `(row, col)` entries are
    /// summed; entries that sum to exactly zero are dropped.
    ///
    /// # Panics
    /// Panics if any triplet is out of bounds.
    pub fn from_triplets(nrows: usize, ncols: usize, triplets: &[Triplet]) -> Self {
        for t in triplets {
            assert!(t.row < nrows, "triplet row {} out of bounds {nrows}", t.row);
            assert!(t.col < ncols, "triplet col {} out of bounds {ncols}", t.col);
        }
        // Count entries per column, then bucket-sort triplets into columns.
        let mut counts = vec![0usize; ncols + 1];
        for t in triplets {
            counts[t.col + 1] += 1;
        }
        for c in 0..ncols {
            counts[c + 1] += counts[c];
        }
        let mut order = counts.clone();
        let mut rows = vec![0usize; triplets.len()];
        let mut vals = vec![0f64; triplets.len()];
        for t in triplets {
            let slot = order[t.col];
            rows[slot] = t.row;
            vals[slot] = t.value;
            order[t.col] += 1;
        }
        // Sort each column by row and merge duplicates.
        let mut col_ptr = vec![0usize; ncols + 1];
        let mut out_rows = Vec::with_capacity(triplets.len());
        let mut out_vals = Vec::with_capacity(triplets.len());
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for c in 0..ncols {
            scratch.clear();
            for k in counts[c]..order[c] {
                scratch.push((rows[k], vals[k]));
            }
            scratch.sort_unstable_by_key(|&(r, _)| r);
            let mut i = 0;
            while i < scratch.len() {
                let r = scratch[i].0;
                let mut v = scratch[i].1;
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == r {
                    v += scratch[j].1;
                    j += 1;
                }
                if v != 0.0 {
                    out_rows.push(r);
                    out_vals.push(v);
                }
                i = j;
            }
            col_ptr[c + 1] = out_rows.len();
        }
        CscMatrix {
            nrows,
            ncols,
            col_ptr,
            row_idx: out_rows,
            values: out_vals,
        }
    }

    /// An `nrows x ncols` matrix with no entries.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CscMatrix {
            nrows,
            ncols,
            col_ptr: vec![0; ncols + 1],
            row_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Iterates `(row, value)` pairs of column `c` in increasing row order.
    #[inline]
    pub fn col_iter(&self, c: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.col_ptr[c];
        let hi = self.col_ptr[c + 1];
        self.row_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Number of entries in column `c`.
    #[inline]
    pub fn col_nnz(&self, c: usize) -> usize {
        self.col_ptr[c + 1] - self.col_ptr[c]
    }

    /// Computes `y += alpha * A[:, c]` into a dense vector.
    #[inline]
    pub fn axpy_col(&self, c: usize, alpha: f64, y: &mut [f64]) {
        for (r, v) in self.col_iter(c) {
            y[r] += alpha * v;
        }
    }

    /// Computes the dot product `A[:, c] . y` against a dense vector.
    #[inline]
    pub fn dot_col(&self, c: usize, y: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (r, v) in self.col_iter(c) {
            acc += v * y[r];
        }
        acc
    }

    /// Dense `A * x` (mainly for tests and activity computation).
    pub fn mul_dense(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols);
        let mut y = vec![0.0; self.nrows];
        for c in 0..self.ncols {
            if x[c] != 0.0 {
                self.axpy_col(c, x[c], &mut y);
            }
        }
        y
    }

    /// Returns the value at `(row, col)`, or 0 if not stored.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.col_iter(col)
            .find(|&(r, _)| r == row)
            .map_or(0.0, |(_, v)| v)
    }

    /// Appends rows to the matrix: grows `nrows` to `new_nrows` and inserts
    /// the given entries, all of which must lie in the appended row range.
    /// Because the new rows sit strictly below every existing one, each
    /// column's sorted order is preserved by appending at the column tail —
    /// one linear re-pack instead of a full triplet sort. Duplicate
    /// `(row, col)` entries are summed; zero sums are dropped (matching
    /// [`Self::from_triplets`]).
    ///
    /// # Panics
    /// Panics if `new_nrows < nrows`, an entry's row is outside
    /// `nrows..new_nrows`, or a column index is out of bounds.
    pub fn append_rows(&mut self, new_nrows: usize, triplets: &[Triplet]) {
        assert!(new_nrows >= self.nrows, "rows can only grow");
        for t in triplets {
            assert!(
                t.row >= self.nrows && t.row < new_nrows,
                "appended entry row {} outside {}..{new_nrows}",
                t.row,
                self.nrows
            );
            assert!(t.col < self.ncols, "col {} out of bounds", t.col);
        }
        let mut add: Vec<Triplet> = triplets.to_vec();
        add.sort_unstable_by_key(|t| (t.col, t.row));
        let mut col_ptr = vec![0usize; self.ncols + 1];
        let mut rows = Vec::with_capacity(self.nnz() + add.len());
        let mut vals = Vec::with_capacity(self.nnz() + add.len());
        let mut k = 0usize;
        for c in 0..self.ncols {
            let lo = self.col_ptr[c];
            let hi = self.col_ptr[c + 1];
            rows.extend_from_slice(&self.row_idx[lo..hi]);
            vals.extend_from_slice(&self.values[lo..hi]);
            while k < add.len() && add[k].col == c {
                let r = add[k].row;
                let mut v = add[k].value;
                k += 1;
                while k < add.len() && add[k].col == c && add[k].row == r {
                    v += add[k].value;
                    k += 1;
                }
                if v != 0.0 {
                    rows.push(r);
                    vals.push(v);
                }
            }
            col_ptr[c + 1] = rows.len();
        }
        self.nrows = new_nrows;
        self.col_ptr = col_ptr;
        self.row_idx = rows;
        self.values = vals;
    }
}

/// A dense-backed vector with an explicit nonzero index list — the working
/// currency of the hyper-sparse solve path.
///
/// The value array is always dense (random-access reads cost O(1), exactly
/// like a `Vec<f64>`), but as long as the vector is in *sparse mode* the
/// `nz` list names every index that may hold a nonzero, so clearing,
/// iterating and scattering cost O(nnz) instead of O(len). Membership of
/// `nz` is tracked with epoch marks, making [`Self::clear`] O(nnz) and
/// duplicate-free insertion O(1).
///
/// Sparse mode is advisory: [`Self::make_dense`] drops the index list (for
/// inputs whose support is unknown or too dense to be worth tracking) and
/// every consumer falls back to full scans. `nz` may name indices whose
/// value cancelled to exactly zero — consumers must treat it as a pattern
/// *superset*, never as a nonzero certificate.
#[derive(Debug, Clone, Default)]
pub struct IndexedVec {
    vals: Vec<f64>,
    nz: Vec<usize>,
    mark: Vec<u64>,
    epoch: u64,
    sparse: bool,
}

impl IndexedVec {
    /// An all-zero sparse-mode vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        IndexedVec {
            vals: vec![0.0; n],
            nz: Vec::new(),
            mark: vec![0; n],
            epoch: 1,
            sparse: true,
        }
    }

    /// Resizes to length `n` (zero-filling) and clears to sparse mode.
    pub fn reset(&mut self, n: usize) {
        if self.vals.len() < n {
            self.vals.resize(n, 0.0);
            self.mark.resize(n, 0);
        }
        self.clear();
        if self.vals.len() > n {
            // Shrink logically: anything beyond n is already zero after
            // `clear`, and consumers only index `0..n`.
            self.vals.truncate(n);
            self.mark.truncate(n);
        }
        self.sparse = true;
    }

    pub fn len(&self) -> usize {
        self.vals.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Whether the nonzero list is valid (sparse mode).
    #[inline]
    pub fn is_sparse(&self) -> bool {
        self.sparse
    }

    /// Number of tracked indices (meaningful only in sparse mode; an upper
    /// bound on the true nonzero count).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nz.len()
    }

    /// The tracked index list (pattern superset; sparse mode only).
    #[inline]
    pub fn indices(&self) -> &[usize] {
        &self.nz
    }

    /// Dense read-only view — valid in both modes.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.vals
    }

    /// Dense mutable view. Writing through this in sparse mode silently
    /// invalidates the pattern — call [`Self::make_dense`] first unless
    /// every touched index is already tracked.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.vals
    }

    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        self.vals[i]
    }

    /// Zeroes the vector: O(nnz) in sparse mode, O(len) in dense mode.
    /// Always restores sparse mode.
    pub fn clear(&mut self) {
        if self.sparse {
            for &i in &self.nz {
                self.vals[i] = 0.0;
            }
            self.nz.clear();
        } else {
            self.vals.iter_mut().for_each(|v| *v = 0.0);
            self.nz.clear();
        }
        self.epoch += 1;
        self.sparse = true;
    }

    /// Adds `v` to entry `i`, registering `i` in the pattern.
    #[inline]
    pub fn add(&mut self, i: usize, v: f64) {
        if self.sparse && self.mark[i] != self.epoch {
            self.mark[i] = self.epoch;
            self.nz.push(i);
        }
        self.vals[i] += v;
    }

    /// Sets entry `i` to `v`, registering `i` in the pattern.
    #[inline]
    pub fn set(&mut self, i: usize, v: f64) {
        if self.sparse && self.mark[i] != self.epoch {
            self.mark[i] = self.epoch;
            self.nz.push(i);
        }
        self.vals[i] = v;
    }

    /// Registers `i` in the pattern without touching the value.
    #[inline]
    pub fn touch(&mut self, i: usize) {
        if self.sparse && self.mark[i] != self.epoch {
            self.mark[i] = self.epoch;
            self.nz.push(i);
        }
    }

    /// Overwrites the value of an index already known to be tracked (or in
    /// dense mode). Cheaper than [`Self::set`] inside kernels that walk the
    /// pattern they already own.
    #[inline]
    pub fn set_tracked(&mut self, i: usize, v: f64) {
        debug_assert!(!self.sparse || self.mark[i] == self.epoch);
        self.vals[i] = v;
    }

    /// Sorts the tracked pattern ascending. Consumers whose tie-breaking
    /// depends on scan order (the primal ratio tests) call this so a
    /// pattern left in DFS order by the solve kernels behaves exactly
    /// like a full ascending scan.
    pub fn sort_pattern(&mut self) {
        self.nz.sort_unstable();
    }

    /// Drops the index list: the vector is now treated as fully dense.
    pub fn make_dense(&mut self) {
        self.sparse = false;
        self.nz.clear();
    }

    /// Replaces the pattern wholesale with `pattern` (the values must
    /// already be consistent — used by solve kernels whose reachability
    /// pass computed the result pattern externally).
    pub fn adopt_pattern(&mut self, pattern: &[usize]) {
        self.epoch += 1;
        self.nz.clear();
        for &i in pattern {
            if self.mark[i] != self.epoch {
                self.mark[i] = self.epoch;
                self.nz.push(i);
            }
        }
        self.sparse = true;
    }

    /// Calls `f(index, value)` for every (possibly) nonzero entry: the
    /// tracked pattern in sparse mode, every nonzero in dense mode.
    #[inline]
    pub fn for_each_nonzero(&self, mut f: impl FnMut(usize, f64)) {
        if self.sparse {
            for &i in &self.nz {
                let v = self.vals[i];
                if v != 0.0 {
                    f(i, v);
                }
            }
        } else {
            for (i, &v) in self.vals.iter().enumerate() {
                if v != 0.0 {
                    f(i, v);
                }
            }
        }
    }

    /// True nonzero count (scans the pattern / the dense array).
    pub fn count_nonzeros(&self) -> usize {
        let mut c = 0;
        self.for_each_nonzero(|_, _| c += 1);
        c
    }
}

impl std::ops::Index<usize> for IndexedVec {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.vals[i]
    }
}

/// Row-major mirror of a [`CscMatrix`] (CSR), giving fast row access for
/// algorithms the column-major layout cannot serve — the dual simplex's
/// pivot-row computation. Built once per matrix and cached (see
/// `Problem::row_major`); any row/column mutation must discard it.
#[derive(Debug, Clone)]
pub struct RowMajor {
    row_ptr: Vec<usize>,
    col: Vec<usize>,
    val: Vec<f64>,
}

impl RowMajor {
    /// Transposes the column-major storage in two counting passes.
    pub fn build(a: &CscMatrix) -> Self {
        let m = a.nrows();
        let mut counts = vec![0usize; m + 1];
        for c in 0..a.ncols() {
            for (r, _) in a.col_iter(c) {
                counts[r + 1] += 1;
            }
        }
        for i in 0..m {
            counts[i + 1] += counts[i];
        }
        let nnz = counts[m];
        let mut cursor = counts.clone();
        let mut col = vec![0usize; nnz];
        let mut val = vec![0f64; nnz];
        for c in 0..a.ncols() {
            for (r, v) in a.col_iter(c) {
                let slot = cursor[r];
                col[slot] = c;
                val[slot] = v;
                cursor[r] += 1;
            }
        }
        RowMajor {
            row_ptr: counts,
            col,
            val,
        }
    }

    /// Iterates `(col, value)` pairs of row `i`.
    #[inline]
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col[lo..hi]
            .iter()
            .copied()
            .zip(self.val[lo..hi].iter().copied())
    }

    /// Scatters a simplex **pivot row** `alpha = rho' [A | -I]` over all
    /// `n + m` global columns, where `rho` is the BTRAN image of a basis
    /// unit row (`rho = B^-T e_r`) and column `n + i` is the slack of row
    /// `i` (single entry `(i, -1)`).
    ///
    /// `alpha` must be zeroed for every index in `touched` on entry (the
    /// call drains `touched` and re-zeroes them itself, so reusing the same
    /// pair of buffers across calls is the intended pattern). On return
    /// `touched` lists every column with a (possibly cancelled-to-zero)
    /// contribution.
    ///
    /// Entries of `rho` with magnitude at most `drop_tol` are skipped for
    /// sparsity; returns `true` if any *nonzero* entry was dropped that
    /// way. Callers that want to treat an empty pivot row as a proof (the
    /// dual simplex's infeasibility certificate) must fall back when this
    /// is set — a dropped entry means columns may be missing from
    /// `touched`.
    ///
    /// `rho` arrives as an [`IndexedVec`] so a hyper-sparse BTRAN image is
    /// scattered in O(nnz(rho) * row nnz) — only dense-mode images pay the
    /// full `m`-row scan.
    pub fn scatter_pivot_row(
        &self,
        rho: &IndexedVec,
        n_structurals: usize,
        drop_tol: f64,
        alpha: &mut [f64],
        touched: &mut Vec<usize>,
    ) -> bool {
        for j in touched.drain(..) {
            alpha[j] = 0.0;
        }
        let mut dropped = false;
        rho.for_each_nonzero(|i, rv| {
            if rv.abs() <= drop_tol {
                dropped = true;
                return;
            }
            for (jcol, av) in self.row_iter(i) {
                if alpha[jcol] == 0.0 {
                    touched.push(jcol);
                }
                alpha[jcol] += rv * av;
            }
            // Slack column n + i is the single entry (i, -1).
            if alpha[n_structurals + i] == 0.0 {
                touched.push(n_structurals + i);
            }
            alpha[n_structurals + i] -= rv;
        });
        // A column whose partial sums cancel to exactly 0.0 mid-scatter can
        // be pushed twice (the `== 0.0` membership test is fooled); dedup so
        // callers may fold over `touched` without double-counting. Sorting
        // also makes the iteration order deterministic.
        touched.sort_unstable();
        touched.dedup();
        dropped
    }
}

/// A growable sparse column collection used to accumulate L and U factors.
///
/// Unlike [`CscMatrix`] this supports appending whole columns in order, which
/// is exactly the access pattern of left-looking LU factorisation.
#[derive(Debug, Clone, Default)]
pub struct ColumnStore {
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl ColumnStore {
    pub fn new() -> Self {
        ColumnStore {
            col_ptr: vec![0],
            row_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Assembles a store from raw CSC arrays (`col_ptr.len() == ncols + 1`,
    /// non-decreasing). Used by transpose builders that compute the layout
    /// with counting sort.
    pub fn from_parts(col_ptr: Vec<usize>, row_idx: Vec<usize>, values: Vec<f64>) -> Self {
        debug_assert!(!col_ptr.is_empty());
        debug_assert_eq!(col_ptr.last().copied(), Some(row_idx.len()));
        debug_assert_eq!(row_idx.len(), values.len());
        ColumnStore {
            col_ptr,
            row_idx,
            values,
        }
    }

    pub fn with_capacity(cols: usize, nnz: usize) -> Self {
        let mut col_ptr = Vec::with_capacity(cols + 1);
        col_ptr.push(0);
        ColumnStore {
            col_ptr,
            row_idx: Vec::with_capacity(nnz),
            values: Vec::with_capacity(nnz),
        }
    }

    pub fn ncols(&self) -> usize {
        self.col_ptr.len() - 1
    }

    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Appends one entry to the column currently being built.
    #[inline]
    pub fn push(&mut self, row: usize, value: f64) {
        self.row_idx.push(row);
        self.values.push(value);
    }

    /// Finishes the current column.
    #[inline]
    pub fn seal_column(&mut self) {
        self.col_ptr.push(self.row_idx.len());
    }

    #[inline]
    pub fn col_iter(&self, c: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.col_ptr[c];
        let hi = self.col_ptr[c + 1];
        self.row_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Direct slice view of column `c` (indices, values) — the random
    /// access the hyper-sparse DFS needs to resume a half-visited column.
    #[inline]
    pub fn col(&self, c: usize) -> (&[usize], &[f64]) {
        let lo = self.col_ptr[c];
        let hi = self.col_ptr[c + 1];
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }

    /// Number of entries in column `c`.
    #[inline]
    pub fn col_nnz(&self, c: usize) -> usize {
        self.col_ptr[c + 1] - self.col_ptr[c]
    }

    pub fn clear(&mut self) {
        self.col_ptr.clear();
        self.col_ptr.push(0);
        self.row_idx.clear();
        self.values.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(row: usize, col: usize, value: f64) -> Triplet {
        Triplet { row, col, value }
    }

    #[test]
    fn builds_from_triplets_sorted_and_merged() {
        let m = CscMatrix::from_triplets(
            3,
            3,
            &[
                t(2, 0, 3.0),
                t(0, 0, 1.0),
                t(0, 0, 0.5), // duplicate, should merge to 1.5
                t(1, 2, -2.0),
            ],
        );
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), 1.5);
        assert_eq!(m.get(2, 0), 3.0);
        assert_eq!(m.get(1, 2), -2.0);
        assert_eq!(m.get(1, 1), 0.0);
        let col0: Vec<_> = m.col_iter(0).collect();
        assert_eq!(col0, vec![(0, 1.5), (2, 3.0)]);
    }

    #[test]
    fn drops_entries_that_cancel() {
        let m = CscMatrix::from_triplets(2, 2, &[t(0, 0, 2.0), t(0, 0, -2.0), t(1, 1, 1.0)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn empty_matrix() {
        let m = CscMatrix::zeros(4, 5);
        assert_eq!(m.nrows(), 4);
        assert_eq!(m.ncols(), 5);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.col_iter(3).count(), 0);
    }

    #[test]
    fn mul_dense_matches_manual() {
        // [1 0 2]
        // [0 3 0]
        let m = CscMatrix::from_triplets(2, 3, &[t(0, 0, 1.0), t(1, 1, 3.0), t(0, 2, 2.0)]);
        let y = m.mul_dense(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![7.0, 6.0]);
    }

    #[test]
    fn dot_and_axpy_agree() {
        let m = CscMatrix::from_triplets(3, 1, &[t(0, 0, 1.0), t(2, 0, -4.0)]);
        let y = [2.0, 5.0, 0.5];
        assert_eq!(m.dot_col(0, &y), 2.0 - 2.0);
        let mut acc = vec![0.0; 3];
        m.axpy_col(0, 2.0, &mut acc);
        assert_eq!(acc, vec![2.0, 0.0, -8.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_bounds() {
        CscMatrix::from_triplets(1, 1, &[t(1, 0, 1.0)]);
    }

    #[test]
    fn pivot_row_scatter_matches_dense_product() {
        // [1 0 2]
        // [0 3 0]
        let a = CscMatrix::from_triplets(2, 3, &[t(0, 0, 1.0), t(1, 1, 3.0), t(0, 2, 2.0)]);
        let mirror = RowMajor::build(&a);
        let mut rho = IndexedVec::zeros(2);
        rho.set(0, 2.0);
        rho.set(1, -1.0);
        let mut alpha = vec![0.0; 3 + 2];
        let mut touched = vec![0usize]; // stale entry from a "previous" call
        alpha[0] = 7.0; // must be re-zeroed via the drained touched list
        let dropped = mirror.scatter_pivot_row(&rho, 3, 1e-12, &mut alpha, &mut touched);
        assert!(!dropped);
        // alpha = rho' [A | -I]
        assert_eq!(&alpha, &[2.0, -3.0, 4.0, -2.0, 1.0]);
        let mut sorted = touched.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, touched, "touched must be sorted and deduped");
        assert_eq!(touched, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pivot_row_reports_dropped_noise() {
        let a = CscMatrix::from_triplets(1, 1, &[t(0, 0, 1.0)]);
        let mirror = RowMajor::build(&a);
        let mut alpha = vec![0.0; 2];
        let mut touched = Vec::new();
        let mut rho = IndexedVec::zeros(1);
        rho.set(0, 1e-15);
        let dropped = mirror.scatter_pivot_row(&rho, 1, 1e-12, &mut alpha, &mut touched);
        assert!(dropped);
        assert!(touched.is_empty());
    }

    #[test]
    fn indexed_vec_tracks_pattern() {
        let mut v = IndexedVec::zeros(5);
        assert!(v.is_sparse());
        v.add(3, 1.5);
        v.add(1, -2.0);
        v.add(3, 0.5); // duplicate index: pattern entry stays unique
        assert_eq!(v.nnz(), 2);
        assert_eq!(v[3], 2.0);
        assert_eq!(v[1], -2.0);
        let mut seen = Vec::new();
        v.for_each_nonzero(|i, x| seen.push((i, x)));
        seen.sort_by_key(|&(i, _)| i);
        assert_eq!(seen, vec![(1, -2.0), (3, 2.0)]);
        v.clear();
        assert_eq!(v.nnz(), 0);
        assert!(v.as_slice().iter().all(|&x| x == 0.0));
        // Dense mode: values stay readable, iteration covers everything.
        v.set(2, 4.0);
        v.make_dense();
        assert!(!v.is_sparse());
        let mut seen = Vec::new();
        v.for_each_nonzero(|i, x| seen.push((i, x)));
        assert_eq!(seen, vec![(2, 4.0)]);
        v.clear(); // O(len) in dense mode, restores sparse mode
        assert!(v.is_sparse());
        assert_eq!(v.count_nonzeros(), 0);
    }

    #[test]
    fn indexed_vec_adopt_pattern_dedups() {
        let mut v = IndexedVec::zeros(4);
        v.make_dense();
        v.set(0, 1.0);
        v.set(2, 2.0);
        v.adopt_pattern(&[0, 2, 2]);
        assert!(v.is_sparse());
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.count_nonzeros(), 2);
    }

    #[test]
    fn column_store_roundtrip() {
        let mut s = ColumnStore::new();
        s.push(3, 1.0);
        s.push(1, 2.0);
        s.seal_column();
        s.seal_column(); // empty column
        s.push(0, -1.0);
        s.seal_column();
        assert_eq!(s.ncols(), 3);
        assert_eq!(s.col_iter(0).collect::<Vec<_>>(), vec![(3, 1.0), (1, 2.0)]);
        assert_eq!(s.col_iter(1).count(), 0);
        assert_eq!(s.col_iter(2).collect::<Vec<_>>(), vec![(0, -1.0)]);
        assert_eq!(s.nnz(), 3);
    }
}
